//! Moments and order statistics of a one-dimensional sample.
//!
//! [`Summary`] is the workhorse aggregate used throughout the workspace:
//! per-video `UserPerceivedPLT` responses are summarised by their mean
//! (the value compared against automatic metrics in Fig. 7) and standard
//! deviation (the agreement measure of Fig. 6b).

/// Descriptive statistics of a finite sample of `f64` values.
///
/// Construction via [`Summary::of`] filters nothing: the caller is expected
/// to have already applied whatever response filtering is appropriate
/// (see `eyeorg_core::filtering`). All fields are plain data so a
/// `Summary` can be stored, compared, and serialised by callers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (`n-1` denominator); `0.0` when `n < 2`.
    pub variance: f64,
    /// Square root of [`Summary::variance`].
    pub stdev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// 50th percentile (linear interpolation, see [`crate::quantile`]).
    pub median: f64,
}

impl Summary {
    /// Summarise a sample. Returns `None` for an empty sample — an empty
    /// set of responses has no meaningful statistics and forcing callers
    /// to handle it keeps degenerate videos out of campaign aggregates.
    ///
    /// Non-finite values (NaN/±inf) are rejected with `None` as well:
    /// every quantity in this workspace (times, byte counts, scores) is
    /// finite by construction, so a non-finite input is a logic error
    /// upstream that must not silently poison campaign statistics.
    pub fn of(sample: &[f64]) -> Option<Summary> {
        if sample.is_empty() || sample.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let variance = if n < 2 {
            0.0
        } else {
            sample.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        };
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in sample {
            min = min.min(v);
            max = max.max(v);
        }
        let median = crate::quantile::percentile(sample, 50.0)
            // lint:allow(D4): sample was checked non-empty with p=50 in range, so percentile is Some
            .expect("non-empty finite sample has a median");
        Some(Summary {
            n,
            mean,
            variance,
            stdev: variance.sqrt(),
            min,
            max,
            median,
        })
    }

    /// The range `max - min` of the sample.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Coefficient of variation (`stdev / mean`); `None` when the mean is
    /// zero, where the ratio is undefined.
    pub fn cv(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.stdev / self.mean)
        }
    }
}

/// Arithmetic mean of a sample; `None` when empty.
///
/// Convenience wrapper for call sites that need only the mean and do not
/// want to pay for the full [`Summary`].
pub fn mean(sample: &[f64]) -> Option<f64> {
    if sample.is_empty() {
        None
    } else {
        Some(sample.iter().sum::<f64>() / sample.len() as f64)
    }
}

/// Unbiased sample standard deviation; `None` when `n < 2`.
pub fn stdev(sample: &[f64]) -> Option<f64> {
    if sample.len() < 2 {
        return None;
    }
    let m = mean(sample)?;
    let var = sample.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (sample.len() - 1) as f64;
    Some(var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_has_no_summary() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn non_finite_rejected() {
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn singleton() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.stdev, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    fn known_values() {
        // Sample with hand-computed statistics.
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sum of squared deviations = 32; unbiased variance = 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert!((s.range() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_stdev_helpers_agree_with_summary() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let s = Summary::of(&data).unwrap();
        assert_eq!(mean(&data).unwrap(), s.mean);
        assert!((stdev(&data).unwrap() - s.stdev).abs() < 1e-12);
    }

    #[test]
    fn stdev_requires_two_points() {
        assert!(stdev(&[1.0]).is_none());
        assert!(stdev(&[]).is_none());
    }

    #[test]
    fn cv_undefined_at_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]).unwrap();
        assert!(s.cv().is_none());
        let s2 = Summary::of(&[2.0, 4.0]).unwrap();
        assert!(s2.cv().unwrap() > 0.0);
    }
}
