//! Burst batching must be invisible: the batched `NetSim` emits a
//! `NetEvent` trace (and statistics, and qlog) identical to the
//! per-segment reference across seeded loss and bandwidth profiles.
//!
//! The scenario driver below exercises the shapes page loads produce —
//! many small objects on parallel connections (where batching engages),
//! a large ACK-clocked transfer (where it mostly cannot), and loss
//! (where it must fall back) — and compares the complete observable
//! output of the two paths event by event.

use eyeorg_net::loss::LossModel;
use eyeorg_net::profile::{NetworkProfile, TlsMode};
use eyeorg_net::sim::{ConnId, ConnStats, NetEvent, NetSim};
use eyeorg_net::{ConnLog, SimTime};
use eyeorg_stats::Seed;

/// Everything the application can observe from one scenario run.
type Observed = (Vec<(SimTime, NetEvent)>, Vec<ConnStats>, Vec<Option<ConnLog>>);

/// One simulated "page": a handful of connections fetching a mix of
/// object sizes, with follow-up requests issued as responses complete.
fn run_scenario(
    profile: NetworkProfile,
    seed: Seed,
    batching: bool,
    conns: usize,
    objects: &[u64],
) -> Observed {
    let mut sim = NetSim::new(profile, seed);
    sim.set_burst_batching(batching);
    sim.set_logging(true);
    let ids: Vec<ConnId> = (0..conns).map(|_| sim.open(SimTime::ZERO, TlsMode::None)).collect();
    // Round-robin the object list over the connections; each connection
    // requests its next object when the previous response completes.
    let mut next_obj: Vec<usize> = (0..conns).collect();
    let mut expecting: Vec<u64> = vec![0; conns];
    let mut requested: Vec<u64> = vec![0; conns];
    let mut trace = Vec::new();
    while let Some((t, ev)) = sim.next_event() {
        trace.push((t, ev));
        match ev {
            NetEvent::Established { conn } => {
                if next_obj[conn.0] < objects.len() {
                    requested[conn.0] += 120;
                    sim.client_send(conn, t, 120);
                }
            }
            NetEvent::RequestDelivered { conn, total_bytes } => {
                if total_bytes == requested[conn.0] {
                    let obj = objects[next_obj[conn.0]];
                    next_obj[conn.0] += conns;
                    expecting[conn.0] += obj;
                    sim.server_send(conn, t, obj);
                }
            }
            NetEvent::Delivered { conn, total_bytes } => {
                if total_bytes == expecting[conn.0] && next_obj[conn.0] < objects.len() {
                    requested[conn.0] += 120;
                    sim.client_send(conn, t, 120);
                }
            }
        }
    }
    let stats = ids.iter().map(|&c| sim.conn_stats(c)).collect();
    let logs = ids.iter().map(|&c| sim.take_log(c)).collect();
    (trace, stats, logs)
}

fn assert_equivalent(profile: NetworkProfile, seed: Seed, conns: usize, objects: &[u64], tag: &str) {
    let reference = run_scenario(profile.clone(), seed, false, conns, objects);
    let batched = run_scenario(profile, seed, true, conns, objects);
    assert_eq!(
        batched.0.len(),
        reference.0.len(),
        "{tag}: event counts diverge ({} batched vs {} reference)",
        batched.0.len(),
        reference.0.len()
    );
    for (i, (b, r)) in batched.0.iter().zip(reference.0.iter()).enumerate() {
        assert_eq!(b, r, "{tag}: NetEvent #{i} diverges");
    }
    assert_eq!(batched.1, reference.1, "{tag}: conn stats diverge");
    for (i, (b, r)) in batched.2.iter().zip(reference.2.iter()).enumerate() {
        assert_eq!(
            format!("{b:?}"),
            format!("{r:?}"),
            "{tag}: qlog for conn {i} diverges"
        );
    }
}

/// Object mix shaped like a page: many smalls, a few mediums, one large.
const PAGE_OBJECTS: &[u64] = &[
    4_200, 1_100, 9_000, 65_000, 2_800, 14_600, 700, 30_000, 5_500, 250_000, 3_000, 12_000,
];

#[test]
fn identical_traces_lossless_profiles() {
    for (pi, profile) in [
        NetworkProfile::lossless_test(),
        NetworkProfile::fiber(),
        NetworkProfile::dsl(),
    ]
    .into_iter()
    .enumerate()
    {
        for s in 0..3u64 {
            assert_equivalent(
                profile.clone(),
                Seed(100 + s),
                6,
                PAGE_OBJECTS,
                &format!("lossless profile#{pi} seed#{s}"),
            );
        }
    }
}

#[test]
fn identical_traces_under_random_loss() {
    for (li, loss) in [
        LossModel::Bernoulli { p: 0.01 },
        LossModel::Bernoulli { p: 0.05 },
    ]
    .into_iter()
    .enumerate()
    {
        let profile = NetworkProfile { loss, ..NetworkProfile::lossless_test() };
        for s in 0..4u64 {
            assert_equivalent(
                profile.clone(),
                Seed(500 + s),
                4,
                PAGE_OBJECTS,
                &format!("loss model#{li} seed#{s}"),
            );
        }
    }
}

#[test]
fn identical_traces_under_bursty_loss_and_presets() {
    // Gilbert–Elliott loss plus every WebPageTest-style preset (3G's
    // narrow link forces drop-tail, LTE exercises the large-BDP path).
    for (pi, profile) in NetworkProfile::presets().into_iter().enumerate() {
        assert_equivalent(
            profile,
            Seed(900 + pi as u64),
            3,
            &PAGE_OBJECTS[..8],
            &format!("preset#{pi}"),
        );
    }
}

#[test]
fn identical_single_large_transfer() {
    // ACK-clocked bulk flow: batching rarely engages mid-stream but must
    // still agree byte-for-byte, including the app-limited tail.
    for s in 0..3u64 {
        assert_equivalent(
            NetworkProfile::lossless_test(),
            Seed(40 + s),
            1,
            &[2_000_000],
            &format!("bulk seed#{s}"),
        );
    }
}

#[test]
fn batching_reduces_event_count() {
    // Sanity: the optimisation actually removes event-queue round trips
    // on a batching-friendly workload (it would be easy to pass the
    // equivalence tests by never engaging).
    let run = |batching: bool| {
        let mut sim = NetSim::new(NetworkProfile::lossless_test(), Seed(7));
        sim.set_burst_batching(batching);
        let conn = sim.open(SimTime::ZERO, TlsMode::None);
        let mut served = 0;
        while let Some((t, ev)) = sim.next_event() {
            match ev {
                NetEvent::Established { .. } => sim.client_send(conn, t, 120),
                NetEvent::RequestDelivered { total_bytes, .. }
                    if total_bytes == 120 * (served + 1) =>
                {
                    sim.server_send(conn, t, 10_000);
                    served += 1;
                }
                NetEvent::Delivered { total_bytes, .. }
                    if total_bytes == served * 10_000 && served < 20 =>
                {
                    sim.client_send(conn, t, 120);
                }
                _ => {}
            }
        }
        sim.events_processed()
    };
    let batched = run(true);
    let reference = run(false);
    assert!(
        batched < reference,
        "batching should shrink event count: {batched} vs {reference}"
    );
}
