//! Scale harness for the streaming sharded campaign engine.
//!
//! Two modes:
//!
//! * `--smoke` — small configuration used by `scripts/verify.sh` and CI:
//!   runs the materializing engine once and the streaming engine across
//!   several shard sizes, and **exits non-zero** when any digest or
//!   observability-counter fingerprint diverges. With
//!   `--fingerprint-out PATH` it also writes the streaming fingerprints
//!   so the caller can `cmp` runs at different `EYEORG_THREADS`.
//! * full (default) — the headline measurement: a 1,000,000-participant
//!   × 20-stimulus timeline campaign through the streaming engine in
//!   bounded memory, the materializing engine at a capped crowd size for
//!   the throughput comparison, and gates on (a) shard-size invariance,
//!   (b) retained-bytes boundedness (independent of `n` once the
//!   sketches spill), and (c) a ≥10x participants/sec advantage for the
//!   streaming engine. Writes `results/BENCH_scale.json`.
//!
//! Memory is reported two ways: the digest's own retained-bytes
//! accounting (exact, hardware-independent) and the process peak-RSS
//! proxy from `/proc/self/status` (`VmHWM`, Linux-only, informational).

use std::time::Instant;

use eyeorg_bench::campaigns::capture_browser;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

const FULL_PARTICIPANTS: usize = 1_000_000;
const FULL_SITES: usize = 20;
const BOUND_PROBE_PARTICIPANTS: usize = 100_000;
const MATERIALIZING_CAP: usize = 20_000;
const FULL_SHARD: usize = 8192;
const ALT_SHARD: usize = 4096;

const SMOKE_SITES: usize = 4;
const SMOKE_PARTICIPANTS: usize = 400;

/// Peak resident set size in bytes (`VmHWM`), or 0 where unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn stimuli(sites: usize, repeats: usize, seed: Seed) -> Vec<TimelineStimulus> {
    let corpus = alexa_like(seed.derive("sites"), sites);
    let capture = CaptureConfig { repeats, ..CaptureConfig::default() };
    timeline_stimuli(&corpus, &capture_browser(), &capture, seed.derive("capture"))
}

fn stream_run(
    stimuli: &[TimelineStimulus],
    n: usize,
    seed: Seed,
    shard: usize,
) -> (TimelineDigest, f64) {
    eyeorg_obs::reset();
    let cfg = ExperimentConfig::default();
    let t = Instant::now();
    let digest = stream_timeline_campaign(
        stimuli,
        &CrowdFlower,
        n,
        &cfg,
        &paper_pipeline(),
        seed,
        &StreamConfig { shard_size: shard, ..StreamConfig::default() },
    );
    (digest, t.elapsed().as_secs_f64())
}

fn materializing_run(
    stimuli: &[TimelineStimulus],
    n: usize,
    seed: Seed,
) -> (TimelineDigest, f64) {
    eyeorg_obs::reset();
    let cfg = ExperimentConfig::default();
    let t = Instant::now();
    let campaign = run_timeline_campaign(stimuli.to_vec(), &CrowdFlower, n, &cfg, seed);
    let report = filter_timeline(&campaign, &paper_pipeline());
    let digest = digest_timeline(&campaign, &report, n, &DigestParams::default());
    (digest, t.elapsed().as_secs_f64())
}

fn smoke(fp_out: Option<String>) {
    let seed = Seed(2016).derive("perf-scale-smoke");
    let stimuli = stimuli(SMOKE_SITES, 2, seed);
    let n = SMOKE_PARTICIPANTS;

    let (reference, mat_secs) = materializing_run(&stimuli, n, seed.derive("run"));
    let reference_fp = reference.fingerprint();
    let reference_counters = eyeorg_obs::snapshot("scale-smoke", 0).counter_fingerprint();

    let mut identical = true;
    let mut streaming_fp = String::new();
    let mut streaming_counters = String::new();
    for shard in [64usize, 128, n + 1] {
        let (digest, secs) = stream_run(&stimuli, n, seed.derive("run"), shard);
        let fp = digest.fingerprint();
        let counters = eyeorg_obs::snapshot("scale-smoke", 0).counter_fingerprint();
        if fp != reference_fp {
            identical = false;
            eprintln!("DIVERGENCE: shard={shard} digest differs from materializing engine");
        }
        if counters != reference_counters {
            identical = false;
            eprintln!("DIVERGENCE: shard={shard} counters differ from materializing engine");
        }
        println!("smoke shard={shard:>4}: {secs:.3}s (materializing {mat_secs:.3}s)");
        streaming_fp = fp;
        streaming_counters = counters;
    }

    if let Some(path) = fp_out {
        // Digest + counter fingerprints of the streaming run; callers
        // compare this file byte-for-byte across EYEORG_THREADS values.
        let contents = format!("{streaming_fp}\n{streaming_counters}\n");
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create fingerprint dir");
        }
        std::fs::write(&path, contents).expect("write fingerprint file");
        println!("wrote {path}");
    }

    if !identical {
        eprintln!("FAIL: streaming engine diverged from materializing engine");
        std::process::exit(1);
    }
    println!("smoke OK: streaming == materializing across shard sizes");
}

fn full() {
    let seed = Seed(2016).derive("perf-scale");
    let stimuli = stimuli(FULL_SITES, 3, seed);

    // Headline streaming run: a million participants, bounded memory.
    let (full_digest, full_secs) =
        stream_run(&stimuli, FULL_PARTICIPANTS, seed.derive("run"), FULL_SHARD);
    let streaming_pps = FULL_PARTICIPANTS as f64 / full_secs;
    let full_retained = full_digest.retained_bytes();
    println!(
        "streaming  n={FULL_PARTICIPANTS} shard={FULL_SHARD}: {full_secs:.2}s \
         ({streaming_pps:.0} participants/sec, digest {full_retained} bytes)"
    );

    // Shard-size invariance gate at full scale.
    let (alt_digest, alt_secs) =
        stream_run(&stimuli, FULL_PARTICIPANTS, seed.derive("run"), ALT_SHARD);
    let mut identical = true;
    if alt_digest.fingerprint() != full_digest.fingerprint() {
        identical = false;
        eprintln!("DIVERGENCE: shard={ALT_SHARD} digest differs from shard={FULL_SHARD}");
    }
    println!("streaming  n={FULL_PARTICIPANTS} shard={ALT_SHARD}: {alt_secs:.2}s");

    // Boundedness gate: once every sketch has spilled, the digest's
    // retained bytes are a constant — the same at 100k and 1M.
    let (probe_digest, _) =
        stream_run(&stimuli, BOUND_PROBE_PARTICIPANTS, seed.derive("run"), FULL_SHARD);
    let probe_retained = probe_digest.retained_bytes();
    let bounded = full_retained <= probe_retained;
    if !bounded {
        eprintln!(
            "FAIL: retained bytes grew with n ({probe_retained} at \
             n={BOUND_PROBE_PARTICIPANTS} vs {full_retained} at n={FULL_PARTICIPANTS})"
        );
    }

    // Throughput comparison: the materializing engine at a capped crowd
    // size (its row-retention and per-participant row scans make the
    // full million impractical — which is the point of this PR).
    let (mat_digest, mat_secs) =
        materializing_run(&stimuli, MATERIALIZING_CAP, seed.derive("run"));
    let materializing_pps = MATERIALIZING_CAP as f64 / mat_secs;
    let speedup = streaming_pps / materializing_pps;
    println!(
        "materializing n={MATERIALIZING_CAP}: {mat_secs:.2}s \
         ({materializing_pps:.0} participants/sec) -> streaming speedup {speedup:.1}x"
    );
    // Equivalence spot-check at the capped size too.
    let (mat_check, _) = stream_run(&stimuli, MATERIALIZING_CAP, seed.derive("run"), FULL_SHARD);
    if mat_check.fingerprint() != mat_digest.fingerprint() {
        identical = false;
        eprintln!("DIVERGENCE: streaming digest differs from materializing at n={MATERIALIZING_CAP}");
    }

    let peak_rss = peak_rss_bytes();
    let cpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let speedup_ok = speedup >= 10.0;
    if !speedup_ok {
        eprintln!("FAIL: streaming speedup {speedup:.1}x is below the 10x gate");
    }

    let json = format!(
        "{{\n  \"participants\": {FULL_PARTICIPANTS},\n  \"stimuli\": {FULL_SITES},\n  \
         \"shard_size\": {FULL_SHARD},\n  \"alt_shard_size\": {ALT_SHARD},\n  \
         \"available_parallelism\": {cpus},\n  \
         \"streaming_secs\": {full_secs:.6},\n  \
         \"streaming_participants_per_sec\": {streaming_pps:.1},\n  \
         \"alt_shard_secs\": {alt_secs:.6},\n  \
         \"materializing_participants\": {MATERIALIZING_CAP},\n  \
         \"materializing_secs\": {mat_secs:.6},\n  \
         \"materializing_participants_per_sec\": {materializing_pps:.1},\n  \
         \"speedup\": {speedup:.2},\n  \
         \"digest_retained_bytes\": {full_retained},\n  \
         \"digest_retained_bytes_at_{BOUND_PROBE_PARTICIPANTS}\": {probe_retained},\n  \
         \"retained_bytes_bounded\": {bounded},\n  \
         \"peak_rss_bytes\": {peak_rss},\n  \
         \"speedup_gate_10x\": {speedup_ok},\n  \
         \"identical_across_shard_sizes\": {identical}\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("wrote results/BENCH_scale.json");

    if !identical || !bounded || !speedup_ok {
        eprintln!("FAIL: scale gates not met");
        std::process::exit(1);
    }
}

fn main() {
    eyeorg_obs::enable();
    let mut smoke_mode = false;
    let mut fp_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--fingerprint-out" => {
                fp_out = Some(args.next().expect("--fingerprint-out needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if smoke_mode {
        smoke(fp_out);
    } else {
        full();
    }
}
