//! A/B judgment: "which loaded faster, Left, Right, or No Difference?"
//!
//! §3.2's second experiment type. The model is a just-noticeable-
//! difference (JND) comparison: the participant forms a noisy ready
//! moment for each side (per their own readiness criterion), and answers
//! "No Difference" when the perceived gap falls below their
//! discrimination threshold — which scales with the absolute load times
//! (Weber's law), producing exactly the Δ-dependent agreement of
//! Fig. 8a.

use eyeorg_net::SimTime;
use eyeorg_video::Video;
use eyeorg_stats::rng::Rng;

use crate::participant::{Participant, ParticipantClass, Persona};
use crate::perception::true_ready_time;

/// The three allowed answers (a hard rule: participants must pick one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbAnswer {
    /// The left video loaded faster.
    Left,
    /// The right video loaded faster.
    Right,
    /// No perceivable difference.
    NoDifference,
}

/// Base discrimination threshold per phenotype, in seconds.
fn base_jnd(class: ParticipantClass) -> f64 {
    match class {
        ParticipantClass::Diligent => 0.18,
        ParticipantClass::Average => 0.28,
        ParticipantClass::Sloppy => 0.55,
        ParticipantClass::Frenetic => 0.40,
        // Rarely consulted for these two: see lapse rates.
        ParticipantClass::RandomClicker | ParticipantClass::Bot => 1.0,
    }
}

/// Probability the participant answers at random regardless of stimulus.
fn lapse_rate(class: ParticipantClass) -> f64 {
    match class {
        ParticipantClass::Diligent => 0.01,
        ParticipantClass::Average => 0.03,
        ParticipantClass::Sloppy => 0.10,
        ParticipantClass::Frenetic => 0.08,
        ParticipantClass::RandomClicker => 0.85,
        ParticipantClass::Bot => 1.0,
    }
}

/// Judge a pair of ready moments (already extracted for this
/// participant's criterion). Exposed separately from [`ab_response`] so
/// controls (same video, one side delayed) reuse the same psychophysics.
pub fn judge_pair(
    left_ready: SimTime,
    right_ready: SimTime,
    participant: &Participant,
    label: &str,
) -> AbAnswer {
    judge_pair_flat(left_ready, right_ready, &participant.persona(), label)
}

/// [`judge_pair`] from a trait-core [`Persona`] — the batch engine's
/// entry point (ready moments come from precomputed per-stimulus
/// tables). Bit-identical to [`judge_pair`] for matching inputs.
pub fn judge_pair_flat(
    left_ready: SimTime,
    right_ready: SimTime,
    participant: &Persona,
    label: &str,
) -> AbAnswer {
    judge_pair_with_rng(left_ready, right_ready, participant, judge_rng(participant.seed, label))
}

/// [`judge_pair_flat`] with the judgment-stream RNG supplied by the
/// caller — the fast-path entry (RNG built from a hoisted
/// per-participant `"abjudge"` parent instead of a per-cell double
/// derivation).
pub(crate) fn judge_pair_with_rng(
    left_ready: SimTime,
    right_ready: SimTime,
    participant: &Persona,
    mut rng: Rng,
) -> AbAnswer {
    if rng.random_bool(lapse_rate(participant.class)) {
        return match rng.random_range(0..3u8) {
            0 => AbAnswer::Left,
            1 => AbAnswer::Right,
            _ => AbAnswer::NoDifference,
        };
    }
    let zl: f64 = crate::dist_normal(&mut rng);
    let zr: f64 = crate::dist_normal(&mut rng);
    let l = left_ready.as_secs_f64() * (participant.perception_noise * zl).exp();
    let r = right_ready.as_secs_f64() * (participant.perception_noise * zr).exp();
    // Weber scaling: harder to tell 10.0 s from 10.4 s than 1.0 s from
    // 1.4 s — and technically savvy participants discriminate finer
    // differences (the demographic-sensitivity question the paper's §3
    // poses as a target experiment).
    let tech = f64::from(participant.tech_savvy); // 1..=5
    let tech_factor = 1.25 - 0.10 * tech; // 1.15 (novice) .. 0.75 (expert)
    let jnd = base_jnd(participant.class) * tech_factor * (1.0 + 0.10 * ((l + r) / 2.0));
    let delta = r - l;
    if delta.abs() < jnd {
        AbAnswer::NoDifference
    } else if delta > 0.0 {
        AbAnswer::Left // right side took longer → left felt faster
    } else {
        AbAnswer::Right
    }
}

/// Full A/B response for two captures shown side by side.
pub fn ab_response(
    left: &Video,
    right: &Video,
    participant: &Participant,
    label: &str,
) -> AbAnswer {
    let l = true_ready_time(left, participant.readiness);
    let r = true_ready_time(right, participant.readiness);
    judge_pair(l, r, participant, label)
}

/// The §3.3 A/B control: both sides show the same capture, the right one
/// delayed three seconds. Returns `(answer, passed)`; the correct answer
/// is [`AbAnswer::Left`].
pub fn ab_control(video: &Video, participant: &Participant, label: &str) -> (AbAnswer, bool) {
    let ready = true_ready_time(video, participant.readiness);
    ab_control_flat(ready, &participant.persona(), label)
}

/// [`ab_control`] with the control video's ready moment (under this
/// participant's criterion) already extracted — the batch engine reads
/// it from a per-stimulus table instead of rescanning the paint stream.
pub fn ab_control_flat(ready: SimTime, participant: &Persona, label: &str) -> (AbAnswer, bool) {
    let delayed = ready + eyeorg_net::SimDuration::from_secs(3);
    let answer = judge_pair_flat(ready, delayed, participant, label);
    (answer, answer == AbAnswer::Left)
}

fn judge_rng(seed: eyeorg_stats::Seed, label: &str) -> Rng {
    Rng::seed_from_u64(seed.derive("abjudge").derive(label).value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::participant::PopulationProfile;
    use eyeorg_stats::Seed;

    fn pop() -> Vec<Participant> {
        PopulationProfile::paid().generate(Seed(10), 600)
    }

    fn vote_share(
        pop: &[Participant],
        l: f64,
        r: f64,
    ) -> (f64, f64, f64) {
        let (mut left, mut right, mut nd) = (0.0, 0.0, 0.0);
        for p in pop {
            match judge_pair(
                SimTime::from_micros((l * 1e6) as u64),
                SimTime::from_micros((r * 1e6) as u64),
                p,
                "t",
            ) {
                AbAnswer::Left => left += 1.0,
                AbAnswer::Right => right += 1.0,
                AbAnswer::NoDifference => nd += 1.0,
            }
        }
        let n = pop.len() as f64;
        (left / n, right / n, nd / n)
    }

    #[test]
    fn large_delta_yields_strong_agreement() {
        let (l, _r, _nd) = vote_share(&pop(), 2.0, 5.0);
        assert!(l > 0.75, "left share {l}");
    }

    #[test]
    fn tiny_delta_yields_no_difference_or_splits() {
        let (l, r, nd) = vote_share(&pop(), 4.0, 4.05);
        assert!(nd > 0.5, "ND share {nd}");
        assert!((l - r).abs() < 0.15, "split should be near-even: {l} vs {r}");
    }

    #[test]
    fn agreement_grows_with_delta() {
        let pop = pop();
        let agreement = |delta: f64| {
            let (l, r, nd) = vote_share(&pop, 3.0, 3.0 + delta);
            l.max(r).max(nd)
        };
        let deltas = [0.1, 0.5, 0.9, 1.3, 1.7];
        let a: Vec<f64> = deltas.iter().map(|&d| agreement(d)).collect();
        // Median agreement at the top of the sweep must clearly exceed
        // the bottom (Fig. 8a's rising trend).
        assert!(a[4] > a[0], "agreement must rise with Δ: {a:?}");
        assert!(a[4] > 0.7);
    }

    #[test]
    fn weber_scaling_makes_same_delta_harder_on_slow_pages() {
        let pop = pop();
        let correct_share = |base: f64| {
            let (l, _, _) = vote_share(&pop, base, base + 0.8);
            l
        };
        let fast = correct_share(1.0);
        let slow = correct_share(12.0);
        assert!(
            fast > slow + 0.1,
            "0.8s gap should be clearer on fast pages: {fast} vs {slow}"
        );
    }

    #[test]
    fn control_pass_rate_by_class() {
        let pop = PopulationProfile::paid().generate(Seed(11), 2000);
        let rate = |class: ParticipantClass| {
            let subset: Vec<_> = pop.iter().filter(|p| p.class == class).collect();
            let v = {
                // Build a tiny real video once for control checks.
                use eyeorg_browser::{load_page, BrowserConfig};
                use eyeorg_workload::{generate_site, SiteClass};
                let site = generate_site(Seed(12), 0, SiteClass::Landing);
                let trace = load_page(&site, &BrowserConfig::new(), Seed(12));
                eyeorg_video::Video::capture(trace, 10, eyeorg_net::SimDuration::from_secs(2))
            };
            let passed = subset.iter().filter(|p| ab_control(&v, p, "c").1).count();
            passed as f64 / subset.len().max(1) as f64
        };
        assert!(rate(ParticipantClass::Diligent) > 0.95);
        assert!(rate(ParticipantClass::RandomClicker) < 0.55);
    }

    #[test]
    fn judgments_deterministic() {
        let pop = pop();
        let p = &pop[0];
        let a = judge_pair(SimTime::from_millis(2000), SimTime::from_millis(2600), p, "x");
        let b = judge_pair(SimTime::from_millis(2000), SimTime::from_millis(2600), p, "x");
        assert_eq!(a, b);
    }
}
