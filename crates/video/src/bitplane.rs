//! Bitpacked companion planes for frame grids.
//!
//! A [`Frame`](crate::Frame) stores one byte per cell; the quantities the
//! platform actually aggregates over grids are *predicates* on cells —
//! "differs from the final frame", "is painted" — i.e. one bit per cell.
//! This module packs those predicates into `u64` words (64 cells per
//! word) so the hot comparisons become word-parallel popcount loops:
//!
//! * [`count_diff_bytes`] / [`count_ne_bytes`] — SWAR byte-equality
//!   scans that never materialise a plane (what `diff_fraction` and
//!   `painted_fraction` run on);
//! * [`BitGrid`] — a materialised plane with O(1) bit updates and a
//!   popcount-total, which `completeness_at_times` maintains
//!   incrementally across the paint stream.
//!
//! All counts are exact integers, so every fraction computed from them
//! is bit-identical to the scalar byte-scan it replaces (pinned by the
//! property tests in `tests/bitplane_properties.rs`).

/// High bit of each byte lane.
const HI: u64 = 0x8080_8080_8080_8080;
/// Low seven bits of each byte lane.
const LO7: u64 = 0x7f7f_7f7f_7f7f_7f7f;

/// Per-byte nonzero mask: the high bit of each byte of the result is set
/// iff the corresponding byte of `x` is nonzero (classic SWAR: adding
/// `0x7f` to a byte's low 7 bits carries into the high bit exactly when
/// those bits are nonzero; OR-ing `x` back in catches `0x80`).
#[inline]
fn nonzero_byte_mask(x: u64) -> u64 {
    (((x & LO7) + LO7) | x) & HI
}

/// Number of bytes that differ between two equal-length slices, counted
/// eight lanes at a time (XOR → per-byte nonzero mask → popcount).
///
/// # Panics
/// Panics when the slice lengths differ.
pub fn count_diff_bytes(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len(), "slice lengths differ");
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    let mut count = 0u64;
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        // lint:allow(D4): chunks_exact(8) yields exactly 8 bytes
        let wa = u64::from_le_bytes(ca.try_into().expect("8-byte chunk"));
        // lint:allow(D4): chunks_exact(8) yields exactly 8 bytes
        let wb = u64::from_le_bytes(cb.try_into().expect("8-byte chunk"));
        count += u64::from(nonzero_byte_mask(wa ^ wb).count_ones());
    }
    for (&xa, &xb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        count += u64::from(xa != xb);
    }
    count
}

/// Number of bytes not equal to `value`, counted eight lanes at a time.
pub fn count_ne_bytes(cells: &[u8], value: u8) -> u64 {
    let splat = u64::from_le_bytes([value; 8]);
    let mut chunks = cells.chunks_exact(8);
    let mut count = 0u64;
    for c in chunks.by_ref() {
        // lint:allow(D4): chunks_exact(8) yields exactly 8 bytes
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        count += u64::from(nonzero_byte_mask(w ^ splat).count_ones());
    }
    for &x in chunks.remainder() {
        count += u64::from(x != value);
    }
    count
}

/// A bitpacked cell predicate: one bit per grid cell, 64 cells per
/// word, bit `i % 64` of word `i / 64` for cell `i` in row-major order.
/// Trailing bits past the cell count are always zero, so
/// [`count_ones`](Self::count_ones) is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitGrid {
    words: Vec<u64>,
    cells: usize,
}

impl BitGrid {
    /// An all-zero plane over `cells` cells.
    pub fn zeros(cells: usize) -> BitGrid {
        BitGrid { words: vec![0; cells.div_ceil(64)], cells }
    }

    /// Number of cells covered.
    pub fn len(&self) -> usize {
        self.cells
    }

    /// Whether the plane covers zero cells.
    pub fn is_empty(&self) -> bool {
        self.cells == 0
    }

    /// The packed words (last word's trailing bits are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Bit for cell `i`.
    ///
    /// # Panics
    /// Panics out of range.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.cells, "cell {i} out of range ({} cells)", self.cells);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set cell `i`'s bit to `value`.
    ///
    /// # Panics
    /// Panics out of range.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.cells, "cell {i} out of range ({} cells)", self.cells);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Total set bits — one popcount per word, no per-cell scan.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }
}

/// Pack "differs" bits for two equal-length cell buffers: bit `i` is set
/// iff `a[i] != b[i]`. Built eight lanes at a time via the SWAR nonzero
/// mask compressed to a movemask.
///
/// # Panics
/// Panics when the slice lengths differ.
pub fn packed_diff(a: &[u8], b: &[u8]) -> BitGrid {
    assert_eq!(a.len(), b.len(), "slice lengths differ");
    let mut grid = BitGrid::zeros(a.len());
    pack_nonzero(a.iter().zip(b).map(|(&x, &y)| x ^ y), &mut grid);
    grid
}

/// Pack "not equal to `value`" bits for a cell buffer: bit `i` is set
/// iff `cells[i] != value` (with `value = BLANK` this is the painted
/// plane).
pub fn packed_ne(cells: &[u8], value: u8) -> BitGrid {
    let mut grid = BitGrid::zeros(cells.len());
    pack_nonzero(cells.iter().map(|&x| x ^ value), &mut grid);
    grid
}

/// Fill `grid` from a per-cell byte stream: bit `i` set iff byte `i` is
/// nonzero. Eight input bytes become eight plane bits per step via the
/// SWAR mask and a multiply-based movemask.
fn pack_nonzero(bytes: impl Iterator<Item = u8>, grid: &mut BitGrid) {
    let mut buf = [0u8; 8];
    let mut filled = 0usize;
    let mut cell = 0usize;
    for x in bytes {
        buf[filled] = x;
        filled += 1;
        if filled == 8 {
            let mask = nonzero_byte_mask(u64::from_le_bytes(buf));
            // Compress the per-byte high bits to 8 contiguous bits, byte
            // 0 → bit 0 (the multiply gathers each lane's high bit into
            // the top byte in lane order).
            let bits = ((mask >> 7).wrapping_mul(0x0102_0408_1020_4080) >> 56) & 0xff;
            grid.words[cell / 64] |= bits << (cell % 64);
            cell += 8;
            filled = 0;
        }
    }
    for (j, &x) in buf[..filled].iter().enumerate() {
        if x != 0 {
            grid.words[(cell + j) / 64] |= 1u64 << ((cell + j) % 64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swar_counts_match_scalar_on_simple_patterns() {
        let a = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
        let mut b = a;
        b[0] = 0;
        b[7] = 0;
        b[10] = 0;
        assert_eq!(count_diff_bytes(&a, &b), 3);
        assert_eq!(count_diff_bytes(&a, &a), 0);
        assert_eq!(count_ne_bytes(&a, 3), 10);
        assert_eq!(count_ne_bytes(&[], 3), 0);
    }

    #[test]
    fn bitgrid_set_get_count() {
        let mut g = BitGrid::zeros(130); // spans three words
        assert_eq!(g.count_ones(), 0);
        g.set(0, true);
        g.set(63, true);
        g.set(64, true);
        g.set(129, true);
        assert_eq!(g.count_ones(), 4);
        assert!(g.get(63) && g.get(64) && !g.get(65));
        g.set(63, false);
        assert_eq!(g.count_ones(), 3);
    }

    #[test]
    fn packed_planes_match_scalar_bits() {
        let a: Vec<u8> = (0..100).map(|i| (i * 7 % 251) as u8).collect();
        let b: Vec<u8> = (0..100).map(|i| (i * 13 % 256) as u8).collect();
        let diff = packed_diff(&a, &b);
        let ne = packed_ne(&a, 42);
        for i in 0..100 {
            assert_eq!(diff.get(i), a[i] != b[i], "diff bit {i}");
            assert_eq!(ne.get(i), a[i] != 42, "ne bit {i}");
        }
        assert_eq!(diff.count_ones(), count_diff_bytes(&a, &b));
        assert_eq!(ne.count_ones(), count_ne_bytes(&a, 42));
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn diff_count_requires_equal_lengths() {
        let _ = count_diff_bytes(&[1, 2], &[1, 2, 3]);
    }
}
