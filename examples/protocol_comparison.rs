//! The paper's second campaign in miniature: do people perceive a speed
//! difference between HTTP/1.1 and HTTP/2?
//!
//! Captures each site under both protocols, runs an A/B campaign where
//! participants watch the two loads side by side, and reports per-site
//! scores (0 = the HTTP/1.1 side felt faster, 1 = the HTTP/2 side did)
//! with the Δ-dependence of §5.3.
//!
//! ```sh
//! cargo run --release --example protocol_comparison
//! ```

use eyeorg_browser::BrowserConfig;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_metrics::compute_metrics;
use eyeorg_net::NetworkProfile;
use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

fn main() {
    let seed = Seed(42);
    let sites = alexa_like(seed, 10);

    // Protocol studies capture on the standard WebPageTest Cable shaping,
    // where the protocols' transport behaviour actually diverges.
    let browser = BrowserConfig::new().with_network(NetworkProfile::cable());
    let stimuli = protocol_ab_stimuli(&sites, &browser, &CaptureConfig::default(), seed);

    let campaign =
        run_ab_campaign(stimuli, &CrowdFlower, 90, &ExperimentConfig::default(), seed);
    let report = filter_ab(&campaign, &paper_pipeline());
    let tallies = ab_tallies(&campaign, &report);

    println!("site                    score  agreement  ND-rate  SI-delta");
    let mut h2_wins = 0;
    for (i, name) in campaign.stimuli_names.iter().enumerate() {
        let t = &tallies[i];
        let si_a = compute_metrics(&campaign.a_videos[i])
            .speed_index
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN);
        let si_b = compute_metrics(&campaign.b_videos[i])
            .speed_index
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN);
        let score = t.score().unwrap_or(f64::NAN);
        if score > 0.5 {
            h2_wins += 1;
        }
        println!(
            "{name:<22} {score:>6.2} {:>9.0}% {:>8.0}% {:>+8.2}s",
            t.agreement().unwrap_or(0.0) * 100.0,
            t.nd_rate().unwrap_or(0.0) * 100.0,
            si_a - si_b,
        );
    }
    println!(
        "\nHTTP/2 preferred on {h2_wins}/{} sites \
         (scores > 0.5; the paper found ~70% of sites at score >= 0.8)",
        campaign.stimuli_names.len()
    );
}
