//! Property-based tests of the statistics toolkit's invariants.

use proptest::prelude::*;

use eyeorg_stats::{
    bootstrap_ci, classify_shape, pearson, percentile, percentile_band, spearman, Ecdf,
    Histogram, Seed, ShapeParams, Summary,
};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #[test]
    fn percentile_within_sample_bounds(sample in finite_vec(64), p in 0.0f64..=100.0) {
        let v = percentile(&sample, p).unwrap();
        let lo = sample.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo && v <= hi);
    }

    #[test]
    fn percentile_monotone_in_p(sample in finite_vec(64), a in 0.0f64..=100.0, b in 0.0f64..=100.0) {
        let (lo_p, hi_p) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(percentile(&sample, lo_p).unwrap() <= percentile(&sample, hi_p).unwrap());
    }

    #[test]
    fn band_is_a_subsequence_within_percentiles(sample in finite_vec(64)) {
        let kept = percentile_band(&sample, 25.0, 75.0);
        let lo = percentile(&sample, 25.0).unwrap();
        let hi = percentile(&sample, 75.0).unwrap();
        prop_assert!(kept.iter().all(|v| *v >= lo && *v <= hi));
        // Subsequence of the original (order preserved).
        let mut it = sample.iter();
        for k in &kept {
            prop_assert!(it.any(|s| s == k), "band must be a subsequence");
        }
        // Non-empty for n >= 3 (the median always survives).
        if sample.len() >= 3 {
            prop_assert!(!kept.is_empty());
        }
    }

    #[test]
    fn ecdf_is_a_cdf(sample in finite_vec(64), probe in -1e6f64..1e6) {
        let e = Ecdf::new(&sample).unwrap();
        let y = e.eval(probe);
        prop_assert!((0.0..=1.0).contains(&y));
        prop_assert_eq!(e.eval(e.max()), 1.0);
        prop_assert!(e.eval(e.min() - 1.0) == 0.0);
        // Monotone on a small grid.
        let pts = e.sampled(16);
        for w in pts.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn pearson_bounded_and_symmetric(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..40)) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            prop_assert!((pearson(&y, &x).unwrap() - r).abs() < 1e-9);
            // Invariance under positive affine transforms of x.
            let xt: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
            if let Some(rt) = pearson(&xt, &y) {
                prop_assert!((rt - r).abs() < 1e-6);
            }
        }
        if let Some(rs) = spearman(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rs));
        }
    }

    #[test]
    fn histogram_conserves_mass(sample in finite_vec(128)) {
        let h = Histogram::auto(&sample).unwrap();
        prop_assert_eq!(h.total() as usize + h.outside() as usize, sample.len());
    }

    #[test]
    fn summary_consistent(sample in finite_vec(64)) {
        let s = Summary::of(&sample).unwrap();
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.stdev >= 0.0);
    }

    #[test]
    fn bootstrap_ci_brackets_point(sample in finite_vec(40), seed in 0u64..500) {
        if let Some(ci) = bootstrap_ci(&sample, 0.9, 100, Seed(seed), eyeorg_stats::summary::mean) {
            prop_assert!(ci.lo <= ci.point + 1e-9 && ci.point <= ci.hi + 1e-9);
        }
    }

    #[test]
    fn classification_total(sample in finite_vec(64)) {
        // classify_shape never panics and returns None only for tiny input.
        let r = classify_shape(&sample, &ShapeParams::default());
        if sample.len() >= 3 {
            prop_assert!(r.is_some());
        }
    }

    #[test]
    fn seed_derivation_deterministic(root in any::<u64>(), label in "[a-z]{1,12}", idx in 0u64..1000) {
        let s = Seed(root);
        prop_assert_eq!(s.derive(&label), s.derive(&label));
        prop_assert_eq!(s.derive_index(&label, idx), s.derive_index(&label, idx));
        // Child differs from parent and from a sibling index.
        prop_assert_ne!(s.derive(&label).value(), root);
        prop_assert_ne!(s.derive_index(&label, idx), s.derive_index(&label, idx + 1));
    }
}
