//! Internal deterministic RNG (xoshiro256++).
//!
//! Every stochastic module in the workspace used to seed an external
//! `StdRng` from a [`Seed`](crate::Seed); the build environment has no
//! registry access, so the narrow surface those modules actually use
//! lives here instead: [`Rng::seed_from_u64`], [`Rng::random_range`]
//! over integer and `f64` ranges, [`Rng::random_bool`], and a Box–Muller
//! [`Rng::standard_normal`].
//!
//! xoshiro256++ is a small, fast, well-dispersed generator; its state is
//! expanded from the 64-bit seed with the same SplitMix64 finaliser the
//! seed-derivation tree uses, per the generator authors' recommendation.
//! Statistical quality comfortably exceeds what the simulation needs
//! (uniform/Bernoulli/normal draws with test tolerances of percents).
//!
//! Determinism contract: the byte stream depends only on the seed — not
//! on platform, pointer width, or call-site inlining — so campaign
//! regeneration is reproducible across machines, a property the
//! parallel execution layer ([`crate::par`]) also relies on.

use std::ops::{Range, RangeInclusive};

/// `2^-53`: converts the top 53 bits of a raw output into `[0, 1)`.
const F53: f64 = 1.0 / (1u64 << 53) as f64;

/// A seeded xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step: advances `state` and returns the next output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Construct a generator from a 64-bit seed (typically
    /// `seed.derive("label").value()`).
    #[inline]
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Expand a block of 64-bit seeds into ready generators, reusing the
    /// caller's buffer. One generator per seed, each identical to
    /// `seed_from_u64` on that seed; the batched loop exposes the four
    /// independent SplitMix64 chains per state to instruction-level
    /// parallelism, which the one-at-a-time constructor cannot.
    pub fn seed_block(seeds: &[u64], out: &mut Vec<Rng>) {
        out.clear();
        out.reserve(seeds.len());
        out.extend(seeds.iter().map(|&s| Rng::seed_from_u64(s)));
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// Fill `out` with the next `out.len()` raw outputs — exactly the
    /// sequence `out.len()` calls to [`Rng::next_u64`] would produce,
    /// with the state kept in locals across the whole block instead of
    /// being stored and reloaded per draw.
    #[inline]
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for slot in out.iter_mut() {
            *slot = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Advance the stream by `n` outputs, discarding the values. Used by
    /// the draw-elision fast path: a draw whose value is never consumed
    /// still has to advance the stream so later draws land on the same
    /// outputs as the full path.
    #[inline]
    pub fn skip_u64(&mut self, n: usize) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for _ in 0..n {
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * F53
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.random_f64() < p
    }

    /// Uniform draw from a range (`lo..hi` or `lo..=hi`), for the
    /// integer types used across the workspace and `f64`.
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform draw in `[0, n)` — Lemire's debiased multiply-shift.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            // Rejection zone for exact uniformity.
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// One standard-normal draw (Box–Muller, first output only — wasting
    /// the second keeps the sampler stateless, which matters for
    /// reproducibility across call sites).
    ///
    /// Restructured over the generic range sampler: both uniforms come
    /// from one two-output block, and the range set-up that
    /// `random_range` recomputes per call (span, clamp constants) is
    /// hoisted into the constants below. The arithmetic is kept
    /// *literally* identical to the generic path — including the
    /// clamp branch on `u1`, which never fires because
    /// `MIN_POSITIVE + f < 1.0` for every representable `f < 1.0` — so
    /// the output is bit-for-bit the sequence the old body produced
    /// (asserted against a reference copy in the tests).
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        let mut raw = [0u64; 2];
        self.fill_u64(&mut raw);
        // u1 ~ random_range(f64::MIN_POSITIVE..1.0): the guard away from
        // zero keeps ln() finite. Same scale-shift-clamp as
        // `f64::sample_uniform` on that range.
        let v = f64::MIN_POSITIVE + (raw[0] >> 11) as f64 * F53 * (1.0 - f64::MIN_POSITIVE);
        let u1 = if v < 1.0 { v } else { f64::MIN_POSITIVE };
        // u2 ~ random_range(0.0..1.0): scale-shift by (0, 1) is the
        // identity and the `< 1.0` clamp can't fire on a 53-bit draw.
        let u2 = (raw[1] >> 11) as f64 * F53;
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// The old `standard_normal` body, verbatim, kept as the reference
    /// for the bitwise-identity test of the restructured path.
    #[cfg(test)]
    fn standard_normal_reference(&mut self) -> f64 {
        // Guard u1 away from 0 so ln() stays finite.
        let u1: f64 = self.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Ranges [`Rng::random_range`] can sample from. Mirrors `rand`'s
/// two-parameter shape — a blanket impl over `Range<T>`/`RangeInclusive<T>`
/// ties the element type to the range type structurally, so inference
/// flows in both directions (from an annotated literal *or* from the
/// expected output type) exactly as call sites written against `rand`
/// assume.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

/// Element types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
pub trait Uniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`).
    fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut Rng) -> Self;
}

impl<T: Uniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: Uniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            #[inline]
            fn sample_uniform(lo: $t, hi: $t, inclusive: bool, rng: &mut Rng) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                // A full-width inclusive range would overflow `below`;
                // no call site needs it, so keep the simple path.
                assert!(span <= u64::MAX as u128, "range too wide");
                let off = rng.below(span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniform for f64 {
    #[inline]
    fn sample_uniform(lo: f64, hi: f64, inclusive: bool, rng: &mut Rng) -> f64 {
        // Scale-and-shift; clamp keeps a half-open draw inside [lo, hi)
        // for the finite, modest-magnitude ranges the workspace uses.
        let v = lo + rng.random_f64() * (hi - lo);
        if inclusive || v < hi {
            v
        } else {
            lo
        }
    }
}

impl Uniform for f32 {
    #[inline]
    fn sample_uniform(lo: f32, hi: f32, inclusive: bool, rng: &mut Rng) -> f32 {
        let v = lo + rng.random_f64() as f32 * (hi - lo);
        if inclusive || v < hi {
            v
        } else {
            lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u8 = rng.random_range(1..=5);
            assert!((1..=5).contains(&y));
            let z: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
            let w: i32 = rng.random_range(-10..=10);
            assert!((-10..=10).contains(&w));
        }
    }

    #[test]
    fn range_draws_are_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 60_000;
        let mut counts = [0u32; 6];
        for _ in 0..n {
            counts[rng.random_range(0..6usize)] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 6.0;
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.05,
                "{counts:?}"
            );
        }
    }

    #[test]
    fn bool_probability_respected() {
        let mut rng = Rng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn fill_u64_matches_next_u64_sequence() {
        for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
            for len in [0usize, 1, 2, 7, 64, 257] {
                let mut a = Rng::seed_from_u64(seed);
                let mut b = Rng::seed_from_u64(seed);
                let mut block = vec![0u64; len];
                a.fill_u64(&mut block);
                let singles: Vec<u64> = (0..len).map(|_| b.next_u64()).collect();
                assert_eq!(block, singles, "seed {seed} len {len}");
                // The post-block states must agree too.
                assert_eq!(a.next_u64(), b.next_u64(), "state after block, seed {seed}");
            }
        }
    }

    #[test]
    fn skip_u64_matches_discarded_draws() {
        for seed in [3u64, 99, 0x1234_5678] {
            for n in [0usize, 1, 2, 5, 33] {
                let mut a = Rng::seed_from_u64(seed);
                let mut b = Rng::seed_from_u64(seed);
                a.skip_u64(n);
                for _ in 0..n {
                    b.next_u64();
                }
                assert_eq!(a.next_u64(), b.next_u64(), "seed {seed} n {n}");
            }
        }
    }

    #[test]
    fn seed_block_matches_one_at_a_time() {
        let seeds: Vec<u64> = (0..100).map(|i| i * 0x9e37_79b9 + 7).collect();
        let mut block = Vec::new();
        Rng::seed_block(&seeds, &mut block);
        assert_eq!(block.len(), seeds.len());
        for (s, rng) in seeds.iter().zip(block.iter_mut()) {
            assert_eq!(rng.next_u64(), Rng::seed_from_u64(*s).next_u64());
        }
        // Buffer reuse replaces, never appends.
        Rng::seed_block(&seeds[..3], &mut block);
        assert_eq!(block.len(), 3);
    }

    #[test]
    fn restructured_standard_normal_is_bitwise_identical() {
        for seed in [0u64, 17, 42, 0xfeed_face, u64::MAX - 1] {
            let mut fast = Rng::seed_from_u64(seed);
            let mut reference = Rng::seed_from_u64(seed);
            for i in 0..10_000 {
                let f = fast.standard_normal();
                let r = reference.standard_normal_reference();
                assert_eq!(f.to_bits(), r.to_bits(), "seed {seed} draw {i}: {f} vs {r}");
            }
        }
    }

    #[test]
    fn full_u64_range_supported() {
        let mut rng = Rng::seed_from_u64(19);
        let draws: Vec<u64> = (0..64).map(|_| rng.random_range(0..u64::MAX)).collect();
        // High bits must actually vary.
        assert!(draws.iter().any(|&x| x > u64::MAX / 2));
        assert!(draws.iter().any(|&x| x < u64::MAX / 2));
    }
}
