//! D2 waived: the reading feeds a log line, never a simulation value.

pub fn log_duration<R>(f: impl FnOnce() -> R) -> R {
    // lint:allow(D2): wall time is printed for the operator and discarded; nothing deterministic reads it
    let t0 = std::time::Instant::now();
    let r = f();
    eprintln!("took {:?}", t0.elapsed());
    r
}
