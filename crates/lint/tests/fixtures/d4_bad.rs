//! D4 trip: a bare unwrap in library code.

pub fn first_word(line: &str) -> &str {
    line.split_whitespace().next().unwrap()
}
