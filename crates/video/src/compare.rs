//! Frame comparison: the rewind-frame helper and control frames.
//!
//! §3.2 of the paper: after a participant picks a frame on the timeline,
//! Eyeorg shows them "the earliest similar frame (no more than 1 %
//! different in a pixel-by-pixel comparison)" and lets them accept the
//! rewind or keep their choice (Fig. 3a). As a control (§3.3), the
//! platform occasionally proposes "a nearly-blank rewind frame" instead
//! and checks the participant rejects it (Fig. 3b).

use crate::capture::Video;
use crate::frame::Frame;
use crate::timeline::FrameTimeline;

/// The similarity threshold of the paper's helper: frames differing in at
/// most this fraction of pixels count as "similar".
pub const SIMILARITY_THRESHOLD: f64 = 0.01;

/// Earliest frame similar to frame `chosen` — the helper's suggestion.
/// Scans from the start and returns the first index whose diff fraction
/// against the chosen frame is at or below `threshold`. Always at most
/// `chosen` (the chosen frame is similar to itself).
///
/// This is the *reference* implementation: it renders and diffs every
/// frame up to `chosen` on each call, so a loop over all frames is
/// quadratic in renders. Callers that query the same video repeatedly
/// should build an [`EarliestSimilarTable`] once and index it.
pub fn earliest_similar_frame(video: &Video, chosen: usize, threshold: f64) -> usize {
    let target = video.frame(chosen);
    for i in 0..=chosen {
        if video.frame(i).diff_fraction(&target) <= threshold {
            return i;
        }
    }
    chosen
}

/// The per-video earliest-similar-frame table: `suggest(chosen)` for
/// every frame, precomputed in one pass over the materialised timeline.
///
/// Building the table costs one timeline materialisation plus one
/// delta-walk per frame (work proportional to frames × recorded cell
/// writes), after which each query is a bounds-checked index — against
/// [`earliest_similar_frame`]'s full render-and-diff rescan per call.
/// Every entry equals the naive scan exactly: the walk maintains the
/// same integer differing-cell count `diff_fraction` computes (pinned
/// by the `table_matches_naive_scan` regression test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EarliestSimilarTable {
    table: Vec<usize>,
}

impl EarliestSimilarTable {
    /// Build the table at the paper's 1 % threshold.
    pub fn of(video: &Video) -> EarliestSimilarTable {
        EarliestSimilarTable::with_threshold(video, SIMILARITY_THRESHOLD)
    }

    /// Build the table at an arbitrary threshold.
    pub fn with_threshold(video: &Video, threshold: f64) -> EarliestSimilarTable {
        let tl = FrameTimeline::of(video);
        EarliestSimilarTable {
            table: (0..tl.len())
                .map(|chosen| tl.compute_rewind_threshold(chosen, threshold))
                .collect(),
        }
    }

    /// Number of frames covered.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a real capture).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The earliest similar frame for `chosen` (clamped to the last
    /// frame, like the rewind helpers).
    pub fn suggest(&self, chosen: usize) -> usize {
        self.table[chosen.min(self.table.len().saturating_sub(1))]
    }
}

/// The standard rewind suggestion at the paper's 1 % threshold.
pub fn rewind_suggestion(video: &Video, chosen: usize) -> usize {
    earliest_similar_frame(video, chosen, SIMILARITY_THRESHOLD)
}

/// A nearly-blank control frame for the §3.3 control question: visually
/// obvious nonsense that a diligent participant must reject. We use the
/// video's first frame, which for a page-load capture is the blank page
/// (and synthesize a blank if the capture somehow starts painted).
pub fn control_frame(video: &Video) -> Frame {
    let f = video.frame(0);
    if f.painted_fraction() < 0.05 {
        f
    } else {
        Frame::blank(f.width(), f.height())
    }
}

/// Whether a frame would look "drastically different" from the
/// participant's chosen frame — the property the control relies on.
pub fn is_obvious_mismatch(video: &Video, chosen: usize, candidate: &Frame) -> bool {
    video.frame(chosen).diff_fraction(candidate) > 0.25
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_browser::{load_page, BrowserConfig};
    use eyeorg_net::SimDuration;
    use eyeorg_stats::Seed;
    use eyeorg_workload::{generate_site, SiteClass};

    fn video() -> Video {
        let site = generate_site(Seed(4), 3, SiteClass::Blog);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(4));
        Video::capture(trace, 10, SimDuration::from_secs(3))
    }

    #[test]
    fn rewind_never_later_than_choice() {
        let v = video();
        for chosen in [0, 5, v.frame_count() / 2, v.frame_count() - 1] {
            let r = rewind_suggestion(&v, chosen);
            assert!(r <= chosen);
        }
    }

    #[test]
    fn rewind_from_late_frame_rewinds_past_static_tail() {
        // After the page is fully painted, frames are identical; choosing
        // the final frame must rewind to the first fully-painted one.
        let v = video();
        let last = v.frame_count() - 1;
        let r = rewind_suggestion(&v, last);
        assert!(r < last, "static tail should rewind ({r} vs {last})");
        // And the suggested frame really is similar.
        assert!(v.frame(r).diff_fraction(&v.frame(last)) <= SIMILARITY_THRESHOLD);
    }

    #[test]
    fn rewind_of_blank_start_is_frame_zero() {
        let v = video();
        assert_eq!(rewind_suggestion(&v, 0), 0);
    }

    #[test]
    fn control_frame_is_nearly_blank_and_obvious() {
        let v = video();
        let ctrl = control_frame(&v);
        assert!(ctrl.painted_fraction() < 0.05);
        // Against a loaded page the control is an obvious mismatch.
        let late = v.frame_count() - 1;
        assert!(is_obvious_mismatch(&v, late, &ctrl));
        // Against the blank opening frame it is not.
        assert!(!is_obvious_mismatch(&v, 0, &ctrl));
    }

    #[test]
    fn table_matches_naive_scan() {
        // The regression pin: the precomputed table must equal the
        // reference render-and-diff scan at every frame, for the paper
        // threshold and for looser/stricter ones.
        let v = video();
        for threshold in [0.0, SIMILARITY_THRESHOLD, 0.10] {
            let table = EarliestSimilarTable::with_threshold(&v, threshold);
            assert_eq!(table.len(), v.frame_count());
            for chosen in 0..v.frame_count() {
                assert_eq!(
                    table.suggest(chosen),
                    earliest_similar_frame(&v, chosen, threshold),
                    "chosen {chosen} threshold {threshold}"
                );
            }
            // Out-of-range queries clamp like the rewind helpers.
            assert_eq!(table.suggest(usize::MAX), table.suggest(v.frame_count() - 1));
        }
    }

    #[test]
    fn threshold_monotonicity() {
        let v = video();
        let chosen = v.frame_count() - 1;
        let strict = earliest_similar_frame(&v, chosen, 0.0);
        let loose = earliest_similar_frame(&v, chosen, 0.10);
        assert!(loose <= strict, "looser threshold rewinds at least as far");
    }
}
