//! Thread-count determinism regression tests.
//!
//! The parallel campaign engine's contract: for a fixed root seed, the
//! campaign (and everything derived from it, down to the exported JSON
//! dataset) is byte-identical at every worker-thread count, and
//! `threads = 1` runs the original sequential engine. These tests pin
//! that contract with a small end-to-end campaign of each type.

use eyeorg_browser::BrowserConfig;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

fn capture() -> CaptureConfig {
    CaptureConfig { repeats: 2, ..CaptureConfig::default() }
}

fn cfg(threads: usize) -> ExperimentConfig {
    ExperimentConfig { threads, ..ExperimentConfig::default() }
}

#[test]
fn timeline_campaign_identical_across_thread_counts() {
    let sites = alexa_like(Seed(901), 4);
    let stimuli = timeline_stimuli(&sites, &BrowserConfig::new(), &capture(), Seed(902));

    let sequential =
        run_timeline_campaign(stimuli.clone(), &CrowdFlower, 40, &cfg(1), Seed(903));
    let parallel = run_timeline_campaign(stimuli, &CrowdFlower, 40, &cfg(4), Seed(903));

    // Byte-identical through the full export path (covers every row,
    // response, control, and the serialised float formatting).
    let pipeline = paper_pipeline();
    let seq_json = to_json(&export_timeline(
        "det",
        &sequential,
        &filter_timeline(&sequential, &pipeline),
    ));
    let par_json =
        to_json(&export_timeline("det", &parallel, &filter_timeline(&parallel, &pipeline)));
    assert_eq!(seq_json, par_json, "exported dataset must not depend on thread count");
    // And through the raw structures.
    assert_eq!(format!("{sequential:?}"), format!("{parallel:?}"));
}

#[test]
fn ab_campaign_identical_across_thread_counts() {
    let sites = alexa_like(Seed(911), 4);
    let stimuli = protocol_ab_stimuli(&sites, &BrowserConfig::new(), &capture(), Seed(912));

    let sequential = run_ab_campaign(stimuli.clone(), &CrowdFlower, 40, &cfg(1), Seed(913));
    let parallel = run_ab_campaign(stimuli, &CrowdFlower, 40, &cfg(4), Seed(913));

    let pipeline = paper_pipeline();
    let seq_json =
        to_json(&export_ab("det", &sequential, &filter_ab(&sequential, &pipeline)));
    let par_json = to_json(&export_ab("det", &parallel, &filter_ab(&parallel, &pipeline)));
    assert_eq!(seq_json, par_json, "exported dataset must not depend on thread count");
    assert_eq!(format!("{sequential:?}"), format!("{parallel:?}"));
}

#[test]
fn thread_knob_zero_resolves_to_auto_and_stays_deterministic() {
    let sites = alexa_like(Seed(921), 3);
    let stimuli = timeline_stimuli(&sites, &BrowserConfig::new(), &capture(), Seed(922));
    let auto = run_timeline_campaign(stimuli.clone(), &CrowdFlower, 20, &cfg(0), Seed(923));
    let one = run_timeline_campaign(stimuli, &CrowdFlower, 20, &cfg(1), Seed(923));
    assert_eq!(format!("{auto:?}"), format!("{one:?}"));
}

#[test]
fn capture_fanout_identical_across_thread_counts() {
    let sites = alexa_like(Seed(931), 3);
    let browser = BrowserConfig::new();
    let seq = timeline_stimuli_threads(&sites, &browser, &capture(), Seed(932), 1);
    let par = timeline_stimuli_threads(&sites, &browser, &capture(), Seed(932), 4);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.name, b.name);
        assert_eq!(format!("{:?}", a.video), format!("{:?}", b.video));
    }
}
