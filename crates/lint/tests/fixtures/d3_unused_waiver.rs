//! D3 unused waiver: no atomics below.

// lint:allow(D3): vestigial waiver from a removed fast path
pub fn bump(counter: &mut u64) -> u64 {
    *counter += 1;
    *counter
}
