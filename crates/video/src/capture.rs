//! Video capture: turning a load trace into frames.
//!
//! This is webpeg's core loop. The experimenter supplies how many seconds
//! to record after onload ("since there is no automatic way for webpeg to
//! know when the page has finished loading — if there were, Eyeorg would
//! be unnecessary!", §3.1). Frames are rendered lazily from the paint
//! stream, so a campaign's 6,000 served videos cost memory proportional
//! to their traces, not their pixels.

use eyeorg_browser::{LoadTrace, PaintEvent, PaintKind};
use eyeorg_net::{SimDuration, SimTime};
use eyeorg_workload::Rect;

use crate::frame::{appearance, Frame};

/// Appearance salt of a paint event: the paint kind plus the ad-creative
/// generation (each rotation renders different pixels).
pub(crate) fn paint_salt(p: &PaintEvent) -> u8 {
    let kind = match p.kind {
        PaintKind::DocumentBand => 1u8,
        PaintKind::Image => 2,
        PaintKind::Ad => 3,
        PaintKind::Widget => 4,
    };
    kind + p.generation.wrapping_mul(16)
}

/// Default grid width (cells) for captured videos.
pub const GRID_WIDTH: u32 = 64;

/// A captured page-load video: the paint timeline plus capture
/// parameters. Frames render on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct Video {
    trace: LoadTrace,
    fps: u32,
    /// Wall end of the recording.
    end: SimTime,
    grid_w: u32,
    grid_h: u32,
}

impl Video {
    /// Record `trace` at `fps`, ending `record_after` after onload (or
    /// after the last paint when onload never fired).
    ///
    /// # Panics
    /// Panics if `fps` is zero.
    pub fn capture(trace: LoadTrace, fps: u32, record_after: SimDuration) -> Video {
        assert!(fps > 0, "fps must be positive");
        let anchor = trace
            .onload
            .or(trace.last_visual_change())
            .unwrap_or(SimTime::ZERO);
        let end = anchor + record_after;
        // Preserve the viewport aspect ratio on the fixed-width grid.
        let grid_h = ((u64::from(GRID_WIDTH) * u64::from(trace.fold_y))
            / u64::from(trace.canvas_width.max(1)))
        .max(1) as u32;
        let video = Video { trace, fps, end, grid_w: GRID_WIDTH, grid_h };
        eyeorg_obs::metrics::VIDEO_CAPTURES.incr();
        eyeorg_obs::metrics::VIDEO_FRAMES_PER_CAPTURE.record(video.frame_count() as u64);
        video
    }

    /// The underlying trace.
    pub fn trace(&self) -> &LoadTrace {
        &self.trace
    }

    /// Frames per second.
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// Total number of frames (frame 0 at t=0, last at or after `end`).
    pub fn frame_count(&self) -> usize {
        let step = 1_000_000u64 / u64::from(self.fps);
        (self.end.as_micros() / step + 1) as usize
    }

    /// Wall duration of the video.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_micros(self.end.as_micros())
    }

    /// The capture time of frame `i` (clamped to the last frame).
    pub fn frame_time(&self, i: usize) -> SimTime {
        let step = 1_000_000u64 / u64::from(self.fps);
        let i = i.min(self.frame_count() - 1) as u64;
        SimTime::from_micros(i * step)
    }

    /// Index of the frame covering time `t` (the latest frame at or
    /// before `t`, clamped to the video).
    pub fn frame_index_at(&self, t: SimTime) -> usize {
        let step = 1_000_000u64 / u64::from(self.fps);
        ((t.as_micros() / step) as usize).min(self.frame_count() - 1)
    }

    /// Render the viewport as of frame `i`.
    pub fn frame(&self, i: usize) -> Frame {
        self.render_at(self.frame_time(i))
    }

    /// Render the viewport at an arbitrary time.
    pub fn render_at(&self, t: SimTime) -> Frame {
        let mut f = Frame::blank(self.grid_w, self.grid_h);
        let (sx, sy) = self.scale();
        for p in self.trace.paints_until(t) {
            // Clip to the viewport.
            let Some(visible) = clip_to_fold(&p.rect, self.trace.fold_y) else { continue };
            f.fill_rect_scaled(&visible, sx, sy, appearance(p.resource.0, paint_salt(p)));
        }
        f
    }

    /// Cells-per-pixel scale factors of the capture grid.
    fn scale(&self) -> (f64, f64) {
        (
            f64::from(self.grid_w) / f64::from(self.trace.canvas_width.max(1)),
            f64::from(self.grid_h) / f64::from(self.trace.fold_y.max(1)),
        )
    }

    /// Visual completeness (`1 − diff_fraction` against the frame at
    /// `final_t`) at each of the given nondecreasing instants, computed
    /// in one incremental pass over the paint stream.
    ///
    /// Equivalent to `1.0 - self.render_at(t).diff_fraction(&self.
    /// render_at(final_t))` per instant — a bitpacked "differs from the
    /// final frame" plane ([`crate::bitplane::BitGrid`]) is maintained
    /// across cell writes and popcounted at each sample instant, so each
    /// value is bit-identical to the full-grid comparison — but total
    /// cost is one render plus the painted area, not `times.len()`
    /// renders.
    ///
    /// # Panics
    /// Panics (debug only) when `times` is not sorted.
    pub fn completeness_at_times(&self, times: &[SimTime], final_t: SimTime) -> Vec<f64> {
        debug_assert!(times.windows(2).all(|w| w[0] <= w[1]), "times must be sorted");
        let final_frame = self.render_at(final_t);
        let fin = final_frame.cells();
        let len = fin.len() as f64;
        // Start from the blank frame: the cells differing from the final
        // state are exactly its painted cells.
        let mut diff_plane = final_frame.painted_plane();
        let mut cur = Frame::blank(self.grid_w, self.grid_h);
        let (sx, sy) = self.scale();
        let paints = &self.trace.paints;
        let mut paint_idx = 0;
        let mut out = Vec::with_capacity(times.len());
        for &t in times {
            while paint_idx < paints.len() && paints[paint_idx].time <= t {
                let p = &paints[paint_idx];
                paint_idx += 1;
                let Some(visible) = clip_to_fold(&p.rect, self.trace.fold_y) else { continue };
                cur.fill_rect_scaled_traced(
                    &visible,
                    sx,
                    sy,
                    appearance(p.resource.0, paint_salt(p)),
                    &mut |idx, _old, new| {
                        diff_plane.set(idx as usize, new != fin[idx as usize]);
                    },
                );
            }
            out.push(1.0 - diff_plane.count_ones() as f64 / len);
        }
        out
    }

    /// The last frame (final appearance of the capture window).
    pub fn final_frame(&self) -> Frame {
        self.frame(self.frame_count() - 1)
    }

    /// Visual progress of frame `i` relative to the final frame: the
    /// fraction of cells already in their final state. This is the
    /// "visual completeness" signal a WebPageTest-style pipeline extracts
    /// from the video.
    pub fn completeness(&self, i: usize) -> f64 {
        1.0 - self.frame(i).diff_fraction(&self.final_frame())
    }
}

fn clip_to_fold(rect: &Rect, fold_y: u32) -> Option<Rect> {
    rect.above_fold(fold_y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_browser::{load_page, BrowserConfig};
    use eyeorg_stats::Seed;
    use eyeorg_workload::{generate_site, SiteClass};

    fn video() -> Video {
        let site = generate_site(Seed(1), 0, SiteClass::Blog);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(1));
        Video::capture(trace, 10, SimDuration::from_secs(3))
    }

    #[test]
    fn frame_count_and_times() {
        let v = video();
        assert!(v.frame_count() > 10);
        assert_eq!(v.frame_time(0), SimTime::ZERO);
        assert_eq!(v.frame_time(5).as_micros(), 500_000);
        // frame_index_at inverts frame_time.
        assert_eq!(v.frame_index_at(v.frame_time(7)), 7);
    }

    #[test]
    fn video_extends_past_onload() {
        let v = video();
        let onload = v.trace().onload.unwrap();
        assert!(v.duration().as_micros() >= onload.as_micros() + 3_000_000);
    }

    #[test]
    fn first_frame_blank_last_frame_painted() {
        let v = video();
        assert_eq!(v.frame(0).painted_fraction(), 0.0);
        assert!(v.final_frame().painted_fraction() > 0.5, "page mostly painted at end");
    }

    #[test]
    fn completeness_reaches_one_at_end() {
        // Ad rotations churn pixels after onload, so completeness against
        // the final frame is *not* monotone in general (this is exactly
        // why LastVisualChange correlates poorly with perception). It
        // must still end at 1.0 and stay within [0, 1].
        let v = video();
        let n = v.frame_count();
        assert!((v.completeness(n - 1) - 1.0).abs() < 1e-9);
        for i in 0..n {
            let c = v.completeness(i);
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn grid_preserves_aspect_ratio() {
        let v = video();
        // 1280x720 viewport → 64x36 grid.
        assert_eq!(v.frame(0).width(), 64);
        assert_eq!(v.frame(0).height(), 36);
    }

    #[test]
    fn render_is_deterministic() {
        let v = video();
        assert_eq!(v.frame(10), v.frame(10));
    }
}
