//! Browser/load configuration.
//!
//! webpeg (§3.1 of the paper) controls the capture environment through
//! Chrome command-line options and the remote-debugging protocol:
//! protocol selection (HTTP/1.1 vs HTTP/2), device and network emulation,
//! extension installation (the ad blockers of §5.4), disabled caches, and
//! a primer load to warm the ISP resolver. [`BrowserConfig`] is the
//! equivalent knob set for the simulated browser.

use eyeorg_http::Protocol;
use eyeorg_net::{NetworkProfile, SimDuration, TlsMode};

use crate::extensions::AdBlocker;

/// CPU speed class of the emulated device. Costs in [`CpuCosts`] are
/// multiplied by the device factor, mirroring Chrome's CPU-throttling
/// device emulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Multiplier on all main-thread costs (1.0 = desktop).
    pub cpu_factor: f64,
}

impl DeviceProfile {
    /// A desktop-class machine (webpeg's EC2 capture boxes).
    pub fn desktop() -> DeviceProfile {
        DeviceProfile { name: "desktop", cpu_factor: 1.0 }
    }

    /// A flagship phone (~2× slower main thread).
    pub fn mobile_high() -> DeviceProfile {
        DeviceProfile { name: "mobile-high", cpu_factor: 2.0 }
    }

    /// A mid-range phone (~4× slower).
    pub fn mobile_mid() -> DeviceProfile {
        DeviceProfile { name: "mobile-mid", cpu_factor: 4.0 }
    }
}

/// Main-thread cost model (desktop-scale; multiplied by
/// [`DeviceProfile::cpu_factor`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCosts {
    /// HTML parsing, microseconds per byte.
    pub parse_per_byte_us: f64,
    /// Script execution, microseconds per byte of script.
    pub js_exec_per_byte_us: f64,
    /// Style/layout work folded into each paint flush.
    pub style_flush: SimDuration,
    /// Interval between paint flushes (display refresh).
    pub vsync: SimDuration,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            // ~0.8 ms per 10 KB of HTML.
            parse_per_byte_us: 0.08,
            // ~25 ms for a 50 KB script.
            js_exec_per_byte_us: 0.5,
            style_flush: SimDuration::from_millis(2),
            vsync: SimDuration::from_micros(16_667),
        }
    }
}

/// Full configuration of one capture (one page load).
#[derive(Debug, Clone)]
pub struct BrowserConfig {
    /// Default application protocol (webpeg's `--disable-http2` switch
    /// corresponds to [`Protocol::Http1`]). Third-party origins without
    /// H2 support fall back to HTTP/1.1 automatically.
    pub protocol: Protocol,
    /// TLS mode for all connections (the studied sites are HTTPS).
    pub tls: TlsMode,
    /// Access-link emulation profile.
    pub network: NetworkProfile,
    /// Device CPU emulation.
    pub device: DeviceProfile,
    /// Main-thread cost model.
    pub cpu: CpuCosts,
    /// Installed ad-blocking extension, if any.
    pub adblocker: Option<AdBlocker>,
    /// Perform a primer load first so the resolver cache is warm
    /// (webpeg's default; prevents cold DNS misses from skewing PLTs).
    pub primer: bool,
    /// Minimum delay between a script's execution and the fetch of an ad
    /// it injects (the auction round trip).
    pub ad_injection_delay: SimDuration,
    /// Additional per-ad delay spread on top of the minimum. Real ad
    /// chains are heavy-tailed — passbacks, waterfalls and timer-driven
    /// slots routinely land seconds later, often *after* onload (the
    /// source of the paper's Fig. 1(b) bimodality). Each ad draws a
    /// deterministic delay in `[delay, delay + spread]`.
    pub ad_injection_spread: SimDuration,
    /// Injection delay for social widgets.
    pub widget_injection_delay: SimDuration,
    /// HTTP/2 server push: the origin pushes its render-blocking
    /// stylesheets alongside the document instead of waiting for the
    /// browser to discover and request them (§6 of the paper names
    /// "HTTP/2 push/priority strategies" as a target experiment).
    pub h2_server_push: bool,
}

impl BrowserConfig {
    /// webpeg's defaults: HTTP/2, TLS 1.3, Cable network, desktop device,
    /// no extensions, primer load enabled.
    pub fn new() -> BrowserConfig {
        BrowserConfig {
            protocol: Protocol::Http2,
            tls: TlsMode::Tls13,
            network: NetworkProfile::cable(),
            device: DeviceProfile::desktop(),
            cpu: CpuCosts::default(),
            adblocker: None,
            primer: true,
            // Ad auctions of the era took hundreds of milliseconds
            // between the tag executing and the creative being fetched.
            ad_injection_delay: SimDuration::from_millis(300),
            ad_injection_spread: SimDuration::from_millis(5_700),
            widget_injection_delay: SimDuration::from_millis(60),
            h2_server_push: false,
        }
    }

    /// Same configuration but forcing HTTP/1.1 (the paper's A/B pairs).
    pub fn with_protocol(mut self, protocol: Protocol) -> BrowserConfig {
        self.protocol = protocol;
        self
    }

    /// Install an ad blocker.
    pub fn with_adblocker(mut self, blocker: AdBlocker) -> BrowserConfig {
        self.adblocker = Some(blocker);
        self
    }

    /// Use a different network profile.
    pub fn with_network(mut self, network: NetworkProfile) -> BrowserConfig {
        self.network = network;
        self
    }

    /// Use a different device profile.
    pub fn with_device(mut self, device: DeviceProfile) -> BrowserConfig {
        self.device = device;
        self
    }

    /// Enable HTTP/2 server push for render-blocking stylesheets.
    pub fn with_server_push(mut self) -> BrowserConfig {
        self.h2_server_push = true;
        self
    }
}

impl Default for BrowserConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = BrowserConfig::new()
            .with_protocol(Protocol::Http1)
            .with_adblocker(AdBlocker::Ghostery)
            .with_device(DeviceProfile::mobile_mid());
        assert_eq!(cfg.protocol, Protocol::Http1);
        assert_eq!(cfg.adblocker, Some(AdBlocker::Ghostery));
        assert_eq!(cfg.device.cpu_factor, 4.0);
    }

    #[test]
    fn device_factors_ordered() {
        assert!(DeviceProfile::desktop().cpu_factor < DeviceProfile::mobile_high().cpu_factor);
        assert!(DeviceProfile::mobile_high().cpu_factor < DeviceProfile::mobile_mid().cpu_factor);
    }

    #[test]
    fn default_costs_sane() {
        let c = CpuCosts::default();
        assert!(c.parse_per_byte_us > 0.0 && c.parse_per_byte_us < 1.0);
        assert!(c.js_exec_per_byte_us > c.parse_per_byte_us);
        assert!(c.vsync > SimDuration::ZERO);
    }
}
