//! Quickstart: the full Eyeorg pipeline on one small campaign.
//!
//! Generates a site sample, captures page-load videos with the simulated
//! webpeg, recruits a paid crowd, runs a timeline experiment, filters the
//! responses with the paper's §4.3 pipeline, and compares the crowd's
//! `UserPerceivedPLT` against the automatic metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eyeorg_browser::BrowserConfig;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_metrics::compute_metrics;
use eyeorg_net::NetworkProfile;
use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

fn main() {
    let seed = Seed(7);

    // 1. A sample of H2-ready sites (the paper samples 100; we take 8).
    let sites = alexa_like(seed, 8);
    println!("corpus: {} sites, {:.1} MB median page weight", sites.len(), {
        let mut w: Vec<f64> =
            sites.iter().map(|s| s.total_bytes() as f64 / 1e6).collect();
        w.sort_by(|a, b| a.partial_cmp(b).unwrap());
        w[w.len() / 2]
    });

    // 2. webpeg: five loads per site on a fast consumer line, keep the
    //    median-onload capture.
    let browser = BrowserConfig::new().with_network(NetworkProfile::fttc());
    let stimuli = timeline_stimuli(&sites, &browser, &CaptureConfig::default(), seed);

    // 3. A timeline campaign with 60 paid participants, 6 videos each.
    let campaign =
        run_timeline_campaign(stimuli, &CrowdFlower, 60, &ExperimentConfig::default(), seed);
    println!(
        "campaign: {} participants recruited in {:.1} h for ${:.2}",
        campaign.participants.len(),
        campaign.recruitment_duration_secs / 3600.0,
        campaign.recruitment_cost_usd,
    );

    // 4. Validate & filter (§4.3), then wisdom-of-the-crowd band.
    let report = filter_timeline(&campaign, &paper_pipeline());
    println!(
        "filtering: {} engagement, {} soft-rule, {} control → {} kept",
        report.engagement,
        report.soft,
        report.control,
        report.kept.len()
    );

    // 5. Crowd UPLT vs the automatic metrics, per site.
    let uplt = mean_uplt(&campaign, &report, Some((25.0, 75.0)));
    println!("\nsite                 crowd-UPLT   onload   speedindex");
    for (i, name) in campaign.stimuli_names.iter().enumerate() {
        let m = compute_metrics(&campaign.videos[i]);
        println!(
            "{name:<20} {:>8.2}s {:>8.2}s {:>10.2}s",
            uplt[i].unwrap_or(f64::NAN),
            m.onload.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN),
            m.speed_index.map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
        );
    }

    // 6. The Fig. 1 visualisation for the first site.
    let samples = uplt_samples(&campaign, &report, None);
    let video = &campaign.videos[0];
    let onload = video.trace().onload.expect("onload fired").as_secs_f64();
    println!("\nresponse timeline for {}:", campaign.stimuli_names[0]);
    print!(
        "{}",
        eyeorg_core::viz::response_timeline(
            &samples[0],
            video.duration().as_secs_f64(),
            60,
            &[('O', onload, "onload")],
        )
    );
}
