//! `lint` — run the determinism & panic-surface rules over the workspace.
//!
//! Usage: `cargo run -p eyeorg-lint [-- FLAGS]` (see `--help`).
//!
//! Exits 0 on a clean tree, 1 with diagnostics when anything trips,
//! 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
lint — determinism, panic-surface, and taint analysis for the eyeorg workspace

USAGE:
    lint [FLAGS]

FLAGS:
    --root PATH         workspace root to scan (default: auto-detected)
    --format text|json  diagnostic output format on stdout (default: text)
    --json-out PATH     additionally write the JSON report to PATH
    --baseline PATH     baseline file to apply (default: crates/lint/lint-baseline.txt)
    --no-baseline       report raw findings, ignoring any baseline file
    --write-baseline    regenerate the baseline from current findings and exit
    --list-rules        print every rule code with a one-line summary and exit
    --help              print this help and exit

EXIT CODES:
    0   the tree is clean (after waivers and baseline)
    1   findings were reported
    2   usage error or I/O failure

Waive a finding inline with `// lint:allow(RULE): reason`, covering the
next line (standalone comment) or its own line (trailing comment); add
`n=K` — `lint:allow(D1, n=2): reason` — when one line carries several
findings of the same rule. Unused or over-counted waivers are errors.
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = String::from("text");
    let mut json_out: Option<PathBuf> = None;
    let mut baseline_override: Option<PathBuf> = None;
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage_err("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = "text".to_owned(),
                Some("json") => format = "json".to_owned(),
                _ => return usage_err("--format needs `text` or `json`"),
            },
            "--json-out" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => return usage_err("--json-out needs a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_override = Some(PathBuf::from(p)),
                None => return usage_err("--baseline needs a path"),
            },
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            "--list-rules" => {
                for rule in eyeorg_lint::ALL_RULES {
                    println!("{}  {}", rule.code(), rule.summary());
                }
                println!();
                println!(
                    "waiver syntax: `// lint:allow(RULE): reason` or \
                     `// lint:allow(RULE, n=K): reason`"
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => {
                return usage_err(&format!("unknown flag {other} (see --help)"));
            }
        }
    }
    // `cargo run` executes from the invoker's directory; when that is
    // not the workspace root (no `crates/` beside us), fall back to the
    // root this crate was built from.
    if !root.join("crates").is_dir() {
        if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
            let candidate = PathBuf::from(manifest).join("../..");
            if candidate.join("crates").is_dir() {
                root = candidate;
            }
        }
    }

    let mut report = match eyeorg_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = baseline_override
        .clone()
        .unwrap_or_else(|| root.join(eyeorg_lint::BASELINE_PATH));

    if write_baseline {
        let text = eyeorg_lint::format_baseline(&report);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("lint: failed to write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        let entries = text.lines().filter(|l| !l.trim_start().starts_with('#')).count();
        println!("lint: wrote {} baseline entr(ies) to {}", entries, baseline_path.display());
        return ExitCode::SUCCESS;
    }

    if !no_baseline && baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match eyeorg_lint::parse_baseline(&text) {
                Ok(entries) => eyeorg_lint::apply_baseline(&mut report, &entries),
                Err(msg) => report.diagnostics.push(eyeorg_lint::Diagnostic {
                    path: eyeorg_lint::BASELINE_PATH.to_owned(),
                    line: 0,
                    code: "stale-baseline".to_owned(),
                    message: msg,
                }),
            },
            Err(e) => {
                eprintln!("lint: failed to read {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    }

    let json = eyeorg_lint::report_to_json(&report);
    if let Some(path) = &json_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("lint: failed to create {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if format == "json" {
        println!("{json}");
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        if report.is_clean() {
            println!(
                "lint: clean — {} files scanned, {} waiver(s) honoured, {} \
                 baselined finding(s)",
                report.files, report.waivers_used, report.baseline_suppressed
            );
        } else {
            eprintln!(
                "lint: {} finding(s) in {} files scanned ({} waiver(s) honoured, \
                 {} baselined)",
                report.diagnostics.len(),
                report.files,
                report.waivers_used,
                report.baseline_suppressed
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("lint: {msg}");
    ExitCode::from(2)
}
