//! Behavioural tests of the fetch engine: the protocol-level effects the
//! paper's H1-vs-H2 campaign rests on must *emerge* from the simulation.

use eyeorg_http::{FetchEngine, FetchEvent, HttpConfig, OriginId, Priority, Protocol, Request, RequestId};
use eyeorg_net::{LossModel, NetworkProfile, SimDuration, SimTime};
use eyeorg_stats::Seed;

fn small_object(origin: u32) -> Request {
    Request {
        origin: OriginId(origin),
        request_header_bytes: 400,
        response_header_bytes: 300,
        body_bytes: 15_000,
        priority: Priority::Low,
        server_think: SimDuration::from_millis(10),
    }
}

/// Run a set of requests submitted at t=0 to completion; return the time
/// the last one finished.
fn run_all(cfg: HttpConfig, profile: NetworkProfile, seed: Seed, reqs: Vec<Request>) -> SimTime {
    let mut eng = FetchEngine::new(cfg, profile, seed);
    let ids: Vec<RequestId> = reqs.into_iter().map(|r| eng.submit(SimTime::ZERO, r)).collect();
    let mut last = SimTime::ZERO;
    while let Some((t, ev)) = eng.next_event() {
        if matches!(ev, FetchEvent::Completed { .. }) {
            last = t;
        }
    }
    for id in &ids {
        assert!(eng.is_completed(*id), "request {id:?} never completed");
    }
    last
}

#[test]
fn single_request_lifecycle_timings_ordered() {
    let mut eng = FetchEngine::new(
        HttpConfig::new(Protocol::Http2),
        NetworkProfile::lossless_test(),
        Seed(1),
    );
    let id = eng.submit(SimTime::ZERO, small_object(0));
    let mut saw_headers = false;
    let mut saw_data = false;
    let mut saw_complete = false;
    while let Some((_, ev)) = eng.next_event() {
        match ev {
            FetchEvent::HeadersReceived { .. } => {
                assert!(!saw_data, "headers must precede data");
                saw_headers = true;
            }
            FetchEvent::Data { .. } => saw_data = true,
            FetchEvent::Completed { .. } => saw_complete = true,
        }
    }
    assert!(saw_headers && saw_data && saw_complete);
    let t = eng.timing(id);
    let submitted = t.submitted.unwrap();
    let sent = t.sent.unwrap();
    let at_server = t.request_at_server.unwrap();
    let headers = t.headers_received.unwrap();
    let completed = t.completed.unwrap();
    assert!(submitted <= sent && sent < at_server && at_server < headers && headers <= completed);
    // Server think time must separate arrival and response by >= 10ms + 0.5 RTT.
    assert!(headers.since(at_server) >= SimDuration::from_millis(10));
}

#[test]
fn h2_beats_h1_on_many_small_objects() {
    // The canonical H2 win: 30 small objects on one origin. H1 pays six
    // handshakes and per-connection queueing; H2 pays one handshake and
    // multiplexes.
    let profile = NetworkProfile::cable();
    let reqs: Vec<Request> = (0..30).map(|_| small_object(0)).collect();
    let h1 = run_all(HttpConfig::new(Protocol::Http1), profile.clone(), Seed(10), reqs.clone());
    let h2 = run_all(HttpConfig::new(Protocol::Http2), profile, Seed(10), reqs);
    assert!(
        h2 < h1,
        "H2 ({h2}) should beat H1 ({h1}) on many small objects"
    );
}

#[test]
fn h2_suffers_more_under_heavy_loss() {
    // Transport HOL blocking: loss hurts H2's single connection
    // relatively more than H1's six. Compare slowdown factors.
    let clean = NetworkProfile::lossless_test();
    let lossy = NetworkProfile {
        loss: LossModel::Bernoulli { p: 0.02 },
        ..NetworkProfile::lossless_test()
    };
    let reqs: Vec<Request> = (0..12)
        .map(|_| Request { body_bytes: 60_000, ..small_object(0) })
        .collect();
    // Average slowdown across seeds to smooth individual loss patterns.
    let mut h1_slow = 0.0;
    let mut h2_slow = 0.0;
    let n = 8;
    for s in 0..n {
        let h1_clean = run_all(HttpConfig::new(Protocol::Http1), clean.clone(), Seed(s), reqs.clone());
        let h1_lossy = run_all(HttpConfig::new(Protocol::Http1), lossy.clone(), Seed(s), reqs.clone());
        let h2_clean = run_all(HttpConfig::new(Protocol::Http2), clean.clone(), Seed(s), reqs.clone());
        let h2_lossy = run_all(HttpConfig::new(Protocol::Http2), lossy.clone(), Seed(s), reqs.clone());
        h1_slow += h1_lossy.as_secs_f64() / h1_clean.as_secs_f64();
        h2_slow += h2_lossy.as_secs_f64() / h2_clean.as_secs_f64();
    }
    h1_slow /= n as f64;
    h2_slow /= n as f64;
    assert!(
        h2_slow > h1_slow,
        "loss should hurt H2 relatively more: H1 slowdown {h1_slow:.3}, H2 slowdown {h2_slow:.3}"
    );
}

#[test]
fn h1_pool_opens_at_most_six_connections() {
    let mut eng = FetchEngine::new(
        HttpConfig::new(Protocol::Http1),
        NetworkProfile::lossless_test(),
        Seed(2),
    );
    for _ in 0..20 {
        eng.submit(SimTime::ZERO, small_object(0));
    }
    while eng.next_event().is_some() {}
    assert_eq!(eng.connections_to(OriginId(0)), 6);
}

#[test]
fn h2_uses_single_connection() {
    let mut eng = FetchEngine::new(
        HttpConfig::new(Protocol::Http2),
        NetworkProfile::lossless_test(),
        Seed(2),
    );
    for _ in 0..20 {
        eng.submit(SimTime::ZERO, small_object(0));
    }
    while eng.next_event().is_some() {}
    assert_eq!(eng.connections_to(OriginId(0)), 1);
}

#[test]
fn h2_priorities_speed_up_critical_resources() {
    // A big Lowest-priority response and a small Critical one become
    // ready together; with H2 weighting, Critical must finish well before
    // the bulk transfer.
    let bulk = Request {
        origin: OriginId(0),
        request_header_bytes: 400,
        response_header_bytes: 200,
        body_bytes: 800_000,
        priority: Priority::Lowest,
        server_think: SimDuration::from_millis(5),
    };
    let critical = Request {
        body_bytes: 30_000,
        priority: Priority::Critical,
        ..bulk.clone()
    };
    let mut eng = FetchEngine::new(
        HttpConfig::new(Protocol::Http2),
        NetworkProfile::dsl(),
        Seed(3),
    );
    let bulk_id = eng.submit(SimTime::ZERO, bulk);
    let crit_id = eng.submit(SimTime::ZERO, critical);
    while eng.next_event().is_some() {}
    let bulk_done = eng.timing(bulk_id).completed.unwrap();
    let crit_done = eng.timing(crit_id).completed.unwrap();
    assert!(
        crit_done.as_secs_f64() < bulk_done.as_secs_f64() * 0.5,
        "critical at {crit_done}, bulk at {bulk_done}"
    );
}

#[test]
fn hpack_reduces_uplink_bytes() {
    let reqs: Vec<Request> = (0..20).map(|_| small_object(0)).collect();
    let mut h1 = FetchEngine::new(
        HttpConfig::new(Protocol::Http1),
        NetworkProfile::lossless_test(),
        Seed(4),
    );
    let mut h2 = FetchEngine::new(
        HttpConfig::new(Protocol::Http2),
        NetworkProfile::lossless_test(),
        Seed(4),
    );
    for r in &reqs {
        h1.submit(SimTime::ZERO, r.clone());
        h2.submit(SimTime::ZERO, r.clone());
    }
    while h1.next_event().is_some() {}
    while h2.next_event().is_some() {}
    assert!(
        h2.uplink_wire_bytes() < h1.uplink_wire_bytes() / 2,
        "HPACK should at least halve request bytes: h2={} h1={}",
        h2.uplink_wire_bytes(),
        h1.uplink_wire_bytes()
    );
}

#[test]
fn engine_is_deterministic() {
    let reqs: Vec<Request> = (0..15).map(|i| small_object(i % 3)).collect();
    let run = |seed| {
        let mut eng =
            FetchEngine::new(HttpConfig::new(Protocol::Http2), NetworkProfile::cable(), seed);
        let ids: Vec<RequestId> =
            reqs.iter().map(|r| eng.submit(SimTime::ZERO, r.clone())).collect();
        let mut log = Vec::new();
        while let Some((t, ev)) = eng.next_event() {
            log.push((t, format!("{ev:?}")));
        }
        (log, ids.iter().map(|&i| eng.timing(i)).collect::<Vec<_>>())
    };
    assert_eq!(run(Seed(5)), run(Seed(5)));
}

#[test]
fn bounded_pumping_respects_limit() {
    let mut eng = FetchEngine::new(
        HttpConfig::new(Protocol::Http2),
        NetworkProfile::lossless_test(),
        Seed(6),
    );
    eng.submit(SimTime::ZERO, small_object(0));
    // Nothing can complete within 1 ms (handshake alone is 40 ms RTT).
    assert!(eng.next_event_until(SimTime::from_millis(1)).is_none());
    // With no bound the lifecycle completes.
    let mut events = 0;
    while eng.next_event().is_some() {
        events += 1;
    }
    assert!(events >= 3, "expected headers/data/completed, got {events}");
}

#[test]
fn staggered_submissions_follow_submit_times() {
    let mut eng = FetchEngine::new(
        HttpConfig::new(Protocol::Http1),
        NetworkProfile::lossless_test(),
        Seed(7),
    );
    let early = eng.submit(SimTime::ZERO, small_object(0));
    let late_at = SimTime::from_secs(2);
    let late = eng.submit(late_at, small_object(0));
    while eng.next_event().is_some() {}
    let t_early = eng.timing(early);
    let t_late = eng.timing(late);
    assert!(t_early.completed.unwrap() < late_at, "early finishes before late starts");
    assert!(t_late.sent.unwrap() >= late_at, "late must not be sent before submission");
}

#[test]
fn multiple_origins_open_separate_pools() {
    let mut eng = FetchEngine::new(
        HttpConfig::new(Protocol::Http2),
        NetworkProfile::cable(),
        Seed(8),
    );
    for origin in 0..4 {
        for _ in 0..3 {
            eng.submit(SimTime::ZERO, small_object(origin));
        }
    }
    while eng.next_event().is_some() {}
    for origin in 0..4 {
        assert_eq!(eng.connections_to(OriginId(origin)), 1);
    }
}

#[test]
fn sharding_helps_h1_but_not_h2() {
    // Domain sharding (splitting objects across hostnames) was an H1-era
    // optimisation the paper's intro mentions. It pays off when H1
    // connections are idle-time-bound — small objects over a high-RTT
    // path — because more connections mean more exchanges in flight. It
    // cannot help (and only adds handshakes) under H2's multiplexing.
    let profile = NetworkProfile {
        name: "highRTT",
        down_bps: 1_600_000,
        up_bps: 768_000,
        rtt: SimDuration::from_millis(300),
        loss: LossModel::None,
        queue_limit: 512,
    };
    let tiny = |origin: u32| Request {
        origin: OriginId(origin),
        request_header_bytes: 400,
        response_header_bytes: 200,
        body_bytes: 2_000,
        priority: Priority::Low,
        server_think: SimDuration::from_millis(20),
    };
    let one_origin: Vec<Request> = (0..48).map(|_| tiny(0)).collect();
    let sharded: Vec<Request> = (0..48).map(|i| tiny(i % 4)).collect();
    let h1_one = run_all(HttpConfig::new(Protocol::Http1), profile.clone(), Seed(9), one_origin.clone());
    let h1_shard = run_all(HttpConfig::new(Protocol::Http1), profile.clone(), Seed(9), sharded.clone());
    let h2_one = run_all(HttpConfig::new(Protocol::Http2), profile.clone(), Seed(9), one_origin);
    let h2_shard = run_all(HttpConfig::new(Protocol::Http2), profile, Seed(9), sharded);
    assert!(
        h1_shard.as_secs_f64() < 0.7 * h1_one.as_secs_f64(),
        "sharding should substantially help idle-bound H1: {h1_shard} vs {h1_one}"
    );
    // Sharding may still buy H2 a little aggregate write-window (flow
    // control) but nothing like the H1 gain.
    assert!(
        h2_shard.as_secs_f64() > 0.8 * h2_one.as_secs_f64(),
        "sharding should not meaningfully help H2: {h2_shard} vs {h2_one}"
    );
}

#[test]
fn server_push_skips_the_request_round_trip() {
    // The same CSS delivered by push vs by a discovered request: the
    // pushed copy must complete earlier (no discovery wait, no request
    // upload, no extra server think scheduling).
    let profile = NetworkProfile::lossless_test();
    let html = Request {
        origin: OriginId(0),
        request_header_bytes: 450,
        response_header_bytes: 300,
        body_bytes: 40_000,
        priority: Priority::Critical,
        server_think: SimDuration::from_millis(50),
    };
    let css = Request {
        request_header_bytes: 400,
        response_header_bytes: 250,
        body_bytes: 25_000,
        priority: Priority::High,
        server_think: SimDuration::from_millis(120),
        ..html.clone()
    };

    // Pulled: the CSS is requested 250ms later (discovered in the HTML)
    // and then pays its own request trip and server think.
    let mut pulled = FetchEngine::new(HttpConfig::new(Protocol::Http2), profile.clone(), Seed(1));
    pulled.submit(SimTime::ZERO, html.clone());
    let css_pull = pulled.submit(SimTime::from_millis(250), css.clone());
    while pulled.next_event().is_some() {}
    let t_pull = pulled.timing(css_pull).completed.expect("completed");

    // Pushed: the CSS rides with the document.
    let mut pushed = FetchEngine::new(HttpConfig::new(Protocol::Http2), profile, Seed(1));
    let root = pushed.submit(SimTime::ZERO, html);
    let css_push = pushed.submit_pushed(SimTime::ZERO, root, css);
    while pushed.next_event().is_some() {}
    let t_push = pushed.timing(css_push).completed.expect("completed");
    assert!(
        t_push < t_pull,
        "push should beat pull: {t_push} vs {t_pull}"
    );
    // The push consumed no uplink request bytes.
    assert!(pushed.uplink_wire_bytes() < pulled.uplink_wire_bytes());
}

#[test]
#[should_panic(expected = "requires HTTP/2")]
fn push_rejected_on_http1() {
    let mut eng = FetchEngine::new(
        HttpConfig::new(Protocol::Http1),
        NetworkProfile::lossless_test(),
        Seed(2),
    );
    let root = eng.submit(SimTime::ZERO, small_object(0));
    eng.submit_pushed(SimTime::ZERO, root, small_object(0));
}

#[test]
#[should_panic(expected = "parent's origin")]
fn push_rejected_cross_origin() {
    let mut eng = FetchEngine::new(
        HttpConfig::new(Protocol::Http2),
        NetworkProfile::lossless_test(),
        Seed(3),
    );
    let root = eng.submit(SimTime::ZERO, small_object(0));
    eng.submit_pushed(SimTime::ZERO, root, small_object(1));
}
