//! # eyeorg-crowd
//!
//! The crowd: simulated study participants for the Eyeorg platform.
//!
//! The paper's repro gate is people — 100 trusted + 100 paid validators
//! and 3 × 1,000 paid workers. Per the substitution rule (DESIGN.md) this
//! crate generates a synthetic crowd whose *pathologies are calibrated to
//! the paper's own measurements*: the ~20 % of paid workers the filters
//! catch, the 1–2 % video skippers, the ~5 % control failures, the
//! distraction-grows-with-video-load-time coupling, the two frenetic
//! 700-seek outliers, and the three interpretations of "ready to use"
//! behind Fig. 9's response modes.
//!
//! * [`participant`] — demographics, phenotypes, trait generation.
//! * [`perception`] — the timeline test: ready-moment extraction, noisy
//!   perception, slider overshoot, frame-helper negotiation.
//! * [`abjudge`] — the A/B test: JND-based Left/Right/NoDifference.
//! * [`behavior`] — instrumentation signals: actions, focus, skips, time.
//! * [`service`] — CrowdFlower/Microworkers/Trusted recruitment with the
//!   paper's cost and arrival anchors.
//!
//! Everything derives from per-participant seeds: a campaign re-run with
//! the same seed reproduces every response bit for bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abjudge;
pub mod behavior;
pub mod fastpath;
pub mod participant;
pub mod perception;
pub mod service;

pub use abjudge::{ab_control, ab_control_flat, ab_response, judge_pair, judge_pair_flat, AbAnswer};
pub use fastpath::ModelSeeds;
pub use behavior::{
    total_time_on_site, total_time_on_site_persona, video_session, video_session_profiled,
    SessionProfile, TestKind, VideoSession,
};
pub use participant::{
    Gender, Participant, ParticipantClass, ParticipantType, Persona, PopulationProfile,
    ReadinessCriterion, TraitCursor,
};
pub use perception::{
    timeline_control_passes, timeline_control_passes_flat, timeline_response,
    timeline_response_cached, timeline_response_flat, timeline_response_shared, true_ready_time,
    ReadyTimes, TimelineResponse, TimelineStimulusProfile,
};
pub use service::{CrowdFlower, Microworkers, Recruitment, RecruitmentService, TrustedChannel};

/// One standard-normal draw (Box–Muller), shared by the perception and
/// behaviour models.
pub(crate) fn dist_normal(rng: &mut eyeorg_stats::rng::Rng) -> f64 {
    rng.standard_normal()
}
