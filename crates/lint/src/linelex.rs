//! PR 4's line-oriented lexer, kept verbatim as the reference
//! implementation for the tokenizer-agreement self-test
//! (`tests/engine.rs::tokenizer_agrees_with_line_lexer`). The analyzer
//! itself now runs on [`crate::token`]; this module exists only so the
//! byte-for-byte compatibility claim stays machine-checked.

/// Cross-line lexer state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    /// Plain code.
    Normal,
    /// Inside a (nesting) block comment, with current depth.
    Block(u32),
    /// Inside a `"..."` string literal (they may span lines).
    Str,
    /// Inside a raw string literal with this many `#`s.
    RawStr(u8),
}

/// A source line after lexing: code with strings/comments blanked out,
/// plus the text of a trailing `//` comment when present.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubbedLine {
    /// Code with literal/comment contents blanked to spaces.
    pub code: String,
    /// Text after a `//` comment, when present.
    pub comment: Option<String>,
}

/// Strips comments, strings, and char literals from source lines while
/// carrying state across lines.
#[derive(Debug)]
pub struct Scrubber {
    state: LexState,
}

impl Default for Scrubber {
    fn default() -> Scrubber {
        Scrubber::new()
    }
}

impl Scrubber {
    /// Fresh lexer at start of file.
    pub fn new() -> Scrubber {
        Scrubber { state: LexState::Normal }
    }

    /// Process one line (no trailing newline).
    pub fn scrub(&mut self, line: &str) -> ScrubbedLine {
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(line.len());
        let mut comment = None;
        let mut i = 0;
        while i < chars.len() {
            match self.state {
                LexState::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        self.state = if depth > 1 {
                            LexState::Block(depth - 1)
                        } else {
                            LexState::Normal
                        };
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        self.state = LexState::Block(depth + 1);
                        code.push_str("  ");
                        i += 2;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                LexState::Str => {
                    if chars[i] == '\\' {
                        code.push_str("  ");
                        i += 2;
                    } else {
                        if chars[i] == '"' {
                            self.state = LexState::Normal;
                        }
                        code.push(' ');
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if chars[i] == '"' && Self::hashes_follow(&chars, i + 1, hashes) {
                        self.state = LexState::Normal;
                        i += 1 + hashes as usize;
                        for _ in 0..=hashes {
                            code.push(' ');
                        }
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                LexState::Normal => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment = Some(chars[i + 2..].iter().collect());
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        self.state = LexState::Block(1);
                        code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        self.state = LexState::Str;
                        code.push(' ');
                        i += 1;
                    } else if (c == 'r' || c == 'b') && Self::raw_prefix(&chars, i).is_some() {
                        // r"...", r#"..."#, br"...", b"..." raw/byte strings.
                        if let Some((skip, hashes, raw)) = Self::raw_prefix(&chars, i) {
                            self.state =
                                if raw { LexState::RawStr(hashes) } else { LexState::Str };
                            for _ in 0..skip {
                                code.push(' ');
                            }
                            i += skip;
                        }
                    } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                        // Byte char literal b'x': delegate to char logic.
                        code.push(' ');
                        i += 1;
                    } else if c == '\'' {
                        i = Self::char_or_lifetime(&chars, i, &mut code);
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        ScrubbedLine { code, comment }
    }

    /// Whether `count` `#` characters start at `from`.
    fn hashes_follow(chars: &[char], from: usize, count: u8) -> bool {
        (0..count as usize).all(|k| chars.get(from + k) == Some(&'#'))
    }

    /// If a raw or byte string starts at `i`, returns
    /// `(prefix_len_including_quote, hashes, is_raw)`.
    fn raw_prefix(chars: &[char], i: usize) -> Option<(usize, u8, bool)> {
        let mut j = i;
        if chars.get(j) == Some(&'b') {
            j += 1;
        }
        let raw = chars.get(j) == Some(&'r');
        if raw {
            j += 1;
        }
        let mut hashes = 0u8;
        while chars.get(j + hashes as usize) == Some(&'#') && hashes < 255 {
            hashes += 1;
        }
        let j = j + hashes as usize;
        if chars.get(j) != Some(&'"') {
            return None; // raw identifier (r#type) or plain `b`/`r` code
        }
        if !raw && hashes > 0 {
            return None;
        }
        // Plain b"..." is handled here too (raw=false, hashes=0); a bare
        // "..." never reaches this function.
        if !raw && chars.get(i) != Some(&'b') {
            return None;
        }
        Some((j - i + 1, hashes, raw))
    }

    /// Disambiguate a `'` at `i`: consume a char literal (blanked) or a
    /// lifetime tick. Returns the next index.
    fn char_or_lifetime(chars: &[char], i: usize, code: &mut String) -> usize {
        if chars.get(i + 1) == Some(&'\\') {
            // Escaped char literal: scan to the closing quote.
            let mut j = i + 1;
            while j < chars.len() {
                if chars[j] == '\\' {
                    j += 2;
                    continue;
                }
                if chars[j] == '\'' {
                    break;
                }
                j += 1;
            }
            let end = (j + 1).min(chars.len());
            for _ in i..end {
                code.push(' ');
            }
            end
        } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
            // 'x' — any single-char literal.
            code.push_str("   ");
            i + 3
        } else {
            // Lifetime tick ('a, 'static, <'_>).
            code.push('\'');
            i + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrubber_blanks_strings_and_comments() {
        let mut s = Scrubber::new();
        let out = s.scrub(r#"let x = "HashMap"; // HashMap in comment"#);
        assert!(!out.code.contains("HashMap"));
        assert_eq!(out.comment.as_deref(), Some(" HashMap in comment"));

        let out = s.scrub("let y = 1; /* HashMap */ let z = 2;");
        assert!(!out.code.contains("HashMap"));
        assert!(out.code.contains("let z = 2;"));
    }

    #[test]
    fn scrubber_handles_nested_and_multiline_block_comments() {
        let mut s = Scrubber::new();
        let a = s.scrub("code(); /* outer /* inner */ still comment");
        assert!(a.code.contains("code();"));
        assert!(!a.code.contains("still"));
        let b = s.scrub("HashMap here */ after();");
        assert!(!b.code.contains("HashMap"));
        assert!(b.code.contains("after();"));
    }

    #[test]
    fn scrubber_handles_multiline_and_raw_strings() {
        let mut s = Scrubber::new();
        let a = s.scrub(r#"let x = "line one"#);
        assert!(!a.code.contains("line one"));
        let b = s.scrub(r#"HashMap still string" + code()"#);
        assert!(!b.code.contains("HashMap"));
        assert!(b.code.contains("code()"));

        let mut s = Scrubber::new();
        let c = s.scrub(r##"let r = r#"HashMap "quoted" inside"# ; done()"##);
        assert!(!c.code.contains("HashMap"));
        assert!(c.code.contains("done()"));
    }

    #[test]
    fn scrubber_distinguishes_chars_and_lifetimes() {
        let mut s = Scrubber::new();
        let a = s.scrub(r"let q = '\''; let l: &'static str = x; let c = '{';");
        assert!(a.code.contains("'static"));
        assert!(!a.code.contains('{'), "char literal contents are blanked: {}", a.code);
        let b = s.scrub("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(b.code.contains("<'a>"));
        assert_eq!(b.code.matches('{').count(), 1);
    }
}
