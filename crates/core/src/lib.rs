//! # eyeorg-core
//!
//! The Eyeorg platform: crowdsourced web-QoE measurement, end to end.
//!
//! This crate is the reproduction's counterpart of the system in §3 of
//! the paper — the part that *is* Eyeorg rather than its substrates. It
//! designs experiments, runs campaigns against (simulated) crowds,
//! validates and filters responses, and analyses the results:
//!
//! * [`experiment`] — timeline and A/B test definitions, balanced video
//!   assignment, randomised A/B presentation order, control insertion.
//! * [`builders`] — webpeg capture pipelines for the three campaign
//!   types (PLT timeline, H1-vs-H2 A/B, ad-blocker A/B).
//! * [`campaign`] — recruitment + serving + response collection (the
//!   materializing engine: full rows retained for row-level analysis).
//! * [`stream`] — the streaming, sharded engine: the same seeded
//!   pipeline folded shard-by-shard into bounded-memory digests —
//!   byte-identical results, memory proportional to a shard.
//! * [`flat`] — the flat data-plane engine: the streaming pipeline in
//!   structure-of-arrays form (per-stimulus planes, per-worker arena
//!   scratch, stimulus-blocked inner loop) — byte-identical digests,
//!   allocation-free inner loop.
//! * [`digest`] — mergeable campaign digests and the materializing
//!   folds that pin the two engines to each other.
//! * [`checkpoint`] — versioned JSONL serialization of the full
//!   accumulator state: interrupt/resume, multi-process split/merge,
//!   and live incremental analytics, all byte-identical to the
//!   uninterrupted single-process run.
//! * [`validation`] — §3.3's hard rules: the humanness (captcha) gate.
//! * [`filtering`] — the §4.3 validation pipeline: engagement (actions &
//!   focus), soft rules, control questions, wisdom-of-the-crowd bands.
//! * [`analysis`] — `UserPerceivedPLT` aggregation, A/B agreement and
//!   scores, Δ-bucketed agreement, behaviour statistics.
//! * [`viz`] — the Fig. 1 response-timeline explorer and ASCII CDFs.
//! * [`report`] — Table-1 summaries and the public-dataset JSON export.
//! * [`dataset`] — the consumer side: parse a released dataset and
//!   recompute the aggregates without the original campaign objects.
//!
//! ## Quickstart
//!
//! ```no_run
//! use eyeorg_core::prelude::*;
//! use eyeorg_stats::Seed;
//!
//! // 1. Pick a site sample and capture videos (webpeg).
//! let sites = eyeorg_workload::alexa_like(Seed(7), 20);
//! let stimuli = timeline_stimuli(
//!     &sites,
//!     &eyeorg_browser::BrowserConfig::new(),
//!     &eyeorg_video::CaptureConfig::default(),
//!     Seed(7),
//! );
//!
//! // 2. Run a campaign with 100 paid participants.
//! let campaign = run_timeline_campaign(
//!     stimuli,
//!     &eyeorg_crowd::CrowdFlower,
//!     100,
//!     &ExperimentConfig::default(),
//!     Seed(7),
//! );
//!
//! // 3. Filter and analyse.
//! let report = filter_timeline(&campaign, &paper_pipeline());
//! let uplt = mean_uplt(&campaign, &report, Some((25.0, 75.0)));
//! println!("site 0 crowd UPLT: {:?}", uplt[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod analysis;
pub mod builders;
pub mod campaign;
pub mod checkpoint;
pub mod dataset;
pub mod digest;
pub mod experiment;
pub mod filtering;
pub mod flat;
pub mod report;
pub mod stream;
pub mod validation;
pub mod viz;

/// Most-used items in one import.
pub mod prelude {
    pub use crate::analysis::{
        ab_demographics, ab_tallies, agreement_by_delta, behavior_points, mean_uplt,
        uplt_samples, uplt_stdev, AbTally, DemographicSensitivity,
    };
    pub use crate::builders::{
        adblock_ab_stimuli, protocol_ab_stimuli, push_ab_stimuli, timeline_stimuli,
        timeline_stimuli_threads,
    };
    pub use crate::campaign::{
        run_ab_campaign, run_timeline_campaign, AbCampaign, AbRow, AbVerdict, ControlRow,
        TimelineCampaign, TimelineRow,
    };
    pub use crate::digest::{
        digest_ab, digest_timeline, AbDigest, DigestParams, TimelineDigest,
    };
    pub use crate::adaptive::{
        adaptive_timeline_campaign, stop_half_width, AdaptiveBackend, AdaptiveOutcome, StopCause,
        StopDecision, ADAPTIVE_Z,
    };
    pub use crate::checkpoint::{
        ab_worker_checkpoint, checkpointed_ab_campaign, checkpointed_timeline_campaign,
        live_line_from_digest, timeline_worker_checkpoint, AbCheckpoint, AbRunOutcome,
        CheckpointConfig, CheckpointError, CheckpointEvent, CounterState, RunOutcome,
        TimelineCheckpoint,
    };
    pub use crate::experiment::{
        AbStimulus, AdaptiveConfig, ExperimentConfig, TimelineStimulus,
    };
    pub use crate::filtering::{
        filter_ab, filter_timeline, paper_pipeline, wisdom_band, FilterDecision, FilterPipeline,
        FilterReport, FilterTally, ParticipantFilter,
    };
    pub use crate::dataset::{crowd_uplt_from_dataset, read_ab, read_timeline, scores_from_dataset};
    pub use crate::report::{export_ab, export_timeline, render_table1, table1_row, to_json};
    pub use crate::flat::{flat_ab_campaign, flat_timeline_campaign};
    pub use crate::stream::{stream_ab_campaign, stream_timeline_campaign, StreamConfig};
    pub use crate::validation::{captcha_admits, captcha_gate, GateReport};
}
