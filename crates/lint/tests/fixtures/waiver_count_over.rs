//! Over-declared waiver count: n=2 claimed, one finding remains.

// lint:allow(D1, n=2): the second map was refactored away
pub fn one() -> std::collections::HashMap<u32, u32> {
    Default::default()
}
