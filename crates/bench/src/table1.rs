//! Table 1: summary of data collected.
//!
//! Four validation campaigns (PLT timeline and H1-H2 A/B, paid and
//! trusted pools) plus three final campaigns (PLT timeline, H1-H2 A/B,
//! ADS A/B), with gender splits, recruitment duration and cost, and the
//! participants removed by each §4.3 filter.

use eyeorg_browser::AdBlocker;
use eyeorg_core::prelude::*;

use crate::campaigns::{
    build_final_ads, build_final_h1h2, build_final_timeline, build_validation, validation_sites,
    Filtered, ValidationSet,
};
use crate::Scale;

/// Build the Table 1 report. Returns the rendered table plus the paper's
/// reference rows for side-by-side comparison. The final-campaign data
/// (`h1h2`, `ads`, `tl`) is passed in so `run_all` can share campaigns
/// with the figures.
pub fn run(
    scale: &Scale,
    validation: &ValidationSet,
    final_tl: &Filtered<TimelineCampaign>,
    final_h1h2: &Filtered<AbCampaign>,
    final_ads: &[(AdBlocker, Filtered<AbCampaign>)],
) -> String {
    let v_sites = validation_sites(scale);
    let mut rows = vec![
        table1_row(
            "PLT timeline (val)",
            "Paid",
            &validation.tl_paid.campaign.participants,
            validation.tl_paid.campaign.recruitment_cost_usd,
            validation.tl_paid.campaign.recruitment_duration_secs,
            v_sites,
            &validation.tl_paid.report,
        ),
        table1_row(
            "PLT timeline (val)",
            "Trusted",
            &validation.tl_trusted.campaign.participants,
            validation.tl_trusted.campaign.recruitment_cost_usd,
            validation.tl_trusted.campaign.recruitment_duration_secs,
            v_sites,
            &validation.tl_trusted.report,
        ),
        table1_row(
            "H1-H2 A/B (val)",
            "Paid",
            &validation.ab_paid.campaign.participants,
            validation.ab_paid.campaign.recruitment_cost_usd,
            validation.ab_paid.campaign.recruitment_duration_secs,
            v_sites,
            &validation.ab_paid.report,
        ),
        table1_row(
            "H1-H2 A/B (val)",
            "Trusted",
            &validation.ab_trusted.campaign.participants,
            validation.ab_trusted.campaign.recruitment_cost_usd,
            validation.ab_trusted.campaign.recruitment_duration_secs,
            v_sites,
            &validation.ab_trusted.report,
        ),
        table1_row(
            "PLT timeline (final)",
            "Paid",
            &final_tl.campaign.participants,
            final_tl.campaign.recruitment_cost_usd,
            final_tl.campaign.recruitment_duration_secs,
            scale.sites,
            &final_tl.report,
        ),
        table1_row(
            "H1-H2 A/B (final)",
            "Paid",
            &final_h1h2.campaign.participants,
            final_h1h2.campaign.recruitment_cost_usd,
            final_h1h2.campaign.recruitment_duration_secs,
            scale.sites,
            &final_h1h2.report,
        ),
    ];
    // The ADS campaign is one logical campaign over three blockers.
    let ads_participants: Vec<eyeorg_crowd::Participant> = final_ads
        .iter()
        .flat_map(|(_, f)| f.campaign.participants.clone())
        .collect();
    let ads_cost: f64 = final_ads.iter().map(|(_, f)| f.campaign.recruitment_cost_usd).sum();
    let ads_secs = final_ads
        .iter()
        .map(|(_, f)| f.campaign.recruitment_duration_secs)
        .fold(0.0, f64::max);
    let ads_report = FilterReport {
        engagement: final_ads.iter().map(|(_, f)| f.report.engagement).sum(),
        soft: final_ads.iter().map(|(_, f)| f.report.soft).sum(),
        control: final_ads.iter().map(|(_, f)| f.report.control).sum(),
        kept: std::collections::BTreeSet::new(), // aggregate counts only
    };
    rows.push(table1_row(
        "ADS A/B (final)",
        "Paid",
        &ads_participants,
        ads_cost,
        ads_secs,
        scale.sites,
        &ads_report,
    ));

    let mut out = String::new();
    out.push_str("=== Table 1: summary of data collected ===\n");
    out.push_str(&render_table1(&rows));
    out.push_str("\npaper reference (validation): paid 1 hour/$12, trusted 10 days/free;\n");
    out.push_str("filters: Engagement 16/10/9/1, Soft 2/-/5/2, Control 7/1/2/1\n");
    out.push_str("paper reference (final, 1000 paid, 1.5 days, $120/campaign):\n");
    out.push_str("filters: Engagement 151/98/128, Soft 45/56/34, Control 54/82/57\n");
    // Aggregate low-performer rate (paper: ~20% of paid participants).
    let paid_total = validation.tl_paid.campaign.participants.len()
        + validation.ab_paid.campaign.participants.len()
        + final_tl.campaign.participants.len()
        + final_h1h2.campaign.participants.len()
        + ads_participants.len();
    let paid_dropped = validation.tl_paid.report.dropped()
        + validation.ab_paid.report.dropped()
        + final_tl.report.dropped()
        + final_h1h2.report.dropped()
        + ads_report.dropped();
    out.push_str(&format!(
        "\npaid low-performer rate: {:.0}% (paper: ~20%)\n",
        100.0 * paid_dropped as f64 / paid_total.max(1) as f64
    ));
    out
}

/// Convenience: build everything this table needs at the given scale.
pub fn run_standalone(scale: &Scale) -> String {
    let validation = build_validation(scale);
    let final_tl = build_final_timeline(scale);
    let final_h1h2 = build_final_h1h2(scale);
    let final_ads = build_final_ads(scale);
    run(scale, &validation, &final_tl, &final_h1h2, &final_ads)
}
