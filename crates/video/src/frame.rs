//! Video frames.
//!
//! webpeg captures the browser viewport with ffmpeg; participants only
//! ever see those pixels. A [`Frame`] is the simulated equivalent: a
//! downscaled grid over the viewport (the above-the-fold region) where
//! each cell holds an 8-bit "appearance" value. Appearance values are
//! content hashes, not colours — two cells are "the same pixels" iff
//! their values match, which is all that frame comparison (the 1 %
//! rewind-frame helper, Fig. 3) and delta encoding need.

use std::sync::Arc;

use eyeorg_workload::Rect;

use crate::bitplane::{count_diff_bytes, count_ne_bytes, packed_diff, packed_ne, BitGrid};

/// Appearance value of unpainted page background (blank white page).
pub const BLANK: u8 = 245;

/// A downscaled viewport frame.
///
/// Cell storage is copy-on-write: `Clone` shares the underlying buffer
/// via [`Arc`], and mutators detach it only when the frame is actually
/// written while shared. A materialised timeline of `n` frames where
/// only `k` intervals repaint therefore holds `k + 1` buffers, not `n`.
/// `Arc`'s `Debug`/`PartialEq`/`Hash` all delegate to the inner vector,
/// so fingerprints and comparisons are unchanged from a plain `Vec`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    width: u32,
    height: u32,
    cells: Arc<Vec<u8>>,
}

impl Frame {
    /// A blank frame of the given grid size.
    ///
    /// # Panics
    /// Panics on a zero-sized grid.
    pub fn blank(width: u32, height: u32) -> Frame {
        assert!(width > 0 && height > 0, "frame grid must be non-empty");
        Frame { width, height, cells: Arc::new(vec![BLANK; (width * height) as usize]) }
    }

    /// Build a frame from raw row-major cells.
    ///
    /// # Panics
    /// Panics when `cells.len() != width * height` or the grid is empty.
    pub fn from_cells(width: u32, height: u32, cells: Vec<u8>) -> Frame {
        assert!(width > 0 && height > 0, "frame grid must be non-empty");
        assert_eq!(cells.len(), (width * height) as usize, "cell count mismatch");
        Frame { width, height, cells: Arc::new(cells) }
    }

    /// Whether two frames share the same cell buffer (their contents are
    /// then trivially equal).
    pub fn shares_cells(&self, other: &Frame) -> bool {
        Arc::ptr_eq(&self.cells, &other.cells)
    }

    /// Grid width in cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw cells, row-major.
    pub fn cells(&self) -> &[u8] {
        &self.cells
    }

    /// Value at `(x, y)`.
    ///
    /// # Panics
    /// Panics out of bounds.
    pub fn get(&self, x: u32, y: u32) -> u8 {
        assert!(x < self.width && y < self.height);
        self.cells[(y * self.width + x) as usize]
    }

    /// Fill the grid cells covered by `rect` (given in page coordinates
    /// scaled by `sx`, `sy` cells-per-pixel) with `value`. Regions outside
    /// the grid are clipped.
    pub fn fill_rect_scaled(&mut self, rect: &Rect, sx: f64, sy: f64, value: u8) {
        let (x0, y0, x1, y1) = self.scaled_cell_bounds(rect, sx, sy);
        if x0 >= x1 || y0 >= y1 {
            return;
        }
        let width = self.width;
        let cells = Arc::make_mut(&mut self.cells);
        for y in y0..y1 {
            for x in x0..x1 {
                cells[(y * width + x) as usize] = value;
            }
        }
    }

    /// [`Frame::fill_rect_scaled`], reporting every cell whose value
    /// actually changes as `(index, old, new)`. The resulting frame is
    /// identical to the untraced fill (writing a cell its current value
    /// is a no-op either way); the reported changes are exactly the
    /// delta between the frame before and after this write, in row-major
    /// order. This is what lets `FrameTimeline` maintain diff counts
    /// incrementally instead of re-scanning full grids.
    pub fn fill_rect_scaled_traced(
        &mut self,
        rect: &Rect,
        sx: f64,
        sy: f64,
        value: u8,
        on_change: &mut dyn FnMut(u32, u8, u8),
    ) {
        let (x0, y0, x1, y1) = self.scaled_cell_bounds(rect, sx, sy);
        if x0 >= x1 || y0 >= y1 {
            return;
        }
        let width = self.width;
        let cells = Arc::make_mut(&mut self.cells);
        for y in y0..y1 {
            for x in x0..x1 {
                let idx = y * width + x;
                let old = cells[idx as usize];
                if old != value {
                    cells[idx as usize] = value;
                    on_change(idx, old, value);
                }
            }
        }
    }

    /// Clipped cell-coordinate bounds of `rect` scaled by `(sx, sy)`.
    fn scaled_cell_bounds(&self, rect: &Rect, sx: f64, sy: f64) -> (u32, u32, u32, u32) {
        let x0 = (f64::from(rect.x) * sx).floor() as i64;
        let y0 = (f64::from(rect.y) * sy).floor() as i64;
        let x1 = (f64::from(rect.x + rect.w) * sx).ceil() as i64;
        let y1 = (f64::from(rect.y + rect.h) * sy).ceil() as i64;
        (
            x0.clamp(0, i64::from(self.width)) as u32,
            y0.clamp(0, i64::from(self.height)) as u32,
            x1.clamp(0, i64::from(self.width)) as u32,
            y1.clamp(0, i64::from(self.height)) as u32,
        )
    }

    /// Fraction of cells that differ between two frames of equal size
    /// (the paper's "pixel-by-pixel comparison"). The count runs eight
    /// cells per step (SWAR byte comparison + popcount); the integer
    /// result — and therefore the fraction — is identical to a per-cell
    /// scan.
    ///
    /// # Panics
    /// Panics when the dimensions differ.
    pub fn diff_fraction(&self, other: &Frame) -> f64 {
        assert_eq!(self.width, other.width, "frame widths differ");
        assert_eq!(self.height, other.height, "frame heights differ");
        if Arc::ptr_eq(&self.cells, &other.cells) {
            return 0.0; // shared buffer: zero differing cells, exactly
        }
        count_diff_bytes(&self.cells, &other.cells) as f64 / self.cells.len() as f64
    }

    /// Fraction of cells that are not blank (used to synthesise the
    /// nearly-blank control frame check). Word-parallel like
    /// [`diff_fraction`](Self::diff_fraction).
    pub fn painted_fraction(&self) -> f64 {
        count_ne_bytes(&self.cells, BLANK) as f64 / self.cells.len() as f64
    }

    /// The bitpacked "differs from `other`" plane: bit `i` set iff cell
    /// `i` differs. Popcount of the plane equals the differing-cell
    /// count behind [`diff_fraction`](Self::diff_fraction).
    ///
    /// # Panics
    /// Panics when the dimensions differ.
    pub fn diff_plane(&self, other: &Frame) -> BitGrid {
        assert_eq!(self.width, other.width, "frame widths differ");
        assert_eq!(self.height, other.height, "frame heights differ");
        packed_diff(&self.cells, &other.cells)
    }

    /// The bitpacked "painted" plane: bit `i` set iff cell `i` is not
    /// [`BLANK`].
    pub fn painted_plane(&self) -> BitGrid {
        packed_ne(&self.cells, BLANK)
    }

    /// Concatenate two frames side by side (for A/B splices), separated
    /// by a 1-cell divider column.
    ///
    /// # Panics
    /// Panics when heights differ.
    pub fn side_by_side(&self, right: &Frame) -> Frame {
        assert_eq!(self.height, right.height, "frame heights differ");
        let w = self.width + 1 + right.width;
        let mut cells = vec![BLANK; (w * self.height) as usize];
        for y in 0..self.height {
            for x in 0..self.width {
                cells[(y * w + x) as usize] = self.get(x, y);
            }
            cells[(y * w + self.width) as usize] = 0; // divider
            for x in 0..right.width {
                cells[(y * w + self.width + 1 + x) as usize] = right.get(x, y);
            }
        }
        Frame::from_cells(w, self.height, cells)
    }
}

/// Stable appearance value for a resource's content: maps a resource id
/// and a kind salt into `[20, 220]`, avoiding [`BLANK`].
pub fn appearance(resource_id: u32, kind_salt: u8) -> u8 {
    let mut h = u64::from(resource_id).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= u64::from(kind_salt) << 32;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    20 + (h % 200) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_frame_is_blank() {
        let f = Frame::blank(8, 4);
        assert_eq!(f.painted_fraction(), 0.0);
        assert_eq!(f.get(7, 3), BLANK);
    }

    #[test]
    fn fill_and_diff() {
        let mut a = Frame::blank(10, 10);
        let b = Frame::blank(10, 10);
        assert_eq!(a.diff_fraction(&b), 0.0);
        // Fill a 5x10 half at 1:1 scale.
        a.fill_rect_scaled(&Rect { x: 0, y: 0, w: 5, h: 10 }, 1.0, 1.0, 7);
        assert_eq!(a.diff_fraction(&b), 0.5);
        assert_eq!(a.painted_fraction(), 0.5);
    }

    #[test]
    fn fill_clips_out_of_bounds() {
        let mut f = Frame::blank(4, 4);
        f.fill_rect_scaled(&Rect { x: 2, y: 2, w: 100, h: 100 }, 1.0, 1.0, 9);
        assert_eq!(f.painted_fraction(), 0.25); // bottom-right 2x2
    }

    #[test]
    fn scaling_maps_page_to_grid() {
        // 1280x720 page viewport onto a 64x36 grid: scale 1/20.
        let mut f = Frame::blank(64, 36);
        f.fill_rect_scaled(&Rect { x: 0, y: 0, w: 640, h: 360 }, 64.0 / 1280.0, 36.0 / 720.0, 3);
        // Top-left quadrant covered.
        assert_eq!(f.get(0, 0), 3);
        assert_eq!(f.get(31, 17), 3);
        assert_eq!(f.get(32, 18), BLANK);
    }

    #[test]
    fn side_by_side_layout() {
        let mut l = Frame::blank(3, 2);
        l.fill_rect_scaled(&Rect { x: 0, y: 0, w: 3, h: 2 }, 1.0, 1.0, 50);
        let r = Frame::blank(3, 2);
        let s = l.side_by_side(&r);
        assert_eq!(s.width(), 7);
        assert_eq!(s.get(0, 0), 50);
        assert_eq!(s.get(3, 0), 0); // divider
        assert_eq!(s.get(4, 0), BLANK);
    }

    #[test]
    fn appearance_stable_and_nonblank() {
        for id in 0..500 {
            for salt in [1u8, 2, 3] {
                let v = appearance(id, salt);
                assert_ne!(v, BLANK);
                assert_eq!(v, appearance(id, salt));
            }
        }
        assert_ne!(appearance(1, 1), appearance(2, 1));
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn diff_requires_same_size() {
        let _ = Frame::blank(2, 2).diff_fraction(&Frame::blank(3, 2));
    }

    #[test]
    fn clones_share_cells_until_written() {
        let mut a = Frame::blank(8, 8);
        a.fill_rect_scaled(&Rect { x: 0, y: 0, w: 4, h: 4 }, 1.0, 1.0, 9);
        let b = a.clone();
        assert!(a.shares_cells(&b), "clone shares storage");
        assert_eq!(a.diff_fraction(&b), 0.0);
        // Writing the clone detaches it without touching the original.
        let mut c = b.clone();
        c.fill_rect_scaled(&Rect { x: 4, y: 4, w: 4, h: 4 }, 1.0, 1.0, 7);
        assert!(!c.shares_cells(&b), "write detaches the buffer");
        assert_eq!(b.get(4, 4), BLANK);
        assert_eq!(c.get(4, 4), 7);
    }

    #[test]
    fn traced_fill_reports_exact_changes() {
        let mut plain = Frame::blank(6, 6);
        let mut traced = Frame::blank(6, 6);
        let rect = Rect { x: 1, y: 1, w: 3, h: 2 };
        plain.fill_rect_scaled(&rect, 1.0, 1.0, 42);
        let mut changes = Vec::new();
        traced.fill_rect_scaled_traced(&rect, 1.0, 1.0, 42, &mut |i, o, n| {
            changes.push((i, o, n));
        });
        assert_eq!(plain, traced, "traced fill produces the same frame");
        assert_eq!(changes.len(), 6, "3x2 cells changed");
        assert!(changes.iter().all(|&(_, o, n)| o == BLANK && n == 42));
        // Re-filling with the same value changes nothing and reports nothing.
        let mut again = Vec::new();
        traced.fill_rect_scaled_traced(&rect, 1.0, 1.0, 42, &mut |i, o, n| {
            again.push((i, o, n));
        });
        assert!(again.is_empty());
        assert_eq!(plain, traced);
    }
}
