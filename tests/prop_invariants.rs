//! Property-based tests: the loader and platform invariants must hold
//! for *arbitrary* (valid) websites and configurations, not just the
//! generator's output.

use proptest::prelude::*;

use eyeorg_browser::{load_page, BrowserConfig};
use eyeorg_net::NetworkProfile;
use eyeorg_stats::Seed;
use eyeorg_video::{CaptureConfig, FrameTimeline, Video};
use eyeorg_workload::{
    Discovery, Origin, OriginRef, Rect, Resource, ResourceId, ResourceKind, Website,
};

/// Strategy: a small but structurally varied website. Always valid by
/// construction (checked against `Website::validate` inside the test).
fn arb_site() -> impl Strategy<Value = Website> {
    let resource_counts = (0usize..6, 0usize..4, 0usize..3, 0usize..3);
    (resource_counts, 10_000u64..150_000, 1_500u32..6_000, any::<u64>()).prop_map(
        |((n_img, n_js, n_css, n_ad), html_bytes, page_height, noise)| {
            let mut resources = vec![Resource {
                id: ResourceId(0),
                kind: ResourceKind::Html,
                origin: OriginRef(0),
                body_bytes: html_bytes,
                request_header_bytes: 400,
                response_header_bytes: 300,
                rect: Some(Rect { x: 0, y: 0, w: 1280, h: page_height }),
                discovery: Discovery::Root,
                render_blocking: false,
                defer: false,
                server_think_us: 20_000,
            }];
            let mut push = |kind, rect, discovery, blocking, defer, bytes| {
                let id = ResourceId(resources.len() as u32);
                resources.push(Resource {
                    id,
                    kind,
                    origin: OriginRef(if matches!(kind, ResourceKind::Ad) { 1 } else { 0 }),
                    body_bytes: bytes,
                    request_header_bytes: 350,
                    response_header_bytes: 250,
                    rect,
                    discovery,
                    render_blocking: blocking,
                    defer,
                    server_think_us: 10_000 + (bytes % 50_000),
                });
                id
            };
            for i in 0..n_css {
                push(
                    ResourceKind::Css,
                    None,
                    Discovery::Html { at_fraction: 0.02 + 0.03 * i as f32 },
                    true,
                    false,
                    5_000 + noise % 40_000,
                );
            }
            let mut last_js = None;
            for i in 0..n_js {
                last_js = Some(push(
                    ResourceKind::Js,
                    None,
                    Discovery::Html { at_fraction: 0.1 + 0.2 * i as f32 },
                    false,
                    i % 2 == 0,
                    3_000 + noise % 60_000,
                ));
            }
            for i in 0..n_img {
                let y = (i as u32 * page_height / n_img.max(1) as u32)
                    .min(page_height.saturating_sub(101));
                push(
                    ResourceKind::Image,
                    Some(Rect { x: 10, y, w: 400, h: 100 }),
                    Discovery::Html { at_fraction: 0.15 + 0.1 * i as f32 },
                    false,
                    false,
                    2_000 + (noise >> 8) % 80_000,
                );
            }
            for _ in 0..n_ad {
                let discovery = match last_js {
                    Some(parent) => Discovery::Parent { parent },
                    None => Discovery::Html { at_fraction: 0.5 },
                };
                push(
                    ResourceKind::Ad,
                    Some(Rect { x: 900, y: 100, w: 300, h: 250 }),
                    discovery,
                    false,
                    false,
                    4_000 + noise % 30_000,
                );
            }
            Website {
                name: "prop.example".into(),
                origins: vec![
                    Origin { host: "prop.example".into(), supports_h2: true, third_party: false },
                    Origin {
                        host: "ads.example".into(),
                        supports_h2: noise % 2 == 0,
                        third_party: true,
                    },
                ],
                resources,
                canvas_width: 1280,
                page_height,
                fold_y: 720,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every generated site is structurally valid and loads to a trace
    /// satisfying all recorded invariants, under several network profiles.
    #[test]
    fn any_site_loads_cleanly(site in arb_site(), seed in 0u64..1000, profile_idx in 0usize..3) {
        prop_assert!(site.validate().is_empty(), "{:?}", site.validate());
        let profiles = [NetworkProfile::fttc(), NetworkProfile::cable(), NetworkProfile::fiber()];
        let cfg = BrowserConfig::new().with_network(profiles[profile_idx].clone());
        let trace = load_page(&site, &cfg, Seed(seed));
        prop_assert!(trace.check_invariants().is_ok(), "{:?}", trace.check_invariants());
        prop_assert!(trace.onload.is_some(), "onload must fire");
        prop_assert!(trace.parse_complete.is_some());
        // Everything fetched or skipped, nothing lost.
        for r in &trace.resources {
            prop_assert!(r.completed.is_some() || r.skipped.is_some(), "{:?} dangling", r.id);
        }
        // onload at or after the last pre-onload completion.
        let onload = trace.onload.expect("checked");
        for r in &trace.resources {
            if let (Some(d), Some(c)) = (r.discovered, r.completed) {
                if d < onload {
                    // Discovered before onload and completed: either it
                    // finished before onload or onload equals a later
                    // quiescence point — both imply c is bounded by the
                    // trace's quiescent time.
                    prop_assert!(c <= trace.quiescent.expect("quiescent set"));
                }
            }
        }
    }

    /// Captures of arbitrary sites render consistent frames: blank start,
    /// frame count ≥ onload window, rewind never goes forward.
    #[test]
    fn any_capture_is_coherent(site in arb_site(), seed in 0u64..500) {
        let trace = load_page(&site, &BrowserConfig::new(), Seed(seed));
        let video = Video::capture(trace, 10, eyeorg_net::SimDuration::from_secs(2));
        prop_assert!(video.frame_count() >= 2);
        prop_assert!(video.frame(0).painted_fraction() <= 0.01, "capture starts blank");
        let mut tl = FrameTimeline::of(&video);
        let n = tl.len();
        prop_assert_eq!(n, video.frame_count());
        for chosen in [n / 3, n - 1] {
            let r = tl.rewind(chosen);
            prop_assert!(r <= chosen);
        }
    }

    /// The webpeg median selection never panics and always returns one of
    /// the repeat loads for arbitrary sites.
    #[test]
    fn webpeg_median_total(site in arb_site(), seed in 0u64..200) {
        let cfg = CaptureConfig { repeats: 3, ..CaptureConfig::default() };
        let video = eyeorg_video::capture_median(&site, &BrowserConfig::new(), Seed(seed), &cfg);
        let all = eyeorg_video::capture_all(&site, &BrowserConfig::new(), Seed(seed), &cfg);
        prop_assert!(all.iter().any(|t| t == video.trace()), "median is one of the loads");
    }
}
