//! Figure 7: `UserPerceivedPLT` vs the automatic PLT metrics.
//!
//! (a) submitted vs slider vs frame-helper choices; (b) correlation of
//! crowd UPLT with OnLoad / SpeedIndex / Last- / FirstVisualChange
//! (paper: 0.85 / 0.68 / 0.47 / 0.84); (c) CDF of `UPLT − metric`
//! (paper: OnLoad within 100 ms for 30 % of sites, SpeedIndex 7 %;
//! 60 % of UPLT below OnLoad).

use eyeorg_core::analysis::{mean_uplt, uplt_components};
use eyeorg_metrics::{compute_metrics, PltMetrics, METRIC_NAMES};
use eyeorg_stats::{bootstrap_pearson_ci, pearson, spearman, Ecdf, Seed, Summary};

use crate::campaigns::Filtered;
use crate::series_csv;
use eyeorg_core::campaign::TimelineCampaign;

/// Metrics for every stimulus of a timeline campaign.
pub fn stimulus_metrics(campaign: &TimelineCampaign) -> Vec<PltMetrics> {
    campaign.videos.iter().map(|v| compute_metrics(v)).collect()
}

/// Paired `(uplt, metric)` series for one metric name, skipping videos
/// where either side is missing.
pub fn paired(
    uplt: &[Option<f64>],
    metrics: &[PltMetrics],
    name: &str,
) -> (Vec<f64>, Vec<f64>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (u, m) in uplt.iter().zip(metrics) {
        if let (Some(u), Some(v)) = (u, m.by_name(name)) {
            xs.push(v);
            ys.push(*u);
        }
    }
    (xs, ys)
}

/// Build the Fig. 7 report.
pub fn run(fin: &Filtered<TimelineCampaign>) -> String {
    let campaign = &fin.campaign;
    let report = &fin.report;
    let metrics = stimulus_metrics(campaign);
    let uplt = mean_uplt(campaign, report, Some((25.0, 75.0)));

    let mut out = String::new();

    // ---- (a) helper impact ---------------------------------------------
    out.push_str("=== Figure 7(a): submitted vs slider vs frame-helper ===\n");
    let comps = uplt_components(campaign, report);
    let n_show = comps.len().min(20);
    let mut slider_diffs = Vec::new();
    for (vi, (submitted, slider, helper)) in comps.iter().take(n_show).enumerate() {
        let ms = Summary::of(submitted).map(|s| s.mean);
        let sl = Summary::of(slider).map(|s| s.mean);
        let he = Summary::of(helper).map(|s| s.mean);
        if let (Some(ms), Some(sl), Some(he)) = (ms, sl, he) {
            out.push_str(&format!(
                "video {:>2}: submitted {ms:>5.2}s  slider {sl:>5.2}s  helper {he:>5.2}s\n",
                vi + 1
            ));
            slider_diffs.push((sl - ms).abs());
        }
    }
    if let Some(s) = Summary::of(&slider_diffs) {
        out.push_str(&format!(
            "mean |slider - submitted| = {:.0} ms, max = {:.2} s (paper: 300 ms avg, 1.6 s max)\n",
            s.mean * 1000.0,
            s.max
        ));
    }

    // ---- (b) correlations ------------------------------------------------
    out.push_str("\n=== Figure 7(b): correlation of mean UPLT with PLT metrics ===\n");
    out.push_str("metric              pearson [95% CI]      spearman   (paper pearson)\n");
    let paper_ref = [("onload", 0.85), ("speedindex", 0.68), ("lastvisualchange", 0.47), ("firstvisualchange", 0.84)];
    for (name, paper) in paper_ref {
        let (xs, ys) = paired(&uplt, &metrics, name);
        let p = pearson(&xs, &ys).unwrap_or(f64::NAN);
        let ci = bootstrap_pearson_ci(&xs, &ys, 0.95, 1000, Seed(7));
        let (lo, hi) = ci.map(|c| (c.lo, c.hi)).unwrap_or((f64::NAN, f64::NAN));
        let s = spearman(&xs, &ys).unwrap_or(f64::NAN);
        out.push_str(&format!(
            "{name:<18} {p:>7.2} [{lo:>5.2},{hi:>5.2}] {s:>8.2}   ({paper:.2})\n"
        ));
    }

    // Scatter panel for the headline metric (onload), like the paper's
    // first Fig. 7b panel.
    let (xs, ys) = paired(&uplt, &metrics, "onload");
    let pts: Vec<(f64, f64)> = xs.iter().copied().zip(ys.iter().copied()).collect();
    out.push_str("\nonload (x) vs mean UPLT (y), '=' marks y = x:\n");
    out.push_str(&eyeorg_core::viz::ascii_scatter(&pts, 12, 56, true));

    // ---- (c) error CDFs ---------------------------------------------------
    out.push_str("\n=== Figure 7(c): CDF of UPLT - metric (seconds) ===\n");
    for name in METRIC_NAMES {
        let (xs, ys) = paired(&uplt, &metrics, name);
        let diffs: Vec<f64> = ys.iter().zip(&xs).map(|(u, m)| u - m).collect();
        if diffs.is_empty() {
            continue;
        }
        let within_100ms =
            diffs.iter().filter(|d| d.abs() <= 0.1).count() as f64 / diffs.len() as f64;
        let below = diffs.iter().filter(|&&d| d < 0.0).count() as f64 / diffs.len() as f64;
        let s = Summary::of(&diffs).expect("non-empty");
        out.push_str(&format!(
            "{name:<18} median {:+.2}s  |d|<=100ms: {:>4.0}%  UPLT<metric: {:>4.0}%\n",
            s.median,
            within_100ms * 100.0,
            below * 100.0
        ));
    }
    out.push_str(
        "(paper: OnLoad within 100ms for 30% of sites vs 7% for SpeedIndex; 60% of UPLT below OnLoad)\n",
    );
    out
}

/// CSV artefacts: the per-site scatter and the error CDFs.
pub fn csv(fin: &Filtered<TimelineCampaign>) -> String {
    let metrics = stimulus_metrics(&fin.campaign);
    let uplt = mean_uplt(&fin.campaign, &fin.report, Some((25.0, 75.0)));
    let mut out = String::new();
    for name in METRIC_NAMES {
        let (xs, ys) = paired(&uplt, &metrics, name);
        let pts: Vec<(f64, f64)> = xs.into_iter().zip(ys).collect();
        out.push_str(&series_csv(&format!("{name},uplt"), &pts));
        let diffs: Vec<f64> =
            pts.iter().map(|(m, u)| u - m).collect();
        if let Some(e) = Ecdf::new(&diffs) {
            out.push_str(&series_csv(&format!("diff_{name},cdf"), &e.points()));
        }
    }
    out
}
