//! Load traces: everything one page load produced.
//!
//! webpeg keeps, for every capture, the HAR (per-object network timings)
//! plus the video. [`LoadTrace`] is the in-memory superset: per-resource
//! lifecycle timestamps, the paint-event stream, and the page-level
//! milestones (`onload`, parse completion, full quiescence). The video
//! crate renders frames from it; the metrics crate computes PLT metrics
//! from it; `har` serialises the HAR view of it.

use eyeorg_net::SimTime;
use eyeorg_workload::ResourceId;
use serde::{Deserialize, Serialize};

use crate::paint::PaintEvent;

/// Why a resource produced no network traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkipReason {
    /// The installed ad blocker's filter list matched it.
    BlockedByExtension,
    /// Its injecting parent was itself blocked or never executed, so the
    /// browser never learned the resource existed.
    ParentBlocked,
}

/// Lifecycle of one resource within a load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceTrace {
    /// The resource.
    pub id: ResourceId,
    /// When the browser learned the resource exists (parser/preload
    /// scanner reached its reference, or its injecting script ran).
    pub discovered: Option<SimTime>,
    /// When the request was handed to the network stack (after any
    /// filter-list matching and DNS resolution).
    pub submitted: Option<SimTime>,
    /// When response headers finished arriving.
    pub headers: Option<SimTime>,
    /// When the response completed.
    pub completed: Option<SimTime>,
    /// When the resource's effects applied (script executed / image
    /// decoded & painted).
    pub applied: Option<SimTime>,
    /// Set when the resource was never fetched.
    pub skipped: Option<SkipReason>,
}

impl ResourceTrace {
    /// A trace for a resource the browser has not seen yet.
    pub fn empty(id: ResourceId) -> ResourceTrace {
        ResourceTrace {
            id,
            discovered: None,
            submitted: None,
            headers: None,
            completed: None,
            applied: None,
            skipped: None,
        }
    }

    /// Whether the resource was fetched to completion.
    pub fn fetched(&self) -> bool {
        self.completed.is_some()
    }
}

/// The complete record of one page load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTrace {
    /// Site name (from the workload).
    pub site: String,
    /// Protocol label for reports ("h1"/"h2"/"mixed").
    pub protocol: String,
    /// Network profile name.
    pub network: String,
    /// Ad blocker in effect, if any.
    pub adblocker: Option<String>,
    /// Per-resource lifecycles, indexed by `ResourceId`.
    pub resources: Vec<ResourceTrace>,
    /// Paint stream in time order.
    pub paints: Vec<PaintEvent>,
    /// When HTML parsing finished.
    pub parse_complete: Option<SimTime>,
    /// The `onload` event: parsing done and every resource that had
    /// started loading has finished.
    pub onload: Option<SimTime>,
    /// When the last network/CPU activity ended (late-injected ads
    /// included) — the capture window's natural end.
    pub quiescent: Option<SimTime>,
    /// Above-the-fold paintable area of the page, px² (denominator for
    /// visual-completeness computations downstream).
    pub above_fold_area: u64,
    /// Fold line of the capture viewport.
    pub fold_y: u32,
    /// Canvas width of the capture viewport.
    pub canvas_width: u32,
    /// Full page height.
    pub page_height: u32,
}

impl LoadTrace {
    /// Time of the first pixels changing, if anything painted.
    pub fn first_visual_change(&self) -> Option<SimTime> {
        self.paints.first().map(|p| p.time)
    }

    /// Time of the last pixels changing.
    pub fn last_visual_change(&self) -> Option<SimTime> {
        self.paints.last().map(|p| p.time)
    }

    /// Paints at or before `t`.
    pub fn paints_until(&self, t: SimTime) -> &[PaintEvent] {
        let idx = self.paints.partition_point(|p| p.time <= t);
        &self.paints[..idx]
    }

    /// Resources that completed after `onload` fired (the "scripts keep
    /// loading objects after OnLoad" case from the paper's introduction).
    pub fn post_onload_completions(&self) -> Vec<ResourceId> {
        let Some(onload) = self.onload else { return Vec::new() };
        self.resources
            .iter()
            .filter(|r| r.completed.is_some_and(|c| c > onload))
            .map(|r| r.id)
            .collect()
    }

    /// Total bytes... is intentionally *not* here: byte accounting lives
    /// in the HAR view, keeping this struct about time and pixels.
    ///
    /// Internal consistency checks used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.paints.windows(2) {
            if w[1].time < w[0].time {
                return Err("paints out of order".into());
            }
        }
        for r in &self.resources {
            if let (Some(d), Some(s)) = (r.discovered, r.submitted) {
                if s < d {
                    return Err(format!("{:?} submitted before discovered", r.id));
                }
            }
            if let (Some(s), Some(h)) = (r.submitted, r.headers) {
                if h < s {
                    return Err(format!("{:?} headers before submission", r.id));
                }
            }
            if let (Some(h), Some(c)) = (r.headers, r.completed) {
                if c < h {
                    return Err(format!("{:?} completed before headers", r.id));
                }
            }
            if r.skipped.is_some() && r.submitted.is_some() {
                return Err(format!("{:?} both skipped and submitted", r.id));
            }
        }
        if let (Some(p), Some(o)) = (self.parse_complete, self.onload) {
            if o < p {
                return Err("onload before parse completion".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paint::PaintKind;
    use eyeorg_workload::Rect;

    fn paint(t_ms: u64) -> PaintEvent {
        PaintEvent {
            time: SimTime::from_millis(t_ms),
            resource: ResourceId(0),
            rect: Rect { x: 0, y: 0, w: 10, h: 10 },
            kind: PaintKind::DocumentBand,
            generation: 0,
        }
    }

    fn base_trace() -> LoadTrace {
        LoadTrace {
            site: "s".into(),
            protocol: "h2".into(),
            network: "Cable".into(),
            adblocker: None,
            resources: vec![ResourceTrace::empty(ResourceId(0))],
            paints: vec![paint(100), paint(200), paint(500)],
            parse_complete: Some(SimTime::from_millis(300)),
            onload: Some(SimTime::from_millis(400)),
            quiescent: Some(SimTime::from_millis(500)),
            above_fold_area: 100,
            fold_y: 720,
            canvas_width: 1280,
            page_height: 2000,
        }
    }

    #[test]
    fn visual_change_bounds() {
        let t = base_trace();
        assert_eq!(t.first_visual_change(), Some(SimTime::from_millis(100)));
        assert_eq!(t.last_visual_change(), Some(SimTime::from_millis(500)));
        assert_eq!(t.paints_until(SimTime::from_millis(250)).len(), 2);
        assert_eq!(t.paints_until(SimTime::from_millis(99)).len(), 0);
    }

    #[test]
    fn post_onload_completions_found() {
        let mut t = base_trace();
        t.resources[0].completed = Some(SimTime::from_millis(450));
        assert_eq!(t.post_onload_completions(), vec![ResourceId(0)]);
        t.resources[0].completed = Some(SimTime::from_millis(350));
        assert!(t.post_onload_completions().is_empty());
    }

    #[test]
    fn invariants_detect_violations() {
        let mut t = base_trace();
        assert!(t.check_invariants().is_ok());
        t.paints.swap(0, 2);
        assert!(t.check_invariants().is_err());

        let mut t2 = base_trace();
        t2.resources[0].discovered = Some(SimTime::from_millis(100));
        t2.resources[0].submitted = Some(SimTime::from_millis(50));
        assert!(t2.check_invariants().is_err());

        let mut t3 = base_trace();
        t3.onload = Some(SimTime::from_millis(100)); // before parse_complete
        assert!(t3.check_invariants().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let t = base_trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: LoadTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
