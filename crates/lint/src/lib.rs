//! `eyeorg-lint`: determinism & concurrency static analysis for the
//! Eyeorg workspace.
//!
//! The platform's contract (DESIGN.md §3) is that campaign output and
//! observability counter fingerprints are **byte-identical at any
//! thread count**. `scripts/verify.sh` checks that after the fact by
//! diffing run outputs; this crate enforces it at the source level, so
//! a nondeterminism hazard fails the build instead of surviving until
//! it happens to reproduce on some machine.
//!
//! The analyzer runs in passes (DESIGN.md §3j): a whole-file Rust
//! tokenizer ([`token`]) feeds per-line scrubbed views to the line
//! rules, and a structural pass ([`graph`], private) recovers a
//! per-workspace item graph — fn/impl/mod definitions with
//! name-resolved-by-path-suffix call edges — for the reachability
//! rules. Eight rules, each mapped to a way the contract has
//! historically been broken in systems like this:
//!
//! * **D1** — no `HashMap`/`HashSet` in fingerprinted crates (net,
//!   http, browser, video, core, stats, metrics, crowd, workload).
//!   Hash iteration order is seeded per-process; any order that escapes
//!   into output breaks byte-identity. Use `BTreeMap`/`BTreeSet`.
//! * **D2** — no `Instant::now`/`SystemTime` outside `eyeorg-obs`
//!   timing internals and `crates/bench`. Fingerprinted values must be
//!   pure functions of the workload and its seeds, never of the clock.
//! * **D3** — no `Ordering::*` atomics outside `eyeorg-obs`. Ad-hoc
//!   atomics are exactly where thread-count-dependent behaviour hides;
//!   the few legitimate uses carry an order-independence proof in a
//!   waiver.
//! * **D4** — no `unwrap()`/`expect()` in library (non-test,
//!   non-bench, non-binary) code without a waiver stating the invariant
//!   that rules the panic out.
//! * **D5** — no `thread::spawn`/`thread::scope` outside
//!   `eyeorg-stats::par`. All parallelism goes through the
//!   deterministic index-pinned engine.
//! * **D6** — no non-`total_cmp` float ordering (`partial_cmp`) and no
//!   raw `f32`/`f64` accumulation (`sum::<f64>()`, `fold(0.0, …)`) in
//!   fingerprinted crates outside `crates/stats/src/stream.rs`, the
//!   sanctioned fixed-point module. NaN-order and re-association are
//!   how float results drift across refactors.
//! * **D7** — no panic site (`unwrap`/`expect`, panicking macros,
//!   expression-position indexing, `/`/`%` by a non-literal divisor)
//!   in any fn **reachable** from a `// lint:entrypoint(untrusted)`
//!   marker: the `core::checkpoint` load/merge surface and the
//!   vendored-serde decode path run on bytes from disk and must fail
//!   with typed errors, never a panic.
//! * **D8** — no nondeterminism source (hash-ordered collections,
//!   `available_parallelism`, env reads outside the `EYEORG_*`
//!   allowlist, thread identity) in any fn that can **reach** a
//!   digest/fingerprint sink through the call graph.
//!
//! Any finding can be waived inline:
//!
//! ```text
//! // lint:allow(D4): Ecdf::new rejects empty samples, so `sorted` is non-empty
//! let hi = *self.sorted.last().expect("non-empty");
//! ```
//!
//! A waiver on its own comment line covers the **next** line; a waiver
//! in a trailing comment covers its **own** line. A line with several
//! findings of one rule needs a count-aware waiver —
//! `// lint:allow(D1, n=2): reason` — and one comment may carry several
//! waivers for different rules. The reason is mandatory, and a waiver
//! that never (or only partially) suppresses findings is itself an
//! error — stale waivers rot into blanket exemptions otherwise.
//!
//! Pre-existing findings that predate a rule live in a checked-in
//! baseline (`crates/lint/lint-baseline.txt`, `path code count` lines):
//! exact matches are suppressed but stay auditable, a shrunk group is a
//! `stale-baseline` error, and any growth reports every finding in the
//! group. `--write-baseline` regenerates it.
//!
//! The crate stays hermetic: no `syn`, no external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
#[doc(hidden)]
pub mod linelex;
pub mod token;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use token::LineView;

/// Crates whose output feeds the campaign / counter fingerprints; D1
/// applies to every source line in these, test code included.
pub const FINGERPRINTED_CRATES: &[&str] =
    &["net", "http", "browser", "video", "core", "stats", "metrics", "crowd", "workload"];

/// The eight determinism & concurrency rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in fingerprinted crates.
    D1,
    /// No wall-clock reads outside `eyeorg-obs` / `crates/bench`.
    D2,
    /// No `Ordering::*` atomics outside `eyeorg-obs`.
    D3,
    /// No `unwrap()`/`expect()` in library code without a waiver.
    D4,
    /// No `thread::spawn`/`thread::scope` outside `eyeorg-stats::par`.
    D5,
    /// No non-total float ordering / raw float accumulation in
    /// fingerprinted crates outside the stats fixed-point module.
    D6,
    /// No panic site reachable from a `lint:entrypoint(untrusted)` fn.
    D7,
    /// No nondeterminism source reaching a digest/fingerprint sink.
    D8,
}

/// All rules, in reporting order.
pub const ALL_RULES: [Rule; 8] = [
    Rule::D1,
    Rule::D2,
    Rule::D3,
    Rule::D4,
    Rule::D5,
    Rule::D6,
    Rule::D7,
    Rule::D8,
];

impl Rule {
    /// The short code used in diagnostics and waivers (`D1`..`D8`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::D7 => "D7",
            Rule::D8 => "D8",
        }
    }

    /// Parse a waiver rule name.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "D5" => Some(Rule::D5),
            "D6" => Some(Rule::D6),
            "D7" => Some(Rule::D7),
            "D8" => Some(Rule::D8),
            _ => None,
        }
    }

    /// One-line description for `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D1 => "no HashMap/HashSet in fingerprinted crates (hash order breaks byte-identity)",
            Rule::D2 => "no wall-clock reads outside eyeorg-obs / crates/bench",
            Rule::D3 => "no raw atomic orderings outside eyeorg-obs",
            Rule::D4 => "no unwrap()/expect() in library code without a written invariant",
            Rule::D5 => "no thread::spawn/scope outside eyeorg-stats::par",
            Rule::D6 => "no partial_cmp / raw float accumulation in fingerprinted crates outside stats::stream",
            Rule::D7 => "no panic site reachable from a `// lint:entrypoint(untrusted)` fn",
            Rule::D8 => "no nondeterminism source reaching a digest/fingerprint sink",
        }
    }

    /// Word-bounded patterns whose presence on a code line trips the
    /// rule. Empty for the graph-pass rules (D7/D8), which are driven
    /// by reachability, not line content.
    fn needles(self) -> &'static [&'static str] {
        match self {
            Rule::D1 => &["HashMap", "HashSet", "hash_map::", "hash_set::"],
            Rule::D2 => &["Instant::now", "SystemTime"],
            Rule::D3 => &[
                "Ordering::Relaxed",
                "Ordering::Acquire",
                "Ordering::Release",
                "Ordering::AcqRel",
                "Ordering::SeqCst",
            ],
            Rule::D4 => &[".unwrap()", ".expect("],
            Rule::D5 => &["thread::spawn", "thread::scope"],
            Rule::D6 => &[
                "partial_cmp",
                "sum::<f64>",
                "sum::<f32>",
                "fold(0.0",
                "fold(0.0_f64",
                "fold(0.0_f32",
                "fold(0.0f64",
                "fold(0.0f32",
            ],
            Rule::D7 | Rule::D8 => &[],
        }
    }

    /// Why a hit is a determinism/concurrency hazard.
    fn message(self) -> &'static str {
        match self {
            Rule::D1 => {
                "HashMap/HashSet in a fingerprinted crate: hash iteration order is \
                 per-process and breaks byte-identical output; use BTreeMap/BTreeSet \
                 or waive with proof that the order never escapes"
            }
            Rule::D2 => {
                "wall-clock read outside eyeorg-obs/bench: fingerprinted values must \
                 be pure functions of the workload and its seeds, never of the clock"
            }
            Rule::D3 => {
                "raw atomic ordering outside eyeorg-obs: ad-hoc atomics are where \
                 thread-count-dependent behaviour hides; route through eyeorg-obs or \
                 waive with an order-independence proof"
            }
            Rule::D4 => {
                "unwrap()/expect() in library code: return Result/Option, or waive \
                 stating the invariant that rules the panic out"
            }
            Rule::D5 => {
                "thread::spawn/scope outside eyeorg-stats::par: all parallelism must \
                 go through the deterministic index-pinned engine"
            }
            Rule::D6 => {
                "non-total float ordering or raw float accumulation in a \
                 fingerprinted crate: NaN-order and re-association drift across \
                 refactors; use f64::total_cmp and the stats::stream fixed-point \
                 accumulators, or waive with proof the value is order-independent"
            }
            Rule::D7 => {
                "panic site reachable from an untrusted entry point: return a typed \
                 error, or waive with the invariant that rules the panic out"
            }
            Rule::D8 => {
                "nondeterminism source can reach a digest/fingerprint sink: \
                 quarantine the source, or waive with proof the value never feeds \
                 fingerprint bytes"
            }
        }
    }
}

/// How a source file is classified for rule applicability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Workspace-relative path, used in diagnostics.
    pub display_path: String,
    /// Crate short name (`net`, `stats`, `serde_json`, ... or `root`
    /// for the top-level `eyeorg` package).
    pub crate_name: String,
    /// Whether the file lives under a `tests/` directory (integration
    /// tests: D4/D5 do not apply).
    pub in_tests_dir: bool,
    /// Whether the file is a binary entry point or example
    /// (`src/bin/`, `src/main.rs`, `examples/`): not library code, so
    /// D4 does not apply.
    pub is_entrypoint: bool,
    /// Whether this is `crates/stats/src/par.rs`, the one module
    /// allowed to spawn threads (D5 exemption).
    pub is_par_module: bool,
    /// Whether the file is vendored third-party code (`vendor/`).
    /// Line rules D1–D6 do not apply (it is not ours to restyle), but
    /// the graph rules D7/D8 still see it — the decode path lives here.
    pub is_vendor: bool,
    /// Whether this is `crates/stats/src/stream.rs`, the sanctioned
    /// fixed-point accumulator module (D6 exemption).
    pub is_stream_module: bool,
}

impl FileMeta {
    /// Classify a workspace-relative path (`/`-separated).
    pub fn classify(rel_path: &str) -> FileMeta {
        let components: Vec<&str> = rel_path.split('/').collect();
        let crate_name = match components.first() {
            Some(&"crates") | Some(&"vendor") if components.len() > 1 => {
                components[1].to_owned()
            }
            _ => "root".to_owned(),
        };
        let in_tests_dir = components.contains(&"tests");
        let is_entrypoint = components.iter().any(|c| *c == "bin" || *c == "examples")
            || components.last() == Some(&"main.rs");
        FileMeta {
            display_path: rel_path.to_owned(),
            crate_name,
            in_tests_dir,
            is_entrypoint,
            is_par_module: rel_path == "crates/stats/src/par.rs",
            is_vendor: components.first() == Some(&"vendor"),
            is_stream_module: rel_path == "crates/stats/src/stream.rs",
        }
    }

    /// Whether `rule` applies to a line of this file; `in_test_code` is
    /// true inside `#[cfg(test)]` regions. Only meaningful for the line
    /// rules (D1–D6); D7/D8 findings come from the graph pass, which
    /// does its own filtering.
    fn applies(&self, rule: Rule, in_test_code: bool) -> bool {
        if self.is_vendor {
            return false;
        }
        let test_code = in_test_code || self.in_tests_dir;
        match rule {
            Rule::D1 => FINGERPRINTED_CRATES.contains(&self.crate_name.as_str()),
            Rule::D2 => self.crate_name != "obs" && self.crate_name != "bench",
            Rule::D3 => self.crate_name != "obs",
            Rule::D4 => self.crate_name != "bench" && !test_code && !self.is_entrypoint,
            Rule::D5 => !self.is_par_module && !test_code,
            Rule::D6 => {
                FINGERPRINTED_CRATES.contains(&self.crate_name.as_str())
                    && !test_code
                    && !self.is_stream_module
            }
            Rule::D7 | Rule::D8 => false,
        }
    }
}

/// One finding, pointing at a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number (0 for file-level findings such as
    /// `stale-baseline`).
    pub line: usize,
    /// Diagnostic code: a rule code, `unused-waiver`, `bad-waiver`, or
    /// `stale-baseline`.
    pub code: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.code, self.message)
    }
}

/// Outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, ordered by (path, line, code).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files: usize,
    /// Number of findings suppressed by inline waivers.
    pub waivers_used: usize,
    /// Number of findings suppressed by the baseline.
    pub baseline_suppressed: usize,
    /// The baseline groups that were applied: (path, code, count).
    pub baselined: Vec<(String, String, usize)>,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

// --- waivers ---------------------------------------------------------

/// Marker that introduces a waiver inside a `//` comment.
const WAIVER_MARKER: &str = "lint:allow(";

#[derive(Debug)]
struct Waiver {
    rule: Rule,
    declared_line: usize,
    /// Findings this waiver may suppress (`n=K`, default 1).
    n: u32,
    /// Findings it actually suppressed.
    used: u32,
}

/// Parse every waiver out of a comment. Each element is
/// `Ok((rule, n))` or `Err(message)` for a malformed marker; one
/// comment may carry several waivers (e.g. stacked D4 + D7 proofs).
fn parse_waivers(comment: &str) -> Vec<Result<(Rule, u32), String>> {
    let mut starts = Vec::new();
    let mut search = 0;
    while let Some(p) = comment[search..].find(WAIVER_MARKER) {
        starts.push(search + p);
        search += p + WAIVER_MARKER.len();
    }
    let mut out = Vec::new();
    for (k, &s) in starts.iter().enumerate() {
        let seg_end = starts.get(k + 1).copied().unwrap_or(comment.len());
        let rest = &comment[s + WAIVER_MARKER.len()..seg_end];
        out.push(parse_one_waiver(rest));
    }
    out
}

/// Parse the text after one `lint:allow(` marker.
fn parse_one_waiver(rest: &str) -> Result<(Rule, u32), String> {
    let close = match rest.find(')') {
        Some(c) => c,
        None => return Err("malformed waiver: missing `)`".to_owned()),
    };
    let inner = &rest[..close];
    let mut parts = inner.split(',');
    let rule_txt = parts.next().unwrap_or("").trim();
    let rule = match Rule::parse(rule_txt) {
        Some(r) => r,
        None => {
            return Err(format!("unknown rule `{rule_txt}` in waiver (expected D1..D8)"))
        }
    };
    let n = match parts.next() {
        None => 1u32,
        Some(nspec) => {
            let nspec = nspec.trim();
            let count = nspec
                .strip_prefix("n=")
                .and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|&v| v >= 1);
            match count {
                Some(c) => c,
                None => {
                    return Err(format!(
                        "malformed waiver count `{nspec}` (expected `n=<positive integer>`)"
                    ))
                }
            }
        }
    };
    if parts.next().is_some() {
        return Err("malformed waiver: expected `lint:allow(RULE)` or `lint:allow(RULE, n=K)`"
            .to_owned());
    }
    let after = &rest[close + 1..];
    let reason = match after.strip_prefix(':') {
        Some(r) => r.trim(),
        None => return Err("malformed waiver: expected `): <reason>`".to_owned()),
    };
    if reason.is_empty() {
        return Err(format!(
            "waiver for {} has no reason: state the invariant that makes it safe",
            rule.code()
        ));
    }
    Ok((rule, n))
}

// --- per-file analysis -----------------------------------------------

/// Whether `needle` occurs in `hay` bounded by non-identifier chars.
#[cfg(test)]
fn find_word(hay: &str, needle: &str) -> bool {
    count_word(hay, needle) > 0
}

/// Number of word-bounded, non-overlapping occurrences of `needle`.
fn count_word(hay: &str, needle: &str) -> usize {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut count = 0;
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let abs = start + pos;
        let before_ok = !needle.starts_with(ident)
            || !hay[..abs].chars().next_back().is_some_and(ident);
        let after_ok = !needle.ends_with(ident)
            || !hay[abs + needle.len()..].chars().next().is_some_and(ident);
        if before_ok && after_ok {
            count += 1;
        }
        start = abs + needle.len();
    }
    count
}

/// Whether a scrubbed line carries a live `#[cfg(test)]` (and not
/// `#[cfg(not(test))]`), and at which byte offset.
fn cfg_test_pos(code: &str) -> Option<usize> {
    let pos = code.find("cfg(test)")?;
    if code[..pos].ends_with("not(") {
        return None;
    }
    Some(pos)
}

/// Per-line `#[cfg(test)]`-region flags, tracked by brace depth over
/// the scrubbed views. The attribute arms a pending flag; the next `{`
/// opens the region, a `;` first (e.g. `#[cfg(test)] use ...;`)
/// cancels it.
fn test_line_flags(views: &[LineView]) -> Vec<bool> {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region: Option<i64> = None;
    views
        .iter()
        .map(|view| {
            let attr_pos = cfg_test_pos(&view.code);
            let mut line_is_test = region.is_some();
            for (byte_pos, c) in view.code.char_indices() {
                if attr_pos == Some(byte_pos) {
                    pending = true;
                }
                match c {
                    '{' => {
                        if pending && region.is_none() {
                            region = Some(depth);
                            pending = false;
                            line_is_test = true;
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if region == Some(depth) {
                            region = None;
                        }
                    }
                    ';' if region.is_none() => {
                        pending = false;
                    }
                    _ => {}
                }
            }
            line_is_test
        })
        .collect()
}

/// One rule finding before waiver resolution. `message` overrides the
/// rule's stock text (graph findings carry a witness call path).
#[derive(Debug)]
struct Finding {
    line: usize,
    rule: Rule,
    message: Option<String>,
}

/// Everything the per-file pass knows about one file; the graph pass
/// appends D7/D8 findings before waivers are resolved.
struct FileAnalysis {
    meta: FileMeta,
    src: String,
    tokens: Vec<token::Token>,
    test_flags: Vec<bool>,
    findings: Vec<Finding>,
    waivers: Vec<Waiver>,
    /// Target line (1-based) → indices into `waivers`.
    covered: BTreeMap<usize, Vec<usize>>,
    /// `bad-waiver` diagnostics.
    bad: Vec<Diagnostic>,
}

/// Tokenize one file, register waivers, and run the line rules D1–D6.
fn analyze_file(meta: FileMeta, src: String) -> FileAnalysis {
    let tokens = token::tokenize(&src);
    let views = token::line_views(&src, &tokens);
    let test_flags = test_line_flags(&views);
    let mut findings = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut covered: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut bad = Vec::new();

    for (idx, view) in views.iter().enumerate() {
        let line_no = idx + 1;
        // Register waivers before checking this line's rules, so a
        // trailing waiver can cover its own line. Doc comments (`///`,
        // `//!`) are documentation, not directives — a waiver quoted in
        // one must not take effect.
        let plain_comment = view
            .comment
            .as_deref()
            .filter(|c| !c.starts_with('/') && !c.starts_with('!'));
        if let Some(comment) = plain_comment {
            for parsed in parse_waivers(comment) {
                match parsed {
                    Ok((rule, n)) => {
                        let target = if view.code.trim().is_empty() {
                            line_no + 1 // standalone comment: covers the next line
                        } else {
                            line_no // trailing comment: covers its own line
                        };
                        covered.entry(target).or_default().push(waivers.len());
                        waivers.push(Waiver { rule, declared_line: line_no, n, used: 0 });
                    }
                    Err(msg) => bad.push(Diagnostic {
                        path: meta.display_path.clone(),
                        line: line_no,
                        code: "bad-waiver".to_owned(),
                        message: msg,
                    }),
                }
            }
        }

        let line_is_test = test_flags[idx];
        for rule in ALL_RULES {
            let needles = rule.needles();
            if needles.is_empty() || !meta.applies(rule, line_is_test) {
                continue;
            }
            let count: usize = needles.iter().map(|n| count_word(&view.code, n)).sum();
            for _ in 0..count {
                findings.push(Finding { line: line_no, rule, message: None });
            }
        }
    }

    FileAnalysis { meta, src, tokens, test_flags, findings, waivers, covered, bad }
}

/// Resolve waivers against findings and emit this file's diagnostics.
fn finish_file(mut fa: FileAnalysis, report: &mut Report) {
    fa.findings.sort_by(|a, b| (a.line, a.rule.code()).cmp(&(b.line, b.rule.code())));
    let mut diagnostics = fa.bad;
    for finding in fa.findings {
        let waived = fa.covered.get(&finding.line).and_then(|idxs| {
            idxs.iter().copied().find(|&w| {
                fa.waivers[w].rule == finding.rule && fa.waivers[w].used < fa.waivers[w].n
            })
        });
        match waived {
            Some(w) => {
                fa.waivers[w].used += 1;
                report.waivers_used += 1;
            }
            None => diagnostics.push(Diagnostic {
                path: fa.meta.display_path.clone(),
                line: finding.line,
                code: finding.rule.code().to_owned(),
                message: finding
                    .message
                    .unwrap_or_else(|| finding.rule.message().to_owned()),
            }),
        }
    }
    for waiver in &fa.waivers {
        if waiver.used == 0 {
            diagnostics.push(Diagnostic {
                path: fa.meta.display_path.clone(),
                line: waiver.declared_line,
                code: "unused-waiver".to_owned(),
                message: format!(
                    "waiver for {} never suppressed a finding: remove it (stale \
                     waivers rot into blanket exemptions)",
                    waiver.rule.code()
                ),
            });
        } else if waiver.used < waiver.n {
            diagnostics.push(Diagnostic {
                path: fa.meta.display_path.clone(),
                line: waiver.declared_line,
                code: "unused-waiver".to_owned(),
                message: format!(
                    "waiver for {} declares n={} but suppressed only {} finding(s): \
                     tighten the count (stale capacity rots into a blanket exemption)",
                    waiver.rule.code(),
                    waiver.n,
                    waiver.used
                ),
            });
        }
    }
    diagnostics.sort_by(|a, b| (a.line, &a.code).cmp(&(b.line, &b.code)));
    report.diagnostics.extend(diagnostics);
}

/// Run the full multi-pass analysis over a set of classified sources:
/// per-file tokenization + line rules, then the workspace item graph
/// and the taint rules (D7/D8), then waiver resolution.
pub fn analyze_sources(inputs: Vec<(FileMeta, String)>) -> Report {
    let mut fas: Vec<FileAnalysis> =
        inputs.into_iter().map(|(m, s)| analyze_file(m, s)).collect();
    let graph_inputs: Vec<graph::FileInput<'_>> = fas
        .iter()
        .map(|fa| graph::FileInput {
            path: &fa.meta.display_path,
            crate_name: &fa.meta.crate_name,
            src: &fa.src,
            tokens: &fa.tokens,
            test_lines: &fa.test_flags,
            in_tests_dir: fa.meta.in_tests_dir,
            is_entry_file: fa.meta.is_entrypoint,
        })
        .collect();
    let taint = graph::analyze(&graph_inputs);
    drop(graph_inputs);
    for t in taint {
        let rule = if t.code == "D7" { Rule::D7 } else { Rule::D8 };
        fas[t.file].findings.push(Finding { line: t.line, rule, message: Some(t.message) });
    }
    let mut report = Report { files: fas.len(), ..Report::default() };
    for fa in fas {
        finish_file(fa, &mut report);
    }
    report
}

/// Lint one file's source text (all passes, single-file item graph).
pub fn lint_source(meta: &FileMeta, source: &str) -> Report {
    analyze_sources(vec![(meta.clone(), source.to_owned())])
}

// --- baseline --------------------------------------------------------

/// Workspace-relative path of the checked-in baseline.
pub const BASELINE_PATH: &str = "crates/lint/lint-baseline.txt";

/// Parse a baseline file: `path code count` per line, `#` comments and
/// blank lines ignored.
pub fn parse_baseline(text: &str) -> Result<Vec<(String, String, usize)>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(code), Some(count), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("baseline line {}: expected `path code count`", idx + 1));
        };
        if Rule::parse(code).is_none() {
            return Err(format!(
                "baseline line {}: `{code}` is not a rule code (only D1..D8 are baselineable)",
                idx + 1
            ));
        }
        let count: usize = count
            .parse()
            .ok()
            .filter(|&c| c >= 1)
            .ok_or_else(|| format!("baseline line {}: bad count `{count}`", idx + 1))?;
        out.push((path.to_owned(), code.to_owned(), count));
    }
    Ok(out)
}

/// Serialize the rule findings of `report` as baseline text (sorted
/// `path code count` lines).
pub fn format_baseline(report: &Report) -> String {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in &report.diagnostics {
        if Rule::parse(&d.code).is_some() {
            *counts.entry((d.path.clone(), d.code.clone())).or_default() += 1;
        }
    }
    let mut out = String::from(
        "# eyeorg-lint baseline: pre-existing findings that predate a rule.\n\
         # Format: `path code count`. A group is suppressed only on an exact\n\
         # count match; fewer findings than allowed is a stale-baseline error\n\
         # and more reports the whole group. Regenerate: lint --write-baseline.\n",
    );
    for ((path, code), count) in counts {
        out.push_str(&format!("{path} {code} {count}\n"));
    }
    out
}

/// Apply a baseline to a report: an exactly-matching group is removed
/// (counted in `baseline_suppressed`), a shrunk group is removed and
/// replaced by a `stale-baseline` error, and a grown group is left
/// fully visible. Diagnostics are re-sorted by (path, line, code).
pub fn apply_baseline(report: &mut Report, entries: &[(String, String, usize)]) {
    for (path, code, allowed) in entries {
        let found = report
            .diagnostics
            .iter()
            .filter(|d| &d.path == path && &d.code == code)
            .count();
        if found <= *allowed {
            report.diagnostics.retain(|d| !(&d.path == path && &d.code == code));
            report.baseline_suppressed += found;
            report.baselined.push((path.clone(), code.clone(), found));
            if found < *allowed {
                report.diagnostics.push(Diagnostic {
                    path: path.clone(),
                    line: 0,
                    code: "stale-baseline".to_owned(),
                    message: format!(
                        "baseline allows {allowed} {code} finding(s) here but only \
                         {found} remain: regenerate with --write-baseline so fixed \
                         findings cannot silently return"
                    ),
                });
            }
        }
        // found > allowed: a regression — leave every finding visible.
    }
    report.diagnostics.sort_by(|a, b| {
        (&a.path, a.line, &a.code).cmp(&(&b.path, b.line, &b.code))
    });
}

// --- JSON report -----------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize a report as deterministic machine-readable JSON (stable
/// key order, diagnostics in report order).
pub fn report_to_json(report: &Report) -> String {
    let mut out = String::from("{");
    out.push_str("\"version\":1");
    out.push_str(&format!(",\"files\":{}", report.files));
    out.push_str(&format!(",\"waivers_used\":{}", report.waivers_used));
    out.push_str(&format!(",\"baseline_suppressed\":{}", report.baseline_suppressed));
    out.push_str(&format!(",\"clean\":{}", report.is_clean()));
    out.push_str(",\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"line\":{},\"code\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&d.path),
            d.line,
            json_escape(&d.code),
            json_escape(&d.message)
        ));
    }
    out.push_str("],\"baselined\":[");
    for (i, (path, code, count)) in report.baselined.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"code\":\"{}\",\"count\":{}}}",
            json_escape(path),
            json_escape(code),
            count
        ));
    }
    out.push_str("]}");
    out
}

// --- workspace walking -----------------------------------------------

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "results"];

/// Workspace-relative path prefixes excluded from scanning. The lint
/// fixtures intentionally violate every rule, and `serde_derive` is a
/// build-time proc-macro whose generated code is invisible to lexical
/// analysis (the generated decode path is covered where it runs, via
/// the `serde_json`/`serde` items the expansion calls).
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures", "vendor/serde_derive"];

/// Collect every `.rs` file under `root` (sorted, workspace-relative).
fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let rel = match path.strip_prefix(root) {
                Ok(r) => r.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                if SKIP_PREFIXES.iter().any(|p| rel == *p) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every Rust source in the workspace rooted at `root` (no
/// baseline applied — the raw findings).
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let sources = collect_sources(root)?;
    let mut inputs = Vec::with_capacity(sources.len());
    for (rel, path) in sources {
        let text = std::fs::read_to_string(&path)?;
        inputs.push((FileMeta::classify(&rel), text));
    }
    Ok(analyze_sources(inputs))
}

/// Lint the workspace and apply the checked-in baseline
/// (`crates/lint/lint-baseline.txt`) when present — the configuration
/// the CI gate runs.
pub fn scan_workspace_gated(root: &Path) -> std::io::Result<Report> {
    let mut report = scan_workspace(root)?;
    let baseline_path = root.join(BASELINE_PATH);
    if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)?;
        match parse_baseline(&text) {
            Ok(entries) => apply_baseline(&mut report, &entries),
            Err(msg) => report.diagnostics.push(Diagnostic {
                path: BASELINE_PATH.to_owned(),
                line: 0,
                code: "stale-baseline".to_owned(),
                message: msg,
            }),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(path: &str) -> FileMeta {
        FileMeta::classify(path)
    }

    fn codes(meta: &FileMeta, src: &str) -> Vec<String> {
        lint_source(meta, src).diagnostics.into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn classify_paths() {
        let m = meta("crates/net/src/event.rs");
        assert_eq!(m.crate_name, "net");
        assert!(!m.in_tests_dir && !m.is_entrypoint && !m.is_par_module);
        assert!(meta("crates/stats/src/par.rs").is_par_module);
        assert!(meta("crates/stats/src/stream.rs").is_stream_module);
        assert!(meta("crates/core/tests/determinism.rs").in_tests_dir);
        assert!(meta("crates/bench/src/bin/perf_pipeline.rs").is_entrypoint);
        assert!(meta("crates/lint/src/main.rs").is_entrypoint);
        assert!(meta("examples/quickstart.rs").is_entrypoint);
        assert_eq!(meta("src/lib.rs").crate_name, "root");
        let v = meta("vendor/serde_json/src/lib.rs");
        assert!(v.is_vendor);
        assert_eq!(v.crate_name, "serde_json");
    }

    #[test]
    fn word_boundaries() {
        assert!(find_word("use std::collections::HashMap;", "HashMap"));
        assert!(!find_word("struct MyHashMapLike;", "HashMap"));
        assert!(!find_word("let x = v.unwrap_or(3);", ".unwrap()"));
        assert!(find_word("let x = v.unwrap();", ".unwrap()"));
        assert!(find_word("a.load(Ordering::Relaxed)", "Ordering::Relaxed"));
        assert!(!find_word("cmp::Ordering::Less", "Ordering::Relaxed"));
        assert!(find_word("std::thread::spawn(f)", "thread::spawn"));
    }

    #[test]
    fn occurrences_are_counted_not_collapsed() {
        assert_eq!(count_word("let m: HashMap<K, V> = HashMap::new();", "HashMap"), 2);
        assert_eq!(count_word("x.unwrap(); y.unwrap(); z.unwrap();", ".unwrap()"), 3);
        assert_eq!(count_word("no hits here", "HashMap"), 0);
    }

    #[test]
    fn d1_trips_only_in_fingerprinted_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(codes(&meta("crates/net/src/sim.rs"), src), vec!["D1"]);
        assert!(codes(&meta("crates/obs/src/lib.rs"), src).is_empty());
        assert!(codes(&meta("crates/lint/src/lib.rs"), src).is_empty());
    }

    #[test]
    fn d1_counts_every_occurrence_on_a_line() {
        let src = "let m: HashMap<u32, u32> = HashMap::new();\n";
        assert_eq!(codes(&meta("crates/net/src/sim.rs"), src), vec!["D1", "D1"]);
        // A count-aware waiver covers both…
        let waived = "let m: HashMap<u32, u32> = HashMap::new(); // lint:allow(D1, n=2): test scaffold\n";
        let r = lint_source(&meta("crates/net/src/sim.rs"), waived);
        assert!(r.is_clean(), "diagnostics: {:?}", r.diagnostics);
        assert_eq!(r.waivers_used, 2);
        // …while a plain waiver only covers one and leaves a finding.
        let under = "let m: HashMap<u32, u32> = HashMap::new(); // lint:allow(D1): test scaffold\n";
        let r = lint_source(&meta("crates/net/src/sim.rs"), under);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "D1");
    }

    #[test]
    fn overdeclared_waiver_count_is_flagged() {
        let src = "let v = x.unwrap(); // lint:allow(D4, n=2): only one call here\n";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "unused-waiver");
        assert!(r.diagnostics[0].message.contains("n=2"));
    }

    #[test]
    fn multiple_waivers_in_one_comment() {
        let src = "let v = m[k].unwrap(); // lint:allow(D4): k checked above; lint:allow(D1): not a map\n";
        // D1 never fires (no needle), so that waiver is stale; D4 is
        // consumed. Both were parsed from one comment.
        let r = lint_source(&meta("crates/obs/src/util.rs"), src);
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, vec!["unused-waiver"]);
        assert_eq!(r.waivers_used, 1);
    }

    #[test]
    fn d1_covers_the_checkpoint_module() {
        // The checkpoint serializer feeds the digest and counter
        // fingerprints directly: iteration-order nondeterminism there
        // would silently break the byte-identity gates, so its file
        // must stay under D1.
        let src = "use std::collections::HashMap;\n";
        assert_eq!(codes(&meta("crates/core/src/checkpoint.rs"), src), vec!["D1"]);
    }

    #[test]
    fn d2_exempts_obs_and_bench() {
        let src = "let t = Instant::now();\n";
        assert_eq!(codes(&meta("crates/video/src/frame.rs"), src), vec!["D2"]);
        assert!(codes(&meta("crates/obs/src/lib.rs"), src).is_empty());
        assert!(codes(&meta("crates/bench/src/lib.rs"), src).is_empty());
    }

    #[test]
    fn d4_exempts_tests_benches_and_entrypoints() {
        let src = "let v = x.unwrap();\nlet w = y.expect(\"set\");\n";
        assert_eq!(codes(&meta("crates/core/src/analysis.rs"), src), vec!["D4", "D4"]);
        assert!(codes(&meta("crates/core/tests/determinism.rs"), src).is_empty());
        assert!(codes(&meta("crates/bench/src/lib.rs"), src).is_empty());
        assert!(codes(&meta("crates/bench/src/bin/run_report.rs"), src).is_empty());
        assert!(codes(&meta("examples/quickstart.rs"), src).is_empty());
    }

    #[test]
    fn d6_trips_on_float_ordering_and_accumulation() {
        let src = "\
let worst = xs.iter().fold(0.0, f64::max);
vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
let total: f64 = xs.iter().sum::<f64>();
";
        let got = codes(&meta("crates/core/src/analysis.rs"), src);
        // Line 2 also trips D4 (.unwrap()); D6 fires on all three lines.
        assert_eq!(got.iter().filter(|c| *c == "D6").count(), 3, "{got:?}");
    }

    #[test]
    fn d6_exempts_stream_module_tests_and_unfingerprinted_crates() {
        let src = "let worst = xs.iter().fold(0.0, f64::max);\n";
        assert_eq!(codes(&meta("crates/stats/src/modes.rs"), src), vec!["D6"]);
        assert!(codes(&meta("crates/stats/src/stream.rs"), src).is_empty());
        assert!(codes(&meta("crates/obs/src/lib.rs"), src).is_empty());
        assert!(codes(&meta("crates/stats/tests/accuracy.rs"), src).is_empty());
        assert!(codes(&meta("crates/bench/src/lib.rs"), src).is_empty());
    }

    #[test]
    fn d7_flags_panic_sites_reachable_from_entrypoints() {
        let src = "\
// lint:entrypoint(untrusted)
pub fn load(bytes: &[u8]) -> u32 {
    decode(bytes)
}

fn decode(bytes: &[u8]) -> u32 {
    bytes[0] as u32
}

fn unrelated(v: Option<u32>) -> u32 {
    v.unwrap()
}
";
        let r = lint_source(&meta("crates/core/src/checkpoint.rs"), src);
        let d7: Vec<&Diagnostic> =
            r.diagnostics.iter().filter(|d| d.code == "D7").collect();
        assert_eq!(d7.len(), 1, "diagnostics: {:?}", r.diagnostics);
        assert_eq!(d7[0].line, 7);
        assert!(d7[0].message.contains("load"), "witness path: {}", d7[0].message);
        // `unrelated` is not reachable from the entry point: D4 only.
        assert!(r.diagnostics.iter().any(|d| d.code == "D4" && d.line == 11));
    }

    #[test]
    fn d7_waiver_suppresses_a_proven_site() {
        let src = "\
// lint:entrypoint(untrusted)
pub fn load(lines: &[u32]) -> u32 {
    // lint:allow(D7): header check above guarantees at least one line
    lines[0]
}
";
        let r = lint_source(&meta("crates/core/src/checkpoint.rs"), src);
        assert!(r.is_clean(), "diagnostics: {:?}", r.diagnostics);
        assert_eq!(r.waivers_used, 1);
    }

    #[test]
    fn d8_flags_source_to_sink_paths() {
        let src = "\
pub fn shard_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

// lint:sink(digest)
fn fold_digest(x: u64) -> u64 {
    x
}

pub fn run() -> u64 {
    let n = shard_count();
    fold_digest(n as u64)
}
";
        let r = lint_source(&meta("crates/core/src/engine.rs"), src);
        let d8: Vec<&Diagnostic> =
            r.diagnostics.iter().filter(|d| d.code == "D8").collect();
        // shard_count itself never calls the sink: clean. run() calls
        // both, but contains no source, so the flag lands on… nothing:
        // the taint is function-granular by design. Move the source
        // into run() and it fires.
        assert!(d8.is_empty(), "diagnostics: {:?}", r.diagnostics);
        let src2 = "\
// lint:sink(digest)
fn fold_digest(x: u64) -> u64 {
    x
}

pub fn run() -> u64 {
    let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    fold_digest(n as u64)
}
";
        let r2 = lint_source(&meta("crates/core/src/engine.rs"), src2);
        let d8: Vec<&Diagnostic> =
            r2.diagnostics.iter().filter(|d| d.code == "D8").collect();
        assert_eq!(d8.len(), 1, "diagnostics: {:?}", r2.diagnostics);
        assert_eq!(d8[0].line, 7);
        assert!(d8[0].message.contains("fold_digest"));
    }

    #[test]
    fn d8_respects_the_env_allowlist() {
        let src = "\
fn threads() -> Option<String> {
    std::env::var(\"EYEORG_THREADS\").ok()
}

fn fingerprint_of(x: u64) -> u64 {
    x
}

fn seed() -> u64 {
    let s = std::env::var(\"RANDOM_SEED\").map(|v| v.len() as u64).unwrap_or(0);
    fingerprint_of(s)
}
";
        let r = lint_source(&meta("crates/core/src/engine.rs"), src);
        let d8: Vec<&Diagnostic> =
            r.diagnostics.iter().filter(|d| d.code == "D8").collect();
        assert_eq!(d8.len(), 1, "diagnostics: {:?}", r.diagnostics);
        assert_eq!(d8[0].line, 10);
    }

    #[test]
    fn cfg_test_region_is_exempt_from_d4_but_not_d1() {
        let src = "\
pub fn f() -> u32 { 1 }

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let v = Some(1).unwrap();
        let _ = v;
    }
}
";
        // D4 inside cfg(test) is fine; the HashMap still trips D1.
        assert_eq!(codes(&meta("crates/net/src/sim.rs"), src), vec!["D1"]);
        // After the test module the exemption must end.
        let src2 = format!("{src}\nfn late() {{ Some(1).unwrap(); }}\n");
        assert_eq!(codes(&meta("crates/net/src/sim.rs"), &src2), vec!["D1", "D4"]);
    }

    #[test]
    fn cfg_not_test_does_not_open_a_region() {
        let src = "\
#[cfg(not(test))]
fn f() {
    let v = Some(1).unwrap();
}
";
        assert_eq!(codes(&meta("crates/net/src/sim.rs"), src), vec!["D4"]);
    }

    #[test]
    fn cfg_test_on_use_item_does_not_latch() {
        let src = "\
#[cfg(test)]
use std::cell::Cell;

fn f() {
    let v = Some(1).unwrap();
}
";
        assert_eq!(codes(&meta("crates/net/src/sim.rs"), src), vec!["D4"]);
    }

    #[test]
    fn standalone_waiver_covers_next_line_and_is_consumed() {
        let src = "\
// lint:allow(D4): the map is populated for every key at construction
let v = m.get(&k).unwrap();
";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        assert!(r.is_clean(), "diagnostics: {:?}", r.diagnostics);
        assert_eq!(r.waivers_used, 1);
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let src =
            "let v = m.get(&k).unwrap(); // lint:allow(D4): populated at construction\n";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        assert!(r.is_clean(), "diagnostics: {:?}", r.diagnostics);
        assert_eq!(r.waivers_used, 1);
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let src = "\
// lint:allow(D2): wrong rule entirely
let v = m.get(&k).unwrap();
";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, vec!["unused-waiver", "D4"]);
    }

    #[test]
    fn unused_waiver_is_an_error() {
        let src = "// lint:allow(D4): nothing below ever trips\nlet x = 1;\n";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "unused-waiver");
        assert_eq!(r.diagnostics[0].line, 1);
    }

    #[test]
    fn waiver_without_reason_or_with_bad_rule_is_rejected() {
        let r = lint_source(
            &meta("crates/core/src/analysis.rs"),
            "// lint:allow(D4):\nlet v = x.unwrap();\n",
        );
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, vec!["bad-waiver", "D4"]);

        let r = lint_source(
            &meta("crates/core/src/analysis.rs"),
            "// lint:allow(D9): no such rule\nlet x = 1;\n",
        );
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "bad-waiver");

        let r = lint_source(
            &meta("crates/core/src/analysis.rs"),
            "// lint:allow(D4, n=0): zero makes no sense\nlet v = x.unwrap();\n",
        );
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, vec!["bad-waiver", "D4"]);
    }

    #[test]
    fn one_waiver_covers_one_line_only() {
        let src = "\
// lint:allow(D4): covers only the next line
let a = x.unwrap();
let b = y.unwrap();
";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].line, 3);
    }

    #[test]
    fn patterns_in_strings_and_comments_do_not_trip() {
        let src = r#"
let msg = "never use Instant::now in fingerprinted code";
// HashMap is spelled out here, and .unwrap() too
/* thread::spawn in a block comment */
let re = r"Ordering::Relaxed";
"#;
        let r = lint_source(&meta("crates/net/src/sim.rs"), src);
        assert!(r.is_clean(), "diagnostics: {:?}", r.diagnostics);
    }

    #[test]
    fn waiver_quoted_in_doc_comment_is_inert() {
        let src = "\
//! Example: `// lint:allow(D4): some reason`
/// And again: // lint:allow(D1): quoted
pub fn f() -> u32 {
    1
}
";
        let r = lint_source(&meta("crates/core/src/analysis.rs"), src);
        assert!(r.is_clean(), "diagnostics: {:?}", r.diagnostics);
    }

    #[test]
    fn d3_and_d5_exemptions() {
        let atomics = "x.store(1, Ordering::SeqCst);\n";
        assert_eq!(codes(&meta("crates/stats/src/par.rs"), atomics), vec!["D3"]);
        assert!(codes(&meta("crates/obs/src/lib.rs"), atomics).is_empty());

        let spawn = "std::thread::scope(|s| { s.spawn(f); });\n";
        assert!(codes(&meta("crates/stats/src/par.rs"), spawn).is_empty());
        assert_eq!(codes(&meta("crates/video/src/frame.rs"), spawn), vec!["D5"]);
        // Test code may spawn threads (concurrency tests do).
        assert!(codes(&meta("crates/obs/tests/racing.rs"), spawn).is_empty());
    }

    #[test]
    fn vendor_is_exempt_from_line_rules_but_not_taint() {
        let src = "let v = x.unwrap();\nuse std::collections::HashMap;\n";
        assert!(codes(&meta("vendor/serde_json/src/lib.rs"), src).is_empty());
        let src2 = "\
// lint:entrypoint(untrusted)
pub fn from_str(bytes: &[u8]) -> u32 {
    bytes[0] as u32
}
";
        let got = codes(&meta("vendor/serde_json/src/lib.rs"), src2);
        assert_eq!(got, vec!["D7"]);
    }

    #[test]
    fn baseline_roundtrip_and_gating() {
        let mk = |n: usize| {
            let mut r = Report { files: 1, ..Report::default() };
            for i in 0..n {
                r.diagnostics.push(Diagnostic {
                    path: "crates/stats/src/modes.rs".to_owned(),
                    line: i + 1,
                    code: "D6".to_owned(),
                    message: "m".to_owned(),
                });
            }
            r
        };
        let baseline = parse_baseline("# c\ncrates/stats/src/modes.rs D6 2\n").unwrap();
        // Exact match: suppressed.
        let mut r = mk(2);
        apply_baseline(&mut r, &baseline);
        assert!(r.is_clean());
        assert_eq!(r.baseline_suppressed, 2);
        // Shrunk: stale-baseline error.
        let mut r = mk(1);
        apply_baseline(&mut r, &baseline);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "stale-baseline");
        // Grown: every finding stays visible.
        let mut r = mk(3);
        apply_baseline(&mut r, &baseline);
        assert_eq!(r.diagnostics.len(), 3);
        // Round trip through the text format.
        let r = mk(2);
        let text = format_baseline(&r);
        assert_eq!(parse_baseline(&text).unwrap(), baseline);
        // Only rule codes are baselineable.
        assert!(parse_baseline("a unused-waiver 1\n").is_err());
    }

    #[test]
    fn json_report_is_stable_and_escaped() {
        let mut r = Report { files: 3, waivers_used: 2, ..Report::default() };
        r.diagnostics.push(Diagnostic {
            path: "a/b.rs".to_owned(),
            line: 7,
            code: "D1".to_owned(),
            message: "say \"no\"\nplease".to_owned(),
        });
        r.baselined.push(("c.rs".to_owned(), "D6".to_owned(), 4));
        let json = report_to_json(&r);
        assert_eq!(
            json,
            "{\"version\":1,\"files\":3,\"waivers_used\":2,\"baseline_suppressed\":0,\
             \"clean\":false,\"diagnostics\":[{\"path\":\"a/b.rs\",\"line\":7,\
             \"code\":\"D1\",\"message\":\"say \\\"no\\\"\\nplease\"}],\
             \"baselined\":[{\"path\":\"c.rs\",\"code\":\"D6\",\"count\":4}]}"
        );
    }
}
