//! Deterministic event queue.
//!
//! A binary min-heap keyed on `(time, sequence)`. The monotonically
//! increasing sequence number breaks ties in insertion order, which makes
//! event processing fully deterministic: two events scheduled for the same
//! instant always pop in the order they were pushed, regardless of heap
//! internals. Determinism here is what makes every campaign in the
//! reproduction replayable from a seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event carrying a payload of type `E`.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
///
/// Events may only be scheduled at or after the time of the most recently
/// popped event (the queue's *watermark*); scheduling into the past would
/// violate causality and panics.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    watermark: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with watermark at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, watermark: SimTime::ZERO }
    }

    /// Schedule `payload` to fire at `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the watermark (the time of the
    /// last popped event).
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.watermark,
            "scheduling into the past: {} < watermark {}",
            time,
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Remove and return the earliest event, advancing the watermark.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        self.watermark = ev.time;
        Some((ev.time, ev.payload))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current watermark: no event earlier than this can exist.
    pub fn now(&self) -> SimTime {
        self.watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn watermark_advances() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(10));
        // Scheduling at exactly the watermark is allowed.
        q.schedule(SimTime::from_millis(10), ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(9), ());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1) + SimDuration::from_micros(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1005)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
