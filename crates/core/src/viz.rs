//! Visualisation tools.
//!
//! The paper's §1/Fig. 1 shows Eyeorg's response-exploration tool: the
//! `UserPerceivedPLT` responses of a video rendered as a timeline next to
//! the video so patterns (like the ads-vs-no-ads bimodality) pop out.
//! This module renders terminal equivalents: response timelines with
//! metric markers, ASCII CDFs, and aligned tables — the same views, one
//! medium down.

use eyeorg_stats::{Ecdf, Histogram};

/// Render a response timeline (Fig. 1): a histogram of responses over
/// `[0, max_secs]` as a bar strip, with optional labelled markers (e.g.
/// onload, SpeedIndex) underneath.
pub fn response_timeline(
    responses: &[f64],
    max_secs: f64,
    width: usize,
    markers: &[(char, f64, &str)],
) -> String {
    assert!(width >= 10, "timeline too narrow");
    assert!(max_secs > 0.0, "timeline needs a positive span");
    let hist = Histogram::with_bins(responses, 0.0, max_secs, width)
        // lint:allow(D4): width and max_secs were asserted valid above, so binning succeeds
        .expect("validated parameters");
    let peak = hist.counts().iter().copied().max().unwrap_or(0).max(1);
    const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut strip = String::with_capacity(width);
    for &c in hist.counts() {
        let lvl = if c == 0 { 0 } else { 1 + (usize::try_from(c).unwrap_or(0) * 7) / peak as usize };
        strip.push(LEVELS[lvl.min(8)]);
    }
    let mut out = String::new();
    out.push_str(&format!("responses (n={:>3}) |{strip}|\n", responses.len()));
    // Axis.
    out.push_str(&format!(
        "{:<19}|{}|\n",
        "",
        axis_line(width, max_secs)
    ));
    // Markers.
    for &(symbol, at, label) in markers {
        let pos = ((at / max_secs) * width as f64).round() as usize;
        let pos = pos.min(width.saturating_sub(1));
        let mut line = vec![' '; width];
        line[pos] = symbol;
        out.push_str(&format!(
            "{:<19}|{}| {symbol} = {label} ({at:.2}s)\n",
            "",
            line.iter().collect::<String>()
        ));
    }
    out
}

fn axis_line(width: usize, max_secs: f64) -> String {
    let mut line = vec!['-'; width];
    line[0] = '0';
    let label = format!("{max_secs:.0}s");
    let start = width.saturating_sub(label.len());
    for (i, ch) in label.chars().enumerate() {
        if start + i < width {
            line[start + i] = ch;
        }
    }
    line.into_iter().collect()
}

/// Render one or more CDFs on a shared axis as an ASCII plot: `rows`
/// lines tall, `cols` wide, one glyph per series.
pub fn ascii_cdfs(series: &[(&str, &Ecdf)], rows: usize, cols: usize) -> String {
    assert!(rows >= 4 && cols >= 16, "plot too small");
    assert!(!series.is_empty(), "nothing to plot");
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let lo = series.iter().map(|(_, e)| e.min()).fold(f64::INFINITY, f64::min);
    let hi = series.iter().map(|(_, e)| e.max()).fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let mut grid = vec![vec![' '; cols]; rows];
    for (si, (_, ecdf)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (c, x) in (0..cols)
            .map(|c| lo + span * c as f64 / (cols - 1) as f64)
            .enumerate()
        {
            let y = ecdf.eval(x);
            let r = ((1.0 - y) * (rows - 1) as f64).round() as usize;
            grid[r.min(rows - 1)][c] = glyph;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y = 1.0 - r as f64 / (rows - 1) as f64;
        out.push_str(&format!("{y:>4.2} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!("     {}\n", " ".repeat(0)));
    out.push_str(&format!("      x: {lo:.2} .. {hi:.2}\n"));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("      {} = {name}\n", GLYPHS[si % GLYPHS.len()]));
    }
    out
}

/// Render an (x, y) scatter as an ASCII grid (Fig. 7b's panels), with an
/// `=` diagonal marking y = x when `diagonal` is set.
pub fn ascii_scatter(
    points: &[(f64, f64)],
    rows: usize,
    cols: usize,
    diagonal: bool,
) -> String {
    assert!(rows >= 4 && cols >= 16, "plot too small");
    if points.is_empty() {
        return String::from("(no points)\n");
    }
    let (mut xmin, mut xmax, mut ymin, mut ymax) =
        (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if diagonal {
        // A shared scale keeps the diagonal meaningful.
        xmin = xmin.min(ymin);
        ymin = xmin;
        xmax = xmax.max(ymax);
        ymax = xmax;
    }
    let xs = (xmax - xmin).max(1e-12);
    let ys = (ymax - ymin).max(1e-12);
    let mut grid = vec![vec![' '; cols]; rows];
    if diagonal {
        for (c, x) in (0..cols)
            .map(|c| xmin + xs * c as f64 / (cols - 1) as f64)
            .enumerate()
        {
            let r = ((1.0 - (x - ymin) / ys) * (rows - 1) as f64).round();
            if (0.0..rows as f64).contains(&r) {
                grid[r as usize][c] = '=';
            }
        }
    }
    for &(x, y) in points {
        let c = (((x - xmin) / xs) * (cols - 1) as f64).round() as usize;
        let r = ((1.0 - (y - ymin) / ys) * (rows - 1) as f64).round() as usize;
        grid[r.min(rows - 1)][c.min(cols - 1)] = '*';
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y = ymax - ys * r as f64 / (rows - 1) as f64;
        out.push_str(&format!("{y:>6.1} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!("        x: {xmin:.1} .. {xmax:.1}\n"));
    out
}

/// Render rows as an aligned, pipe-separated table (markdown-ish). The
/// first row is treated as the header.
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, r) in rows.iter().enumerate() {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let cell = r.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
        if ri == 0 {
            out.push('|');
            for w in &widths {
                out.push_str(&format!("{}|", "-".repeat(w + 2)));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_renders_peak_and_markers() {
        let responses = vec![2.0, 2.1, 2.05, 2.2, 6.0];
        let s = response_timeline(&responses, 10.0, 40, &[('O', 4.0, "onload")]);
        assert!(s.contains("n=  5"));
        assert!(s.contains("O = onload (4.00s)"));
        // The densest bin renders the tallest glyph.
        assert!(s.contains('█'));
    }

    #[test]
    fn timeline_out_of_range_marker_clamped() {
        let s = response_timeline(&[1.0], 5.0, 20, &[('X', 99.0, "late")]);
        assert!(s.contains("X = late"));
    }

    #[test]
    #[should_panic(expected = "too narrow")]
    fn timeline_width_validated() {
        response_timeline(&[1.0], 5.0, 3, &[]);
    }

    #[test]
    fn cdf_plot_contains_series_and_legend() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]).unwrap();
        let b = Ecdf::new(&[2.0, 4.0, 6.0]).unwrap();
        let s = ascii_cdfs(&[("fast", &a), ("slow", &b)], 8, 32);
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("* = fast"));
        assert!(s.contains("o = slow"));
    }

    #[test]
    fn scatter_renders_points_and_diagonal() {
        let pts = vec![(1.0, 1.1), (2.0, 2.2), (5.0, 4.5)];
        let s = ascii_scatter(&pts, 8, 32, true);
        assert!(s.contains('*'));
        assert!(s.contains('='));
        assert!(s.contains("x: 1.0 .. 5.0"));
        assert_eq!(ascii_scatter(&[], 8, 32, false), "(no points)\n");
    }

    #[test]
    fn table_aligns_columns() {
        let rows = vec![
            vec!["name".into(), "n".into()],
            vec!["a-long-name".into(), "5".into()],
            vec!["b".into(), "12345".into()],
        ];
        let s = table(&rows);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
        let first_len = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == first_len));
    }

    #[test]
    fn empty_table_is_empty() {
        assert!(table(&[]).is_empty());
    }
}
