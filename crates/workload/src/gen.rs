//! Synthetic website generation.
//!
//! The paper samples real populations: 100 Alexa-top-1M sites with full
//! HTTP/2 support, and 100 of 10,000 ad-displaying sites. This generator
//! produces a *population* with the same load-bearing heterogeneity:
//! object counts and sizes follow the heavy-tailed distributions of
//! 2016-era HTTP Archive censuses (median ~75 objects, ~2.2 MB per page),
//! pages differ in structure by class (news/commerce/blog/landing/media),
//! ads and trackers arrive via script-injection chains, and layout places
//! content above or below a 1280×720 fold.
//!
//! Every draw comes from a per-site seeded RNG, so `site(i)` of a corpus
//! is identical across runs and independent of any other site.

use eyeorg_stats::rng::Rng;

use eyeorg_stats::Seed;

use crate::dist::{lognormal_clamped, lognormal_count};
use crate::resource::{Discovery, OriginRef, Rect, Resource, ResourceId, ResourceKind};
use crate::site::{Origin, Website};

/// Canvas width for all generated sites (the desktop viewport webpeg
/// records at).
pub const CANVAS_WIDTH: u32 = 1280;

/// Fold line (viewport height).
pub const FOLD_Y: u32 = 720;

/// Site archetypes with different structural parameter ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// Long pages, many images, heavy ad/tracker load.
    News,
    /// Product grids, moderate ads, many small images.
    Ecommerce,
    /// Light pages, few third parties.
    Blog,
    /// Minimal single-viewport pages.
    Landing,
    /// Few but large media objects.
    MediaHeavy,
}

/// Per-class generation parameters. Counts are (median, sigma, lo, hi)
/// for clamped log-normal draws; sizes are in bytes.
#[derive(Debug, Clone)]
pub struct ClassParams {
    /// Images: count distribution.
    pub images: (f64, f64, u64, u64),
    /// Scripts (sync + deferred combined).
    pub scripts: (f64, f64, u64, u64),
    /// Stylesheets.
    pub stylesheets: (f64, f64, u64, u64),
    /// Fonts.
    pub fonts: (f64, f64, u64, u64),
    /// Trackers.
    pub trackers: (f64, f64, u64, u64),
    /// Display ads.
    pub ads: (f64, f64, u64, u64),
    /// Social widgets.
    pub widgets: (f64, f64, u64, u64),
    /// Median image size in bytes.
    pub image_size_median: f64,
    /// Page height distribution (median, sigma, lo, hi) in px.
    pub page_height: (f64, f64, u64, u64),
    /// Number of first-party CDN shard origins (inclusive range).
    pub cdn_shards: (u16, u16),
}

impl SiteClass {
    /// The generation parameters of this class, drawn from 2016-era web
    /// census shapes.
    pub fn params(self) -> ClassParams {
        match self {
            SiteClass::News => ClassParams {
                images: (45.0, 0.5, 15, 140),
                scripts: (25.0, 0.4, 8, 60),
                stylesheets: (4.0, 0.4, 1, 8),
                fonts: (4.0, 0.5, 1, 8),
                trackers: (12.0, 0.5, 4, 30),
                ads: (6.0, 0.4, 2, 14),
                widgets: (3.0, 0.6, 0, 8),
                image_size_median: 22_000.0,
                page_height: (6000.0, 0.4, 2500, 14000),
                cdn_shards: (1, 3),
            },
            SiteClass::Ecommerce => ClassParams {
                images: (55.0, 0.5, 20, 150),
                scripts: (20.0, 0.4, 6, 45),
                stylesheets: (3.0, 0.4, 1, 6),
                fonts: (3.0, 0.5, 1, 6),
                trackers: (8.0, 0.5, 2, 20),
                ads: (1.5, 0.7, 0, 5),
                widgets: (2.0, 0.6, 0, 5),
                image_size_median: 15_000.0,
                page_height: (4500.0, 0.4, 2000, 10000),
                cdn_shards: (1, 3),
            },
            SiteClass::Blog => ClassParams {
                images: (15.0, 0.6, 4, 50),
                scripts: (10.0, 0.5, 3, 25),
                stylesheets: (2.0, 0.4, 1, 4),
                fonts: (2.0, 0.5, 0, 5),
                trackers: (4.0, 0.6, 1, 12),
                ads: (1.0, 0.8, 0, 4),
                widgets: (2.0, 0.6, 0, 5),
                image_size_median: 30_000.0,
                page_height: (3500.0, 0.4, 1500, 9000),
                cdn_shards: (0, 1),
            },
            SiteClass::Landing => ClassParams {
                images: (8.0, 0.5, 3, 20),
                scripts: (6.0, 0.5, 2, 15),
                stylesheets: (2.0, 0.3, 1, 3),
                fonts: (2.0, 0.4, 1, 4),
                trackers: (3.0, 0.6, 1, 8),
                ads: (0.2, 0.5, 0, 1),
                widgets: (1.0, 0.6, 0, 3),
                image_size_median: 60_000.0,
                page_height: (1800.0, 0.3, 900, 4000),
                cdn_shards: (0, 1),
            },
            SiteClass::MediaHeavy => ClassParams {
                images: (20.0, 0.5, 8, 60),
                scripts: (15.0, 0.4, 5, 35),
                stylesheets: (3.0, 0.4, 1, 5),
                fonts: (3.0, 0.5, 1, 6),
                trackers: (7.0, 0.5, 2, 18),
                ads: (3.0, 0.6, 1, 8),
                widgets: (2.0, 0.6, 0, 5),
                image_size_median: 90_000.0,
                page_height: (4000.0, 0.4, 1800, 9000),
                cdn_shards: (1, 2),
            },
        }
    }

    /// All classes, for iteration.
    pub const ALL: [SiteClass; 5] = [
        SiteClass::News,
        SiteClass::Ecommerce,
        SiteClass::Blog,
        SiteClass::Landing,
        SiteClass::MediaHeavy,
    ];
}

/// Standard IAB display-ad formats `(w, h)`.
const AD_FORMATS: [(u32, u32); 4] = [(728, 90), (300, 250), (300, 600), (320, 50)];

/// Generate one site of the given class. `index` names the site and
/// derives its private RNG stream from `seed`.
pub fn generate_site(seed: Seed, index: u64, class: SiteClass) -> Website {
    let mut rng = Rng::seed_from_u64(seed.derive_index("site", index).value());
    let p = class.params();

    // Per-site "bloat" factor: real sites have a common speed scale —
    // heavy sites are heavy everywhere (big CSS bundles, fat scripts,
    // slow backends). This shared multiplier on sizes and think times is
    // what makes the cross-site correlations of Fig. 7b possible.
    let bloat = lognormal_clamped(&mut rng, 1.0, 0.35, 0.55, 2.5);

    // ---- origin table -------------------------------------------------
    let mut origins = vec![Origin {
        host: format!("site{index:03}.example"),
        supports_h2: true,
        third_party: false,
    }];
    let shards = rng.random_range(p.cdn_shards.0..=p.cdn_shards.1);
    for s in 0..shards {
        origins.push(Origin {
            host: format!("cdn{s}.site{index:03}.example"),
            supports_h2: true,
            third_party: false,
        });
    }
    // Third parties: a couple of ad networks, an analytics host, a
    // widget host. Ad networks of the era lagged on H2 support.
    let n_adnets = rng.random_range(1..=3u16);
    let first_adnet = origins.len() as u16;
    for a in 0..n_adnets {
        origins.push(Origin {
            host: format!("adnet{a}.thirdparty.example"),
            supports_h2: rng.random_bool(0.4),
            third_party: true,
        });
    }
    let analytics = origins.len() as u16;
    origins.push(Origin {
        host: "analytics.thirdparty.example".into(),
        supports_h2: rng.random_bool(0.6),
        third_party: true,
    });
    let widget_host = origins.len() as u16;
    origins.push(Origin {
        host: "widgets.social.example".into(),
        supports_h2: true,
        third_party: true,
    });
    let first_party_pool: Vec<u16> = (0..=shards).collect();

    // ---- layout state --------------------------------------------------
    let page_height =
        lognormal_count(&mut rng, p.page_height.0, p.page_height.1, p.page_height.2, p.page_height.3)
            as u32;
    // Main column (0..900) and sidebar (950..1250).
    let mut main_y: u32 = 80; // below a header band
    let mut side_y: u32 = 100;

    // ---- helpers -------------------------------------------------------
    let mut resources: Vec<Resource> = Vec::new();
    let mut next_id = 0u32;
    let mut push = |resources: &mut Vec<Resource>, r: Resource| -> ResourceId {
        let id = ResourceId(next_id);
        next_id += 1;
        resources.push(Resource { id, ..r });
        id
    };
    let think = |rng: &mut Rng, third_party: bool| -> u64 {
        let median = if third_party { 55_000.0 } else { 22_000.0 };
        lognormal_clamped(rng, median * bloat, 0.8, 3_000.0, 400_000.0) as u64
    };
    let req_hdr = |rng: &mut Rng| lognormal_clamped(rng, 450.0, 0.3, 200.0, 1500.0) as u64;
    let resp_hdr = |rng: &mut Rng| lognormal_clamped(rng, 320.0, 0.3, 150.0, 900.0) as u64;

    // ---- root document --------------------------------------------------
    let html_bytes = lognormal_clamped(&mut rng, 45_000.0 * bloat, 0.7, 6_000.0, 350_000.0) as u64;
    // Document TTFB dominates first paint on real sites (backends,
    // redirects, geo-routing): a wide, bloat-correlated draw.
    let tk = lognormal_clamped(&mut rng, 200_000.0 * bloat * bloat, 0.55, 30_000.0, 2_500_000.0) as u64;
    let rh = req_hdr(&mut rng);
    let ph = resp_hdr(&mut rng);
    push(
        &mut resources,
        Resource {
            id: ResourceId(0),
            kind: ResourceKind::Html,
            origin: OriginRef(0),
            body_bytes: html_bytes,
            request_header_bytes: rh,
            response_header_bytes: ph,
            // The document's own paint: the text/background of the page.
            rect: Some(Rect { x: 0, y: 0, w: CANVAS_WIDTH, h: page_height }),
            discovery: Discovery::Root,
            render_blocking: false,
            defer: false,
            server_think_us: tk,
        },
    );

    // ---- stylesheets ----------------------------------------------------
    let n_css = lognormal_count(&mut rng, p.stylesheets.0, p.stylesheets.1, p.stylesheets.2, p.stylesheets.3);
    let mut css_ids = Vec::new();
    for _ in 0..n_css {
        let bytes = lognormal_clamped(&mut rng, 28_000.0 * bloat, 0.8, 1_500.0, 120_000.0) as u64;
        let origin = OriginRef(first_party_pool[rng.random_range(0..first_party_pool.len())]);
        let tk = think(&mut rng, false);
        let rh = req_hdr(&mut rng);
        let ph = resp_hdr(&mut rng);
        let at = rng.random_range(0.01f32..0.12);
        let id = push(
            &mut resources,
            Resource {
                id: ResourceId(0),
                kind: ResourceKind::Css,
                origin,
                body_bytes: bytes,
                request_header_bytes: rh,
                response_header_bytes: ph,
                rect: None,
                discovery: Discovery::Html { at_fraction: at },
                render_blocking: true,
                defer: false,
                server_think_us: tk,
            },
        );
        css_ids.push(id);
    }

    // ---- fonts (children of stylesheets) ---------------------------------
    let n_fonts = lognormal_count(&mut rng, p.fonts.0, p.fonts.1, p.fonts.2, p.fonts.3);
    for _ in 0..n_fonts {
        if css_ids.is_empty() {
            break;
        }
        let parent = css_ids[rng.random_range(0..css_ids.len())];
        let bytes = lognormal_clamped(&mut rng, 26_000.0, 0.5, 8_000.0, 120_000.0) as u64;
        let origin = OriginRef(first_party_pool[rng.random_range(0..first_party_pool.len())]);
        let tk = think(&mut rng, false);
        let rh = req_hdr(&mut rng);
        let ph = resp_hdr(&mut rng);
        push(
            &mut resources,
            Resource {
                id: ResourceId(0),
                kind: ResourceKind::Font,
                origin,
                body_bytes: bytes,
                request_header_bytes: rh,
                response_header_bytes: ph,
                rect: None,
                discovery: Discovery::Parent { parent },
                render_blocking: true,
                defer: false,
                server_think_us: tk,
            },
        );
    }

    // ---- scripts ----------------------------------------------------------
    let n_scripts = lognormal_count(&mut rng, p.scripts.0, p.scripts.1, p.scripts.2, p.scripts.3);
    for _ in 0..n_scripts {
        let bytes = lognormal_clamped(&mut rng, 35_000.0 * bloat, 0.9, 1_000.0, 500_000.0) as u64;
        let origin = OriginRef(first_party_pool[rng.random_range(0..first_party_pool.len())]);
        let defer = rng.random_bool(0.55);
        let at = if defer { rng.random_range(0.1f32..0.95) } else { rng.random_range(0.03f32..0.5) };
        let tk = think(&mut rng, false);
        let rh = req_hdr(&mut rng);
        let ph = resp_hdr(&mut rng);
        push(
            &mut resources,
            Resource {
                id: ResourceId(0),
                kind: ResourceKind::Js,
                origin,
                body_bytes: bytes,
                request_header_bytes: rh,
                response_header_bytes: ph,
                rect: None,
                discovery: Discovery::Html { at_fraction: at },
                render_blocking: false,
                defer,
                server_think_us: tk,
            },
        );
    }

    // ---- images -------------------------------------------------------------
    let n_images = lognormal_count(&mut rng, p.images.0, p.images.1, p.images.2, p.images.3);
    for i in 0..n_images {
        let bytes =
            lognormal_clamped(&mut rng, p.image_size_median * bloat, 1.0, 500.0, 1_500_000.0)
                as u64;
        let origin = OriginRef(first_party_pool[rng.random_range(0..first_party_pool.len())]);
        // First image is the hero (big, above the fold); the rest flow
        // down the main column.
        let rect = if i == 0 {
            Rect { x: 0, y: 80, w: 900, h: rng.random_range(250..480) }
        } else {
            let h = rng.random_range(120..360);
            let w = rng.random_range(250..880);
            let y = main_y.min(page_height.saturating_sub(h + 1));
            main_y = (main_y + h + rng.random_range(30..220)).min(page_height);
            Rect { x: rng.random_range(0..(900 - w)), y, w, h }
        };
        // Document order correlates with layout: earlier images appear
        // higher on the page.
        let at = ((rect.y as f32 / page_height.max(1) as f32) * 0.8 + 0.1).clamp(0.1, 0.95);
        let tk = think(&mut rng, false);
        let rh = req_hdr(&mut rng);
        let ph = resp_hdr(&mut rng);
        push(
            &mut resources,
            Resource {
                id: ResourceId(0),
                kind: ResourceKind::Image,
                origin,
                body_bytes: bytes,
                request_header_bytes: rh,
                response_header_bytes: ph,
                rect: Some(rect),
                discovery: Discovery::Html { at_fraction: at },
                render_blocking: false,
                defer: false,
                server_think_us: tk,
            },
        );
    }

    // ---- late-blooming above-fold content ---------------------------------------
    // Roughly half of real pages finish their viewport late: a carousel
    // pane, a lazy hero variant, or an A/B-tested banner referenced deep
    // in the document. This is what puts human "ready" close to onload on
    // a sizable fraction of sites (Fig. 7c's 30%-within-100 ms block).
    if rng.random_bool(0.45) {
        let w = rng.random_range(400..760u32);
        let h = rng.random_range(200..380u32);
        let rect = Rect {
            x: rng.random_range(0..(900 - w)),
            y: rng.random_range(120..340),
            w,
            h,
        };
        let bytes =
            lognormal_clamped(&mut rng, p.image_size_median * bloat * 2.5, 0.5, 20_000.0, 2_000_000.0)
                as u64;
        let origin = OriginRef(first_party_pool[rng.random_range(0..first_party_pool.len())]);
        let tk = think(&mut rng, false);
        let rh = req_hdr(&mut rng);
        let ph = resp_hdr(&mut rng);
        push(
            &mut resources,
            Resource {
                id: ResourceId(0),
                kind: ResourceKind::Image,
                origin,
                body_bytes: bytes,
                request_header_bytes: rh,
                response_header_bytes: ph,
                rect: Some(rect),
                discovery: Discovery::Html { at_fraction: rng.random_range(0.85f32..0.97) },
                render_blocking: false,
                defer: false,
                server_think_us: tk,
            },
        );
    }

    // ---- trackers --------------------------------------------------------------
    let n_trackers = lognormal_count(&mut rng, p.trackers.0, p.trackers.1, p.trackers.2, p.trackers.3);
    let mut tracker_ids = Vec::new();
    for _ in 0..n_trackers {
        let bytes = lognormal_clamped(&mut rng, 9_000.0, 1.0, 400.0, 120_000.0) as u64;
        let origin = if rng.random_bool(0.5) {
            OriginRef(analytics)
        } else {
            OriginRef(first_adnet + rng.random_range(0..n_adnets))
        };
        let tk = think(&mut rng, true);
        let rh = req_hdr(&mut rng);
        let ph = resp_hdr(&mut rng);
        let id = push(
            &mut resources,
            Resource {
                id: ResourceId(0),
                kind: ResourceKind::Tracker,
                origin,
                body_bytes: bytes,
                request_header_bytes: rh,
                response_header_bytes: ph,
                rect: None,
                discovery: Discovery::Html { at_fraction: rng.random_range(0.2f32..0.95) },
                render_blocking: false,
                defer: rng.random_bool(0.8),
                server_think_us: tk,
            },
        );
        tracker_ids.push(id);
    }

    // ---- ads -----------------------------------------------------------------------
    let n_ads = lognormal_count(&mut rng, p.ads.0.max(0.05), p.ads.1, p.ads.2, p.ads.3);
    for i in 0..n_ads {
        let (w, h) = AD_FORMATS[rng.random_range(0..AD_FORMATS.len())];
        // Standard slots: leaderboard top (often above fold), sidebar
        // rectangles, in-content ads below.
        let rect = if i == 0 && w == 728 {
            Rect { x: 276, y: 0, w, h } // top leaderboard, above fold
        } else if w == 300 {
            let y = side_y.min(page_height.saturating_sub(h + 1));
            side_y = (side_y + h + rng.random_range(80..400)).min(page_height);
            Rect { x: 950, y, w, h }
        } else {
            let y = main_y.min(page_height.saturating_sub(h + 1));
            main_y = (main_y + h + rng.random_range(60..300)).min(page_height);
            Rect { x: 100, y, w, h }
        };
        let bytes = lognormal_clamped(&mut rng, 16_000.0, 0.9, 2_000.0, 400_000.0) as u64;
        let origin = OriginRef(first_adnet + rng.random_range(0..n_adnets));
        // Most ads are script-injected by a tracker (late, possibly
        // post-onload); a minority are plain iframes in the HTML.
        let discovery = if !tracker_ids.is_empty() && rng.random_bool(0.75) {
            Discovery::Parent { parent: tracker_ids[rng.random_range(0..tracker_ids.len())] }
        } else {
            Discovery::Html { at_fraction: rng.random_range(0.3f32..0.9) }
        };
        let tk = think(&mut rng, true);
        let rh = req_hdr(&mut rng);
        let ph = resp_hdr(&mut rng);
        push(
            &mut resources,
            Resource {
                id: ResourceId(0),
                kind: ResourceKind::Ad,
                origin,
                body_bytes: bytes,
                request_header_bytes: rh,
                response_header_bytes: ph,
                rect: Some(rect),
                discovery,
                render_blocking: false,
                defer: false,
                server_think_us: tk,
            },
        );
    }

    // ---- widgets ---------------------------------------------------------------------
    let n_widgets = lognormal_count(&mut rng, p.widgets.0.max(0.05), p.widgets.1, p.widgets.2, p.widgets.3);
    for _ in 0..n_widgets {
        let w = rng.random_range(200..320);
        let h = rng.random_range(60..200);
        let y = main_y.min(page_height.saturating_sub(h + 1));
        main_y = (main_y + h + rng.random_range(40..200)).min(page_height);
        let rect = Rect { x: rng.random_range(0..(900 - w)), y, w, h };
        let bytes = lognormal_clamped(&mut rng, 25_000.0, 0.8, 3_000.0, 200_000.0) as u64;
        let discovery = if !tracker_ids.is_empty() && rng.random_bool(0.4) {
            Discovery::Parent { parent: tracker_ids[rng.random_range(0..tracker_ids.len())] }
        } else {
            Discovery::Html { at_fraction: rng.random_range(0.4f32..0.95) }
        };
        let tk = think(&mut rng, true);
        let rh = req_hdr(&mut rng);
        let ph = resp_hdr(&mut rng);
        push(
            &mut resources,
            Resource {
                id: ResourceId(0),
                kind: ResourceKind::Widget,
                origin: OriginRef(widget_host),
                body_bytes: bytes,
                request_header_bytes: rh,
                response_header_bytes: ph,
                rect: Some(rect),
                discovery,
                render_blocking: false,
                defer: false,
                server_think_us: tk,
            },
        );
    }

    Website {
        name: format!("site{index:03}.example"),
        origins,
        resources,
        canvas_width: CANVAS_WIDTH,
        page_height,
        fold_y: FOLD_Y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sites_validate() {
        for class in SiteClass::ALL {
            for i in 0..10 {
                let site = generate_site(Seed(7), i, class);
                let errs = site.validate();
                assert!(errs.is_empty(), "{class:?} site {i}: {errs:?}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_independent() {
        let a = generate_site(Seed(1), 5, SiteClass::News);
        let b = generate_site(Seed(1), 5, SiteClass::News);
        assert_eq!(a, b);
        // Site 5 is unchanged regardless of whether other sites exist.
        let c = generate_site(Seed(1), 6, SiteClass::News);
        assert_ne!(a, c);
    }

    #[test]
    fn class_heterogeneity_shows() {
        let avg = |class: SiteClass, f: &dyn Fn(&Website) -> f64| -> f64 {
            (0..20).map(|i| f(&generate_site(Seed(3), i, class))).sum::<f64>() / 20.0
        };
        let news_objs = avg(SiteClass::News, &|s| s.resources.len() as f64);
        let landing_objs = avg(SiteClass::Landing, &|s| s.resources.len() as f64);
        assert!(news_objs > 2.0 * landing_objs, "news {news_objs} vs landing {landing_objs}");
        let news_ads = avg(SiteClass::News, &|s| s.count_kind(ResourceKind::Ad) as f64);
        let blog_ads = avg(SiteClass::Blog, &|s| s.count_kind(ResourceKind::Ad) as f64);
        assert!(news_ads > blog_ads);
        let media_bytes = avg(SiteClass::MediaHeavy, &|s| s.total_bytes() as f64);
        let landing_bytes = avg(SiteClass::Landing, &|s| s.total_bytes() as f64);
        assert!(media_bytes > landing_bytes);
    }

    #[test]
    fn sites_have_reasonable_2016_era_shape() {
        // Across a mixed sample: median object count and page weight in
        // the ballpark of 2016 HTTP Archive numbers.
        let mut counts = Vec::new();
        let mut bytes = Vec::new();
        for i in 0..60 {
            let class = SiteClass::ALL[(i % 5) as usize];
            let s = generate_site(Seed(11), i, class);
            counts.push(s.resources.len() as f64);
            bytes.push(s.total_bytes() as f64);
        }
        let med_count = eyeorg_stats::percentile(&counts, 50.0).unwrap();
        let med_bytes = eyeorg_stats::percentile(&bytes, 50.0).unwrap();
        assert!((25.0..150.0).contains(&med_count), "median objects {med_count}");
        assert!((500_000.0..5_000_000.0).contains(&med_bytes), "median bytes {med_bytes}");
    }

    #[test]
    fn ads_mostly_script_injected() {
        let mut injected = 0;
        let mut total = 0;
        for i in 0..30 {
            let s = generate_site(Seed(5), i, SiteClass::News);
            for r in &s.resources {
                if r.kind == ResourceKind::Ad {
                    total += 1;
                    if matches!(r.discovery, Discovery::Parent { .. }) {
                        injected += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            injected as f64 / total as f64 > 0.5,
            "most ads should be script-injected ({injected}/{total})"
        );
    }

    #[test]
    fn some_content_above_and_below_fold() {
        let s = generate_site(Seed(9), 0, SiteClass::News);
        let above = s.above_fold_resources().len();
        let visual = s.resources.iter().filter(|r| r.rect.is_some()).count();
        assert!(above >= 2, "hero/header content above fold");
        assert!(above < visual, "long pages must also have below-fold content");
    }

    #[test]
    fn third_party_origins_marked() {
        let s = generate_site(Seed(2), 0, SiteClass::News);
        assert!(!s.origins[0].third_party);
        assert!(s.origins.iter().any(|o| o.third_party));
        // Every ad/tracker resource lives on a third-party origin.
        for r in &s.resources {
            if matches!(r.kind, ResourceKind::Ad | ResourceKind::Tracker) {
                assert!(s.origins[r.origin.0 as usize].third_party, "{:?}", r.kind);
            }
        }
    }
}
