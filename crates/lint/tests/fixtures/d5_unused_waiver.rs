//! D5 unused waiver: the work runs inline.

// lint:allow(D5): kept by mistake when the spawn was inlined
pub fn run(work: impl FnOnce()) {
    work();
}
