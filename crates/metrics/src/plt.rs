//! The four automatic PLT metrics of §5.2.
//!
//! * **OnLoad** — "the time it takes for the JavaScript onLoad event to
//!   fire"; the de-facto standard metric the paper interrogates.
//! * **SpeedIndex** — "the average time at which visible parts of the
//!   page are displayed": the area above the visual-completeness curve.
//! * **FirstVisualChange / LastVisualChange** — "the times at which the
//!   first pixels are drawn and the last pixels stop changing on the
//!   user's screen" (viewport-clipped).
//!
//! All four are computed from a capture ([`eyeorg_video::Video`]) the
//! same way a WebPageTest-style pipeline extracts them from real
//! captures, so their disagreements with human perception are emergent,
//! not scripted.

use eyeorg_net::{SimDuration, SimTime};
use eyeorg_video::Video;

use crate::progress::visual_progress_curve;

/// The metric bundle for one capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PltMetrics {
    /// onload event time.
    pub onload: Option<SimTime>,
    /// SpeedIndex (a duration: smaller is better).
    pub speed_index: Option<SimDuration>,
    /// First viewport pixel change.
    pub first_visual_change: Option<SimTime>,
    /// Last viewport pixel change.
    pub last_visual_change: Option<SimTime>,
}

/// Names of the four metrics, in the paper's reporting order.
pub const METRIC_NAMES: [&str; 4] =
    ["onload", "speedindex", "lastvisualchange", "firstvisualchange"];

impl PltMetrics {
    /// Look a metric up by its [`METRIC_NAMES`] name, in seconds.
    pub fn by_name(&self, name: &str) -> Option<f64> {
        match name {
            "onload" => self.onload.map(|t| t.as_secs_f64()),
            "speedindex" => self.speed_index.map(|d| d.as_secs_f64()),
            "firstvisualchange" => self.first_visual_change.map(|t| t.as_secs_f64()),
            "lastvisualchange" => self.last_visual_change.map(|t| t.as_secs_f64()),
            _ => None,
        }
    }
}

/// Compute all four metrics for a capture.
pub fn compute_metrics(video: &Video) -> PltMetrics {
    let fold = video.trace().fold_y;
    // A WebPageTest-style pipeline only sees the recorded video: paints
    // beyond the capture window (late ad rotations) cannot move the
    // metrics, so clamp to the recording end.
    let end = SimTime::from_micros(video.duration().as_micros());
    let viewport_paints: Vec<SimTime> = video
        .trace()
        .paints
        .iter()
        .filter(|p| p.time <= end)
        .filter(|p| p.rect.above_fold(fold).is_some())
        .map(|p| p.time)
        .collect();
    let first_visual_change = viewport_paints.first().copied();
    let last_visual_change = viewport_paints.last().copied();
    PltMetrics {
        onload: video.trace().onload,
        speed_index: speed_index(video),
        first_visual_change,
        last_visual_change,
    }
}

/// SpeedIndex: the area above the visual-completeness curve,
/// `∫ (1 − completeness(t)) dt`, integrated step-wise from 0 to the last
/// visual change. `None` when nothing ever paints in the viewport.
pub fn speed_index(video: &Video) -> Option<SimDuration> {
    let curve = visual_progress_curve(video);
    if curve.len() < 2 {
        return None;
    }
    let mut area_us = 0.0f64;
    for w in curve.windows(2) {
        let (t0, c0) = w[0];
        let (t1, _) = w[1];
        // The curve is a step function: completeness holds at c0 until t1.
        area_us += (1.0 - c0) * (t1.as_micros() - t0.as_micros()) as f64;
    }
    Some(SimDuration::from_micros(area_us.round() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_browser::{load_page, BrowserConfig};
    use eyeorg_stats::Seed;
    use eyeorg_workload::{generate_site, SiteClass};

    fn capture(class: SiteClass, idx: u64, seed: u64) -> Video {
        let site = generate_site(Seed(idx + 50), idx, class);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(seed));
        Video::capture(trace, 10, SimDuration::from_secs(4))
    }

    #[test]
    fn metric_ordering_invariants() {
        for i in 0..6 {
            let v = capture(SiteClass::ALL[(i % 5) as usize], i, i);
            let m = compute_metrics(&v);
            let fvc = m.first_visual_change.unwrap();
            let lvc = m.last_visual_change.unwrap();
            let si = m.speed_index.unwrap();
            assert!(fvc <= lvc, "site {i}");
            // SpeedIndex lies between FVC and LVC by construction.
            assert!(si.as_micros() >= fvc.as_micros(), "site {i}: SI {si} < FVC {fvc}");
            assert!(si.as_micros() <= lvc.as_micros(), "site {i}: SI {si} > LVC {lvc}");
            assert!(m.onload.is_some());
        }
    }

    #[test]
    fn by_name_lookup() {
        let v = capture(SiteClass::Blog, 0, 1);
        let m = compute_metrics(&v);
        for name in METRIC_NAMES {
            assert!(m.by_name(name).is_some(), "{name}");
        }
        assert!(m.by_name("nonsense").is_none());
        assert_eq!(m.by_name("onload").unwrap(), m.onload.unwrap().as_secs_f64());
    }

    #[test]
    fn speed_index_penalises_late_painting() {
        // Among repeated loads of the same site, a load whose content
        // appears later must have a larger SpeedIndex. Compare a site on
        // a fast vs a slow network.
        let site = generate_site(Seed(60), 0, SiteClass::Blog);
        let fast = Video::capture(
            load_page(&site, &BrowserConfig::new(), Seed(2)),
            10,
            SimDuration::from_secs(4),
        );
        let slow_cfg =
            BrowserConfig::new().with_network(eyeorg_net::NetworkProfile::mobile_3g());
        let slow = Video::capture(
            load_page(&site, &slow_cfg, Seed(2)),
            10,
            SimDuration::from_secs(4),
        );
        let si_fast = speed_index(&fast).unwrap();
        let si_slow = speed_index(&slow).unwrap();
        assert!(si_slow > si_fast, "slow {si_slow} vs fast {si_fast}");
    }

    #[test]
    fn onload_may_precede_last_visual_change() {
        // Ad rotations and post-onload injected ads mean LVC regularly
        // exceeds OnLoad on ad-carrying sites — the pathology behind
        // LastVisualChange's poor correlation in Fig. 7b.
        let mut late_paint_sites = 0;
        for i in 0..8 {
            let v = capture(SiteClass::News, i, 100 + i);
            let m = compute_metrics(&v);
            if m.last_visual_change.unwrap() > m.onload.unwrap() {
                late_paint_sites += 1;
            }
        }
        assert!(
            late_paint_sites >= 4,
            "expected most news sites to paint after onload, got {late_paint_sites}/8"
        );
    }
}
