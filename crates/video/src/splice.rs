//! A/B splicing: two captures in one file.
//!
//! §3.2: "There is no guarantee that two videos in a browser stay
//! perfectly synchronized … To ensure the videos stay synchronized, we
//! splice them into a single video file. If playback stalls, both sides
//! are affected equally." The A/B control question (§3.3) shows "two
//! copies of the same video with one side artificially delayed by three
//! seconds".

use eyeorg_net::{SimDuration, SimTime};

use crate::capture::Video;
use crate::frame::Frame;

/// Which side the "A" capture landed on (pairs are shown in random
/// order: "'A' is not always on the left").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbOrder {
    /// A on the left, B on the right.
    ALeft,
    /// B on the left, A on the right.
    BLeft,
}

/// Two captures spliced side by side into one synchronized video.
#[derive(Debug, Clone)]
pub struct SplicedVideo {
    left: Video,
    right: Video,
    /// Artificial start delay applied to the right side (control
    /// questions use 3 s on a copy of the same capture).
    right_delay: SimDuration,
    fps: u32,
}

impl SplicedVideo {
    /// Splice `left` and `right`. Both must share an fps (webpeg captures
    /// at a fixed rate).
    ///
    /// # Panics
    /// Panics when the frame rates differ.
    pub fn new(left: Video, right: Video, right_delay: SimDuration) -> SplicedVideo {
        assert_eq!(left.fps(), right.fps(), "spliced sides must share fps");
        let fps = left.fps();
        SplicedVideo { left, right, right_delay, fps }
    }

    /// The left-side capture.
    pub fn left(&self) -> &Video {
        &self.left
    }

    /// The right-side capture.
    pub fn right(&self) -> &Video {
        &self.right
    }

    /// The artificial delay applied to the right side.
    pub fn right_delay(&self) -> SimDuration {
        self.right_delay
    }

    /// Frames per second.
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// Wall duration: long enough for both sides (including the delay).
    pub fn duration(&self) -> SimDuration {
        let l = self.left.duration();
        let r = self.right.duration() + self.right_delay;
        if l >= r {
            l
        } else {
            r
        }
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        let step = 1_000_000u64 / u64::from(self.fps);
        (self.duration().as_micros() / step + 1) as usize
    }

    /// Render frame `i`: left at `t`, right at `t - delay` (blank while
    /// the delay has not elapsed).
    pub fn frame(&self, i: usize) -> Frame {
        let step = 1_000_000u64 / u64::from(self.fps);
        let t = SimTime::from_micros(i as u64 * step);
        let lf = self.left.render_at(t);
        let rf = if t.as_micros() >= self.right_delay.as_micros() {
            self.right
                .render_at(SimTime::from_micros(t.as_micros() - self.right_delay.as_micros()))
        } else {
            let probe = self.right.render_at(SimTime::ZERO);
            Frame::blank(probe.width(), probe.height())
        };
        lf.side_by_side(&rf)
    }
}

/// Build the §3.3 A/B control: the same capture on both sides with the
/// right side delayed 3 s. A correct answer picks the *left* (undelayed)
/// side.
pub fn control_splice(video: Video) -> SplicedVideo {
    SplicedVideo::new(video.clone(), video, SimDuration::from_secs(3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_browser::{load_page, BrowserConfig};
    use eyeorg_stats::Seed;
    use eyeorg_workload::{generate_site, SiteClass};

    fn video(seed: u64) -> Video {
        let site = generate_site(Seed(seed), 0, SiteClass::Blog);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(seed));
        Video::capture(trace, 10, SimDuration::from_secs(2))
    }

    #[test]
    fn splice_dimensions() {
        let s = SplicedVideo::new(video(1), video(2), SimDuration::ZERO);
        let f = s.frame(0);
        assert_eq!(f.width(), 64 + 1 + 64);
        assert_eq!(f.height(), 36);
    }

    #[test]
    fn duration_covers_both_sides() {
        let a = video(1);
        let b = video(2);
        let d_a = a.duration();
        let d_b = b.duration();
        let s = SplicedVideo::new(a, b, SimDuration::from_secs(5));
        assert!(s.duration().as_micros() >= d_a.as_micros());
        assert!(s.duration().as_micros() >= d_b.as_micros() + 5_000_000);
    }

    #[test]
    fn delayed_side_starts_blank() {
        let v = video(3);
        // Probe just after the left side's first visual change; the right
        // side (3s delay) must still be blank there.
        // (The right side is blank at `fvc + 0.2s` for any fvc: the
        // delayed side's clock reads `fvc - 2.8s`, before its own fvc.)
        // Use the first *viewport-visible* paint — frames only show the
        // region above the fold.
        let fold = v.trace().fold_y;
        let fvc = v
            .trace()
            .paints
            .iter()
            .find(|p| p.rect.above_fold(fold).is_some())
            .expect("something paints in the viewport")
            .time;
        let probe = fvc + SimDuration::from_millis(200);
        let s = control_splice(v);
        let step_frames = (probe.as_micros() / 100_000) as usize; // 10 fps
        let f = s.frame(step_frames);
        // Left half: some paint; right half: blank.
        let w = 64;
        let mut left_painted = 0;
        let mut right_painted = 0;
        for y in 0..f.height() {
            for x in 0..w {
                if f.get(x, y) != crate::frame::BLANK {
                    left_painted += 1;
                }
                if f.get(w + 1 + x, y) != crate::frame::BLANK {
                    right_painted += 1;
                }
            }
        }
        assert!(left_painted > 0, "left side should have painted by 1s");
        assert_eq!(right_painted, 0, "delayed side must still be blank");
    }

    #[test]
    fn delayed_side_lags_left_by_exactly_the_delay() {
        // The control splice shows the same capture on both sides, the
        // right delayed 3 s: the right half at frame i must equal the
        // left half at frame i - 30 (10 fps). Ads may still be rotating,
        // so the two halves of a single frame legitimately differ — the
        // invariant is the time shift.
        let s = control_splice(video(4));
        let shift = 30; // 3 s at 10 fps
        let i = s.frame_count() - 1;
        let now = s.frame(i);
        let earlier = s.frame(i - shift);
        let w = 64;
        for y in 0..now.height() {
            for x in 0..w {
                assert_eq!(
                    now.get(w + 1 + x, y),
                    earlier.get(x, y),
                    "right@{i} != left@{} at ({x},{y})",
                    i - shift
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "share fps")]
    fn mismatched_fps_panics() {
        let a = video(1);
        let site = generate_site(Seed(9), 0, SiteClass::Blog);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(9));
        let b = Video::capture(trace, 25, SimDuration::from_secs(2));
        let _ = SplicedVideo::new(a, b, SimDuration::ZERO);
    }
}
