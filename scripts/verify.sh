#!/usr/bin/env bash
# Tier-1 verification: build, test, lint, and the determinism-checking
# perf harness. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

# All scratch fingerprint/checkpoint files are cleaned by one EXIT trap
# (they used to leak whenever a `cmp` gate tripped before the per-block
# `rm`). results/RUN_report.json, results/LIVE_smoke.jsonl, and the
# BENCH_*.json measurements are artifacts and stay.
trap 'rm -f results/.RUN_fp_* results/.SCALE_fp_* results/.ADAPT_fp_* \
    results/.CKPT_fp_* results/.ckpt_w*.jsonl' EXIT

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
# Determinism/panic-surface/taint static analysis (rules D1-D8,
# DESIGN.md §3e/§3j): exits non-zero with path:line diagnostics on any
# finding not covered by an inline waiver or the checked-in D6 baseline
# (crates/lint/lint-baseline.txt). The machine-readable report lands in
# results/ so CI uploads it next to the bench artifacts.
cargo run -q --release -p eyeorg-lint --bin lint -- --json-out results/LINT_report.json
# Seeded-interleaving race exerciser: the campaign pipeline and the
# capture cache's per-key OnceLock cells must produce identical digests
# and counters at 1/2/4 threads under adversarial yield schedules. The
# explicit EYEORG_THREADS pin bypasses the hardware clamp so real
# multi-thread pools run even on 1-core CI boxes.
EYEORG_THREADS=4 cargo run -q --release -p eyeorg-lint --bin stress
# Times the pipeline at 1/2/N threads and exits non-zero when any
# thread count produces a campaign that differs from the 1-thread run.
cargo run -q --release -p eyeorg-bench --bin perf_pipeline
# Times the single-thread hot paths (batched TCP simulation, COW frame
# timelines, incremental curves) against their in-process reference
# implementations and exits non-zero on any output divergence.
cargo run -q --release -p eyeorg-bench --bin perf_hotpath -- --smoke
# The observability layer's determinism contract: the counter section of
# the run report must be byte-identical at 1 thread, 2 threads, and the
# hardware default. The canonical results/RUN_report.json comes from the
# final (auto-threaded) run.
EYEORG_THREADS=1 cargo run -q --release -p eyeorg-bench --bin run_report -- \
    --out results/RUN_report.json --fingerprint-out results/.RUN_fp_1
EYEORG_THREADS=2 cargo run -q --release -p eyeorg-bench --bin run_report -- \
    --out results/RUN_report.json --fingerprint-out results/.RUN_fp_2
cargo run -q --release -p eyeorg-bench --bin run_report -- \
    --out results/RUN_report.json --fingerprint-out results/.RUN_fp_auto
cmp results/.RUN_fp_1 results/.RUN_fp_2
cmp results/.RUN_fp_1 results/.RUN_fp_auto
# Campaign-engine divergence gate: the smoke run exits non-zero when the
# streaming engine (any shard size) or the flat data-plane engine (any
# shard size x thread knob) produces a digest or counter fingerprint
# that differs from the materializing engine, and the written
# fingerprints — streaming and flat, digests and counters — must be
# byte-identical at 1 thread, 2 threads, and the hardware default. (The
# full 1M-participant measurement is `perf_scale` with no flags; it
# writes results/BENCH_scale.json with the flat-vs-streaming floor.)
EYEORG_THREADS=1 cargo run -q --release -p eyeorg-bench --bin perf_scale -- \
    --smoke --fingerprint-out results/.SCALE_fp_1
EYEORG_THREADS=2 cargo run -q --release -p eyeorg-bench --bin perf_scale -- \
    --smoke --fingerprint-out results/.SCALE_fp_2
cargo run -q --release -p eyeorg-bench --bin perf_scale -- \
    --smoke --fingerprint-out results/.SCALE_fp_auto
cmp results/.SCALE_fp_1 results/.SCALE_fp_2
cmp results/.SCALE_fp_1 results/.SCALE_fp_auto
# Behavioural-model fast-path gate (DESIGN.md §3k): the smoke run exits
# non-zero when the demand-driven model path (trait cursors, hoisted
# seed parents, bulk-seeded sessions, draw-elided responses) diverges
# from the pre-fast-path reference on any scenario checksum, or when
# the measured model-path speedup falls below the smoke regression
# floor. Writes results/BENCH_model.json (uploaded by CI; the full-size
# run is `perf_model` with no flags and gates the 1.8x target).
cargo run -q --release -p eyeorg-bench --bin perf_model -- --smoke
# Adaptive early-stopping divergence gate (DESIGN.md §3h): the smoke run
# exits non-zero when an inactive rule (epsilon = 0) differs from the
# streaming engine in digest or counter fingerprint, or when an active
# rule's decision sequence / digest / counters vary across backends,
# shard sizes, thread knobs, or chaos seeds — and the written
# fingerprints must be byte-identical at 1 thread, 2 threads, and the
# hardware default. The full run then measures the 1M-participant
# campaign and exits non-zero unless the adaptive run simulates >= 3x
# fewer participants with every UPLT percentile inside the declared
# tolerance (writes results/BENCH_adaptive.json).
EYEORG_THREADS=1 cargo run -q --release -p eyeorg-bench --bin perf_adaptive -- \
    --smoke --fingerprint-out results/.ADAPT_fp_1
EYEORG_THREADS=2 cargo run -q --release -p eyeorg-bench --bin perf_adaptive -- \
    --smoke --fingerprint-out results/.ADAPT_fp_2
cargo run -q --release -p eyeorg-bench --bin perf_adaptive -- \
    --smoke --fingerprint-out results/.ADAPT_fp_auto
cmp results/.ADAPT_fp_1 results/.ADAPT_fp_2
cmp results/.ADAPT_fp_1 results/.ADAPT_fp_auto
cargo run -q --release -p eyeorg-bench --bin perf_adaptive
# Checkpoint/resume gate (DESIGN.md §3i): the smoke run exits non-zero
# when an interrupt → save → load → resume run (plain or adaptive, both
# backends, A/B included) differs from the uninterrupted run in digest,
# decision, or counter fingerprint, or when the live JSONL stream's
# final line differs from the end-of-run digest read-out. Fingerprints
# must be byte-identical at 1 thread, 2 threads, and the hardware
# default; results/LIVE_smoke.jsonl is the live-analytics artifact.
EYEORG_THREADS=1 cargo run -q --release -p eyeorg-bench --bin merge_digests -- \
    --smoke --fingerprint-out results/.CKPT_fp_1
EYEORG_THREADS=2 cargo run -q --release -p eyeorg-bench --bin merge_digests -- \
    --smoke --fingerprint-out results/.CKPT_fp_2
cargo run -q --release -p eyeorg-bench --bin merge_digests -- \
    --smoke --fingerprint-out results/.CKPT_fp_auto --live-out results/LIVE_smoke.jsonl
cmp results/.CKPT_fp_1 results/.CKPT_fp_2
cmp results/.CKPT_fp_1 results/.CKPT_fp_auto
# Multi-process split/merge gate: three real child processes each run a
# disjoint slice of the same campaign — at different thread counts and
# through different backends — and write checkpoint files; merging them
# must reproduce the single-process digest AND counter fingerprints
# byte for byte.
cargo run -q --release -p eyeorg-bench --bin merge_digests -- \
    --worker 0 150 --out results/.ckpt_w1.jsonl &
EYEORG_THREADS=1 cargo run -q --release -p eyeorg-bench --bin merge_digests -- \
    --worker 150 300 --out results/.ckpt_w2.jsonl --flat &
EYEORG_THREADS=2 cargo run -q --release -p eyeorg-bench --bin merge_digests -- \
    --worker 300 400 --out results/.ckpt_w3.jsonl &
wait
cargo run -q --release -p eyeorg-bench --bin merge_digests -- \
    --merge results/.CKPT_fp_merged \
    results/.ckpt_w1.jsonl results/.ckpt_w2.jsonl results/.ckpt_w3.jsonl
head -2 results/.CKPT_fp_auto > results/.CKPT_fp_single
cmp results/.CKPT_fp_merged results/.CKPT_fp_single
echo "verify: OK"
