//! Checkpoint/resume and multi-process merge for the sharded engines.
//!
//! A checkpoint is the full accumulator state of a campaign over a
//! participant index range `[range_lo, range_hi)` — every per-stimulus
//! digest, the behaviour moments, the filter/control tallies, the shard
//! totals, the adaptive driver's mask/decision state (driver
//! checkpoints only), and the obs counter totals at the barrier —
//! serialized as versioned JSONL through the vendored serde shim, so
//! the format is hermetic and byte-stable. The contract is strict
//! **byte-identity**: `load(save(state))` reproduces the same digest
//! fingerprint and counter fingerprint as the uninterrupted run, at any
//! shard size and thread count (pinned by `checkpoint_roundtrip` tests
//! and the `merge_digests` verify gates).
//!
//! Three workflows build on that:
//!
//! * **Resume** — [`checkpointed_timeline_campaign`] /
//!   [`checkpointed_ab_campaign`] consult an observer at every shard
//!   barrier; a `false` return interrupts the run and hands back a
//!   checkpoint, and a later call with `resume` replays only the
//!   remaining index range, byte-identical to never stopping.
//! * **Multi-process merge** — [`timeline_worker_checkpoint`] /
//!   [`ab_worker_checkpoint`] fold a disjoint index range in an
//!   independent process; [`TimelineCheckpoint::merge`] stitches the
//!   written files back together (range-adjacency and admitted-index
//!   continuity checked), and `finalize` yields the single-run digest.
//! * **Live mode** — the driver emits an incremental JSONL line per
//!   barrier ([`CheckpointEvent::Live`]) with per-stimulus UPLT
//!   percentile/CI read-outs; the final line equals the end-of-run
//!   digest's read-outs ([`live_line_from_digest`]).
//!
//! ## Format (version 1)
//!
//! One JSON object per line. Timeline files are `S + 6` lines (header,
//! totals, behaviour, `S` stimulus lines, drive, counters, end); A/B
//! files are `S + 5` (no drive line). Floats are carried as
//! `f64::to_bits()` integers (canonical — `±inf` sentinels and `-0.0`
//! round-trip exactly), the `Moments` fixed-point sums as decimal
//! `i128` strings (the shim has no native i128). The header pins the
//! [`DigestParams`] the accumulators were built with; loading validates
//! every per-stimulus state against it. See DESIGN.md §3i.
//!
//! ## Error discipline
//!
//! Checkpoint bytes are **untrusted input**: every malformed,
//! truncated, or inconsistent file surfaces as a typed
//! [`CheckpointError`] — never a panic. The accumulator rebuilds go
//! through the validating `from_state` constructors of `eyeorg_stats`,
//! and cross-checkpoint merges go through the fallible
//! [`MergeError`]-returning digest merges. Resume additionally
//! **probe-merges** the loaded state against a freshly constructed
//! accumulator before the epoch loop starts, so the engine-internal
//! infallible shard merges stay unreachable from disk.
//!
//! ## Obs counter contract
//!
//! Checkpoints record the **absolute** registry totals at the barrier
//! ([`CounterState`]). A resuming (or merging) process must
//! `eyeorg_obs::reset()` before the run; the driver then restores the
//! recorded totals, the continuation adds its own, and the final
//! snapshot's `counter_fingerprint` equals the uninterrupted run's.
//! Worker processes likewise reset first, so a worker checkpoint's
//! counters are exactly its range's contribution (counter totals are
//! per-shard sums, hence partition-independent).

use std::collections::BTreeMap;

use eyeorg_crowd::RecruitmentService;
use eyeorg_obs::HistogramSnapshot;
use eyeorg_stats::{
    resolve_threads, Histogram, HistogramState, Moments, MomentsState, QuantileSketch,
    QuantileSketchState, Seed,
};
use serde::{Deserialize, Serialize, Value};

use crate::adaptive::{
    drive_resumable, AdaptiveBackend, AdaptiveOutcome, DriveEnd, DriveState, StopCause,
    StopDecision, ADAPTIVE_Z,
};
use crate::digest::{
    AbDigest, AbStimulusDigest, BehaviorDigest, ControlTally, DigestParams, MergeError,
    StimulusDigest, TimelineDigest,
};
use crate::experiment::{AbStimulus, AdaptiveConfig, ExperimentConfig, TimelineStimulus};
use crate::filtering::{FilterTally, ParticipantFilter};
use crate::flat::{flat_tl_epoch, FlatTlCtx};
use crate::stream::{
    admitted_bases_range, merge_ab_shards, stream_ab_epoch, stream_tl_epoch, tl_frames, AbCtx,
    AbShard, StreamConfig, TlCtx, TlShard,
};

/// Checkpoint format version this build writes and accepts.
pub const CHECKPOINT_VERSION: u64 = 1;

const FORMAT_TAG: &str = "eyeorg-checkpoint";

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why checkpoint bytes were rejected, or why two checkpoints refused
/// to combine. Every variant is reachable from untrusted input, so the
/// loader returns these instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// A line was not the JSON object the format expects.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The parser/deserializer message.
        detail: String,
    },
    /// The document structure disagrees with the format contract.
    Format {
        /// 1-based line number.
        line: usize,
        /// What disagreed.
        detail: String,
    },
    /// The file was written by an unsupported format version.
    Version {
        /// Version in the file.
        found: u64,
        /// Version this build supports.
        supported: u64,
    },
    /// The file ends before the header's announced line count.
    Truncated {
        /// Lines the header announced.
        expected: usize,
        /// Lines actually present.
        found: usize,
    },
    /// An accumulator state failed its `from_state` validation.
    State {
        /// 1-based line number.
        line: usize,
        /// The validator's message.
        detail: String,
    },
    /// Two accumulators refused to merge (identity/config mismatch).
    Merge(MergeError),
    /// The checkpoint was built under different [`DigestParams`] than
    /// the run (or the sibling checkpoint) it is combined with.
    ParamsMismatch {
        /// Both sides' parameters.
        detail: String,
    },
    /// Merged ranges are not adjacent: the right side does not start
    /// where the left side ends.
    RangeGap {
        /// Left side's `range_hi`.
        left_hi: u64,
        /// Right side's `range_lo`.
        right_lo: u64,
    },
    /// The right side's admitted-index base disagrees with the left
    /// side's admission count — the pieces come from different
    /// campaigns (seed/config) or a worker lied about its base.
    AdmittedGap {
        /// Admitted base the left side implies.
        expected: u64,
        /// Admitted base the right side recorded.
        found: u64,
    },
    /// A finalize/resume was attempted on a checkpoint that does not
    /// start at participant index 0.
    PartialRange {
        /// The checkpoint's `range_lo`.
        lo: u64,
    },
    /// The checkpoint is structurally valid but unusable in this role.
    Config {
        /// What disqualified it.
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Parse { line, detail } => {
                write!(f, "checkpoint line {line}: parse error: {detail}")
            }
            CheckpointError::Format { line, detail } => {
                write!(f, "checkpoint line {line}: {detail}")
            }
            CheckpointError::Version { found, supported } => {
                write!(f, "checkpoint version {found} unsupported (this build reads {supported})")
            }
            CheckpointError::Truncated { expected, found } => {
                write!(f, "checkpoint truncated: header announces {expected} lines, found {found}")
            }
            CheckpointError::State { line, detail } => {
                write!(f, "checkpoint line {line}: invalid accumulator state: {detail}")
            }
            CheckpointError::Merge(e) => write!(f, "checkpoint merge: {e}"),
            CheckpointError::ParamsMismatch { detail } => {
                write!(f, "checkpoint digest-params mismatch: {detail}")
            }
            CheckpointError::RangeGap { left_hi, right_lo } => {
                write!(f, "checkpoint ranges not adjacent: [..{left_hi}) then [{right_lo}..)")
            }
            CheckpointError::AdmittedGap { expected, found } => write!(
                f,
                "admitted-index discontinuity: left side implies base {expected}, right side \
                 recorded {found}"
            ),
            CheckpointError::PartialRange { lo } => {
                write!(f, "checkpoint starts at participant {lo}, not 0; merge the earlier ranges first")
            }
            CheckpointError::Config { detail } => write!(f, "checkpoint unusable: {detail}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<MergeError> for CheckpointError {
    fn from(e: MergeError) -> CheckpointError {
        CheckpointError::Merge(e)
    }
}

// ---------------------------------------------------------------------
// Line structs (the on-disk schema, version 1)
// ---------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct HeaderLine {
    format: String,
    version: u64,
    kind: String,
    hist_bins: usize,
    sketch_bins: usize,
    exact_cap: usize,
    range_lo: u64,
    range_hi: u64,
    admitted_before: u64,
    stimuli: usize,
    lines: usize,
}

/// `Moments` raw state; `qsum`/`qsumsq` as decimal i128 strings,
/// `min`/`max` as `to_bits()`.
#[derive(Serialize, Deserialize)]
struct MomentsLine {
    n: u64,
    qsum: String,
    qsumsq: String,
    min: u64,
    max: u64,
    rejected: u64,
}

#[derive(Serialize, Deserialize)]
struct HistLine {
    lo: u64,
    hi: u64,
    counts: Vec<u32>,
    outside: u32,
}

#[derive(Serialize, Deserialize)]
struct SketchLine {
    lo: u64,
    hi: u64,
    bins: usize,
    cap: usize,
    exact: Vec<u64>,
    counts: Vec<u64>,
    spilled: bool,
    min: u64,
    max: u64,
    n: u64,
    rejected: u64,
}

#[derive(Serialize, Deserialize)]
struct FiltersLine {
    engagement: u64,
    soft: u64,
    control: u64,
    kept: u64,
}

#[derive(Serialize, Deserialize)]
struct ControlsLine {
    passed: u64,
    failed: u64,
}

#[derive(Serialize, Deserialize)]
struct TotalsLine {
    admitted: u64,
    rejected: u64,
    collected: u64,
    skipped: u64,
    pruned: u64,
    filters: FiltersLine,
    controls: ControlsLine,
}

#[derive(Serialize, Deserialize)]
struct AbTotalsLine {
    admitted: u64,
    rejected: u64,
    cast: u64,
    skipped: u64,
    filters: FiltersLine,
    controls: ControlsLine,
}

#[derive(Serialize, Deserialize)]
struct BehaviorLine {
    minutes_on_site: MomentsLine,
    actions: MomentsLine,
    out_of_focus_secs: MomentsLine,
    max_video_load_secs: MomentsLine,
}

#[derive(Serialize, Deserialize)]
struct StimulusLine {
    name: String,
    uplt: MomentsLine,
    hist: HistLine,
    sketch: SketchLine,
}

#[derive(Serialize, Deserialize)]
struct AbStimulusLine {
    name: String,
    a: u32,
    b: u32,
    nd: u32,
    shows: u64,
    a_left_shows: u64,
}

#[derive(Serialize, Deserialize)]
struct DecisionLine {
    epoch: u64,
    stimulus: usize,
    name: String,
    retained: u64,
    half_width: u64,
    cause: String,
}

#[derive(Serialize, Deserialize)]
struct AdaptiveLine {
    live: Vec<bool>,
    epochs: u64,
    stopped_at: Vec<Option<u64>>,
    decisions: Vec<DecisionLine>,
}

#[derive(Serialize, Deserialize)]
struct DriveLine {
    adaptive: Option<AdaptiveLine>,
}

/// Mirror of `eyeorg_obs::HistogramSnapshot`, re-declared because the
/// obs struct is (deliberately) serialize-only: the checkpoint layer
/// owns the deserialization and its validation.
#[derive(Serialize, Deserialize)]
struct HistSnapLine {
    count: u64,
    sum: u64,
    buckets: Vec<(usize, u64)>,
}

#[derive(Serialize, Deserialize)]
struct CountersLine {
    counters: BTreeMap<String, u64>,
    labeled: BTreeMap<String, BTreeMap<String, u64>>,
    histograms: BTreeMap<String, HistSnapLine>,
}

#[derive(Serialize, Deserialize)]
struct EndLine {
    end: String,
}

/// Compact one-line JSON of a line struct. The vendored writer is
/// total (non-finite floats never occur here: every float is carried
/// as `to_bits()` integers), so the `Result` is vacuous.
fn json_line<T: Serialize>(v: &T) -> String {
    serde_json::to_string(v).unwrap_or_default()
}

fn parse_line<T: Deserialize>(s: &str, line: usize) -> Result<T, CheckpointError> {
    serde_json::from_str::<T>(s)
        .map_err(|e| CheckpointError::Parse { line, detail: e.to_string() })
}

// ---------------------------------------------------------------------
// Accumulator <-> line conversions
// ---------------------------------------------------------------------

fn moments_line(m: &Moments) -> MomentsLine {
    let s = m.state();
    MomentsLine {
        n: s.n,
        qsum: s.qsum.to_string(),
        qsumsq: s.qsumsq.to_string(),
        min: s.min_bits,
        max: s.max_bits,
        rejected: s.rejected,
    }
}

fn moments_of(l: &MomentsLine, line: usize) -> Result<Moments, CheckpointError> {
    let parse_i128 = |s: &str, what: &str| -> Result<i128, CheckpointError> {
        s.parse::<i128>().map_err(|_| CheckpointError::State {
            line,
            detail: format!("{what} is not a decimal i128: {s:?}"),
        })
    };
    Ok(Moments::from_state(&MomentsState {
        n: l.n,
        qsum: parse_i128(&l.qsum, "qsum")?,
        qsumsq: parse_i128(&l.qsumsq, "qsumsq")?,
        min_bits: l.min,
        max_bits: l.max,
        rejected: l.rejected,
    }))
}

fn hist_line(h: &Histogram) -> HistLine {
    let s = h.state();
    HistLine { lo: s.lo_bits, hi: s.hi_bits, counts: s.counts, outside: s.outside }
}

fn hist_of(l: &HistLine, line: usize) -> Result<Histogram, CheckpointError> {
    Histogram::from_state(&HistogramState {
        lo_bits: l.lo,
        hi_bits: l.hi,
        counts: l.counts.clone(),
        outside: l.outside,
    })
    .map_err(|e| CheckpointError::State { line, detail: e.0.to_string() })
}

fn sketch_line(s: &QuantileSketch) -> SketchLine {
    let st = s.state();
    SketchLine {
        lo: st.lo_bits,
        hi: st.hi_bits,
        bins: st.bins,
        cap: st.exact_cap,
        exact: st.exact_bits,
        counts: st.counts,
        spilled: st.spilled,
        min: st.min_bits,
        max: st.max_bits,
        n: st.n,
        rejected: st.rejected,
    }
}

fn sketch_of(l: &SketchLine, line: usize) -> Result<QuantileSketch, CheckpointError> {
    QuantileSketch::from_state(&QuantileSketchState {
        lo_bits: l.lo,
        hi_bits: l.hi,
        bins: l.bins,
        exact_cap: l.cap,
        exact_bits: l.exact.clone(),
        counts: l.counts.clone(),
        spilled: l.spilled,
        min_bits: l.min,
        max_bits: l.max,
        n: l.n,
        rejected: l.rejected,
    })
    .map_err(|e| CheckpointError::State { line, detail: e.0.to_string() })
}

fn behavior_line(b: &BehaviorDigest) -> BehaviorLine {
    BehaviorLine {
        minutes_on_site: moments_line(&b.minutes_on_site),
        actions: moments_line(&b.actions),
        out_of_focus_secs: moments_line(&b.out_of_focus_secs),
        max_video_load_secs: moments_line(&b.max_video_load_secs),
    }
}

fn behavior_of(l: &BehaviorLine, line: usize) -> Result<BehaviorDigest, CheckpointError> {
    Ok(BehaviorDigest {
        minutes_on_site: moments_of(&l.minutes_on_site, line)?,
        actions: moments_of(&l.actions, line)?,
        out_of_focus_secs: moments_of(&l.out_of_focus_secs, line)?,
        max_video_load_secs: moments_of(&l.max_video_load_secs, line)?,
    })
}

fn filters_line(t: &FilterTally) -> FiltersLine {
    FiltersLine { engagement: t.engagement, soft: t.soft, control: t.control, kept: t.kept }
}

fn filters_of(l: &FiltersLine) -> FilterTally {
    FilterTally { engagement: l.engagement, soft: l.soft, control: l.control, kept: l.kept }
}

fn controls_line(t: &ControlTally) -> ControlsLine {
    ControlsLine { passed: t.passed, failed: t.failed }
}

fn controls_of(l: &ControlsLine) -> ControlTally {
    ControlTally { passed: l.passed, failed: l.failed }
}

// ---------------------------------------------------------------------
// Counter state
// ---------------------------------------------------------------------

/// The deterministic sections of an obs snapshot (counters, labeled
/// counters, histograms) as plain maps — what a checkpoint records and
/// what `eyeorg_obs::restore` re-applies on resume. See the module
/// docs for the reset/restore contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterState {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Labeled-counter totals by name then label.
    pub labeled: BTreeMap<String, BTreeMap<String, u64>>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl CounterState {
    /// Snapshot the live registry's deterministic sections.
    pub fn capture(threads: usize) -> CounterState {
        let r = eyeorg_obs::snapshot("checkpoint", threads);
        CounterState { counters: r.counters, labeled: r.labeled, histograms: r.histograms }
    }

    /// Re-apply these totals onto the live registry (additive; no-op
    /// when obs is disabled).
    pub fn restore(&self) {
        eyeorg_obs::restore(&self.counters, &self.labeled, &self.histograms);
    }

    /// Sum another process's totals in. Saturating: the inputs are
    /// untrusted file contents, and a forged near-`u64::MAX` total must
    /// not abort a debug build.
    fn merge_from(&mut self, other: &CounterState) {
        for (k, &v) in &other.counters {
            let e = self.counters.entry(k.clone()).or_insert(0);
            *e = e.saturating_add(v);
        }
        for (k, cells) in &other.labeled {
            let mine = self.labeled.entry(k.clone()).or_default();
            for (label, &v) in cells {
                let e = mine.entry(label.clone()).or_insert(0);
                *e = e.saturating_add(v);
            }
        }
        for (k, snap) in &other.histograms {
            match self.histograms.get_mut(k) {
                None => {
                    self.histograms.insert(k.clone(), snap.clone());
                }
                Some(mine) => {
                    mine.count = mine.count.saturating_add(snap.count);
                    mine.sum = mine.sum.saturating_add(snap.sum);
                    let mut buckets: BTreeMap<usize, u64> = mine.buckets.iter().copied().collect();
                    for &(k, n) in &snap.buckets {
                        let e = buckets.entry(k).or_insert(0);
                        *e = e.saturating_add(n);
                    }
                    mine.buckets = buckets.into_iter().collect();
                }
            }
        }
    }

    fn to_line(&self) -> CountersLine {
        CountersLine {
            counters: self.counters.clone(),
            labeled: self.labeled.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistSnapLine { count: h.count, sum: h.sum, buckets: h.buckets.clone() },
                    )
                })
                .collect(),
        }
    }

    fn of_line(l: CountersLine) -> CounterState {
        CounterState {
            counters: l.counters,
            labeled: l.labeled,
            histograms: l
                .histograms
                .into_iter()
                .map(|(k, h)| {
                    (k, HistogramSnapshot { count: h.count, sum: h.sum, buckets: h.buckets })
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Timeline checkpoints
// ---------------------------------------------------------------------

/// The adaptive driver's inter-epoch state as carried by a driver
/// checkpoint (mask, barrier count, decision log).
#[derive(Debug, Clone)]
pub(crate) struct DriveCkpt {
    pub(crate) live: Vec<bool>,
    pub(crate) epochs: u64,
    pub(crate) stopped_at: Vec<Option<u64>>,
    pub(crate) decisions: Vec<StopDecision>,
}

/// A timeline campaign's accumulator state over `[range_lo, range_hi)`.
///
/// Two flavours share the type: **driver** checkpoints (`range_lo = 0`,
/// drive state present — what [`checkpointed_timeline_campaign`] emits
/// and resumes from) and **worker** checkpoints (any range, no drive
/// state — what [`timeline_worker_checkpoint`] emits and
/// [`merge`](TimelineCheckpoint::merge) stitches together).
#[derive(Debug)]
pub struct TimelineCheckpoint {
    params: DigestParams,
    range_lo: u64,
    range_hi: u64,
    admitted_before: u64,
    acc: TlShard,
    drive: Option<DriveCkpt>,
    counters: CounterState,
}

fn stop_cause_tag(c: StopCause) -> &'static str {
    match c {
        StopCause::Converged => "converged",
        StopCause::MaxN => "max_n",
    }
}

fn stop_cause_of(tag: &str, line: usize) -> Result<StopCause, CheckpointError> {
    match tag {
        "converged" => Ok(StopCause::Converged),
        "max_n" => Ok(StopCause::MaxN),
        other => Err(CheckpointError::Format {
            line,
            detail: format!("unknown stop cause {other:?}"),
        }),
    }
}

/// Split a document into its non-empty lines and parse+validate the
/// shared header. Returns (lines, header, expected line count).
fn split_and_header<'a>(
    text: &'a str,
    kind: &str,
    extra_lines: usize,
) -> Result<(Vec<&'a str>, HeaderLine), CheckpointError> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err(CheckpointError::Truncated { expected: 1, found: 0 });
    }
    // lint:allow(D7): the is_empty check above guarantees lines[0] exists
    let h: HeaderLine = parse_line(lines[0], 1)?;
    if h.format != FORMAT_TAG {
        return Err(CheckpointError::Format {
            line: 1,
            detail: format!("not a checkpoint file (format {:?})", h.format),
        });
    }
    if h.version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Version { found: h.version, supported: CHECKPOINT_VERSION });
    }
    if h.kind != kind {
        return Err(CheckpointError::Format {
            line: 1,
            detail: format!("expected a {kind:?} checkpoint, found {:?}", h.kind),
        });
    }
    let expected = h.stimuli.saturating_add(extra_lines);
    if h.lines != expected {
        return Err(CheckpointError::Format {
            line: 1,
            detail: format!(
                "header announces {} lines but {} stimuli imply {expected}",
                h.lines, h.stimuli
            ),
        });
    }
    if lines.len() < expected {
        return Err(CheckpointError::Truncated { expected, found: lines.len() });
    }
    if lines.len() > expected {
        return Err(CheckpointError::Format {
            line: expected + 1,
            detail: "trailing data after the end line".to_string(),
        });
    }
    if h.range_lo > h.range_hi {
        return Err(CheckpointError::Format {
            line: 1,
            detail: format!("inverted range [{}, {})", h.range_lo, h.range_hi),
        });
    }
    Ok((lines, h))
}

fn check_end(line_str: &str, line: usize) -> Result<(), CheckpointError> {
    let end: EndLine = parse_line(line_str, line)?;
    if end.end != FORMAT_TAG {
        return Err(CheckpointError::Format { line, detail: "bad end marker".to_string() });
    }
    Ok(())
}

impl TimelineCheckpoint {
    /// The index range `[lo, hi)` this checkpoint covers.
    pub fn range(&self) -> (u64, u64) {
        (self.range_lo, self.range_hi)
    }

    /// The [`DigestParams`] the accumulators were built under.
    pub fn params(&self) -> DigestParams {
        self.params
    }

    /// Gate admissions in `[0, range_lo)` — the admitted-index base a
    /// worker range folded under (0 for driver checkpoints).
    pub fn admitted_before(&self) -> u64 {
        self.admitted_before
    }

    /// Whether this is a driver checkpoint (carries the epoch-loop
    /// state a resume needs); worker checkpoints can only be merged.
    pub fn is_resumable(&self) -> bool {
        self.drive.is_some()
    }

    /// Re-apply the recorded obs totals (see the module-docs contract).
    pub fn restore_counters(&self) {
        self.counters.restore();
    }

    /// Serialize to the versioned JSONL format (ends with a newline).
    pub fn save(&self) -> String {
        let n_stim = self.acc.stimuli.len();
        let header = HeaderLine {
            format: FORMAT_TAG.to_string(),
            version: CHECKPOINT_VERSION,
            kind: "timeline".to_string(),
            hist_bins: self.params.hist_bins,
            sketch_bins: self.params.sketch_bins,
            exact_cap: self.params.exact_cap,
            range_lo: self.range_lo,
            range_hi: self.range_hi,
            admitted_before: self.admitted_before,
            stimuli: n_stim,
            lines: n_stim + 6,
        };
        let mut out = String::new();
        out.push_str(&json_line(&header));
        out.push('\n');
        out.push_str(&json_line(&TotalsLine {
            admitted: self.acc.admitted,
            rejected: self.acc.rejected,
            collected: self.acc.collected,
            skipped: self.acc.skipped,
            pruned: self.acc.pruned,
            filters: filters_line(&self.acc.filters),
            controls: controls_line(&self.acc.controls),
        }));
        out.push('\n');
        out.push_str(&json_line(&behavior_line(&self.acc.behavior)));
        out.push('\n');
        for s in &self.acc.stimuli {
            out.push_str(&json_line(&StimulusLine {
                name: s.name.clone(),
                uplt: moments_line(&s.uplt),
                hist: hist_line(&s.hist),
                sketch: sketch_line(&s.sketch),
            }));
            out.push('\n');
        }
        let adaptive = self.drive.as_ref().map(|d| AdaptiveLine {
            live: d.live.clone(),
            epochs: d.epochs,
            stopped_at: d.stopped_at.clone(),
            decisions: d
                .decisions
                .iter()
                .map(|dec| DecisionLine {
                    epoch: dec.epoch,
                    stimulus: dec.stimulus,
                    name: dec.name.clone(),
                    retained: dec.retained,
                    half_width: dec.half_width.to_bits(),
                    cause: stop_cause_tag(dec.cause).to_string(),
                })
                .collect(),
        });
        out.push_str(&json_line(&DriveLine { adaptive }));
        out.push('\n');
        out.push_str(&json_line(&self.counters.to_line()));
        out.push('\n');
        out.push_str(&json_line(&EndLine { end: FORMAT_TAG.to_string() }));
        out.push('\n');
        out
    }

    /// Parse and validate a serialized timeline checkpoint.
    /// `load(save(state))` is bit-identical to `state`; any malformed
    /// input comes back as a typed [`CheckpointError`], never a panic.
    // lint:entrypoint(untrusted)
    pub fn load(text: &str) -> Result<TimelineCheckpoint, CheckpointError> {
        let (lines, h) = split_and_header(text, "timeline", 6)?;
        let params = DigestParams {
            hist_bins: h.hist_bins,
            sketch_bins: h.sketch_bins,
            exact_cap: h.exact_cap,
        };
        // lint:allow(D7): split_and_header pinned lines.len() to stimuli + 6
        let totals: TotalsLine = parse_line(lines[1], 2)?;
        // lint:allow(D7): split_and_header pinned lines.len() to stimuli + 6
        let behavior = behavior_of(&parse_line::<BehaviorLine>(lines[2], 3)?, 3)?;
        let mut stimuli = Vec::with_capacity(h.stimuli);
        for i in 0..h.stimuli {
            let ln = 4 + i;
            // lint:allow(D7): i < h.stimuli and lines.len() == stimuli + 6 (split_and_header)
            let sl: StimulusLine = parse_line(lines[3 + i], ln)?;
            let hist = hist_of(&sl.hist, ln)?;
            if hist.counts().len() != params.hist_bins {
                return Err(CheckpointError::State {
                    line: ln,
                    detail: format!(
                        "histogram has {} bins, header pins {}",
                        hist.counts().len(),
                        params.hist_bins
                    ),
                });
            }
            let sketch = sketch_of(&sl.sketch, ln)?;
            if sketch.bins() != params.sketch_bins || sketch.exact_cap() != params.exact_cap {
                return Err(CheckpointError::State {
                    line: ln,
                    detail: format!(
                        "sketch built with bins={}/cap={}, header pins bins={}/cap={}",
                        sketch.bins(),
                        sketch.exact_cap(),
                        params.sketch_bins,
                        params.exact_cap
                    ),
                });
            }
            stimuli.push(StimulusDigest {
                name: sl.name,
                uplt: moments_of(&sl.uplt, ln)?,
                hist,
                sketch,
            });
        }
        let drive_ln = 4 + h.stimuli;
        // lint:allow(D7): split_and_header pinned lines.len() to stimuli + 6
        let dl: DriveLine = parse_line(lines[3 + h.stimuli], drive_ln)?;
        let drive = match dl.adaptive {
            None => None,
            Some(a) => {
                if a.live.len() != h.stimuli || a.stopped_at.len() != h.stimuli {
                    return Err(CheckpointError::Format {
                        line: drive_ln,
                        detail: format!(
                            "drive state sized for {} stimuli, header has {}",
                            a.live.len().max(a.stopped_at.len()),
                            h.stimuli
                        ),
                    });
                }
                let mut decisions = Vec::with_capacity(a.decisions.len());
                for d in &a.decisions {
                    if d.stimulus >= h.stimuli {
                        return Err(CheckpointError::Format {
                            line: drive_ln,
                            detail: format!(
                                "decision names stimulus {} of {}",
                                d.stimulus, h.stimuli
                            ),
                        });
                    }
                    decisions.push(StopDecision {
                        epoch: d.epoch,
                        stimulus: d.stimulus,
                        name: d.name.clone(),
                        retained: d.retained,
                        half_width: f64::from_bits(d.half_width),
                        cause: stop_cause_of(&d.cause, drive_ln)?,
                    });
                }
                Some(DriveCkpt {
                    live: a.live,
                    epochs: a.epochs,
                    stopped_at: a.stopped_at,
                    decisions,
                })
            }
        };
        let counters_ln = 5 + h.stimuli;
        // lint:allow(D7): split_and_header pinned lines.len() to stimuli + 6
        let cl: CountersLine = parse_line(lines[4 + h.stimuli], counters_ln)?;
        // lint:allow(D7): split_and_header pinned lines.len() to stimuli + 6
        check_end(lines[5 + h.stimuli], 6 + h.stimuli)?;
        Ok(TimelineCheckpoint {
            params,
            range_lo: h.range_lo,
            range_hi: h.range_hi,
            admitted_before: h.admitted_before,
            acc: TlShard {
                stimuli,
                behavior,
                filters: filters_of(&totals.filters),
                controls: controls_of(&totals.controls),
                admitted: totals.admitted,
                rejected: totals.rejected,
                collected: totals.collected,
                skipped: totals.skipped,
                pruned: totals.pruned,
            },
            drive,
            counters: CounterState::of_line(cl),
        })
    }

    /// Append an adjacent worker checkpoint's range. Checks digest
    /// params, range adjacency, admitted-index continuity, and every
    /// per-stimulus identity/config before mutating, so a failed merge
    /// leaves `self` unchanged. Driver checkpoints refuse to merge
    /// (their drive state is not rangewise-composable).
    // lint:entrypoint(untrusted)
    pub fn merge(&mut self, other: &TimelineCheckpoint) -> Result<(), CheckpointError> {
        if self.drive.is_some() || other.drive.is_some() {
            return Err(CheckpointError::Config {
                detail: "driver checkpoints cannot be merged; merge worker checkpoints and \
                         resume drivers"
                    .to_string(),
            });
        }
        if self.params != other.params {
            return Err(CheckpointError::ParamsMismatch {
                detail: format!("{:?} vs {:?}", self.params, other.params),
            });
        }
        if other.range_lo != self.range_hi {
            return Err(CheckpointError::RangeGap {
                left_hi: self.range_hi,
                right_lo: other.range_lo,
            });
        }
        let expected = self
            .admitted_before
            .saturating_add(self.acc.admitted)
            .saturating_add(self.acc.pruned);
        if other.admitted_before != expected {
            return Err(CheckpointError::AdmittedGap { expected, found: other.admitted_before });
        }
        if self.acc.stimuli.len() != other.acc.stimuli.len() {
            return Err(MergeError::StimulusCount {
                left: self.acc.stimuli.len(),
                right: other.acc.stimuli.len(),
            }
            .into());
        }
        // Merge into a clone and commit only on full success, so a
        // mid-way config mismatch cannot leave a half-merged state.
        let mut merged = self.acc.stimuli.clone();
        for (a, b) in merged.iter_mut().zip(&other.acc.stimuli) {
            a.merge(b)?;
        }
        self.acc.stimuli = merged;
        self.acc.behavior.merge(&other.acc.behavior);
        self.acc.filters.merge(&other.acc.filters);
        self.acc.controls.merge(&other.acc.controls);
        self.acc.admitted = self.acc.admitted.saturating_add(other.acc.admitted);
        self.acc.rejected = self.acc.rejected.saturating_add(other.acc.rejected);
        self.acc.collected = self.acc.collected.saturating_add(other.acc.collected);
        self.acc.skipped = self.acc.skipped.saturating_add(other.acc.skipped);
        self.acc.pruned = self.acc.pruned.saturating_add(other.acc.pruned);
        self.counters.merge_from(&other.counters);
        self.range_hi = other.range_hi;
        Ok(())
    }

    /// Produce the final digest of a complete (`range_lo = 0`)
    /// checkpoint — byte-identical to the digest the uninterrupted
    /// single-process run of `range_hi` participants returns.
    pub fn finalize(
        &self,
        stimuli: &[TimelineStimulus],
        service: &dyn RecruitmentService,
    ) -> Result<TimelineDigest, CheckpointError> {
        if self.range_lo != 0 {
            return Err(CheckpointError::PartialRange { lo: self.range_lo });
        }
        tl_digest_of(&self.acc, stimuli, service, self.range_hi, &self.params)
    }
}

/// Fallible counterpart of `stream::merge_tl_shards` for accumulators
/// that came from disk: a fresh digest is built from `stimuli` +
/// `params` and the untrusted state merged in through the
/// [`MergeError`]-returning path.
fn tl_digest_of(
    acc: &TlShard,
    stimuli: &[TimelineStimulus],
    service: &dyn RecruitmentService,
    n_participants: u64,
    params: &DigestParams,
) -> Result<TimelineDigest, CheckpointError> {
    if stimuli.len() != acc.stimuli.len() {
        return Err(
            MergeError::StimulusCount { left: stimuli.len(), right: acc.stimuli.len() }.into()
        );
    }
    let n = n_participants as usize;
    let mut digest = TimelineDigest {
        stimuli: stimuli
            .iter()
            .map(|st| StimulusDigest::new(&st.name, st.video.duration().as_secs_f64(), params))
            .collect(),
        recruited: n_participants,
        admitted: acc.admitted,
        rejected: acc.rejected,
        recruitment_cost_usd: service.cost_per_participant() * n as f64,
        recruitment_duration_secs: if n == 0 { 0.0 } else { service.arrival(n - 1).as_secs_f64() },
        responses_collected: acc.collected,
        responses_skipped: acc.skipped,
        behavior: acc.behavior.clone(),
        filters: acc.filters,
        controls: acc.controls,
    };
    for (a, b) in digest.stimuli.iter_mut().zip(&acc.stimuli) {
        a.merge(b)?;
    }
    Ok(digest)
}

// ---------------------------------------------------------------------
// Live mode
// ---------------------------------------------------------------------

fn opt_f64(v: Option<f64>) -> Value {
    match v {
        Some(x) => Value::F64(x),
        None => Value::Null,
    }
}

#[allow(clippy::too_many_arguments)] // one JSON line, one flat argument list
fn live_line(
    stimuli: &[StimulusDigest],
    admitted: u64,
    collected: u64,
    skipped: u64,
    kept: u64,
    processed: u64,
    budget: u64,
    is_final: bool,
) -> String {
    let stim: Vec<Value> = stimuli
        .iter()
        .map(|s| {
            let ci = s.sketch.quantile_ci(50.0, ADAPTIVE_Z);
            Value::Object(vec![
                ("name".to_string(), Value::Str(s.name.clone())),
                ("retained".to_string(), Value::U64(s.retained())),
                ("mean".to_string(), opt_f64(s.uplt.mean())),
                ("p25".to_string(), opt_f64(s.sketch.quantile(25.0))),
                ("p50".to_string(), opt_f64(s.sketch.quantile(50.0))),
                ("p75".to_string(), opt_f64(s.sketch.quantile(75.0))),
                ("ci_lo".to_string(), opt_f64(ci.map(|c| c.0))),
                ("ci_hi".to_string(), opt_f64(ci.map(|c| c.1))),
            ])
        })
        .collect();
    json_line(&Value::Object(vec![
        ("processed".to_string(), Value::U64(processed)),
        ("budget".to_string(), Value::U64(budget)),
        ("final".to_string(), Value::Bool(is_final)),
        ("admitted".to_string(), Value::U64(admitted)),
        ("collected".to_string(), Value::U64(collected)),
        ("skipped".to_string(), Value::U64(skipped)),
        ("kept".to_string(), Value::U64(kept)),
        ("stimuli".to_string(), Value::Array(stim)),
    ]))
}

/// The live-mode JSONL line a finished digest implies — what the
/// driver emits as its last [`CheckpointEvent::Live`] event, exposed so
/// readers can cross-check a live stream's final line against the
/// end-of-run digest read-outs.
pub fn live_line_from_digest(d: &TimelineDigest, budget: u64, is_final: bool) -> String {
    live_line(
        &d.stimuli,
        d.admitted,
        d.responses_collected,
        d.responses_skipped,
        d.filters.kept,
        d.recruited,
        budget,
        is_final,
    )
}

// ---------------------------------------------------------------------
// The checkpointed drivers
// ---------------------------------------------------------------------

/// Driver knobs for checkpoint emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Barrier spacing for non-adaptive runs, in shards: a checkpoint
    /// (and a live line) is emitted every `every_shards` shards.
    /// Adaptive runs already have barriers every `AdaptiveConfig::epoch`
    /// participants and checkpoint at those instead. Values `< 1` are
    /// treated as 1.
    pub every_shards: usize,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig { every_shards: 8 }
    }
}

/// What the driver hands its observer at each barrier.
pub enum CheckpointEvent<'a> {
    /// The barrier's checkpoint. Return `false` from the observer to
    /// interrupt the run and receive it as [`RunOutcome::Interrupted`].
    Checkpoint(&'a TimelineCheckpoint),
    /// One live-mode JSONL line (no trailing newline). The observer's
    /// return value is ignored for live events.
    Live(&'a str),
}

/// How a checkpointed timeline run ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// Ran to its natural end.
    Complete(Box<AdaptiveOutcome>),
    /// The observer interrupted at a barrier; resume by passing this
    /// checkpoint back via `resume` (same stimuli, seed, and config).
    Interrupted(Box<TimelineCheckpoint>),
}

fn validate_tl_resume(
    resume: &TimelineCheckpoint,
    stimuli: &[TimelineStimulus],
    budget: usize,
    sc: &StreamConfig,
) -> Result<DriveState, CheckpointError> {
    if resume.params != sc.params {
        return Err(CheckpointError::ParamsMismatch {
            detail: format!("checkpoint {:?} vs run {:?}", resume.params, sc.params),
        });
    }
    if resume.range_lo != 0 {
        return Err(CheckpointError::PartialRange { lo: resume.range_lo });
    }
    if resume.range_hi > budget as u64 {
        return Err(CheckpointError::Config {
            detail: format!(
                "checkpoint covers {} participants, budget is {budget}",
                resume.range_hi
            ),
        });
    }
    let Some(drive) = &resume.drive else {
        return Err(CheckpointError::Config {
            detail: "a worker checkpoint cannot seed a resume (no drive state)".to_string(),
        });
    };
    if drive.live.len() != stimuli.len() || drive.stopped_at.len() != stimuli.len() {
        return Err(CheckpointError::Config {
            detail: format!(
                "drive state sized for {} stimuli, run has {}",
                drive.live.len().max(drive.stopped_at.len()),
                stimuli.len()
            ),
        });
    }
    // Probe-merge the untrusted accumulator against a freshly
    // constructed one: this runs the full fallible identity/config
    // checks, after which the epoch loop's infallible internal shard
    // merges are genuinely unreachable from disk.
    let mut probe = TlShard::new(stimuli, &sc.params);
    if probe.stimuli.len() != resume.acc.stimuli.len() {
        return Err(MergeError::StimulusCount {
            left: probe.stimuli.len(),
            right: resume.acc.stimuli.len(),
        }
        .into());
    }
    for (a, b) in probe.stimuli.iter_mut().zip(&resume.acc.stimuli) {
        a.merge(b)?;
    }
    Ok(DriveState {
        live: drive.live.clone(),
        acc: resume.acc.clone(),
        // Gate admissions over [0, processed): pruned participants
        // consumed an admitted index without being served.
        admitted: resume.acc.admitted.saturating_add(resume.acc.pruned),
        processed: resume.range_hi as usize,
        epochs: drive.epochs,
        decisions: drive.decisions.clone(),
        stopped_at: drive.stopped_at.clone(),
    })
}

/// Run a timeline campaign (adaptive or plain) with checkpoint/resume
/// and live incremental analytics.
///
/// At every epoch barrier the driver emits a [`CheckpointEvent::Live`]
/// line and a [`CheckpointEvent::Checkpoint`]; returning `false` for
/// the checkpoint interrupts the run. Passing the interrupted
/// checkpoint back as `resume` (with identical stimuli, seed, and
/// configs — validated where possible, [`CheckpointError`] otherwise)
/// replays only the remaining participant range: the composition is
/// byte-identical, digest and counter fingerprint, to the
/// uninterrupted run. With an inactive `ac` the run equals
/// `stream_timeline_campaign`/`flat_timeline_campaign`; barriers then
/// fall every [`CheckpointConfig::every_shards`] shards.
///
/// Obs contract: the caller resets (and optionally enables) the obs
/// registry before calling; on resume the driver restores the
/// checkpoint's recorded totals itself.
#[allow(clippy::too_many_arguments)] // mirrors the engine entry points it wraps
pub fn checkpointed_timeline_campaign(
    stimuli: &[TimelineStimulus],
    service: &dyn RecruitmentService,
    budget: usize,
    cfg: &ExperimentConfig,
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
    seed: Seed,
    sc: &StreamConfig,
    ac: &AdaptiveConfig,
    backend: AdaptiveBackend,
    resume: Option<&TimelineCheckpoint>,
    ck: &CheckpointConfig,
    observer: &mut dyn FnMut(CheckpointEvent<'_>) -> bool,
) -> Result<RunOutcome, CheckpointError> {
    if stimuli.is_empty() {
        return Err(CheckpointError::Config { detail: "campaign needs stimuli".to_string() });
    }
    let _t = eyeorg_obs::phase_timer("core.checkpointed_timeline");
    let threads = resolve_threads(cfg.threads);
    let shard = sc.shard_size.max(1);
    // Barrier spacing: adaptive runs keep their decision epoch (the
    // decision sequence must not depend on checkpointing); plain runs
    // get a barrier every `every_shards` shards.
    let eff_epoch = if ac.is_active() {
        ac.epoch.max(1)
    } else {
        ck.every_shards.max(1).saturating_mul(shard)
    };
    let eff_ac = AdaptiveConfig { epoch: eff_epoch, ..*ac };

    let resume_state = match resume {
        None => None,
        Some(c) => {
            let st = validate_tl_resume(c, stimuli, budget, sc)?;
            c.restore_counters();
            Some(st)
        }
    };

    let end = {
        let mut barrier = |st: &DriveState| -> bool {
            let live = live_line(
                &st.acc.stimuli,
                st.acc.admitted,
                st.acc.collected,
                st.acc.skipped,
                st.acc.filters.kept,
                st.processed as u64,
                budget as u64,
                false,
            );
            observer(CheckpointEvent::Live(&live));
            observer(CheckpointEvent::Checkpoint(&tl_driver_ckpt(sc.params, st, threads)))
        };
        match backend {
            AdaptiveBackend::Streaming => {
                let pop = service.population();
                let frames = tl_frames(stimuli, threads);
                let ctx = TlCtx::new(
                    stimuli,
                    &frames,
                    &pop,
                    cfg,
                    filters,
                    seed.derive("recruit"),
                    seed.derive("timeline"),
                    sc.params,
                );
                drive_resumable(
                    stimuli,
                    service,
                    budget,
                    sc,
                    &eff_ac,
                    resume_state,
                    &mut barrier,
                    |lo, hi, base, live| stream_tl_epoch(&ctx, lo, hi, threads, shard, base, live),
                )
            }
            AdaptiveBackend::Flat => {
                let ctx = FlatTlCtx::new(stimuli, service, cfg, filters, seed, sc.params, threads);
                drive_resumable(
                    stimuli,
                    service,
                    budget,
                    sc,
                    &eff_ac,
                    resume_state,
                    &mut barrier,
                    |lo, hi, base, live| flat_tl_epoch(&ctx, lo, hi, threads, shard, base, live),
                )
            }
        }
    };

    match end {
        DriveEnd::Complete(outcome) => {
            let line = live_line_from_digest(&outcome.digest, budget as u64, true);
            observer(CheckpointEvent::Live(&line));
            Ok(RunOutcome::Complete(outcome))
        }
        // Nothing bumps the registry between the barrier and the
        // return, so this capture equals the one the observer saw.
        DriveEnd::Interrupted(st) => {
            Ok(RunOutcome::Interrupted(Box::new(tl_driver_ckpt(sc.params, &st, threads))))
        }
    }
}

/// A driver checkpoint of the epoch loop's current state (obs totals
/// captured from the live registry).
fn tl_driver_ckpt(params: DigestParams, st: &DriveState, threads: usize) -> TimelineCheckpoint {
    TimelineCheckpoint {
        params,
        range_lo: 0,
        range_hi: st.processed as u64,
        admitted_before: 0,
        acc: st.acc.clone(),
        drive: Some(DriveCkpt {
            live: st.live.clone(),
            epochs: st.epochs,
            stopped_at: st.stopped_at.clone(),
            decisions: st.decisions.clone(),
        }),
        counters: CounterState::capture(threads),
    }
}

// ---------------------------------------------------------------------
// Worker checkpoints (multi-process split)
// ---------------------------------------------------------------------

/// Fold the participant index range `[lo, hi)` of a timeline campaign
/// and return it as a mergeable worker checkpoint — the unit of
/// multi-process splitting. The worker recomputes the range's
/// admitted-index base from the seed (the same pre-pass both engines
/// run), so independently launched workers over adjacent ranges merge
/// into exactly the single-process run's state.
///
/// Obs contract: reset the registry first; the checkpoint's counters
/// are then this range's contribution.
#[allow(clippy::too_many_arguments)] // mirrors the engine entry points it wraps
pub fn timeline_worker_checkpoint(
    stimuli: &[TimelineStimulus],
    service: &dyn RecruitmentService,
    lo: usize,
    hi: usize,
    cfg: &ExperimentConfig,
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
    seed: Seed,
    sc: &StreamConfig,
    backend: AdaptiveBackend,
) -> Result<TimelineCheckpoint, CheckpointError> {
    if stimuli.is_empty() {
        return Err(CheckpointError::Config { detail: "campaign needs stimuli".to_string() });
    }
    if lo > hi {
        return Err(CheckpointError::Config {
            detail: format!("inverted worker range [{lo}, {hi})"),
        });
    }
    let _t = eyeorg_obs::phase_timer("core.worker_checkpoint");
    let threads = resolve_threads(cfg.threads);
    let shard = sc.shard_size.max(1);
    let pop = service.population();
    let recruit_seed = seed.derive("recruit");
    let admitted_before = if lo == 0 {
        0
    } else {
        admitted_bases_range(0, lo, shard, threads, &pop, recruit_seed, 0).1
    };
    let live = vec![true; stimuli.len()];
    let (folds, _) = match backend {
        AdaptiveBackend::Streaming => {
            let frames = tl_frames(stimuli, threads);
            let ctx = TlCtx::new(
                stimuli,
                &frames,
                &pop,
                cfg,
                filters,
                recruit_seed,
                seed.derive("timeline"),
                sc.params,
            );
            stream_tl_epoch(&ctx, lo, hi, threads, shard, admitted_before, &live)
        }
        AdaptiveBackend::Flat => {
            let ctx = FlatTlCtx::new(stimuli, service, cfg, filters, seed, sc.params, threads);
            flat_tl_epoch(&ctx, lo, hi, threads, shard, admitted_before, &live)
        }
    };
    let mut acc = TlShard::new(stimuli, &sc.params);
    for fold in &folds {
        acc.merge_from(fold);
    }
    Ok(TimelineCheckpoint {
        params: sc.params,
        range_lo: lo as u64,
        range_hi: hi as u64,
        admitted_before,
        acc,
        drive: None,
        counters: CounterState::capture(threads),
    })
}

// ---------------------------------------------------------------------
// A/B checkpoints
// ---------------------------------------------------------------------

/// An A/B campaign's accumulator state over `[range_lo, range_hi)` —
/// the A/B counterpart of [`TimelineCheckpoint`]. A/B runs have no
/// adaptive driver, so every A/B checkpoint is both resumable and
/// mergeable.
#[derive(Debug)]
pub struct AbCheckpoint {
    range_lo: u64,
    range_hi: u64,
    admitted_before: u64,
    acc: AbShard,
    counters: CounterState,
}

impl AbCheckpoint {
    /// The index range `[lo, hi)` this checkpoint covers.
    pub fn range(&self) -> (u64, u64) {
        (self.range_lo, self.range_hi)
    }

    /// Gate admissions in `[0, range_lo)`.
    pub fn admitted_before(&self) -> u64 {
        self.admitted_before
    }

    /// Re-apply the recorded obs totals (see the module-docs contract).
    pub fn restore_counters(&self) {
        self.counters.restore();
    }

    /// Serialize to the versioned JSONL format (ends with a newline).
    pub fn save(&self) -> String {
        let n_stim = self.acc.stimuli.len();
        let header = HeaderLine {
            format: FORMAT_TAG.to_string(),
            version: CHECKPOINT_VERSION,
            kind: "ab".to_string(),
            // A/B digests carry no histogram/sketch accumulators.
            hist_bins: 0,
            sketch_bins: 0,
            exact_cap: 0,
            range_lo: self.range_lo,
            range_hi: self.range_hi,
            admitted_before: self.admitted_before,
            stimuli: n_stim,
            lines: n_stim + 5,
        };
        let mut out = String::new();
        out.push_str(&json_line(&header));
        out.push('\n');
        out.push_str(&json_line(&AbTotalsLine {
            admitted: self.acc.admitted,
            rejected: self.acc.rejected,
            cast: self.acc.cast,
            skipped: self.acc.skipped,
            filters: filters_line(&self.acc.filters),
            controls: controls_line(&self.acc.controls),
        }));
        out.push('\n');
        out.push_str(&json_line(&behavior_line(&self.acc.behavior)));
        out.push('\n');
        for s in &self.acc.stimuli {
            out.push_str(&json_line(&AbStimulusLine {
                name: s.name.clone(),
                a: s.tally.a,
                b: s.tally.b,
                nd: s.tally.nd,
                shows: s.shows,
                a_left_shows: s.a_left_shows,
            }));
            out.push('\n');
        }
        out.push_str(&json_line(&self.counters.to_line()));
        out.push('\n');
        out.push_str(&json_line(&EndLine { end: FORMAT_TAG.to_string() }));
        out.push('\n');
        out
    }

    /// Parse and validate a serialized A/B checkpoint. Same contract as
    /// [`TimelineCheckpoint::load`].
    // lint:entrypoint(untrusted)
    pub fn load(text: &str) -> Result<AbCheckpoint, CheckpointError> {
        let (lines, h) = split_and_header(text, "ab", 5)?;
        // lint:allow(D7): split_and_header pinned lines.len() to stimuli + 5
        let totals: AbTotalsLine = parse_line(lines[1], 2)?;
        // lint:allow(D7): split_and_header pinned lines.len() to stimuli + 5
        let behavior = behavior_of(&parse_line::<BehaviorLine>(lines[2], 3)?, 3)?;
        let mut stimuli = Vec::with_capacity(h.stimuli);
        for i in 0..h.stimuli {
            // lint:allow(D7): i < h.stimuli and lines.len() == stimuli + 5 (split_and_header)
            let sl: AbStimulusLine = parse_line(lines[3 + i], 4 + i)?;
            stimuli.push(AbStimulusDigest {
                name: sl.name,
                tally: crate::analysis::AbTally { a: sl.a, b: sl.b, nd: sl.nd },
                shows: sl.shows,
                a_left_shows: sl.a_left_shows,
            });
        }
        // lint:allow(D7): split_and_header pinned lines.len() to stimuli + 5
        let cl: CountersLine = parse_line(lines[3 + h.stimuli], 4 + h.stimuli)?;
        // lint:allow(D7): split_and_header pinned lines.len() to stimuli + 5
        check_end(lines[4 + h.stimuli], 5 + h.stimuli)?;
        Ok(AbCheckpoint {
            range_lo: h.range_lo,
            range_hi: h.range_hi,
            admitted_before: h.admitted_before,
            acc: AbShard {
                stimuli,
                behavior,
                filters: filters_of(&totals.filters),
                controls: controls_of(&totals.controls),
                admitted: totals.admitted,
                rejected: totals.rejected,
                cast: totals.cast,
                skipped: totals.skipped,
            },
            counters: CounterState::of_line(cl),
        })
    }

    /// Append an adjacent checkpoint's range; same contract as
    /// [`TimelineCheckpoint::merge`] (A/B folds never prune, so the
    /// admitted-continuity check uses admissions alone).
    // lint:entrypoint(untrusted)
    pub fn merge(&mut self, other: &AbCheckpoint) -> Result<(), CheckpointError> {
        if other.range_lo != self.range_hi {
            return Err(CheckpointError::RangeGap {
                left_hi: self.range_hi,
                right_lo: other.range_lo,
            });
        }
        let expected = self.admitted_before.saturating_add(self.acc.admitted);
        if other.admitted_before != expected {
            return Err(CheckpointError::AdmittedGap { expected, found: other.admitted_before });
        }
        if self.acc.stimuli.len() != other.acc.stimuli.len() {
            return Err(MergeError::StimulusCount {
                left: self.acc.stimuli.len(),
                right: other.acc.stimuli.len(),
            }
            .into());
        }
        let mut merged = self.acc.stimuli.clone();
        for (a, b) in merged.iter_mut().zip(&other.acc.stimuli) {
            a.merge(b)?;
        }
        self.acc.stimuli = merged;
        self.acc.behavior.merge(&other.acc.behavior);
        self.acc.filters.merge(&other.acc.filters);
        self.acc.controls.merge(&other.acc.controls);
        self.acc.admitted = self.acc.admitted.saturating_add(other.acc.admitted);
        self.acc.rejected = self.acc.rejected.saturating_add(other.acc.rejected);
        self.acc.cast = self.acc.cast.saturating_add(other.acc.cast);
        self.acc.skipped = self.acc.skipped.saturating_add(other.acc.skipped);
        self.counters.merge_from(&other.counters);
        self.range_hi = other.range_hi;
        Ok(())
    }

    /// Produce the final digest of a complete (`range_lo = 0`)
    /// checkpoint; see [`TimelineCheckpoint::finalize`].
    pub fn finalize(
        &self,
        stimuli: &[AbStimulus],
        service: &dyn RecruitmentService,
    ) -> Result<AbDigest, CheckpointError> {
        if self.range_lo != 0 {
            return Err(CheckpointError::PartialRange { lo: self.range_lo });
        }
        ab_digest_of(&self.acc, stimuli, service, self.range_hi)
    }
}

/// Fallible counterpart of `stream::merge_ab_shards` for accumulators
/// that came from disk.
fn ab_digest_of(
    acc: &AbShard,
    stimuli: &[AbStimulus],
    service: &dyn RecruitmentService,
    n_participants: u64,
) -> Result<AbDigest, CheckpointError> {
    if stimuli.len() != acc.stimuli.len() {
        return Err(
            MergeError::StimulusCount { left: stimuli.len(), right: acc.stimuli.len() }.into()
        );
    }
    let n = n_participants as usize;
    let mut digest = AbDigest {
        stimuli: stimuli.iter().map(|st| AbStimulusDigest::new(&st.name)).collect(),
        recruited: n_participants,
        admitted: acc.admitted,
        rejected: acc.rejected,
        recruitment_cost_usd: service.cost_per_participant() * n as f64,
        recruitment_duration_secs: if n == 0 { 0.0 } else { service.arrival(n - 1).as_secs_f64() },
        votes_cast: acc.cast,
        votes_skipped: acc.skipped,
        behavior: acc.behavior.clone(),
        filters: acc.filters,
        controls: acc.controls,
    };
    for (a, b) in digest.stimuli.iter_mut().zip(&acc.stimuli) {
        a.merge(b)?;
    }
    Ok(digest)
}

/// How a checkpointed A/B run ended.
#[derive(Debug)]
pub enum AbRunOutcome {
    /// Ran to its natural end.
    Complete(Box<AbDigest>),
    /// The observer interrupted at a barrier.
    Interrupted(Box<AbCheckpoint>),
}

/// Fold the participant index range `[lo, hi)` of an A/B campaign into
/// a mergeable worker checkpoint — the A/B counterpart of
/// [`timeline_worker_checkpoint`] (streaming engine; A/B has no flat
/// epoch driver).
#[allow(clippy::too_many_arguments)] // mirrors the engine entry points it wraps
pub fn ab_worker_checkpoint(
    stimuli: &[AbStimulus],
    service: &dyn RecruitmentService,
    lo: usize,
    hi: usize,
    cfg: &ExperimentConfig,
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
    seed: Seed,
    sc: &StreamConfig,
) -> Result<AbCheckpoint, CheckpointError> {
    if stimuli.is_empty() {
        return Err(CheckpointError::Config { detail: "campaign needs stimuli".to_string() });
    }
    if lo > hi {
        return Err(CheckpointError::Config {
            detail: format!("inverted worker range [{lo}, {hi})"),
        });
    }
    let _t = eyeorg_obs::phase_timer("core.worker_checkpoint");
    let threads = resolve_threads(cfg.threads);
    let shard = sc.shard_size.max(1);
    let pop = service.population();
    let recruit_seed = seed.derive("recruit");
    let admitted_before = if lo == 0 {
        0
    } else {
        admitted_bases_range(0, lo, shard, threads, &pop, recruit_seed, 0).1
    };
    let ctx = AbCtx::new(
        stimuli,
        &pop,
        cfg,
        filters,
        recruit_seed,
        seed.derive("ab-assign"),
        seed.derive("ab-side"),
    );
    let (folds, _) = stream_ab_epoch(&ctx, lo, hi, threads, shard, admitted_before);
    let mut acc = AbShard::new(stimuli);
    for fold in &folds {
        acc.merge_from(fold);
    }
    Ok(AbCheckpoint {
        range_lo: lo as u64,
        range_hi: hi as u64,
        admitted_before,
        acc,
        counters: CounterState::capture(threads),
    })
}

fn validate_ab_resume(
    resume: &AbCheckpoint,
    stimuli: &[AbStimulus],
    n_participants: usize,
) -> Result<(), CheckpointError> {
    if resume.range_lo != 0 {
        return Err(CheckpointError::PartialRange { lo: resume.range_lo });
    }
    if resume.range_hi > n_participants as u64 {
        return Err(CheckpointError::Config {
            detail: format!(
                "checkpoint covers {} participants, target is {n_participants}",
                resume.range_hi
            ),
        });
    }
    // Probe-merge against a fresh accumulator (names), as on the
    // timeline side.
    let mut probe = AbShard::new(stimuli);
    if probe.stimuli.len() != resume.acc.stimuli.len() {
        return Err(MergeError::StimulusCount {
            left: probe.stimuli.len(),
            right: resume.acc.stimuli.len(),
        }
        .into());
    }
    for (a, b) in probe.stimuli.iter_mut().zip(&resume.acc.stimuli) {
        a.merge(b)?;
    }
    Ok(())
}

/// Run an A/B campaign (streaming engine) with checkpoint/resume: the
/// observer sees a checkpoint every [`CheckpointConfig::every_shards`]
/// shards and can interrupt by returning `false`; resuming replays only
/// the remaining range, byte-identical to never stopping. Same obs
/// contract as [`checkpointed_timeline_campaign`].
#[allow(clippy::too_many_arguments)] // mirrors the engine entry points it wraps
pub fn checkpointed_ab_campaign(
    stimuli: &[AbStimulus],
    service: &dyn RecruitmentService,
    n_participants: usize,
    cfg: &ExperimentConfig,
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
    seed: Seed,
    sc: &StreamConfig,
    resume: Option<&AbCheckpoint>,
    ck: &CheckpointConfig,
    observer: &mut dyn FnMut(&AbCheckpoint) -> bool,
) -> Result<AbRunOutcome, CheckpointError> {
    if stimuli.is_empty() {
        return Err(CheckpointError::Config { detail: "campaign needs stimuli".to_string() });
    }
    let _t = eyeorg_obs::phase_timer("core.checkpointed_ab");
    let threads = resolve_threads(cfg.threads);
    let shard = sc.shard_size.max(1);
    let chunk = ck.every_shards.max(1).saturating_mul(shard);
    let pop = service.population();
    let ctx = AbCtx::new(
        stimuli,
        &pop,
        cfg,
        filters,
        seed.derive("recruit"),
        seed.derive("ab-assign"),
        seed.derive("ab-side"),
    );
    let (mut acc, mut processed) = match resume {
        None => (AbShard::new(stimuli), 0usize),
        Some(c) => {
            validate_ab_resume(c, stimuli, n_participants)?;
            c.restore_counters();
            (c.acc.clone(), c.range_hi as usize)
        }
    };
    let mut admitted = acc.admitted;
    while processed < n_participants {
        let hi = processed.saturating_add(chunk).min(n_participants);
        let (folds, range_admitted) =
            stream_ab_epoch(&ctx, processed, hi, threads, shard, admitted);
        for fold in &folds {
            acc.merge_from(fold);
        }
        admitted += range_admitted;
        processed = hi;
        let ckpt = AbCheckpoint {
            range_lo: 0,
            range_hi: processed as u64,
            admitted_before: 0,
            acc: acc.clone(),
            counters: CounterState::capture(threads),
        };
        if !observer(&ckpt) {
            return Ok(AbRunOutcome::Interrupted(Box::new(ckpt)));
        }
    }
    let digest = merge_ab_shards(stimuli, service, n_participants, std::slice::from_ref(&acc));
    Ok(AbRunOutcome::Complete(Box::new(digest)))
}
