//! Deterministic run instrumentation for the Eyeorg reproduction.
//!
//! Every layer of the pipeline — the network simulator, the HTTP
//! engines, the browser, the capture stack, and the campaign machinery —
//! bumps a small set of *registered* [`Counter`]s, [`Histogram`]s, and
//! [`LabeledCounter`]s declared in [`metrics`]. A run's totals are
//! collected into a serialisable [`RunReport`] (written to
//! `results/RUN_report.json` by the bench binaries), giving an auditable
//! trace of what actually executed: segments simulated, connections
//! reused, frames captured, participants gated, responses retained.
//!
//! Two properties make the layer safe to leave in hot paths:
//!
//! * **Determinism.** Counters are only bumped at points whose
//!   invocation count is a pure function of the workload and its seeds —
//!   never inside thread-count-dependent machinery (work stealing,
//!   memoisation races). Increments are commutative, so the totals are
//!   byte-identical at any `EYEORG_THREADS` setting; `scripts/verify.sh`
//!   asserts exactly that on [`RunReport::counter_fingerprint`].
//!   Wall-clock phase timings are the one nondeterministic section and
//!   live under a separate key ([`RunReport::timings_secs`]) that the
//!   fingerprint excludes.
//! * **Near-zero disabled cost.** Instrumentation is off by default;
//!   every record path first checks one relaxed atomic load and does
//!   nothing else. Bench binaries opt in with [`enable`]; the
//!   `perf_hotpath` divergence gates run with it on.
//!
//! The registry is static: all metrics are declared in this crate, so a
//! snapshot never misses a counter and reports always carry the full
//! key set (zeros included), keeping the fingerprint's shape stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;

pub mod metrics;

/// Global instrumentation switch. Off by default so library users and
/// the test suite pay only a relaxed load per potential record.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn instrumentation on (bench binaries call this at startup).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn instrumentation off again (used by tests).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether instrumentation is currently on. Callers computing a value
/// *only* to record it should guard the computation with this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A named monotonic counter.
///
/// Increments use relaxed atomics: addition commutes, so concurrent
/// workers produce the same total in any interleaving — the property the
/// cross-thread-count fingerprint check rests on.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new counter (used by the static registry in [`metrics`]).
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`. A no-op (one relaxed load) while instrumentation is off.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets per histogram: bucket `k` holds values whose
/// bit length is `k` (0, 1, 2–3, 4–7, …); the last bucket absorbs
/// everything ≥ 2³⁰.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// The bucket index a value lands in: its bit length, clamped.
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()).min(HISTOGRAM_BUCKETS as u32 - 1) as usize
}

/// A named histogram over `u64` samples with log₂ buckets.
///
/// Same concurrency story as [`Counter`]: every record is a handful of
/// relaxed adds, so totals and bucket counts merge order-independently.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A new histogram (used by the static registry in [`metrics`]).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample. A no-op while instrumentation is off.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        // lint:allow(D7): bucket_of clamps its result to HISTOGRAM_BUCKETS - 1
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(k, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((k, n))
                })
                .collect(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    fn restore(&self, snap: &HistogramSnapshot) {
        for &(k, n) in &snap.buckets {
            // Out-of-range indices (a snapshot from a build with more
            // buckets) are dropped rather than panicking.
            if k < HISTOGRAM_BUCKETS {
                self.buckets[k].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
    }
}

/// A counter keyed by a dynamic label (per-filter drop counts, retained
/// responses per site). Backed by a mutex-guarded `BTreeMap`, so it
/// belongs on *cold* paths only; additions per label commute, and the
/// map's ordering makes serialised output deterministic.
#[derive(Debug)]
pub struct LabeledCounter {
    name: &'static str,
    cells: Mutex<BTreeMap<String, u64>>,
}

impl LabeledCounter {
    /// A new labeled counter (used by the static registry in [`metrics`]).
    pub const fn new(name: &'static str) -> LabeledCounter {
        LabeledCounter { name, cells: Mutex::new(BTreeMap::new()) }
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` under `label`. Recording a zero still materialises the
    /// label — that is how "site retained 0 responses" stays visible in
    /// the report. A no-op while instrumentation is off.
    ///
    /// Lock accesses here and below tolerate poisoning: a panicking
    /// recorder leaves the map in a valid state (every mutation is a
    /// single insert-or-add), and instrumentation must never turn one
    /// failure into a cascade.
    pub fn add(&self, label: &str, n: u64) {
        if !enabled() {
            return;
        }
        let mut cells = self.cells.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *cells.entry(label.to_owned()).or_insert(0) += n;
    }

    /// Current value under `label` (0 when never recorded).
    pub fn get(&self, label: &str) -> u64 {
        let cells = self.cells.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        cells.get(label).copied().unwrap_or(0)
    }

    fn snapshot(&self) -> BTreeMap<String, u64> {
        self.cells.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    fn reset(&self) {
        self.cells.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }
}

/// Accumulated wall-clock seconds per phase name.
static TIMINGS: Mutex<BTreeMap<String, f64>> = Mutex::new(BTreeMap::new());

/// Run `f`, accumulating its wall time under `phase` when
/// instrumentation is on.
pub fn time_phase<R>(phase: &str, f: impl FnOnce() -> R) -> R {
    let _guard = phase_timer(phase);
    f()
}

/// A scoped phase timer: accumulates the wall time between construction
/// and drop under its phase name. Obtain one with [`phase_timer`].
#[derive(Debug)]
pub struct PhaseGuard {
    phase: String,
    started: Option<Instant>,
}

/// Start timing `phase`; the returned guard records on drop. When
/// instrumentation is off the guard is inert (no clock read).
pub fn phase_timer(phase: &str) -> PhaseGuard {
    PhaseGuard {
        phase: phase.to_owned(),
        started: enabled().then(Instant::now),
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            let secs = t0.elapsed().as_secs_f64();
            let mut timings = TIMINGS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *timings.entry(self.phase.clone()).or_insert(0.0) += secs;
        }
    }
}

/// One histogram's serialised form: only non-empty buckets, as
/// `(bucket_index, count)` pairs in index order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// `(log₂-bucket index, count)` for every non-empty bucket.
    pub buckets: Vec<(usize, u64)>,
}

/// Run context recorded alongside the totals. Excluded from
/// [`RunReport::counter_fingerprint`] — it legitimately varies across
/// the thread-count sweep.
#[derive(Debug, Clone, Serialize)]
pub struct RunMeta {
    /// What produced the report (binary or stage name).
    pub label: String,
    /// Resolved worker-thread knob for the run.
    pub threads: usize,
    /// The machine's available parallelism.
    pub available_parallelism: usize,
}

/// A full snapshot of the instrumentation registry.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Run context (not fingerprinted).
    pub meta: RunMeta,
    /// Every registered counter, including zeros.
    pub counters: BTreeMap<String, u64>,
    /// Every registered labeled counter (label → total).
    pub labeled: BTreeMap<String, BTreeMap<String, u64>>,
    /// Every registered histogram.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Accumulated wall seconds per phase (not fingerprinted).
    pub timings_secs: BTreeMap<String, f64>,
}

impl RunReport {
    /// Canonical JSON of the deterministic sections (counters, labeled
    /// counters, histograms) — byte-identical across thread counts for a
    /// fixed workload and seed. `meta` and `timings_secs` are excluded.
    pub fn counter_fingerprint(&self) -> String {
        let det = serde::Value::Object(vec![
            ("counters".to_owned(), self.counters.to_value()),
            ("labeled".to_owned(), self.labeled.to_value()),
            ("histograms".to_owned(), self.histograms.to_value()),
        ]);
        // lint:allow(D4): serialising string-keyed maps of integers cannot fail
        serde_json::to_string(&det).expect("integer maps serialise")
    }

    /// Pretty JSON of the whole report (the `RUN_report.json` payload).
    pub fn to_json_pretty(&self) -> String {
        // lint:allow(D4): RunReport is plain maps and integers; its serialisation cannot fail
        serde_json::to_string_pretty(self).expect("report serialises")
    }
}

/// Snapshot every registered metric into a [`RunReport`].
pub fn snapshot(label: &str, threads: usize) -> RunReport {
    let cpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    RunReport {
        meta: RunMeta { label: label.to_owned(), threads, available_parallelism: cpus },
        counters: metrics::counters()
            .iter()
            .map(|c| (c.name().to_owned(), c.get()))
            .collect(),
        labeled: metrics::labeled()
            .iter()
            .map(|l| (l.name().to_owned(), l.snapshot()))
            .collect(),
        histograms: metrics::histograms()
            .iter()
            .map(|h| (h.name().to_owned(), h.snapshot()))
            .collect(),
        timings_secs: TIMINGS.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone(),
    }
}

/// Re-apply previously captured totals onto the live registry — the
/// checkpoint layer's resume path: [`reset`], then `restore` the
/// totals recorded at the checkpoint barrier, then continue the run,
/// and the final [`snapshot`] equals the uninterrupted run's.
///
/// Additive (totals are added onto whatever the registry currently
/// holds) and gated on [`enabled`] like every record path. Names
/// absent from the static registry are ignored — totals from a build
/// with extra metrics must degrade, never panic. A zero labeled total
/// still materialises its label, exactly as [`LabeledCounter::add`]
/// does, so restored reports keep fully-filtered sites visible.
pub fn restore(
    counters: &BTreeMap<String, u64>,
    labeled: &BTreeMap<String, BTreeMap<String, u64>>,
    histograms: &BTreeMap<String, HistogramSnapshot>,
) {
    if !enabled() {
        return;
    }
    for c in metrics::counters() {
        if let Some(&v) = counters.get(c.name()) {
            c.add(v);
        }
    }
    for l in metrics::labeled() {
        if let Some(cells) = labeled.get(l.name()) {
            for (label, &v) in cells {
                l.add(label, v);
            }
        }
    }
    for h in metrics::histograms() {
        if let Some(snap) = histograms.get(h.name()) {
            h.restore(snap);
        }
    }
}

/// Zero every registered metric and clear the phase timings (benchmarks
/// isolating per-round totals call this between rounds).
pub fn reset() {
    for c in metrics::counters() {
        c.reset();
    }
    for l in metrics::labeled() {
        l.reset();
    }
    for h in metrics::histograms() {
        h.reset();
    }
    TIMINGS.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so tests that enable/reset it
    /// must not interleave; each takes this lock.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = serial();
        disable();
        reset();
        metrics::NET_EVENTS_PROCESSED.add(5);
        metrics::BROWSER_LOAD_CPU_MS.record(12);
        metrics::CORE_FILTER_DROPS.add("soft", 3);
        assert_eq!(metrics::NET_EVENTS_PROCESSED.get(), 0);
        assert_eq!(metrics::BROWSER_LOAD_CPU_MS.count(), 0);
        assert_eq!(metrics::CORE_FILTER_DROPS.get("soft"), 0);
    }

    #[test]
    fn enabled_counts_and_resets() {
        let _g = serial();
        enable();
        reset();
        metrics::NET_EVENTS_PROCESSED.add(2);
        metrics::NET_EVENTS_PROCESSED.incr();
        metrics::CORE_FILTER_DROPS.add("control", 4);
        metrics::CORE_FILTER_DROPS.add("control", 1);
        metrics::CORE_RETAINED_PER_SITE.add("site-0", 0);
        assert_eq!(metrics::NET_EVENTS_PROCESSED.get(), 3);
        assert_eq!(metrics::CORE_FILTER_DROPS.get("control"), 5);
        let report = snapshot("test", 1);
        assert_eq!(report.counters["net.events_processed"], 3);
        assert_eq!(report.labeled["core.filter_drops"]["control"], 5);
        // A zero add still materialises the label in the report.
        assert_eq!(report.labeled["core.retained_per_site"]["site-0"], 0);
        reset();
        disable();
        assert_eq!(metrics::NET_EVENTS_PROCESSED.get(), 0);
        assert_eq!(metrics::CORE_FILTER_DROPS.get("control"), 0);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);

        let _g = serial();
        enable();
        reset();
        for v in [0u64, 1, 3, 3, 1000] {
            metrics::BROWSER_LOAD_CPU_MS.record(v);
        }
        let report = snapshot("test", 1);
        let h = &report.histograms["browser.load_cpu_ms"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1007);
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
        reset();
        disable();
    }

    #[test]
    fn fingerprint_is_order_independent_and_excludes_timings() {
        let _g = serial();
        enable();
        reset();
        // Concurrent increments from racing threads must land on the
        // same fingerprint as a sequential run.
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..250 {
                        metrics::NET_SEGMENTS_SENT.incr();
                        metrics::CORE_FILTER_DROPS.add("soft", 1);
                        metrics::VIDEO_FRAMES_PER_CAPTURE.record(i % 17);
                    }
                });
            }
        });
        let concurrent = snapshot("test", 4).counter_fingerprint();
        reset();
        for _ in 0..4 {
            for i in 0..250 {
                metrics::NET_SEGMENTS_SENT.incr();
                metrics::CORE_FILTER_DROPS.add("soft", 1);
                metrics::VIDEO_FRAMES_PER_CAPTURE.record(i % 17);
            }
        }
        time_phase("only.in.timings", || std::thread::sleep(std::time::Duration::from_millis(1)));
        let sequential = snapshot("test", 1);
        assert_eq!(sequential.counter_fingerprint(), concurrent);
        assert!(sequential.timings_secs.contains_key("only.in.timings"));
        assert!(!sequential.counter_fingerprint().contains("only.in.timings"));
        // Meta differences (threads) never reach the fingerprint either.
        assert!(sequential.to_json_pretty().contains("only.in.timings"));
        reset();
        disable();
    }

    #[test]
    fn restore_round_trips_snapshot_fingerprint() {
        let _g = serial();
        enable();
        reset();
        metrics::NET_EVENTS_PROCESSED.add(7);
        metrics::CORE_FILTER_DROPS.add("soft", 3);
        metrics::CORE_RETAINED_PER_SITE.add("site-0", 0);
        metrics::BROWSER_LOAD_CPU_MS.record(1000);
        let before = snapshot("test", 1);
        // reset → restore reproduces the exact fingerprint, including
        // the zero-valued label and histogram buckets.
        reset();
        restore(&before.counters, &before.labeled, &before.histograms);
        let after = snapshot("test", 1);
        assert_eq!(after.counter_fingerprint(), before.counter_fingerprint());
        // Restore is additive: applying on top of live totals sums.
        metrics::NET_EVENTS_PROCESSED.add(1);
        restore(&before.counters, &before.labeled, &before.histograms);
        assert_eq!(metrics::NET_EVENTS_PROCESSED.get(), 15);
        assert_eq!(metrics::CORE_FILTER_DROPS.get("soft"), 6);
        // Unknown names and out-of-range buckets are ignored, never a
        // panic.
        let mut counters = BTreeMap::new();
        counters.insert("no.such.counter".to_owned(), 5u64);
        let mut labeled = BTreeMap::new();
        labeled.insert("no.such.labeled".to_owned(), BTreeMap::new());
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "browser.load_cpu_ms".to_owned(),
            HistogramSnapshot { count: 1, sum: 2, buckets: vec![(HISTOGRAM_BUCKETS + 4, 1)] },
        );
        restore(&counters, &labeled, &histograms);
        reset();
        disable();
        // Disabled restore is a no-op like every record path.
        restore(&before.counters, &before.labeled, &before.histograms);
        assert_eq!(metrics::NET_EVENTS_PROCESSED.get(), 0);
    }

    #[test]
    fn snapshot_reports_every_registered_metric_even_at_zero() {
        let _g = serial();
        disable();
        reset();
        let report = snapshot("test", 1);
        assert_eq!(report.counters.len(), metrics::counters().len());
        assert!(report.counters.values().all(|&v| v == 0));
        assert_eq!(report.histograms.len(), metrics::histograms().len());
        // Stable shape: two empty snapshots fingerprint identically.
        assert_eq!(report.counter_fingerprint(), snapshot("other", 8).counter_fingerprint());
    }
}
