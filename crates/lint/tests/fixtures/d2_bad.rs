//! D2 trip: wall-clock time outside the observability layer.

pub fn elapsed_micros<R>(f: impl FnOnce() -> R) -> (R, u128) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_micros())
}
