//! # eyeorg-http
//!
//! HTTP/1.1 and HTTP/2 protocol simulation over [`eyeorg_net`].
//!
//! The paper's second measurement campaign asks crowd workers whether the
//! HTTP/2 rendition of a site *feels* faster than its HTTP/1.1 one
//! (Fig. 8b). That comparison is meaningful only if the two protocols'
//! mechanics are faithfully different, so this crate models what actually
//! differs between them on the wire:
//!
//! | | HTTP/1.1 ([`h1`]) | HTTP/2 ([`h2`]) |
//! |---|---|---|
//! | connections/origin | up to 6, one exchange each | 1, multiplexed |
//! | request queueing | waits for a free connection | streams open immediately |
//! | response scheduling | FIFO per connection | weighted (priority) interleaving |
//! | headers | raw every time | HPACK-compressed ([`hpack`]) |
//! | loss sensitivity | per-connection | one window stalls everything |
//!
//! [`engine::FetchEngine`] is the browser-facing API; it co-simulates
//! with the caller through bounded event pumping
//! ([`engine::FetchEngine::next_event_until`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod h1;
pub mod h2;
pub mod hpack;
pub mod request;

pub use engine::{FetchEngine, HttpConfig, Protocol};
pub use hpack::HpackContext;
pub use request::{FetchEvent, OriginId, Priority, Request, RequestId, RequestTiming};
