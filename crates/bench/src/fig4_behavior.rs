//! Figure 4: participant behaviour, paid vs trusted.
//!
//! (a) CDF of total time on site, (b) CDF of total video actions, (c)
//! percentage of correct control responses — each split by participant
//! pool and experiment type. Paper findings to reproduce: paid and
//! trusted distributions are broadly similar, paid slightly *slower*
//! (not faster) on site, the timeline test takes ~3× the A/B test, and
//! paid participants fail controls at a modestly higher rate.

use eyeorg_core::analysis::{ab_behavior_points, behavior_points};
use eyeorg_core::viz::ascii_cdfs;
use eyeorg_stats::{Ecdf, Summary};

use crate::campaigns::ValidationSet;
use crate::series_csv;

/// Build the Fig. 4 report from the validation campaigns.
pub fn run(v: &ValidationSet) -> String {
    let tl_paid = behavior_points(&v.tl_paid.campaign);
    let tl_trusted = behavior_points(&v.tl_trusted.campaign);
    let ab_paid = ab_behavior_points(&v.ab_paid.campaign);
    let ab_trusted = ab_behavior_points(&v.ab_trusted.campaign);

    let minutes = |pts: &[eyeorg_core::analysis::BehaviorPoint]| -> Vec<f64> {
        pts.iter().map(|p| p.minutes_on_site).collect()
    };
    let actions = |pts: &[eyeorg_core::analysis::BehaviorPoint]| -> Vec<f64> {
        pts.iter().map(|p| f64::from(p.actions)).collect()
    };

    let mut out = String::new();
    out.push_str("=== Figure 4(a): time spent on site (minutes) ===\n");
    let m_tp = minutes(&tl_paid);
    let m_tt = minutes(&tl_trusted);
    let m_ap = minutes(&ab_paid);
    let m_at = minutes(&ab_trusted);
    for (label, m) in [
        ("timeline/paid", &m_tp),
        ("timeline/trusted", &m_tt),
        ("A/B/paid", &m_ap),
        ("A/B/trusted", &m_at),
    ] {
        let s = Summary::of(m).expect("non-empty campaign");
        out.push_str(&format!(
            "{label:<18} median {:.1} min, mean {:.1} min\n",
            s.median, s.mean
        ));
    }
    let e_tp = Ecdf::new(&m_tp).expect("non-empty");
    let e_tt = Ecdf::new(&m_tt).expect("non-empty");
    out.push_str(&ascii_cdfs(&[("paid", &e_tp), ("trusted", &e_tt)], 10, 48));

    out.push_str("\n=== Figure 4(b): total video actions ===\n");
    let a_tp = actions(&tl_paid);
    let a_tt = actions(&tl_trusted);
    for (label, a) in [("timeline/paid", &a_tp), ("timeline/trusted", &a_tt)] {
        let s = Summary::of(a).expect("non-empty");
        out.push_str(&format!(
            "{label:<18} median {:.0}, max {:.0} actions\n",
            s.median, s.max
        ));
    }

    out.push_str("\n=== Figure 4(c): correct control responses (%) ===\n");
    let pct = |controls: &[eyeorg_core::campaign::ControlRow]| -> f64 {
        let passed = controls.iter().filter(|c| c.passed).count();
        100.0 * passed as f64 / controls.len().max(1) as f64
    };
    out.push_str(&format!(
        "timeline: trusted {:.1}%  paid {:.1}%\n",
        pct(&v.tl_trusted.campaign.controls),
        pct(&v.tl_paid.campaign.controls),
    ));
    out.push_str(&format!(
        "A/B:      trusted {:.1}%  paid {:.1}%\n",
        pct(&v.ab_trusted.campaign.controls),
        pct(&v.ab_paid.campaign.controls),
    ));
    out
}

/// CSV artefacts for external plotting: four CDFs of minutes on site.
pub fn csv(v: &ValidationSet) -> String {
    let mut out = String::new();
    for (label, pts) in [
        ("timeline_paid", behavior_points(&v.tl_paid.campaign)),
        ("timeline_trusted", behavior_points(&v.tl_trusted.campaign)),
        ("ab_paid", ab_behavior_points(&v.ab_paid.campaign)),
        ("ab_trusted", ab_behavior_points(&v.ab_trusted.campaign)),
    ] {
        let minutes: Vec<f64> = pts.iter().map(|p| p.minutes_on_site).collect();
        if let Some(ecdf) = Ecdf::new(&minutes) {
            out.push_str(&series_csv(
                &format!("minutes_{label},cdf"),
                &ecdf.points(),
            ));
        }
    }
    out
}
