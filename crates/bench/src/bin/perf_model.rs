//! Behavioural-model fast-path harness (no external benchmark
//! framework).
//!
//! DESIGN.md §3g measured that ~70 % of single-thread campaign time is
//! the seeded behavioural model — the Amdahl ceiling of the data-plane
//! work. This harness times the **model path in isolation** (traits +
//! gate + sessions + responses + controls + behaviour, no digest
//! accumulators), comparing:
//!
//! * **reference** — the pre-fast-path per-cell pipeline: full trait
//!   generation for every recruit, a fresh two-level seed derivation
//!   (`seed → activity → label`) per cell and draw site, and a slider
//!   response drawn for *every* non-skipped showing whether or not the
//!   row survives the filters;
//! * **fast** — the demand-driven pipeline the engines now run:
//!   trait-cursor gating (rejected/pruned participants never finish
//!   their trait draws), hoisted per-participant activity parents
//!   ([`eyeorg_crowd::ModelSeeds`]), per-stimulus leaf-seed planes
//!   bulk-expanded with `Rng::seed_block`, and responses drawn only
//!   when their value reaches a live digest.
//!
//! Three scenarios vary the per-stimulus live mask — `all-live` (the
//! headline campaign), `half-live` and `sparse` (adaptive mid/late
//! campaign shapes, where whole-participant pruning and push masking
//! make elision bite hardest). Both paths fold every *consumed* output
//! (kept live votes, filter decisions, controls, behaviour points,
//! session counters) into an order-pinned checksum and the harness
//! **exits non-zero on any divergence** — the fast path must be
//! draw-exact. Writes `results/BENCH_model.json`; `--smoke` is the
//! down-sized CI entry (divergence gate + a regression floor), full
//! mode additionally gates the geometric-mean speedup at
//! [`SPEEDUP_GATE`].

use std::time::Instant;

use eyeorg_bench::campaigns::capture_browser;
use eyeorg_core::experiment::{assign, assign_into};
use eyeorg_core::filtering::{decide, paper_pipeline, FilterDecision, ParticipantFilter};
use eyeorg_core::prelude::{timeline_stimuli, ControlRow, ExperimentConfig, TimelineStimulus};
use eyeorg_core::validation::{captcha_admits, captcha_admits_gate};
use eyeorg_crowd::fastpath::{
    self, session_seed, timeline_control_seeded, timeline_response_seeded, video_session_from_rng,
};
use eyeorg_crowd::{
    timeline_control_passes, timeline_response_flat, timeline_response_shared, total_time_on_site,
    video_session, video_session_profiled, CrowdFlower, ModelSeeds, Participant, Persona,
    PopulationProfile, RecruitmentService, SessionProfile, TestKind, TimelineStimulusProfile,
    VideoSession,
};
use eyeorg_stats::rng::Rng;
use eyeorg_stats::Seed;
use eyeorg_video::{CaptureConfig, FrameTimeline};

const FULL_SITES: usize = 12;
const FULL_PARTICIPANTS: usize = 150_000;
const SMOKE_SITES: usize = 6;
const SMOKE_PARTICIPANTS: usize = 20_000;
const SHARD: usize = 8192;
/// Full-mode gate on the geometric-mean model-path speedup across the
/// three mask scenarios.
const SPEEDUP_GATE: f64 = 1.8;
/// Smoke-mode regression floor (looser: CI boxes are noisy and the
/// smoke crowd is small).
const SMOKE_FLOOR: f64 = 1.2;

/// Per-stimulus constants, prebuilt once (both paths share them — the
/// comparison is the model path, not plane construction).
struct Plane {
    label: String,
    ctrl_label: String,
    profile: TimelineStimulusProfile,
    session: SessionProfile,
    rewinds: Vec<usize>,
}

impl Plane {
    fn of(si: usize, st: &TimelineStimulus) -> Plane {
        let mut tl = FrameTimeline::of(&st.video);
        tl.precompute_rewinds();
        Plane {
            label: format!("tl-{si}"),
            ctrl_label: format!("ctrl-tl-{si}"),
            profile: TimelineStimulusProfile::of(&st.video),
            session: SessionProfile::of(&st.video, TestKind::Timeline),
            rewinds: tl.rewind_table(),
        }
    }
}

/// Order-pinned FNV fold over every consumed model output.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Check(u64);

impl Check {
    fn new() -> Check {
        Check(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u64(v as u64);
    }
}

struct Workload {
    stimuli: Vec<TimelineStimulus>,
    frames: Vec<FrameTimeline>,
    planes: Vec<Plane>,
    pop: PopulationProfile,
    filters: Vec<Box<dyn ParticipantFilter + Send + Sync>>,
    recruit_seed: Seed,
    assign_seed: Seed,
    k: usize,
}

fn workload(sites: usize, seed: Seed) -> Workload {
    let corpus = eyeorg_workload::alexa_like(seed.derive("sites"), sites);
    let capture = CaptureConfig { repeats: 2, ..CaptureConfig::default() };
    let stimuli = timeline_stimuli(&corpus, &capture_browser(), &capture, seed.derive("capture"));
    let frames = stimuli
        .iter()
        .map(|st| {
            let mut tl = FrameTimeline::of(&st.video);
            tl.precompute_rewinds();
            tl
        })
        .collect();
    let planes = stimuli.iter().enumerate().map(|(si, st)| Plane::of(si, st)).collect::<Vec<_>>();
    let cfg = ExperimentConfig::default();
    Workload {
        k: cfg.videos_per_participant.min(planes.len()),
        stimuli,
        frames,
        planes,
        pop: CrowdFlower.population(),
        filters: paper_pipeline(),
        recruit_seed: seed.derive("recruit"),
        assign_seed: seed.derive("timeline"),
    }
}

/// The pre-fast-path model pass, transcribed from the streaming
/// engine's inner loop as it stood before this change: full trait
/// generation for every admitted recruit, a fresh `format!` label and
/// [`SessionProfile`] per cell (what `video_session(&video, ..)` cost),
/// per-call `Participant → Persona` conversions, per-participant
/// session/response vectors, and a slider response drawn for every
/// non-skipped cell regardless of the filter outcome. Mask semantics as
/// the pre-fast-path engines: serve-all, push-live, prune whole
/// participants via the gate peek then regenerate in full.
fn reference_pass(w: &Workload, n: usize, live: &[bool]) -> (Check, f64) {
    let all_live = live.iter().all(|&l| l);
    let t0 = Instant::now();
    let mut check = Check::new();
    let mut pi = 0u64;
    let (mut collected, mut skipped) = (0u64, 0u64);
    for i in 0..n as u64 {
        let my_pi;
        let p: Participant;
        let picks: Vec<usize>;
        if all_live {
            let cand = w.pop.generate_one(w.recruit_seed, i);
            if !captcha_admits(&cand) {
                continue;
            }
            my_pi = pi;
            pi += 1;
            picks = assign(w.assign_seed, my_pi, w.stimuli.len(), w.k);
            p = cand;
        } else {
            let (pseed, class) = w.pop.generate_gate(w.recruit_seed, i);
            if !captcha_admits_gate(pseed, class) {
                continue;
            }
            my_pi = pi;
            pi += 1;
            picks = assign(w.assign_seed, my_pi, w.stimuli.len(), w.k);
            if !picks.iter().any(|&si| live[si]) {
                continue;
            }
            p = w.pop.generate_one(w.recruit_seed, i);
        }
        let mut sessions = Vec::with_capacity(picks.len());
        let mut votes: Vec<(usize, f64)> = Vec::with_capacity(picks.len());
        for &si in &picks {
            let label = format!("tl-{si}");
            let video = &w.stimuli[si].video;
            let session = video_session(video, &p, TestKind::Timeline, &label);
            if session.skipped {
                skipped += 1;
            } else {
                let resp = timeline_response_shared(video, &w.frames[si], &p, &label);
                collected += 1;
                votes.push((si, resp.submitted.as_secs_f64()));
            }
            sessions.push(session);
        }
        let passed = timeline_control_passes(&p, &format!("tl-{}", picks[0]));
        let control = ControlRow { participant: my_pi as usize, passed };
        check.bool(passed);
        let d = decide(&w.filters, &sessions, &[&control]);
        check.u64(d as u64);
        if d == FilterDecision::Kept {
            for &(si, secs) in &votes {
                if live[si] {
                    check.u64(si as u64);
                    check.f64(secs);
                }
            }
        }
        check.f64(total_time_on_site(&sessions, &p).as_secs_f64());
    }
    check.u64(collected);
    check.u64(skipped);
    check.u64(pi);
    (check, t0.elapsed().as_secs_f64())
}

/// The demand-driven fast pass, shaped like the flat engine's shard
/// fold: trait cursors, hoisted parents, per-stimulus seed planes,
/// bulk RNG expansion, responses only where consumed.
fn fast_pass(w: &Workload, n: usize, live: &[bool]) -> (Check, f64) {
    let all_live = live.iter().all(|&l| l);
    let k = w.k;
    let t0 = Instant::now();
    let mut check = Check::new();
    let mut pi = 0u64;
    let (mut collected, mut skipped) = (0u64, 0u64);
    let mut personas: Vec<Persona> = Vec::new();
    let mut seeds: Vec<ModelSeeds> = Vec::new();
    let mut row_pi: Vec<u64> = Vec::new();
    let mut picks_col: Vec<u32> = Vec::new();
    let mut pick_buf: Vec<usize> = Vec::new();
    let mut cells: Vec<Option<VideoSession>> = Vec::new();
    let mut voted: Vec<bool> = Vec::new();
    let mut stim_rows: Vec<Vec<u32>> = (0..w.planes.len()).map(|_| Vec::new()).collect();
    let mut seed_buf: Vec<u64> = Vec::new();
    let mut rngs: Vec<Rng> = Vec::new();
    let mut row_buf: Vec<VideoSession> = Vec::new();
    for lo in (0..n).step_by(SHARD) {
        let hi = (lo + SHARD).min(n);
        personas.clear();
        seeds.clear();
        row_pi.clear();
        picks_col.clear();
        cells.clear();
        voted.clear();
        for rows in &mut stim_rows {
            rows.clear();
        }
        for i in lo..hi {
            let cur = w.pop.start_traits(w.recruit_seed, i as u64);
            if !captcha_admits_gate(cur.seed(), cur.class()) {
                continue;
            }
            let my_pi = pi;
            pi += 1;
            if !all_live {
                assign_into(w.assign_seed, my_pi, w.planes.len(), k, &mut pick_buf);
                if !pick_buf.iter().any(|&si| live[si]) {
                    continue;
                }
            }
            row_pi.push(my_pi);
            let p = cur.finish(&w.pop);
            seeds.push(ModelSeeds::of(p.seed));
            personas.push(p);
        }
        let rows = personas.len();
        picks_col.resize(rows * k, 0);
        cells.resize(rows * k, None);
        voted.clear();
        voted.resize(rows * k, false);
        for (row, &my_pi) in row_pi.iter().enumerate() {
            assign_into(w.assign_seed, my_pi, w.planes.len(), k, &mut pick_buf);
            for (slot, &si) in pick_buf.iter().enumerate() {
                let cell = row * k + slot;
                picks_col[cell] = si as u32;
                stim_rows[si].push(cell as u32);
            }
        }
        for (si, plane) in w.planes.iter().enumerate() {
            seed_buf.clear();
            seed_buf.extend(
                stim_rows[si].iter().map(|&cell| session_seed(&seeds[cell as usize / k],
                    &plane.label)),
            );
            Rng::seed_block(&seed_buf, &mut rngs);
            for (j, &cell) in stim_rows[si].iter().enumerate() {
                let cell = cell as usize;
                let p = &personas[cell / k];
                let session =
                    video_session_from_rng(&plane.session, p, TestKind::Timeline, rngs[j].clone());
                if session.skipped {
                    skipped += 1;
                } else {
                    collected += 1;
                    voted[cell] = true;
                }
                cells[cell] = Some(session);
            }
        }
        for row in 0..rows {
            let my_pi = row_pi[row];
            let cbase = row * k;
            row_buf.clear();
            row_buf.extend(cells[cbase..cbase + k].iter().map(|o| o.expect("cell served")));
            let p = &personas[row];
            let mseeds = &seeds[row];
            let passed = timeline_control_seeded(p, mseeds,
                &w.planes[picks_col[cbase] as usize].ctrl_label);
            let control = ControlRow { participant: my_pi as usize, passed };
            check.bool(passed);
            let d = decide(&w.filters, &row_buf, &[&control]);
            check.u64(d as u64);
            if d == FilterDecision::Kept {
                for slot in 0..k {
                    let si = picks_col[cbase + slot] as usize;
                    if voted[cbase + slot] && live[si] {
                        let plane = &w.planes[si];
                        let resp = timeline_response_seeded(&plane.profile, &plane.rewinds, p,
                            mseeds, &plane.label);
                        check.u64(si as u64);
                        check.f64(resp.submitted.as_secs_f64());
                    }
                }
            }
            check.f64(fastpath::total_time_on_site_seeded(&row_buf, p, mseeds).as_secs_f64());
        }
    }
    check.u64(collected);
    check.u64(skipped);
    check.u64(pi);
    (check, t0.elapsed().as_secs_f64())
}

/// Component micro-timings for DESIGN.md §3k's Amdahl breakdown, in
/// microseconds per unit (participant or cell).
fn components(w: &Workload, n: usize) -> String {
    let plane = &w.planes[0];
    // Traits: full generation vs the demand path for an *admitted*
    // participant (pause + finish) — the structural saving is on
    // rejected/pruned indices, measured by the scenarios.
    let t0 = Instant::now();
    for i in 0..n as u64 {
        std::hint::black_box(w.pop.generate_persona(w.recruit_seed, i).seed.value());
    }
    let traits_full = t0.elapsed().as_secs_f64() / n as f64 * 1e6;
    let t0 = Instant::now();
    for i in 0..n as u64 {
        let cur = w.pop.start_traits(w.recruit_seed, i);
        std::hint::black_box(cur.finish(&w.pop).seed.value());
    }
    let traits_cursor = t0.elapsed().as_secs_f64() / n as f64 * 1e6;
    // Sessions, three generations of per-cell cost: streaming (profile
    // and label rebuilt per call, persona converted per call), flat
    // (hoisted profile/label, per-cell double seed derivation), fast
    // (seed plane + bulk RNG block).
    let participants: Vec<Participant> =
        (0..n as u64).map(|i| w.pop.generate_one(w.recruit_seed, i)).collect();
    let video = &w.stimuli[0].video;
    let t0 = Instant::now();
    for p in &participants {
        let si = 0;
        let label = format!("tl-{si}");
        std::hint::black_box(video_session(video, p, TestKind::Timeline, &label).seeks);
    }
    let session_streaming = t0.elapsed().as_secs_f64() / n as f64 * 1e6;
    let personas: Vec<Persona> =
        (0..n as u64).map(|i| w.pop.generate_persona(w.recruit_seed, i)).collect();
    let t0 = Instant::now();
    for p in &personas {
        std::hint::black_box(
            video_session_profiled(&plane.session, p, TestKind::Timeline, &plane.label).seeks,
        );
    }
    let session_ref = t0.elapsed().as_secs_f64() / n as f64 * 1e6;
    let mseeds: Vec<ModelSeeds> = personas.iter().map(|p| ModelSeeds::of(p.seed)).collect();
    let t0 = Instant::now();
    let seed_buf: Vec<u64> = mseeds.iter().map(|s| session_seed(s, &plane.label)).collect();
    let mut rngs = Vec::new();
    Rng::seed_block(&seed_buf, &mut rngs);
    for (p, rng) in personas.iter().zip(&rngs) {
        std::hint::black_box(
            video_session_from_rng(&plane.session, p, TestKind::Timeline, rng.clone()).seeks,
        );
    }
    let session_fast = t0.elapsed().as_secs_f64() / n as f64 * 1e6;
    // Responses: per-cell double derivation vs hoisted parent.
    let t0 = Instant::now();
    for p in &personas {
        std::hint::black_box(
            timeline_response_flat(&plane.profile, &plane.rewinds, p, &plane.label).submitted,
        );
    }
    let response_ref = t0.elapsed().as_secs_f64() / n as f64 * 1e6;
    let t0 = Instant::now();
    for (p, s) in personas.iter().zip(&mseeds) {
        std::hint::black_box(
            timeline_response_seeded(&plane.profile, &plane.rewinds, p, s, &plane.label).submitted,
        );
    }
    let response_fast = t0.elapsed().as_secs_f64() / n as f64 * 1e6;
    println!(
        "components (us/unit): traits {traits_full:.2} -> {traits_cursor:.2}, \
         session {session_streaming:.2} -> {session_ref:.2} -> {session_fast:.2}, \
         response {response_ref:.2} -> {response_fast:.2}"
    );
    format!(
        "\"components_us\": {{\"traits_full\": {traits_full:.3}, \
         \"traits_cursor\": {traits_cursor:.3}, \
         \"session_streaming\": {session_streaming:.3}, \
         \"session_flat\": {session_ref:.3}, \"session_fast\": {session_fast:.3}, \
         \"response_flat\": {response_ref:.3}, \"response_fast\": {response_fast:.3}}}"
    )
}

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let (sites, n, floor) = if smoke {
        (SMOKE_SITES, SMOKE_PARTICIPANTS, SMOKE_FLOOR)
    } else {
        (FULL_SITES, FULL_PARTICIPANTS, SPEEDUP_GATE)
    };
    let seed = Seed(2016).derive("perf-model");
    let w = workload(sites, seed);
    let masks: [(&str, Vec<bool>); 3] = [
        ("all-live", vec![true; w.planes.len()]),
        ("half-live", (0..w.planes.len()).map(|si| si % 2 == 0).collect()),
        ("sparse", (0..w.planes.len()).map(|si| si % 8 == 0).collect()),
    ];
    let mut identical = true;
    let mut rows = Vec::new();
    let mut scenario_json = Vec::new();
    for (name, live) in &masks {
        let (ref_check, ref_secs) = reference_pass(&w, n, live);
        let (fast_check, fast_secs) = fast_pass(&w, n, live);
        if ref_check != fast_check {
            identical = false;
            eprintln!("DIVERGENCE: scenario {name}: fast-path checksum differs from reference");
        }
        let speedup = ref_secs / fast_secs;
        let ref_us = ref_secs / n as f64 * 1e6;
        let fast_us = fast_secs / n as f64 * 1e6;
        println!(
            "{name:>9}: reference {ref_secs:.3}s ({ref_us:.2} us/participant), \
             fast {fast_secs:.3}s ({fast_us:.2} us/participant) -> {speedup:.2}x"
        );
        rows.push(speedup);
        scenario_json.push(format!(
            "{{\"scenario\": \"{name}\", \"reference_secs\": {ref_secs:.6}, \
             \"fast_secs\": {fast_secs:.6}, \
             \"reference_us_per_participant\": {ref_us:.3}, \
             \"fast_us_per_participant\": {fast_us:.3}, \
             \"speedup\": {speedup:.3}, \"identical\": {}}}",
            ref_check == fast_check
        ));
    }
    let geomean =
        (rows.iter().map(|s| s.ln()).sum::<f64>() / rows.len() as f64).exp();
    println!("model-path speedup (geometric mean of {} scenarios): {geomean:.2}x", rows.len());
    let comp = components(&w, (n / 10).max(1_000));

    let gate_met = geomean >= floor;
    if !gate_met {
        eprintln!(
            "FAIL: model-path speedup {geomean:.2}x is below the {floor}x {} gate",
            if smoke { "smoke floor" } else { "full" }
        );
    }
    let env = eyeorg_bench::env_metadata_json();
    let json = format!(
        "{{\n  \"participants\": {n},\n  \"stimuli\": {sites},\n  \
         \"shard_size\": {SHARD},\n  \"smoke\": {smoke},\n  \
         {env},\n  \
         \"scenarios\": [{}],\n  \
         {comp},\n  \
         \"speedup_geomean\": {geomean:.3},\n  \
         \"speedup_gate\": {floor},\n  \
         \"speedup_gate_met\": {gate_met},\n  \
         \"identical\": {identical}\n}}\n",
        scenario_json.join(", ")
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_model.json", &json).expect("write BENCH_model.json");
    println!("wrote results/BENCH_model.json");
    if !identical {
        eprintln!("FAIL: fast path diverged from the reference model");
        std::process::exit(1);
    }
    if !gate_met {
        std::process::exit(1);
    }
}
