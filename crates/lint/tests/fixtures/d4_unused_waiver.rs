//! D4 unused waiver: the line below already handles the None case.

// lint:allow(D4): stale — the unwrap was replaced by unwrap_or
pub fn first_or_empty(line: &str) -> &str {
    line.split_whitespace().next().unwrap_or("")
}
