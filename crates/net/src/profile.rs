//! Network emulation profiles.
//!
//! webpeg records page loads under controlled network conditions via
//! Chrome's remote-debugging network emulation (§3.1 of the paper). The
//! presets here mirror the de-facto standard WebPageTest traffic-shaping
//! profiles that tooling of that era used, so an experimenter can say
//! "capture this site over Cable" exactly as they would have with the
//! original platform.

use crate::loss::LossModel;
use crate::time::SimDuration;

/// A bidirectional access-link profile.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    /// Human-readable name ("Cable", "3G", …).
    pub name: &'static str,
    /// Downlink rate in bits per second.
    pub down_bps: u64,
    /// Uplink rate in bits per second.
    pub up_bps: u64,
    /// Round-trip propagation delay (split evenly per direction).
    pub rtt: SimDuration,
    /// Loss process applied to downlink data segments.
    pub loss: LossModel,
    /// Drop-tail buffer size in packets, per direction.
    pub queue_limit: usize,
}

impl NetworkProfile {
    /// One-way propagation delay per direction.
    pub fn one_way_delay(&self) -> SimDuration {
        SimDuration::from_micros(self.rtt.as_micros() / 2)
    }

    /// "FTTC": 12 Mbit/s down, 3 Mbit/s up, 45 ms RTT — a fast consumer
    /// line reaching real (not datacentre-local) origins; the regime
    /// where the paper's mix of 1–10 s onloads arises for a top-sites
    /// sample, and where multiplexing's round-trip savings show.
    pub fn fttc() -> NetworkProfile {
        NetworkProfile {
            name: "FTTC",
            down_bps: 12_000_000,
            up_bps: 3_000_000,
            rtt: SimDuration::from_millis(45),
            loss: LossModel::Bernoulli { p: 0.0003 },
            // Bufferbloat-era CPE: ~100 ms of buffering at line rate.
            // Much shallower buffers put small flows into correlated
            // drop-tail RTO spirals real captures did not show; much
            // deeper ones hide HTTP/1.1's six-connection self-congestion.
            queue_limit: 96,
        }
    }

    /// WebPageTest "Cable": 5 Mbit/s down, 1 Mbit/s up, 28 ms RTT.
    pub fn cable() -> NetworkProfile {
        NetworkProfile {
            name: "Cable",
            down_bps: 5_000_000,
            up_bps: 1_000_000,
            rtt: SimDuration::from_millis(28),
            loss: LossModel::Bernoulli { p: 0.0005 },
            queue_limit: 64,
        }
    }

    /// WebPageTest "DSL": 1.5 Mbit/s down, 384 kbit/s up, 50 ms RTT.
    pub fn dsl() -> NetworkProfile {
        NetworkProfile {
            name: "DSL",
            down_bps: 1_500_000,
            up_bps: 384_000,
            rtt: SimDuration::from_millis(50),
            loss: LossModel::Bernoulli { p: 0.001 },
            queue_limit: 48,
        }
    }

    /// WebPageTest "3G": 1.6 Mbit/s down, 768 kbit/s up, 300 ms RTT,
    /// bursty loss — the profile where protocol differences bite hardest.
    pub fn mobile_3g() -> NetworkProfile {
        NetworkProfile {
            name: "3G",
            down_bps: 1_600_000,
            up_bps: 768_000,
            rtt: SimDuration::from_millis(300),
            loss: LossModel::GilbertElliott {
                p_good_to_bad: 0.002,
                p_bad_to_good: 0.2,
                loss_good: 0.0005,
                loss_bad: 0.15,
            },
            queue_limit: 32,
        }
    }

    /// "LTE": 12 Mbit/s symmetric, 70 ms RTT, light bursty loss.
    pub fn lte() -> NetworkProfile {
        NetworkProfile {
            name: "LTE",
            down_bps: 12_000_000,
            up_bps: 12_000_000,
            rtt: SimDuration::from_millis(70),
            loss: LossModel::GilbertElliott {
                p_good_to_bad: 0.001,
                p_bad_to_good: 0.3,
                loss_good: 0.0002,
                loss_bad: 0.08,
            },
            queue_limit: 96,
        }
    }

    /// "Fiber": 100 Mbit/s down, 40 Mbit/s up, 10 ms RTT, negligible loss.
    pub fn fiber() -> NetworkProfile {
        NetworkProfile {
            name: "Fiber",
            down_bps: 100_000_000,
            up_bps: 40_000_000,
            rtt: SimDuration::from_millis(10),
            loss: LossModel::Bernoulli { p: 0.0001 },
            queue_limit: 96,
        }
    }

    /// A lossless, fast profile for unit tests needing exact arithmetic.
    pub fn lossless_test() -> NetworkProfile {
        NetworkProfile {
            name: "test",
            down_bps: 10_000_000,
            up_bps: 10_000_000,
            rtt: SimDuration::from_millis(40),
            loss: LossModel::None,
            queue_limit: 1024,
        }
    }

    /// All named presets, for sweeps and CLI listings.
    pub fn presets() -> Vec<NetworkProfile> {
        vec![
            NetworkProfile::fiber(),
            NetworkProfile::fttc(),
            NetworkProfile::cable(),
            NetworkProfile::dsl(),
            NetworkProfile::lte(),
            NetworkProfile::mobile_3g(),
        ]
    }
}

/// TLS configuration for a connection. webpeg's captures of H2 sites are
/// necessarily over TLS; H1 comparisons in the paper load the same https
/// URLs, so both protocols pay the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsMode {
    /// Plain TCP — no additional round trips.
    None,
    /// TLS 1.2: two additional round trips before application data.
    Tls12,
    /// TLS 1.3: one additional round trip.
    Tls13,
}

impl TlsMode {
    /// Handshake round trips added on top of the TCP handshake.
    pub fn extra_round_trips(self) -> u32 {
        match self {
            TlsMode::None => 0,
            TlsMode::Tls12 => 2,
            TlsMode::Tls13 => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for p in NetworkProfile::presets() {
            assert!(p.down_bps > 0);
            assert!(p.up_bps > 0);
            assert!(p.queue_limit > 0);
            assert!(p.rtt > SimDuration::ZERO);
            assert!(p.loss.mean_loss_rate() < 0.05, "{} too lossy", p.name);
            assert_eq!(p.one_way_delay().as_micros() * 2, p.rtt.as_micros());
        }
    }

    #[test]
    fn profiles_ordered_by_speed() {
        assert!(NetworkProfile::fiber().down_bps > NetworkProfile::cable().down_bps);
        assert!(NetworkProfile::cable().down_bps > NetworkProfile::dsl().down_bps);
    }

    #[test]
    fn tls_round_trips() {
        assert_eq!(TlsMode::None.extra_round_trips(), 0);
        assert_eq!(TlsMode::Tls13.extra_round_trips(), 1);
        assert_eq!(TlsMode::Tls12.extra_round_trips(), 2);
    }
}
