//! Property-based tests of the TCP state machines: byte conservation and
//! sender invariants under adversarial delivery orders.

use proptest::prelude::*;

use eyeorg_net::tcp::{TcpReceiver, TcpSender, MSS};
use eyeorg_net::SimTime;

proptest! {
    /// Whatever order segments arrive in (duplicates and overlaps
    /// included), the receiver delivers each byte exactly once and ends
    /// with the full prefix once all segments have been seen.
    #[test]
    fn receiver_conserves_bytes(
        total_segments in 1usize..30,
        order in prop::collection::vec(0usize..30, 1..90),
    ) {
        let mut r = TcpReceiver::new();
        let mut delivered = 0u64;
        let mut seen = vec![false; total_segments];
        for i in order.iter().copied().chain(0..total_segments) {
            let i = i % total_segments;
            seen[i] = true;
            let start = i as u64 * MSS;
            let out = r.on_segment(start, start + MSS);
            delivered += out.newly_delivered;
            prop_assert!(out.ack <= total_segments as u64 * MSS);
            prop_assert_eq!(out.ack, r.delivered());
        }
        // The chained iterator guarantees every segment arrived at least once.
        prop_assert_eq!(delivered, total_segments as u64 * MSS);
        prop_assert_eq!(r.buffered(), 0);
    }

    /// The sender never has more unacked fresh data than its window
    /// allows, never sends beyond the app limit, and always terminates
    /// when acks eventually cover everything.
    #[test]
    fn sender_window_invariants(
        app_bytes in 1u64..400_000,
        ack_chunks in prop::collection::vec(1u64..40, 1..200),
    ) {
        let mut s = TcpSender::new();
        s.app_write(app_bytes);
        let mut now_us = 0u64;
        let mut acked = 0u64;
        let mut chunk_iter = ack_chunks.iter().cycle();
        let mut guard = 0;
        while !s.all_acked() {
            guard += 1;
            prop_assert!(guard < 10_000, "must terminate");
            // Drain the window.
            while let Some(seg) = s.next_segment() {
                prop_assert!(seg.end <= app_bytes, "never beyond app data");
                prop_assert!(!seg.is_empty());
                s.mark_sent(seg, SimTime::from_micros(now_us));
                prop_assert!(s.in_flight() <= s.cwnd_bytes() + MSS);
            }
            // Ack forward by an arbitrary chunk.
            let step = *chunk_iter.next().expect("cycle") * MSS;
            acked = (acked + step).min(s.in_flight() + acked).min(app_bytes);
            now_us += 10_000;
            s.on_ack(acked, SimTime::from_micros(now_us));
        }
        prop_assert_eq!(acked, app_bytes);
    }
}
