//! Property-style invariant tests for percentile-band selection.
//!
//! The external `proptest` crate cannot resolve offline (see the
//! feature-gated `properties` test), so these drive the same invariants
//! with the workspace's own seeded RNG: hundreds of randomized samples,
//! fully deterministic, no external dependencies.

use eyeorg_stats::quantile::percentile_sorted;
use eyeorg_stats::{percentile, percentile_band, Rng};

/// Randomized samples across sizes and duplicate densities.
fn random_samples() -> Vec<Vec<f64>> {
    let mut rng = Rng::seed_from_u64(0xe1e_0006);
    let mut samples = Vec::new();
    for n in [1usize, 2, 3, 5, 8, 13, 40, 101] {
        for _ in 0..40 {
            // Coarse quantisation produces plenty of exact duplicates,
            // the case band edges must treat inclusively.
            let sample: Vec<f64> =
                (0..n).map(|_| (rng.random_range(0..400) as f64) / 8.0).collect();
            samples.push(sample);
        }
    }
    samples
}

fn band_edges(sample: &[f64], lo_pct: f64, hi_pct: f64) -> (f64, f64) {
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (percentile_sorted(&sorted, lo_pct), percentile_sorted(&sorted, hi_pct))
}

#[test]
fn band_keeps_exactly_the_values_inside_inclusive_edges() {
    let mut rng = Rng::seed_from_u64(0xe1e_0007);
    for sample in random_samples() {
        let lo_pct = rng.random_range(0..60) as f64;
        let hi_pct = lo_pct + rng.random_range(0..=(100 - lo_pct as u64)) as f64;
        let (lo, hi) = band_edges(&sample, lo_pct, hi_pct);
        let kept = percentile_band(&sample, lo_pct, hi_pct);
        let expected: Vec<f64> =
            sample.iter().copied().filter(|&v| v >= lo && v <= hi).collect();
        // Membership is exactly "within the inclusive edges" and the
        // original order (subsequence of the input) is preserved —
        // comparing the filtered input verifies both at once.
        assert_eq!(kept, expected, "band [{lo_pct}, {hi_pct}] of {sample:?}");
    }
}

#[test]
fn band_duplicates_survive_with_multiplicity() {
    for sample in random_samples() {
        let kept = percentile_band(&sample, 25.0, 75.0);
        for v in &kept {
            let in_kept = kept.iter().filter(|k| *k == v).count();
            let in_sample = sample.iter().filter(|s| *s == v).count();
            assert_eq!(
                in_kept, in_sample,
                "a retained value keeps every duplicate: {v} in {sample:?}"
            );
        }
    }
}

#[test]
fn full_band_is_identity_and_degenerate_band_keeps_edge_values() {
    for sample in random_samples() {
        assert_eq!(percentile_band(&sample, 0.0, 100.0), sample, "full band is the identity");
        // A zero-width band at the median still keeps values equal to it.
        let kept = percentile_band(&sample, 50.0, 50.0);
        let med = percentile(&sample, 50.0).expect("non-empty");
        assert!(kept.iter().all(|&v| v == med), "{kept:?} vs median {med}");
        let exact_hits = sample.iter().filter(|&&v| v == med).count();
        assert_eq!(kept.len(), exact_hits);
    }
}

#[test]
fn percentile_sorted_is_monotone_in_p_and_bounded_by_extremes() {
    for sample in random_samples() {
        let mut sorted = sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
        let mut prev = f64::NEG_INFINITY;
        // Sweep past both ends: the clamp contract makes -20 and 120
        // legal and pins them to the extremes.
        for p in (-20..=120).map(|p| p as f64 * 1.0) {
            let v = percentile_sorted(&sorted, p);
            assert!(v >= prev, "percentile must be monotone in p ({p}: {v} < {prev})");
            assert!(v >= min && v <= max, "percentile {v} outside [{min}, {max}]");
            prev = v;
        }
        assert_eq!(percentile_sorted(&sorted, -20.0), min);
        assert_eq!(percentile_sorted(&sorted, 120.0), max);
    }
}

#[test]
fn percentile_agrees_with_percentile_sorted_inside_range() {
    for sample in random_samples() {
        let mut sorted = sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            assert_eq!(percentile(&sample, p), Some(percentile_sorted(&sorted, p)));
        }
        // Outside [0, 100] the checked API rejects while the sorted API
        // clamps — both documented, and both exercised here.
        assert_eq!(percentile(&sample, -1.0), None);
        assert_eq!(percentile(&sample, 100.5), None);
    }
}
