//! # eyeorg-video
//!
//! webpeg's video pipeline: capturing page loads as frame sequences and
//! everything the platform does with them.
//!
//! Eyeorg's central design decision (§3.1 of the paper) is to show every
//! participant the *same video* of a page loading, decoupling the
//! measured experience from participants' own networks and browsers.
//! This crate is that machinery over the simulated browser:
//!
//! * [`frame`] — downscaled viewport frames with pixel-level comparison.
//! * [`bitplane`] — bitpacked cell predicates (one `u64` word per 64
//!   cells) behind the word-parallel comparison loops.
//! * [`capture`] — [`capture::Video`]: lazy frame rendering from a load
//!   trace; visual-completeness queries.
//! * [`webpeg`] — repeat-5-keep-median capture orchestration.
//! * [`encode`] — an honest delta codec whose byte sizes feed the video
//!   delivery model.
//! * [`compare`] — the 1 % rewind-frame helper and blank control frames
//!   (Fig. 3).
//! * [`splice`] — side-by-side A/B splicing with artificial-delay
//!   controls.
//! * [`timeline`] — materialised frame sequences with memoised rewind
//!   lookups (what campaign-scale response simulation uses).
//! * [`player`] — participant-side preload/playback (video load times
//!   drive the engagement effects of Fig. 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitplane;
pub mod capture;
pub mod compare;
pub mod encode;
pub mod frame;
pub mod player;
pub mod splice;
pub mod timeline;
pub mod webpeg;

pub use bitplane::BitGrid;
pub use capture::Video;
pub use compare::{
    control_frame, earliest_similar_frame, rewind_suggestion, EarliestSimilarTable,
    SIMILARITY_THRESHOLD,
};
pub use encode::{encode, EncodedVideo};
pub use frame::Frame;
pub use player::{preload_time, PlaybackResult, PlaybackSim};
pub use splice::{control_splice, AbOrder, SplicedVideo};
pub use timeline::FrameTimeline;
pub use webpeg::{
    capture_all, capture_median, shared_capture_cache, CaptureCache, CaptureConfig,
};
