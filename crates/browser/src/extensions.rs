//! Ad-blocking browser extensions.
//!
//! §5.4 of the paper compares three popular blockers — AdBlock, Ghostery
//! and uBlock — by capturing each site with the extension enabled and
//! asking the crowd which version felt faster (Fig. 8c; Ghostery was the
//! clear favourite). The model captures the two levers a blocker has:
//!
//! 1. **What it blocks.** Classic AdBlock (EasyList) targets display-ad
//!    *content*; Ghostery is first a tracker blocker, and blocking a
//!    tracker also removes every resource that tracker would have
//!    injected (the whole auction chain); uBlock sits in between.
//! 2. **What it costs.** Every discovered request is matched against the
//!    filter list on the browser main thread. 2016-era AdBlock ran a
//!    large regex list with well-documented per-request overhead; uBlock
//!    and Ghostery were engineered to be cheap.
//!
//! Block decisions are deterministic per (blocker, site, resource) so the
//! same site always renders the same way under the same extension —
//! exactly like a fixed filter list.

use eyeorg_net::SimDuration;
use eyeorg_workload::{Resource, ResourceKind, Website};

/// The three blockers of the paper's third campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdBlocker {
    /// AdBlock: strong display-ad coverage, weaker tracker coverage,
    /// heavyweight filter matching.
    AdBlock,
    /// Ghostery: tracker-first blocking (removes injection chains),
    /// lightweight matching.
    Ghostery,
    /// uBlock (Origin): good ad coverage, moderate tracker coverage,
    /// lightweight matching.
    UBlock,
}

/// Coverage and cost parameters of one blocker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockerProfile {
    /// Probability an `Ad` resource matches the filter list.
    pub ad_coverage: f64,
    /// Probability a `Tracker` resource matches.
    pub tracker_coverage: f64,
    /// Probability a `Widget` (social embed) matches.
    pub widget_coverage: f64,
    /// Main-thread cost of matching one discovered request against the
    /// filter list (desktop scale; multiplied by the device CPU factor).
    pub match_cost: SimDuration,
}

impl AdBlocker {
    /// The blocker's coverage/cost profile.
    pub fn profile(self) -> BlockerProfile {
        match self {
            AdBlocker::AdBlock => BlockerProfile {
                ad_coverage: 0.95,
                tracker_coverage: 0.35,
                widget_coverage: 0.15,
                match_cost: SimDuration::from_micros(1_800),
            },
            AdBlocker::Ghostery => BlockerProfile {
                ad_coverage: 0.55,
                tracker_coverage: 0.95,
                widget_coverage: 0.60,
                match_cost: SimDuration::from_micros(250),
            },
            AdBlocker::UBlock => BlockerProfile {
                ad_coverage: 0.90,
                tracker_coverage: 0.50,
                widget_coverage: 0.25,
                match_cost: SimDuration::from_micros(300),
            },
        }
    }

    /// Display name as it appears in reports.
    pub fn name(self) -> &'static str {
        match self {
            AdBlocker::AdBlock => "adblock",
            AdBlocker::Ghostery => "ghostery",
            AdBlocker::UBlock => "ublock",
        }
    }

    /// All blockers, for campaign sweeps.
    pub const ALL: [AdBlocker; 3] = [AdBlocker::AdBlock, AdBlocker::Ghostery, AdBlocker::UBlock];

    /// Whether this blocker's filter list matches `resource` on `site`.
    ///
    /// Deterministic: hashes (blocker, site name, resource id) into a
    /// uniform draw compared against the kind's coverage. First-party
    /// content never matches (no blocker breaks the page's own assets).
    pub fn blocks(self, site: &Website, resource: &Resource) -> bool {
        let coverage = match resource.kind {
            ResourceKind::Ad => self.profile().ad_coverage,
            ResourceKind::Tracker => self.profile().tracker_coverage,
            ResourceKind::Widget => self.profile().widget_coverage,
            _ => return false,
        };
        // A third-party check mirrors real lists keying on ad-network
        // domains; generator invariants make ads/trackers third-party,
        // but respect the origin table rather than assuming.
        if !site.origins[resource.origin.0 as usize].third_party {
            return false;
        }
        let h = fnv(&[
            self.name().as_bytes(),
            site.name.as_bytes(),
            &resource.id.0.to_le_bytes(),
        ]);
        // Map to [0,1).
        (h as f64 / u64::MAX as f64) < coverage
    }
}

fn fnv(parts: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for part in parts {
        for b in *part {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff; // separator so concatenations cannot alias
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_stats::Seed;
    use eyeorg_workload::{generate_site, SiteClass};

    #[test]
    fn profiles_reflect_design() {
        let ab = AdBlocker::AdBlock.profile();
        let gh = AdBlocker::Ghostery.profile();
        let ub = AdBlocker::UBlock.profile();
        assert!(gh.tracker_coverage > ab.tracker_coverage);
        assert!(gh.tracker_coverage > ub.tracker_coverage);
        assert!(ab.ad_coverage > gh.ad_coverage);
        assert!(ab.match_cost.as_micros() > 4 * gh.match_cost.as_micros());
        assert!(ub.match_cost.as_micros() < 2 * gh.match_cost.as_micros());
    }

    #[test]
    fn decisions_deterministic() {
        let site = generate_site(Seed(1), 0, SiteClass::News);
        for b in AdBlocker::ALL {
            for r in &site.resources {
                assert_eq!(b.blocks(&site, r), b.blocks(&site, r));
            }
        }
    }

    #[test]
    fn never_blocks_first_party_content() {
        let site = generate_site(Seed(2), 0, SiteClass::News);
        for b in AdBlocker::ALL {
            for r in &site.resources {
                if matches!(
                    r.kind,
                    ResourceKind::Html
                        | ResourceKind::Css
                        | ResourceKind::Js
                        | ResourceKind::Image
                        | ResourceKind::Font
                ) {
                    assert!(!b.blocks(&site, r), "{b:?} blocked {:?}", r.kind);
                }
            }
        }
    }

    #[test]
    fn coverage_rates_realised_on_population() {
        // Across many sites the realised block rate should approximate
        // the configured coverage.
        let mut ad_total = 0u32;
        let mut ad_blocked = [0u32; 3];
        let mut tr_total = 0u32;
        let mut tr_blocked = [0u32; 3];
        for i in 0..40 {
            let site = generate_site(Seed(3), i, SiteClass::News);
            for r in &site.resources {
                match r.kind {
                    ResourceKind::Ad => {
                        ad_total += 1;
                        for (bi, b) in AdBlocker::ALL.iter().enumerate() {
                            if b.blocks(&site, r) {
                                ad_blocked[bi] += 1;
                            }
                        }
                    }
                    ResourceKind::Tracker => {
                        tr_total += 1;
                        for (bi, b) in AdBlocker::ALL.iter().enumerate() {
                            if b.blocks(&site, r) {
                                tr_blocked[bi] += 1;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        assert!(ad_total > 50 && tr_total > 100);
        for (bi, b) in AdBlocker::ALL.iter().enumerate() {
            let p = b.profile();
            let ad_rate = ad_blocked[bi] as f64 / ad_total as f64;
            let tr_rate = tr_blocked[bi] as f64 / tr_total as f64;
            assert!((ad_rate - p.ad_coverage).abs() < 0.12, "{b:?} ad rate {ad_rate}");
            assert!((tr_rate - p.tracker_coverage).abs() < 0.12, "{b:?} tracker rate {tr_rate}");
        }
    }
}
