//! Deterministic event queue.
//!
//! A bucketed *calendar queue* (Brown 1988, the structure behind ns-3's
//! default scheduler) keyed on `(time, sequence)`. Events hash into
//! `buckets.len()` time-slots of `2^shift` microseconds each; the wheel
//! wraps, so a bucket holds every pending event whose time falls into
//! that slot of *any* "year" (wheel revolution). Popping scans forward
//! from a cursor one slot at a time and takes the `(time, seq)`-minimum
//! event belonging to the current year; after a full empty revolution it
//! falls back to a direct search (sparse far-future tails — think RTO
//! timers parked 200 ms out — would otherwise spin the wheel).
//!
//! The monotonically increasing sequence number breaks ties in insertion
//! order, which makes event processing fully deterministic: two events
//! scheduled for the same instant always pop in the order they were
//! pushed, regardless of bucket internals. Determinism here is what makes
//! every campaign in the reproduction replayable from a seed, and the
//! test suite pins the pop order to a `BinaryHeap` reference
//! implementation.
//!
//! Why a calendar instead of the previous binary heap: `schedule` is O(1)
//! (hash into a bucket, push) instead of O(log n) sift-up, and the
//! peek-then-pop pattern the simulator drives (`peek_time` to compare
//! against a limit, then `pop`) is served by a cached minimum located
//! once per event instead of twice through heap machinery. Profiling the
//! page-load corpus put 37–55% of sim time inside heap push/pop before
//! this change.

use std::cell::Cell;

use crate::time::SimTime;

/// A scheduled event carrying a payload of type `E`.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

/// Location of the cached minimum event inside the bucket array.
///
/// Slots stay valid between operations because `schedule` only appends
/// to buckets and `pop` removes exactly the cached slot.
#[derive(Debug, Clone, Copy)]
struct MinLoc {
    bucket: usize,
    slot: usize,
    time: SimTime,
    seq: u64,
}

/// Initial / minimum number of buckets (power of two).
const MIN_BUCKETS: usize = 32;
/// Upper bound on the bucket count; beyond this the per-pop scan cost is
/// already negligible relative to event processing.
const MAX_BUCKETS: usize = 65_536;
/// Initial bucket width: 2^9 µs = 512 µs, on the order of one segment
/// serialisation time on the simulated access links.
const DEFAULT_SHIFT: u32 = 9;

/// A deterministic future-event list.
///
/// Events may only be scheduled at or after the time of the most recently
/// popped event (the queue's *watermark*); scheduling into the past would
/// violate causality and panics.
#[derive(Debug)]
pub struct EventQueue<E> {
    buckets: Vec<Vec<Scheduled<E>>>,
    /// log2 of the bucket time-width in microseconds.
    shift: u32,
    len: usize,
    next_seq: u64,
    watermark: SimTime,
    /// Lower µs edge of the wheel slot the forward scan starts from.
    /// Invariant: no pending event is earlier than this edge. `Cell`
    /// because advancing the cursor past verified-empty slots is a pure
    /// optimisation `peek_time(&self)` is allowed to perform.
    cursor: Cell<u64>,
    /// Cached global minimum, if known. `None` means "unknown", not
    /// "empty". Same interior-mutability rationale as `cursor`.
    min_cache: Cell<Option<MinLoc>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with watermark at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            shift: DEFAULT_SHIFT,
            len: 0,
            next_seq: 0,
            watermark: SimTime::ZERO,
            cursor: Cell::new(0),
            min_cache: Cell::new(None),
        }
    }

    fn bucket_width(&self) -> u64 {
        1u64 << self.shift
    }

    fn bucket_index(&self, time_us: u64) -> usize {
        ((time_us >> self.shift) as usize) & (self.buckets.len() - 1)
    }

    fn slot_floor(&self, time_us: u64) -> u64 {
        time_us & !(self.bucket_width() - 1)
    }

    /// Schedule `payload` to fire at `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the watermark (the time of the
    /// last popped event).
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.watermark,
            "scheduling into the past: {} < watermark {}",
            time,
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let t_us = time.as_micros();
        // Keep the cursor invariant: the scan must start at or before the
        // earliest pending event. (peek_time may have advanced the cursor
        // past slots that were empty at the time.)
        if t_us < self.cursor.get() {
            self.cursor.set(self.slot_floor(t_us));
        }
        let b = self.bucket_index(t_us);
        let slot = self.buckets[b].len();
        self.buckets[b].push(Scheduled { time, seq, payload });
        self.len += 1;
        match self.min_cache.get() {
            // Empty-queue push: the sole event is trivially the minimum.
            None if self.len == 1 => {
                self.min_cache.set(Some(MinLoc { bucket: b, slot, time, seq }))
            }
            Some(m) if (time, seq) < (m.time, m.seq) => {
                self.min_cache.set(Some(MinLoc { bucket: b, slot, time, seq }))
            }
            _ => {}
        }
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebucket();
        }
    }

    /// Remove and return the earliest event, advancing the watermark.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let m = self.find_min()?;
        self.min_cache.set(None);
        let ev = self.buckets[m.bucket].swap_remove(m.slot);
        debug_assert_eq!(ev.seq, m.seq, "min cache out of sync");
        self.len -= 1;
        self.watermark = ev.time;
        if self.len < self.buckets.len() / 8 && self.buckets.len() > MIN_BUCKETS {
            self.rebucket();
        }
        Some((ev.time, ev.payload))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.find_min().map(|m| m.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current watermark: no event earlier than this can exist.
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Locate the `(time, seq)`-minimum pending event, caching the
    /// result so the peek-then-pop pattern pays for one search.
    fn find_min(&self) -> Option<MinLoc> {
        if self.len == 0 {
            return None;
        }
        if let Some(m) = self.min_cache.get() {
            return Some(m);
        }
        let n = self.buckets.len();
        let width = self.bucket_width();
        let mut floor = self.cursor.get();
        for _ in 0..n {
            let b = self.bucket_index(floor);
            let top = floor.saturating_add(width);
            let mut best: Option<MinLoc> = None;
            for (slot, ev) in self.buckets[b].iter().enumerate() {
                let t = ev.time.as_micros();
                // Only events of the current wheel revolution count; the
                // bucket also holds events `k * n * width` later.
                if t < top
                    && best.is_none_or(|m| (ev.time, ev.seq) < (m.time, m.seq))
                {
                    debug_assert!(t >= floor, "event earlier than scan cursor");
                    best = Some(MinLoc { bucket: b, slot, time: ev.time, seq: ev.seq });
                }
            }
            if let Some(m) = best {
                self.cursor.set(floor);
                self.min_cache.set(Some(m));
                return Some(m);
            }
            floor = floor.saturating_add(width);
        }
        // A full revolution came up empty: everything pending is at least
        // one wheel span in the future (sparse tail). Direct search.
        let mut best: Option<MinLoc> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (slot, ev) in bucket.iter().enumerate() {
                if best.is_none_or(|m| (ev.time, ev.seq) < (m.time, m.seq)) {
                    best = Some(MinLoc { bucket: b, slot, time: ev.time, seq: ev.seq });
                }
            }
        }
        // lint:allow(D4): callers checked len > 0, so some bucket holds an event
        let m = best.expect("len > 0 but no event found");
        self.cursor.set(self.slot_floor(m.time.as_micros()));
        self.min_cache.set(Some(m));
        Some(m)
    }

    /// Resize the wheel to fit the current population: bucket count ~2×
    /// the number of events, bucket width ~the mean inter-event gap.
    /// Deterministic — parameters depend only on queue contents.
    fn rebucket(&mut self) {
        let mut all: Vec<Scheduled<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            all.append(bucket);
        }
        let target = (2 * self.len.max(1))
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        if self.buckets.len() != target {
            self.buckets = (0..target).map(|_| Vec::new()).collect();
        }
        if !all.is_empty() {
            // lint:allow(D4): `all` is non-empty, so min exists
            let min_t = all.iter().map(|e| e.time.as_micros()).min().unwrap();
            // lint:allow(D4): `all` is non-empty, so max exists
            let max_t = all.iter().map(|e| e.time.as_micros()).max().unwrap();
            let gap = (max_t - min_t) / all.len() as u64;
            // Width = mean gap rounded up to a power of two, clamped to
            // [64 µs, 131 ms]. A clustered population gets narrow
            // buckets; one far-out timer cannot widen them past the cap.
            self.shift = (64 - gap.max(1).leading_zeros()).clamp(6, 17);
            self.cursor.set(self.slot_floor(min_t));
        } else {
            self.shift = DEFAULT_SHIFT;
            self.cursor.set(self.slot_floor(self.watermark.as_micros()));
        }
        for ev in all {
            let b = self.bucket_index(ev.time.as_micros());
            self.buckets[b].push(ev);
        }
        self.min_cache.set(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use eyeorg_stats::rng::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn watermark_advances() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(10));
        // Scheduling at exactly the watermark is allowed.
        q.schedule(SimTime::from_millis(10), ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(9), ());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1) + SimDuration::from_micros(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1005)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn far_future_after_empty_revolution() {
        // An RTO parked several wheel revolutions out must still be
        // found (direct-search fallback), and scheduling an earlier
        // event afterwards must rewind the cursor.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), "rto");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(30)));
        q.schedule(SimTime::from_millis(1), "data");
        assert_eq!(q.pop().map(|(_, p)| p), Some("data"));
        assert_eq!(q.pop().map(|(_, p)| p), Some("rto"));
    }

    /// The reference semantics: a plain binary heap on `(time, seq)`.
    struct HeapRef<E> {
        heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64)>>,
        payloads: std::collections::BTreeMap<u64, E>,
        next_seq: u64,
    }

    impl<E> HeapRef<E> {
        fn new() -> Self {
            HeapRef {
                heap: std::collections::BinaryHeap::new(),
                payloads: std::collections::BTreeMap::new(),
                next_seq: 0,
            }
        }
        fn schedule(&mut self, time: SimTime, payload: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(std::cmp::Reverse((time, seq)));
            self.payloads.insert(seq, payload);
        }
        fn pop(&mut self) -> Option<(SimTime, E)> {
            let std::cmp::Reverse((t, seq)) = self.heap.pop()?;
            Some((t, self.payloads.remove(&seq).unwrap()))
        }
        fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|std::cmp::Reverse((t, _))| *t)
        }
    }

    /// Drive the calendar queue and the heap reference through an
    /// identical randomized schedule/pop workload and demand identical
    /// `(time, payload)` streams. Deterministic seeds; covers bursts of
    /// ties, far-future tails, interleaved peeks, and resize churn.
    #[test]
    fn matches_binary_heap_reference() {
        for seed in 0u64..8 {
            let mut rng = Rng::seed_from_u64(0xCAFE + seed);
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapRef<u64> = HeapRef::new();
            let mut now = 0u64;
            let mut payload = 0u64;
            for step in 0..4_000 {
                let r = rng.next_u64() % 100;
                if r < 55 || cal.is_empty() {
                    // Schedule 1..=4 events; occasionally ties, a far
                    // tail, or exactly-at-watermark.
                    for _ in 0..=(rng.next_u64() % 3) {
                        let dt = match rng.next_u64() % 10 {
                            0 => 0,                                // tie with `now`
                            1..=6 => rng.next_u64() % 2_000,       // near future
                            7 | 8 => rng.next_u64() % 300_000,     // ~rtt scale
                            _ => 1_000_000 + rng.next_u64() % 30_000_000, // far RTO
                        };
                        let t = SimTime::from_micros(now + dt);
                        cal.schedule(t, payload);
                        heap.schedule(t, payload);
                        payload += 1;
                    }
                } else {
                    assert_eq!(cal.peek_time(), heap.peek_time(), "seed={seed} step={step}");
                    let a = cal.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "seed={seed} step={step}");
                    if let Some((t, _)) = a {
                        now = t.as_micros();
                    }
                }
                assert_eq!(cal.len(), heap.payloads.len());
            }
            // Drain: the full remaining order must match.
            while let Some(expect) = heap.pop() {
                assert_eq!(cal.pop(), Some(expect), "seed={seed} drain");
            }
            assert!(cal.is_empty());
        }
    }

    #[test]
    fn resize_preserves_all_events() {
        let mut q = EventQueue::new();
        let mut rng = Rng::seed_from_u64(7);
        let mut times: Vec<(SimTime, u32)> = Vec::new();
        for i in 0..1_000u32 {
            let t = SimTime::from_micros(rng.next_u64() % 5_000_000);
            q.schedule(t, i);
            times.push((t, i));
        }
        times.sort_by_key(|&(t, i)| (t, i)); // seq == insertion order == i
        let drained: Vec<(SimTime, u32)> =
            std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, times);
    }
}
