//! D1 waived: the iteration order never reaches any output.

pub fn sorted_counts(words: &[&str]) -> Vec<(String, u32)> {
    // lint:allow(D1): counts are drained into a sorted Vec before anything reads them
    let mut seen = std::collections::HashMap::new();
    for w in words {
        *seen.entry(w.to_string()).or_insert(0u32) += 1;
    }
    let mut out: Vec<(String, u32)> = seen.into_iter().collect();
    out.sort();
    out
}
