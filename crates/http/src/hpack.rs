//! HPACK header-compression size model.
//!
//! HTTP/2 compresses headers with HPACK (RFC 7541): a static table of
//! common fields plus a per-connection dynamic table that makes repeated
//! headers (cookies, user-agent, accept…) cost only an index. For a page
//! load this matters because the *first* request on a connection carries
//! near-full headers while the dozens that follow shrink dramatically —
//! SPDY-era measurements put steady-state request headers at ~10–30 % of
//! their raw size.
//!
//! We model size, not bits: the actual field values never matter to the
//! simulation, only how many bytes cross the wire. The model is:
//!
//! * first header block on a connection: `static_ratio` × raw size
//!   (static-table and Huffman savings apply immediately),
//! * subsequent blocks: `dynamic_ratio` × raw size (dynamic table hits),
//! * every block pays a small floor (`min_bytes`) — indices are not free.

/// Size model for one HPACK compression context (= one H2 connection
/// direction).
#[derive(Debug, Clone)]
pub struct HpackContext {
    static_ratio: f64,
    dynamic_ratio: f64,
    min_bytes: u64,
    blocks_encoded: u64,
}

impl HpackContext {
    /// Default model: 60 % of raw on the first block (Huffman + static
    /// table), 15 % once the dynamic table is warm, 20-byte floor.
    pub fn new() -> HpackContext {
        HpackContext::with_ratios(0.6, 0.15, 20)
    }

    /// Custom ratios (clamped to `[0, 1]`), for sensitivity studies.
    pub fn with_ratios(static_ratio: f64, dynamic_ratio: f64, min_bytes: u64) -> HpackContext {
        HpackContext {
            static_ratio: static_ratio.clamp(0.0, 1.0),
            dynamic_ratio: dynamic_ratio.clamp(0.0, 1.0),
            min_bytes,
            blocks_encoded: 0,
        }
    }

    /// Encode a header block of `raw_bytes`, returning its on-wire size
    /// and advancing the dynamic-table state.
    pub fn encode(&mut self, raw_bytes: u64) -> u64 {
        let ratio = if self.blocks_encoded == 0 { self.static_ratio } else { self.dynamic_ratio };
        self.blocks_encoded += 1;
        ((raw_bytes as f64 * ratio) as u64).max(self.min_bytes.min(raw_bytes))
    }

    /// Number of header blocks encoded so far.
    pub fn blocks_encoded(&self) -> u64 {
        self.blocks_encoded
    }
}

impl Default for HpackContext {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_block_compresses_less_than_later_ones() {
        let mut ctx = HpackContext::new();
        let first = ctx.encode(1000);
        let second = ctx.encode(1000);
        assert_eq!(first, 600);
        assert_eq!(second, 150);
        assert!(second < first);
    }

    #[test]
    fn floor_applies() {
        let mut ctx = HpackContext::new();
        ctx.encode(1000);
        // 15% of 50 = 7.5 → floored to 20.
        assert_eq!(ctx.encode(50), 20);
    }

    #[test]
    fn floor_never_exceeds_raw() {
        let mut ctx = HpackContext::new();
        ctx.encode(1000);
        // A 5-byte raw block cannot grow to 20.
        assert_eq!(ctx.encode(5), 5);
    }

    #[test]
    fn ratios_clamped() {
        let mut ctx = HpackContext::with_ratios(2.0, -1.0, 0);
        assert_eq!(ctx.encode(100), 100); // clamped to 1.0
        assert_eq!(ctx.encode(100), 0); // clamped to 0.0
    }

    #[test]
    fn block_counter() {
        let mut ctx = HpackContext::new();
        assert_eq!(ctx.blocks_encoded(), 0);
        ctx.encode(10);
        ctx.encode(10);
        assert_eq!(ctx.blocks_encoded(), 2);
    }
}
