//! # eyeorg-bench
//!
//! The reproduction harness: one module (and one binary) per table and
//! figure of the paper's evaluation, plus criterion benches for the
//! pipeline and for DESIGN.md's ablation candidates.
//!
//! Each `figN_*` module exposes a function that builds whatever campaigns
//! it needs at the requested [`Scale`], computes the paper's quantity,
//! prints the same rows/series the paper reports, and returns the report
//! text (binaries print it; tests assert on it).
//!
//! ## Scale
//!
//! The paper's final campaigns use 100 sites × 1,000 participants.
//! [`Scale::paper`] reproduces that; [`Scale::small`] (the default for
//! `cargo run`) is a 20 × 150 miniature that preserves every shape at a
//! fraction of the runtime. Environment overrides:
//! `EYEORG_SCALE=paper|small`, `EYEORG_SITES=n`, `EYEORG_PARTICIPANTS=n`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaigns;
pub mod fig1_viz;
pub mod fig4_behavior;
pub mod fig5_focus;
pub mod fig6_wisdom;
pub mod fig7_timeline;
pub mod fig8_ab;
pub mod fig9_modes;
pub mod table1;

use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;

/// Campaign sizing for a harness run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Sites per campaign (paper: 100; validation: 20).
    pub sites: usize,
    /// Paid participants per final campaign (paper: 1,000).
    pub participants: usize,
    /// Participants per validation pool (paper: 100).
    pub validation_participants: usize,
    /// webpeg loads per configuration (paper: 5, keep median).
    pub repeats: usize,
    /// Root seed for the whole run.
    pub seed: Seed,
}

impl Scale {
    /// The paper's full campaign sizes.
    pub fn paper() -> Scale {
        Scale {
            sites: 100,
            participants: 1000,
            validation_participants: 100,
            repeats: 5,
            seed: Seed(2016),
        }
    }

    /// A fast miniature preserving all shapes.
    pub fn small() -> Scale {
        Scale {
            sites: 20,
            participants: 150,
            validation_participants: 60,
            repeats: 3,
            seed: Seed(2016),
        }
    }

    /// Resolve the scale from the environment (see crate docs).
    pub fn from_env() -> Scale {
        let mut s = match std::env::var("EYEORG_SCALE").as_deref() {
            Ok("paper") | Ok("full") => Scale::paper(),
            _ => Scale::small(),
        };
        if let Ok(v) = std::env::var("EYEORG_SITES") {
            if let Ok(n) = v.parse() {
                s.sites = n;
            }
        }
        if let Ok(v) = std::env::var("EYEORG_PARTICIPANTS") {
            if let Ok(n) = v.parse() {
                s.participants = n;
            }
        }
        s
    }

    /// Capture settings at this scale.
    pub fn capture(&self) -> CaptureConfig {
        CaptureConfig { repeats: self.repeats, ..CaptureConfig::default() }
    }
}

/// Execution-environment metadata block shared by every `BENCH_*.json`
/// writer: the machine's `available_parallelism`, the raw
/// `EYEORG_THREADS` override (JSON `null` when unset), and the worker
/// pool an automatic (`threads = 0`) campaign actually gets after the
/// override/hardware clamp. Returned as a `"key": value` fragment (no
/// surrounding braces) so callers splice it into their hand-rolled
/// JSON objects.
///
/// Also warns on stderr when the effective pool degrades to a single
/// worker — thread-sweep numbers from such a run read ~1x by
/// construction and should not be mistaken for a scaling regression.
pub fn env_metadata_json() -> String {
    let cpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let env_raw = std::env::var("EYEORG_THREADS").ok();
    let pool = eyeorg_stats::effective_pool(eyeorg_stats::resolve_threads(0));
    if pool <= 1 {
        eprintln!(
            "warning: effective worker pool is 1 (available_parallelism={cpus}, \
             EYEORG_THREADS={}); parallel sweeps will read ~1x",
            env_raw.as_deref().unwrap_or("unset")
        );
    }
    let env_json = match &env_raw {
        Some(v) => format!("\"{}\"", v.escape_default()),
        None => String::from("null"),
    };
    format!(
        "\"environment\": {{\"available_parallelism\": {cpus}, \
         \"eyeorg_threads_env\": {env_json}, \"effective_auto_pool\": {pool}}}"
    )
}

/// Format a `(x, y)` series as CSV with a header.
pub fn series_csv(header: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::from(header);
    out.push('\n');
    for (x, y) in points {
        out.push_str(&format!("{x:.6},{y:.6}\n"));
    }
    out
}

/// Write a report file under `results/` (created on demand), returning
/// the path. Harness binaries call this so every figure leaves a
/// machine-readable artefact next to its printed output.
pub fn write_result(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write result file");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let p = Scale::paper();
        let s = Scale::small();
        assert!(p.sites > s.sites);
        assert!(p.participants > s.participants);
        assert_eq!(p.seed, s.seed, "same seed, different size");
    }

    #[test]
    fn series_csv_formats() {
        let csv = series_csv("x,y", &[(1.0, 2.0), (3.5, 4.25)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,y");
        assert!(lines[1].starts_with("1.000000,2.000000"));
        assert_eq!(lines.len(), 3);
    }
}
