//! End-to-end behaviour of the simulated browser: the load-bearing
//! phenomena for the paper's campaigns must emerge from real page loads.

use eyeorg_browser::{load_page, AdBlocker, BrowserConfig, DeviceProfile, PaintKind, SkipReason};
use eyeorg_http::Protocol;
use eyeorg_net::NetworkProfile;
use eyeorg_stats::Seed;
use eyeorg_workload::{ad_heavy, alexa_like, generate_site, Discovery, ResourceKind, SiteClass, Website};

fn news_site() -> Website {
    generate_site(Seed(100), 0, SiteClass::News)
}

#[test]
fn load_produces_complete_trace() {
    let site = news_site();
    let trace = load_page(&site, &BrowserConfig::new(), Seed(1));
    assert!(trace.check_invariants().is_ok(), "{:?}", trace.check_invariants());
    assert!(trace.onload.is_some(), "onload must fire");
    assert!(trace.parse_complete.is_some());
    assert!(!trace.paints.is_empty(), "something must paint");
    let fvc = trace.first_visual_change().unwrap();
    let lvc = trace.last_visual_change().unwrap();
    assert!(fvc <= lvc);
    assert!(fvc < trace.onload.unwrap(), "first paint precedes onload");
}

#[test]
fn all_unblocked_resources_fetched() {
    let site = news_site();
    let trace = load_page(&site, &BrowserConfig::new(), Seed(2));
    for r in &trace.resources {
        assert!(
            r.completed.is_some() || r.skipped.is_some(),
            "{:?} neither completed nor skipped",
            r.id
        );
    }
    // Without a blocker nothing is skipped.
    assert!(trace.resources.iter().all(|r| r.skipped.is_none()));
}

#[test]
fn some_ads_complete_after_onload() {
    // The OnLoad-underestimate case: ads injected by trackers that
    // execute late land after onload on at least some ad-heavy sites.
    let sites = ad_heavy(Seed(7), 12, 2);
    let mut post_onload_sites = 0;
    for site in &sites {
        let trace = load_page(site, &BrowserConfig::new(), Seed(3));
        if !trace.post_onload_completions().is_empty() {
            post_onload_sites += 1;
        }
    }
    assert!(
        post_onload_sites >= 2,
        "expected several sites with post-onload ad traffic, got {post_onload_sites}/12"
    );
}

#[test]
fn h2_faster_than_h1_for_most_sites() {
    let sites = alexa_like(Seed(21), 12);
    let mut h2_wins = 0;
    for site in &sites {
        let h1 = load_page(site, &BrowserConfig::new().with_protocol(Protocol::Http1), Seed(4));
        let h2 = load_page(site, &BrowserConfig::new().with_protocol(Protocol::Http2), Seed(4));
        if h2.onload.unwrap() < h1.onload.unwrap() {
            h2_wins += 1;
        }
    }
    assert!(h2_wins >= 8, "H2 should win most sites: {h2_wins}/12");
}

#[test]
fn ghostery_blocks_tracker_chains_transitively() {
    let sites = ad_heavy(Seed(8), 8, 3);
    let mut saw_parent_blocked = false;
    for site in &sites {
        let cfg = BrowserConfig::new().with_adblocker(AdBlocker::Ghostery);
        let trace = load_page(site, &cfg, Seed(5));
        for r in &trace.resources {
            match r.skipped {
                Some(SkipReason::ParentBlocked) => {
                    saw_parent_blocked = true;
                    // The parent must itself be blocked or also orphaned.
                    if let Discovery::Parent { parent } = site.resources[r.id.0 as usize].discovery
                    {
                        assert!(
                            trace.resources[parent.0 as usize].skipped.is_some(),
                            "orphan {:?} has a live parent",
                            r.id
                        );
                    }
                }
                Some(SkipReason::BlockedByExtension) => {
                    assert!(r.submitted.is_none());
                }
                None => {}
            }
        }
    }
    assert!(saw_parent_blocked, "Ghostery should cut at least one injection chain");
}

#[test]
fn blockers_reduce_fetched_requests_and_speed_up_loads() {
    let sites = ad_heavy(Seed(9), 10, 2);
    for blocker in AdBlocker::ALL {
        let mut fetched_plain = 0usize;
        let mut fetched_blocked = 0usize;
        let mut onload_plain = 0.0;
        let mut onload_blocked = 0.0;
        for site in &sites {
            let plain = load_page(site, &BrowserConfig::new(), Seed(6));
            let blocked = load_page(site, &BrowserConfig::new().with_adblocker(blocker), Seed(6));
            fetched_plain += plain.resources.iter().filter(|r| r.fetched()).count();
            fetched_blocked += blocked.resources.iter().filter(|r| r.fetched()).count();
            onload_plain += plain.onload.unwrap().as_secs_f64();
            onload_blocked += blocked.onload.unwrap().as_secs_f64();
        }
        assert!(
            fetched_blocked < fetched_plain,
            "{blocker:?} should reduce request count ({fetched_blocked} vs {fetched_plain})"
        );
        assert!(
            onload_blocked < onload_plain,
            "{blocker:?} should speed up aggregate onload ({onload_blocked:.2} vs {onload_plain:.2})"
        );
    }
}

#[test]
fn ghostery_blocks_most_third_party_traffic() {
    // Ghostery's tracker-first policy should cut more third-party
    // requests than AdBlock (chains die at the root).
    let sites = ad_heavy(Seed(10), 10, 2);
    let count_third_party = |blocker: AdBlocker| -> usize {
        sites
            .iter()
            .map(|site| {
                let trace =
                    load_page(site, &BrowserConfig::new().with_adblocker(blocker), Seed(7));
                trace
                    .resources
                    .iter()
                    .filter(|r| {
                        r.fetched()
                            && site.origins[site.resources[r.id.0 as usize].origin.0 as usize]
                                .third_party
                    })
                    .count()
            })
            .sum()
    };
    let ghostery = count_third_party(AdBlocker::Ghostery);
    let adblock = count_third_party(AdBlocker::AdBlock);
    assert!(
        ghostery < adblock,
        "Ghostery should allow less third-party traffic: {ghostery} vs {adblock}"
    );
}

#[test]
fn loads_are_deterministic() {
    let site = news_site();
    let a = load_page(&site, &BrowserConfig::new(), Seed(11));
    let b = load_page(&site, &BrowserConfig::new(), Seed(11));
    assert_eq!(a, b);
    let c = load_page(&site, &BrowserConfig::new(), Seed(12));
    assert_ne!(a, c, "different seeds must differ (loss/DNS draws)");
}

#[test]
fn slower_device_slows_cpu_bound_milestones() {
    // Note: onload itself can move *either way* with CPU speed — a slow
    // main thread can push an ad injection past the onload cutoff,
    // excluding it from the load (an effect real pages exhibit too). The
    // strictly CPU-bound milestone is parse completion.
    let site = news_site();
    let desktop = load_page(&site, &BrowserConfig::new(), Seed(13));
    let mobile = load_page(
        &site,
        &BrowserConfig::new().with_device(DeviceProfile::mobile_mid()),
        Seed(13),
    );
    assert!(
        mobile.parse_complete.unwrap() > desktop.parse_complete.unwrap(),
        "4x CPU factor must slow parsing: {} vs {}",
        mobile.parse_complete.unwrap(),
        desktop.parse_complete.unwrap()
    );
    assert!(mobile.first_visual_change().unwrap() >= desktop.first_visual_change().unwrap());
}

#[test]
fn slower_network_slows_the_load() {
    let site = news_site();
    let cable = load_page(&site, &BrowserConfig::new(), Seed(14));
    let dsl = load_page(
        &site,
        &BrowserConfig::new().with_network(NetworkProfile::dsl()),
        Seed(14),
    );
    assert!(dsl.onload.unwrap() > cable.onload.unwrap());
}

#[test]
fn first_paint_waits_for_render_blocking_css() {
    let site = news_site();
    let trace = load_page(&site, &BrowserConfig::new(), Seed(15));
    let fvc = trace.first_visual_change().unwrap();
    // Every stylesheet discovered before first paint must have applied
    // by then.
    for r in &site.resources {
        if r.kind == ResourceKind::Css {
            let tr = &trace.resources[r.id.0 as usize];
            if tr.discovered.is_some_and(|d| d < fvc) {
                assert!(
                    tr.applied.is_some_and(|a| a <= fvc),
                    "paint at {fvc} before stylesheet {:?} applied",
                    r.id
                );
            }
        }
    }
}

#[test]
fn document_paints_progressively() {
    // A big document with no render-blocking fonts: parsing interleaves
    // with network arrival, so the text paints in multiple bands. (Sites
    // whose fonts outlast parsing legitimately paint in one band.)
    use eyeorg_workload::{Origin, Rect, Resource, ResourceId, Website};
    let site = Website {
        name: "bigdoc.example".into(),
        origins: vec![Origin {
            host: "bigdoc.example".into(),
            supports_h2: true,
            third_party: false,
        }],
        resources: vec![Resource {
            id: ResourceId(0),
            kind: ResourceKind::Html,
            origin: eyeorg_workload::OriginRef(0),
            body_bytes: 400_000,
            request_header_bytes: 400,
            response_header_bytes: 300,
            rect: Some(Rect { x: 0, y: 0, w: 1280, h: 4000 }),
            discovery: Discovery::Root,
            render_blocking: false,
            defer: false,
            server_think_us: 20_000,
        }],
        canvas_width: 1280,
        page_height: 4000,
        fold_y: 720,
    };
    assert!(site.validate().is_empty());
    let trace = load_page(&site, &BrowserConfig::new(), Seed(16));
    let bands: Vec<_> =
        trace.paints.iter().filter(|p| p.kind == PaintKind::DocumentBand).collect();
    assert!(bands.len() >= 3, "expected multiple document bands, got {}", bands.len());
    // Bands tile downward without overlap.
    let mut y = 0;
    for b in &bands {
        assert_eq!(b.rect.y, y, "bands must tile contiguously");
        y += b.rect.h;
    }
    assert_eq!(y, site.page_height, "bands cover the whole page");
}

#[test]
fn primer_avoids_cold_dns_on_measured_load() {
    let site = news_site();
    let mut no_primer_cfg = BrowserConfig::new();
    no_primer_cfg.primer = false;
    let warm = load_page(&site, &BrowserConfig::new(), Seed(17));
    let cold = load_page(&site, &no_primer_cfg, Seed(17));
    // The root request goes out earlier when the resolver is warm.
    let warm_submit = warm.resources[0].submitted.unwrap();
    let cold_submit = cold.resources[0].submitted.unwrap();
    assert!(warm_submit < cold_submit, "primer should remove cold lookup: {warm_submit} vs {cold_submit}");
}

#[test]
fn mixed_protocol_fallback_for_non_h2_third_parties() {
    // Find a site with a non-H2 third-party origin and check the load
    // still completes under the H2 config (fallback path).
    let sites = ad_heavy(Seed(18), 10, 1);
    let site = sites
        .iter()
        .find(|s| s.origins.iter().any(|o| !o.supports_h2))
        .expect("corpus contains non-H2 ad networks");
    let trace = load_page(site, &BrowserConfig::new(), Seed(19));
    assert!(trace.onload.is_some());
    assert!(trace.resources.iter().all(|r| r.completed.is_some() || r.skipped.is_some()));
}

#[test]
fn corpus_wide_load_sanity() {
    // Every site in a mixed corpus loads to quiescence with a valid
    // trace under both protocols.
    for (i, site) in alexa_like(Seed(20), 8).iter().enumerate() {
        for proto in [Protocol::Http1, Protocol::Http2] {
            let trace = load_page(site, &BrowserConfig::new().with_protocol(proto), Seed(i as u64));
            assert!(trace.check_invariants().is_ok(), "site {i} {proto:?}");
            let onload = trace.onload.expect("onload fired").as_secs_f64();
            assert!(
                (0.1..120.0).contains(&onload),
                "site {i} {proto:?}: implausible onload {onload}s"
            );
        }
    }
}

#[test]
fn server_push_accelerates_first_paint() {
    // With the origin pushing its render-blocking CSS, first paint should
    // come earlier on most sites (no CSS discovery round trip).
    let sites = alexa_like(Seed(70), 8);
    let mut wins = 0;
    let mut total = 0;
    for (i, site) in sites.iter().enumerate() {
        let plain = load_page(site, &BrowserConfig::new(), Seed(71 + i as u64));
        let pushed =
            load_page(site, &BrowserConfig::new().with_server_push(), Seed(71 + i as u64));
        assert!(pushed.check_invariants().is_ok());
        assert!(pushed.onload.is_some());
        let fold = site.fold_y;
        let fvc = |t: &eyeorg_browser::LoadTrace| {
            t.paints
                .iter()
                .find(|p| p.rect.above_fold(fold).is_some())
                .map(|p| p.time)
        };
        if let (Some(a), Some(b)) = (fvc(&plain), fvc(&pushed)) {
            total += 1;
            if b <= a {
                wins += 1;
            }
        }
    }
    assert!(wins * 3 >= total * 2, "push should help first paint: {wins}/{total}");
}

#[test]
fn reference_path_produces_identical_traces() {
    // `load_page_reference` turns off the network simulator's burst
    // batching; a real browser load over it must be byte-identical to
    // the default path — across site classes, protocols, and lossy
    // network profiles.
    use eyeorg_browser::load_page_reference;
    let shaped = BrowserConfig::new().with_network(NetworkProfile::dsl());
    let h2 = BrowserConfig::new().with_protocol(Protocol::Http2);
    for (i, site) in [
        generate_site(Seed(300), 0, SiteClass::News),
        generate_site(Seed(301), 1, SiteClass::Blog),
        generate_site(Seed(302), 2, SiteClass::Ecommerce),
    ]
    .iter()
    .enumerate()
    {
        for (ci, cfg) in [&BrowserConfig::new(), &shaped, &h2].into_iter().enumerate() {
            let seed = Seed(800 + i as u64);
            let batched = load_page(site, cfg, seed);
            let reference = load_page_reference(site, cfg, seed);
            assert_eq!(batched, reference, "site {i} config {ci}: traces diverge");
        }
    }
}
