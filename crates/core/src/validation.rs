//! Hard rules: the gates participants pass *before* any response counts.
//!
//! §3.3's first validation layer. Two of the hard rules are structural in
//! this codebase (every A/B answer is one of Left/Right/NoDifference by
//! type; a timeline response is always a frame on the slider), so what
//! remains to model is the **humanness gate**: "we also use Google's
//! 'I'm not a robot' service to verify 'humanness' before participants
//! take tests." Human participants pass it essentially always; the
//! payment-farming scripts in the paid pool almost never do — which is
//! why the *after-the-fact* filters of §4.3 only ever see human
//! pathologies (sloppiness, distraction), not automation.

use eyeorg_crowd::{Participant, ParticipantClass};
use eyeorg_stats::rng::Rng;

/// Pass probability of the humanness check for a real person (misfires
/// are rare but exist: broken challenges, accessibility issues).
pub const HUMAN_PASS_RATE: f64 = 0.995;

/// Pass probability for a script (2016-era CAPTCHA-solving services made
/// this non-zero but small).
pub const BOT_PASS_RATE: f64 = 0.08;

/// Outcome of gating a recruited cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Participants admitted to the experiment, in arrival order.
    pub admitted: Vec<Participant>,
    /// Count turned away at the gate (not part of any campaign table —
    /// the paper's Table 1 only ever counts admitted participants).
    pub rejected: usize,
}

/// Whether one participant passes the "I'm not a robot" gate.
///
/// Pure and side-effect free (the decision draws only from the
/// participant's own derived seed stream), so the sharded streaming
/// engine can evaluate it in its counting pre-pass without touching the
/// obs counters; [`captcha_gate`] applies it to a whole cohort and
/// reports totals.
pub fn captcha_admits(p: &Participant) -> bool {
    let mut rng = Rng::seed_from_u64(p.seed.derive("captcha").value());
    let pass_rate = if p.class == ParticipantClass::Bot {
        BOT_PASS_RATE
    } else {
        HUMAN_PASS_RATE
    };
    rng.random_bool(pass_rate)
}

/// Apply the "I'm not a robot" gate to a recruited cohort.
pub fn captcha_gate(participants: Vec<Participant>) -> GateReport {
    let mut admitted = Vec::with_capacity(participants.len());
    let mut rejected = 0;
    for p in participants {
        if captcha_admits(&p) {
            admitted.push(p);
        } else {
            rejected += 1;
        }
    }
    eyeorg_obs::metrics::CORE_GATE_ADMITTED.add(admitted.len() as u64);
    eyeorg_obs::metrics::CORE_GATE_REJECTED.add(rejected as u64);
    GateReport { admitted, rejected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_crowd::PopulationProfile;
    use eyeorg_stats::Seed;

    #[test]
    fn gate_blocks_bots_not_humans() {
        let pop = PopulationProfile::paid().generate(Seed(1), 2000);
        let bots_before =
            pop.iter().filter(|p| p.class == ParticipantClass::Bot).count();
        let humans_before = pop.len() - bots_before;
        let report = captcha_gate(pop);
        let bots_after = report
            .admitted
            .iter()
            .filter(|p| p.class == ParticipantClass::Bot)
            .count();
        let humans_after = report.admitted.len() - bots_after;
        assert!(bots_before > 20, "population contains bots: {bots_before}");
        assert!(
            (bots_after as f64) < 0.25 * bots_before as f64,
            "gate must stop most bots: {bots_after}/{bots_before}"
        );
        assert!(
            (humans_after as f64) > 0.98 * humans_before as f64,
            "gate must not harm humans: {humans_after}/{humans_before}"
        );
        assert_eq!(report.admitted.len() + report.rejected, 2000);
    }

    #[test]
    fn trusted_cohort_passes_untouched_modulo_misfires() {
        let pop = PopulationProfile::trusted().generate(Seed(2), 500);
        let report = captcha_gate(pop);
        assert!(report.rejected <= 8, "rejected {}", report.rejected);
    }

    #[test]
    fn gate_deterministic() {
        let pop = PopulationProfile::paid().generate(Seed(3), 300);
        assert_eq!(captcha_gate(pop.clone()), captcha_gate(pop));
    }
}
