//! D4 waived: the panic is ruled out by a guard the compiler cannot see.

pub fn midpoint(sorted: &[u64]) -> u64 {
    assert!(!sorted.is_empty(), "midpoint of empty slice");
    // lint:allow(D4): the assert above guarantees at least one element
    *sorted.get(sorted.len() / 2).expect("non-empty slice has a midpoint")
}
