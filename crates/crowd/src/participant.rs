//! Participants: who takes Eyeorg's tests.
//!
//! §4 of the paper contrasts two pools — 100 **trusted** participants
//! (friends/colleagues who "promised full commitment") and paid
//! crowdworkers from CrowdFlower's "historically trustworthy" tier — and
//! finds ~20 % of the paid pool must be filtered: distracted workers,
//! video skippers, control-question failures, and two spectacular
//! outliers performing 714/724 seek actions ("we conjecture a browser
//! extension might have been used"). The population model here generates
//! exactly those phenotypes, with mixing weights chosen so the *paper's
//! own filter statistics* (Table 1) are reproducible.

use eyeorg_stats::rng::Rng;
use serde::{Deserialize, Serialize};

use eyeorg_stats::Seed;

/// Reported gender (the paper reports a binary split: 75/25 in the
/// validation pools, 70/30 in the final campaigns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Gender {
    /// Male.
    Male,
    /// Female.
    Female,
}

/// Trusted (recruited via email/social media) vs paid crowdworker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParticipantType {
    /// Friends/colleagues with promised commitment.
    Trusted,
    /// Paid crowdsourcing worker.
    Paid,
}

/// Behavioural phenotype, the latent variable the validation pipeline
/// tries to observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParticipantClass {
    /// Careful, engaged, follows instructions.
    Diligent,
    /// Normal worker: mostly careful, occasionally imprecise.
    Average,
    /// Rushes, overshoots, sometimes skips interactions.
    Sloppy,
    /// Clicks through for the payment; answers carry little signal.
    RandomClicker,
    /// The 700-seek anomaly: enormous action counts in little time.
    Frenetic,
    /// Not a person at all: a script farming task payments. Mostly
    /// stopped at the door by the "I'm not a robot" gate (§3.3's hard
    /// rules); the survivors answer instantly and randomly.
    Bot,
}

/// What a participant means by "ready to use" (§6: left deliberately
/// open; three interpretations emerge from the response distributions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadinessCriterion {
    /// Ready once the *main* content is in place ("I selected the one
    /// where the main content loaded first").
    MainContent,
    /// Waits for everything, ads and widgets included ("when I don't
    /// know what is on the site … I want to wait for everything").
    AllContent,
    /// Satisfied by the first substantial impression (text + hero).
    FirstImpression,
}

/// A generated participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Participant {
    /// Unique id within a campaign.
    pub id: u64,
    /// Pool.
    pub ptype: ParticipantType,
    /// Latent phenotype.
    pub class: ParticipantClass,
    /// Reported gender.
    pub gender: Gender,
    /// Reported country (ISO-ish short label).
    pub country: String,
    /// Self-assessed technical ability, 1–5.
    pub tech_savvy: u8,
    /// The participant's own downlink (their videos must be downloaded).
    pub bandwidth_bps: u64,
    /// Interpretation of "ready to use".
    pub readiness: ReadinessCriterion,
    /// Multiplicative perception noise (lognormal sigma).
    pub perception_noise: f64,
    /// Tendency to overshoot with the slider before the helper corrects.
    pub overshoot: f64,
    /// Private RNG stream seed.
    pub seed: Seed,
}

impl Participant {
    /// The participant's private RNG for a given activity label.
    pub fn rng(&self, label: &str) -> Rng {
        Rng::seed_from_u64(self.seed.derive(label).value())
    }

    /// The allocation-free trait view of this participant (everything the
    /// behaviour/perception/judgment models consume). The flat campaign
    /// engine generates [`Persona`]s directly; this accessor lets the
    /// row-materialising paths share the exact same model entry points.
    pub fn persona(&self) -> Persona {
        Persona {
            id: self.id,
            ptype: self.ptype,
            class: self.class,
            tech_savvy: self.tech_savvy,
            bandwidth_bps: self.bandwidth_bps,
            readiness: self.readiness,
            perception_noise: self.perception_noise,
            overshoot: self.overshoot,
            seed: self.seed,
        }
    }
}

/// The `Copy` trait-core of a [`Participant`]: every field the response
/// models draw on, none of the reporting-only ones (gender, country).
///
/// The flat campaign engine regenerates shards of these into plain
/// arrays; keeping the struct `Copy` (no `String` country) is what lets
/// a shard's persona column live in reusable scratch without per-row
/// allocation. Draw-compatible with [`Participant`]: for the same pool,
/// seed and index, `generate_persona(..)` and `generate_one(..).persona()`
/// are identical, field for field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Persona {
    /// Unique id within a campaign.
    pub id: u64,
    /// Pool.
    pub ptype: ParticipantType,
    /// Latent phenotype.
    pub class: ParticipantClass,
    /// Self-assessed technical ability, 1–5.
    pub tech_savvy: u8,
    /// The participant's own downlink.
    pub bandwidth_bps: u64,
    /// Interpretation of "ready to use".
    pub readiness: ReadinessCriterion,
    /// Multiplicative perception noise (lognormal sigma).
    pub perception_noise: f64,
    /// Tendency to overshoot with the slider before the helper corrects.
    pub overshoot: f64,
    /// Private RNG stream seed.
    pub seed: Seed,
}

/// A weighted mixture compiled into a cumulative-threshold prefix table.
///
/// [`pick_weighted_ref`] — the reference selection — re-sums the weights
/// and walks them subtractively on *every* draw; with three mixture
/// picks per participant that linear re-summation is pure per-draw
/// overhead in `draw_traits`. `WeightTable` hoists the work to
/// construction: one `total` (the same left-to-right weight sum, so the
/// `random_range(0.0..total)` draw consumes identical RNG bits) and one
/// cumulative threshold per item, after which a draw is a single scan
/// against precomputed bounds.
///
/// Determinism is bit-exact, not approximate: naive prefix sums can
/// disagree with the subtractive loop by an ulp at band boundaries
/// (`x < cum[i]` vs `x ⊖ w₀ ⊖ … < wᵢ` round differently), so each
/// threshold is *refined at construction* by a bit-level binary search
/// over `f64::to_bits` against the reference classifier. Both selectors
/// are monotone step functions of the draw, so threshold agreement makes
/// them provably identical for every representable `x` — the
/// draw-identity regression test probes the boundaries ulp by ulp.
#[derive(Debug, Clone)]
pub struct WeightTable<T> {
    items: Vec<T>,
    /// Exclusive upper threshold per item: item `i` is selected by the
    /// first `i` with `x < cum[i]`. `cum[last]` is `total`.
    cum: Vec<f64>,
    total: f64,
}

impl<T: Copy> WeightTable<T> {
    /// Compile a `(item, weight)` mixture. Weights need not sum to 1.
    pub fn new(mix: &[(T, f64)]) -> WeightTable<T> {
        assert!(!mix.is_empty(), "empty mixture");
        let weights: Vec<f64> = mix.iter().map(|&(_, w)| w).collect();
        let total: f64 = weights.iter().sum();
        let mut cum = Vec::with_capacity(mix.len());
        for i in 1..mix.len() {
            cum.push(boundary(&weights, i, total));
        }
        cum.push(total);
        WeightTable { items: mix.iter().map(|&(v, _)| v).collect(), cum, total }
    }

    /// Draw one item: the same single `random_range(0.0..total)` draw as
    /// the subtractive reference, the same selection for every
    /// representable draw value.
    pub fn pick(&self, rng: &mut Rng) -> T {
        let x: f64 = rng.random_range(0.0..self.total);
        for (i, &c) in self.cum.iter().enumerate() {
            if x < c {
                return self.items[i];
            }
        }
        // lint:allow(D4): tables are built from non-empty mixtures; rounding can leave x past the last band
        *self.items.last().expect("non-empty mixture")
    }

    /// The compiled thresholds (exposed for the identity regression
    /// test).
    pub fn thresholds(&self) -> &[f64] {
        &self.cum
    }

    /// The weight total the draw is scaled by.
    pub fn total(&self) -> f64 {
        self.total
    }
}

/// Which band the subtractive reference loop assigns `x` to.
fn subtractive_band(weights: &[f64], x: f64) -> usize {
    let mut x = x;
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// The smallest non-negative `x` (by bit-level binary search — `to_bits`
/// is monotone on non-negative floats) that the subtractive reference
/// classifies into band `>= i`. Draws land in `[0, total)`, so the
/// search range `[0, total]` covers every reachable value.
fn boundary(weights: &[f64], i: usize, total: f64) -> f64 {
    if subtractive_band(weights, total) < i {
        return total;
    }
    let (mut lo, mut hi) = (0u64, total.to_bits());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if subtractive_band(weights, f64::from_bits(mid)) >= i {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    f64::from_bits(lo)
}

/// The readiness mixture is pool-independent; compile it once.
fn readiness_table() -> &'static WeightTable<ReadinessCriterion> {
    static TABLE: std::sync::OnceLock<WeightTable<ReadinessCriterion>> =
        std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        WeightTable::new(&[
            // Participants see *unfamiliar* sites (§6: "when I don't
            // know what is on the site ... I want to wait for
            // everything"), so the wait-for-everything cohort is
            // nearly as large as the main-content one.
            (ReadinessCriterion::MainContent, 0.40),
            (ReadinessCriterion::AllContent, 0.42),
            (ReadinessCriterion::FirstImpression, 0.18),
        ])
    })
}

/// Mixing weights and trait ranges for a pool.
#[derive(Debug, Clone)]
pub struct PopulationProfile {
    /// Pool type to stamp on the generated participants.
    pub ptype: ParticipantType,
    /// Compiled `(class, weight)` mixture.
    class_mix: WeightTable<ParticipantClass>,
    /// Fraction reporting male (paper: 0.75 validation, 0.70 final).
    pub male_fraction: f64,
    /// Compiled `(country, weight)` mixture.
    countries: WeightTable<&'static str>,
}

impl PopulationProfile {
    /// The paid pool (CrowdFlower "historically trustworthy" tier):
    /// mostly fine, with the §4 pathologies mixed in at the rates the
    /// paper's filters caught. Venezuela tops the 30-country paid pool.
    pub fn paid() -> PopulationProfile {
        PopulationProfile {
            ptype: ParticipantType::Paid,
            class_mix: WeightTable::new(&[
                (ParticipantClass::Diligent, 0.42),
                (ParticipantClass::Average, 0.36),
                (ParticipantClass::Sloppy, 0.13),
                (ParticipantClass::RandomClicker, 0.07),
                (ParticipantClass::Frenetic, 0.02),
                (ParticipantClass::Bot, 0.03),
            ]),
            male_fraction: 0.72,
            countries: WeightTable::new(&[
                ("VE", 0.22),
                ("IN", 0.12),
                ("ID", 0.08),
                ("PH", 0.07),
                ("EG", 0.06),
                ("RS", 0.05),
                ("BR", 0.05),
                ("US", 0.04),
                ("PK", 0.04),
                ("RO", 0.04),
                ("other", 0.23),
            ]),
        }
    }

    /// The trusted pool: overwhelmingly diligent (the paper still caught
    /// one control failure and a few seconds of distraction per
    /// campaign). US tops the 12-country trusted pool.
    pub fn trusted() -> PopulationProfile {
        PopulationProfile {
            ptype: ParticipantType::Trusted,
            class_mix: WeightTable::new(&[
                (ParticipantClass::Diligent, 0.78),
                (ParticipantClass::Average, 0.19),
                (ParticipantClass::Sloppy, 0.03),
            ]),
            male_fraction: 0.79,
            countries: WeightTable::new(&[
                ("US", 0.38),
                ("ES", 0.16),
                ("UK", 0.12),
                ("IT", 0.08),
                ("GR", 0.07),
                ("DE", 0.06),
                ("other", 0.13),
            ]),
        }
    }

    /// Generate `n` participants with ids `0..n`.
    pub fn generate(&self, seed: Seed, n: usize) -> Vec<Participant> {
        (0..n as u64).map(|i| self.generate_one(seed, i)).collect()
    }

    /// Generate the `i`-th participant of this pool.
    pub fn generate_one(&self, seed: Seed, i: u64) -> Participant {
        let (persona, gender, country) = self.draw_traits(seed, i);
        Participant {
            id: i,
            ptype: self.ptype,
            class: persona.class,
            gender,
            country: country.to_owned(),
            tech_savvy: persona.tech_savvy,
            bandwidth_bps: persona.bandwidth_bps,
            readiness: persona.readiness,
            perception_noise: persona.perception_noise,
            overshoot: persona.overshoot,
            seed: persona.seed,
        }
    }

    /// Generate only the trait-core of the `i`-th participant — the
    /// allocation-free path the flat campaign engine regenerates shards
    /// through. Identical draws to [`generate_one`](Self::generate_one)
    /// (the reporting-only gender/country draws still happen, their
    /// results are just not materialised), so the two stay in lockstep
    /// on every downstream RNG stream.
    pub fn generate_persona(&self, seed: Seed, i: u64) -> Persona {
        self.draw_traits(seed, i).0
    }

    /// The gate-relevant slice of participant `i`: the derived seed and
    /// the class (the trait stream's *first* draw). The humanness gate
    /// reads nothing else, so the sharded engines' counting pre-passes
    /// can skip the remaining trait draws entirely — every skipped draw
    /// lives on the participant's isolated `"traits"` stream, so a later
    /// full regeneration via [`generate_one`](Self::generate_one) or
    /// [`generate_persona`](Self::generate_persona) replays the
    /// identical sequence.
    pub fn generate_gate(&self, seed: Seed, i: u64) -> (Seed, ParticipantClass) {
        let cur = self.start_traits(seed, i);
        (cur.pseed, cur.class)
    }

    /// Begin drawing participant `i` and pause right after the class
    /// pick — the demand-driven generalisation of
    /// [`generate_gate`](Self::generate_gate). The returned cursor
    /// exposes everything the admission gate needs ([`TraitCursor::seed`]
    /// and [`TraitCursor::class`]; the captcha check draws from its own
    /// `"captcha"` stream, so it can run while the cursor is paused), and
    /// only participants that survive pay for the remaining trait draws
    /// via [`TraitCursor::finish`]. A rejected participant's cursor is
    /// simply dropped: every unfinished draw lives on the participant's
    /// isolated `"traits"` stream, which nothing downstream reads.
    pub fn start_traits(&self, seed: Seed, i: u64) -> TraitCursor {
        let pseed = seed.derive_index("participant", i);
        let mut rng = Rng::seed_from_u64(pseed.derive("traits").value());
        let class = self.class_mix.pick(&mut rng);
        TraitCursor { id: i, pseed, class, rng }
    }

    /// The single draw sequence behind both generation paths.
    fn draw_traits(&self, seed: Seed, i: u64) -> (Persona, Gender, &'static str) {
        let mut cur = self.start_traits(seed, i);
        let gender =
            if cur.rng.random_bool(self.male_fraction) { Gender::Male } else { Gender::Female };
        let country = self.countries.pick(&mut cur.rng);
        (cur.finish_tail(self), gender, country)
    }
}

/// A participant paused mid-generation: class drawn, everything else
/// pending. See [`PopulationProfile::start_traits`].
#[derive(Debug, Clone)]
pub struct TraitCursor {
    id: u64,
    pseed: Seed,
    class: ParticipantClass,
    rng: Rng,
}

impl TraitCursor {
    /// The participant's derived private seed.
    pub fn seed(&self) -> Seed {
        self.pseed
    }

    /// The class drawn so far (all the admission gate consumes).
    pub fn class(&self) -> ParticipantClass {
        self.class
    }

    /// Complete the trait draws and yield the persona — identical, field
    /// for field, to [`PopulationProfile::generate_persona`] on the same
    /// pool/seed/index. The reporting-only gender and country draws
    /// (one raw output each: a Bernoulli and a compiled-table pick) are
    /// elided value-free — the stream is advanced by exactly two outputs
    /// so every consumed draw after them is untouched.
    pub fn finish(mut self, profile: &PopulationProfile) -> Persona {
        self.rng.skip_u64(2);
        self.finish_tail(profile)
    }

    /// The draws both full and demand-driven generation share, starting
    /// after gender/country.
    fn finish_tail(mut self, profile: &PopulationProfile) -> Persona {
        let rng = &mut self.rng;
        let tech_savvy = rng.random_range(1..=5u8);
        // Worker downlinks: log-uniform 0.5–30 Mbit/s — 2016 crowd
        // workers cluster in regions where sub-2 Mbit/s lines were
        // common, which is what stretches video load times to the tens
        // of seconds Fig. 5 conditions on.
        let bw_exp: f64 = rng.random_range(5.7..7.5);
        let bandwidth_bps = 10f64.powf(bw_exp) as u64;
        let readiness = readiness_table().pick(rng);
        let (perception_noise, overshoot) = match self.class {
            ParticipantClass::Diligent => (rng.random_range(0.03..0.08), rng.random_range(0.02..0.08)),
            ParticipantClass::Average => (rng.random_range(0.06..0.14), rng.random_range(0.05..0.15)),
            ParticipantClass::Sloppy => (rng.random_range(0.12..0.25), rng.random_range(0.15..0.40)),
            ParticipantClass::RandomClicker | ParticipantClass::Bot => {
                (rng.random_range(0.3..0.6), rng.random_range(0.2..0.6))
            }
            ParticipantClass::Frenetic => (rng.random_range(0.10..0.2), rng.random_range(0.05..0.2)),
        };
        Persona {
            id: self.id,
            ptype: profile.ptype,
            class: self.class,
            tech_savvy,
            bandwidth_bps,
            readiness,
            perception_noise,
            overshoot,
            seed: self.pseed,
        }
    }
}

/// The pre-table selection this module shipped with, kept as the
/// reference classifier for [`WeightTable`]'s draw-identity regression
/// test: per-draw weight re-summation plus a subtractive walk.
#[cfg(test)]
fn pick_weighted_ref<T: Copy>(rng: &mut Rng, mix: &[(T, f64)]) -> T {
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut x: f64 = rng.random_range(0.0..total);
    for &(v, w) in mix {
        if x < w {
            return v;
        }
        x -= w;
    }
    mix.last().expect("non-empty mixture").0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every mixture the population model draws from, as raw
    /// `(item, weight)` lists — the input both selectors classify.
    fn live_mixtures() -> Vec<(&'static str, Vec<(u8, f64)>)> {
        // Items are reduced to indices: selection identity is about
        // which *band* a draw lands in, not the payload type.
        let idx = |ws: &[f64]| ws.iter().copied().enumerate().map(|(i, w)| (i as u8, w)).collect();
        vec![
            ("paid.class", idx(&[0.42, 0.36, 0.13, 0.07, 0.02, 0.03])),
            ("trusted.class", idx(&[0.78, 0.19, 0.03])),
            (
                "paid.country",
                idx(&[0.22, 0.12, 0.08, 0.07, 0.06, 0.05, 0.05, 0.04, 0.04, 0.04, 0.23]),
            ),
            ("trusted.country", idx(&[0.38, 0.16, 0.12, 0.08, 0.07, 0.06, 0.13])),
            ("readiness", idx(&[0.40, 0.42, 0.18])),
            // Adversarial shapes: ties, zero weights, tiny bands, and a
            // sum (0.1+0.2) that famously does not round-trip in binary.
            ("zeros", idx(&[0.0, 0.5, 0.0, 0.5])),
            ("tiny", idx(&[1e-12, 1.0, 1e-12])),
            ("binary-sour", idx(&[0.1, 0.2, 0.3, 0.4])),
        ]
    }

    /// Which band the compiled table assigns `x` to (the scan inside
    /// `pick`, exposed on the raw draw value for boundary probing).
    fn table_band(table: &WeightTable<u8>, x: f64) -> u8 {
        for (i, &c) in table.thresholds().iter().enumerate() {
            if x < c {
                return i as u8;
            }
        }
        table.thresholds().len() as u8 - 1
    }

    #[test]
    fn weight_table_draw_identity_with_subtractive_reference() {
        // The satellite contract: same single draw, same selection. Two
        // RNG clones must stay in bit-for-bit lockstep through many
        // picks, for every live mixture.
        for (name, mix) in live_mixtures() {
            let table = WeightTable::new(&mix);
            let mut a = Rng::seed_from_u64(0x5eed_0000 ^ mix.len() as u64);
            let mut b = a.clone();
            for round in 0..20_000 {
                let want = pick_weighted_ref(&mut a, &mix);
                let got = table.pick(&mut b);
                assert_eq!(want, got, "{name} round {round}");
            }
            // Identical residual RNG state: both consumed exactly one
            // random_range(0.0..total) per pick.
            assert_eq!(a.next_u64(), b.next_u64(), "{name} rng state");
        }
    }

    #[test]
    fn weight_table_thresholds_are_exact_band_boundaries() {
        // Probe each compiled threshold ulp-by-ulp: the band must flip
        // at exactly the same representable value under both selectors.
        for (name, mix) in live_mixtures() {
            let table = WeightTable::new(&mix);
            let weights: Vec<f64> = mix.iter().map(|&(_, w)| w).collect();
            let probe = |x: f64| {
                assert_eq!(
                    subtractive_band(&weights, x) as u8,
                    table_band(&table, x),
                    "{name} x={x:e} (bits {:#x})",
                    x.to_bits()
                );
            };
            for &t in table.thresholds() {
                let mut lo = t;
                let mut hi = t;
                for _ in 0..4 {
                    probe(lo);
                    probe(hi);
                    lo = f64::from_bits(lo.to_bits().saturating_sub(1)).max(0.0);
                    hi = f64::from_bits(hi.to_bits() + 1).min(table.total());
                }
            }
            probe(0.0);
            // A uniform sweep across the whole range for good measure.
            for k in 0..=10_000 {
                probe(table.total() * k as f64 / 10_000.0);
            }
        }
    }

    #[test]
    fn persona_generation_matches_full_generation() {
        for pool in [PopulationProfile::paid(), PopulationProfile::trusted()] {
            for i in 0..200 {
                let full = pool.generate_one(Seed(77), i);
                let persona = pool.generate_persona(Seed(77), i);
                assert_eq!(full.persona(), persona, "pool {:?} index {i}", pool.ptype);
            }
        }
    }

    #[test]
    fn trait_cursor_finish_matches_full_generation() {
        // Draw-elision identity: pausing at the gate and finishing with
        // the gender/country values elided must reproduce the full
        // path's persona exactly — fields, seed, and (via the noise and
        // overshoot draws that come *after* the elided ones) the whole
        // downstream draw alignment.
        for pool in [PopulationProfile::paid(), PopulationProfile::trusted()] {
            for seed in [Seed(77), Seed(0), Seed(u64::MAX)] {
                for i in 0..300 {
                    let cur = pool.start_traits(seed, i);
                    let (gate_seed, gate_class) = pool.generate_gate(seed, i);
                    assert_eq!(cur.seed(), gate_seed, "index {i}");
                    assert_eq!(cur.class(), gate_class, "index {i}");
                    let fast = cur.finish(&pool);
                    let full = pool.generate_persona(seed, i);
                    assert_eq!(fast, full, "pool {:?} seed {seed:?} index {i}", pool.ptype);
                }
            }
        }
    }

    #[test]
    fn generation_deterministic() {
        let a = PopulationProfile::paid().generate(Seed(1), 50);
        let b = PopulationProfile::paid().generate(Seed(1), 50);
        assert_eq!(a, b);
        assert_ne!(a, PopulationProfile::paid().generate(Seed(2), 50));
    }

    #[test]
    fn class_mix_realised() {
        let pop = PopulationProfile::paid().generate(Seed(3), 4000);
        let frac = |c: ParticipantClass| {
            pop.iter().filter(|p| p.class == c).count() as f64 / pop.len() as f64
        };
        assert!((frac(ParticipantClass::Diligent) - 0.42).abs() < 0.03);
        assert!((frac(ParticipantClass::RandomClicker) - 0.07).abs() < 0.02);
        assert!(frac(ParticipantClass::Frenetic) > 0.005);
    }

    #[test]
    fn trusted_pool_has_no_random_clickers() {
        let pop = PopulationProfile::trusted().generate(Seed(4), 1000);
        assert!(pop.iter().all(|p| !matches!(
            p.class,
            ParticipantClass::RandomClicker | ParticipantClass::Frenetic | ParticipantClass::Bot
        )));
    }

    #[test]
    fn paid_pool_contains_some_bots() {
        let pop = PopulationProfile::paid().generate(Seed(9), 2000);
        let bots = pop.iter().filter(|p| p.class == ParticipantClass::Bot).count();
        assert!((20..120).contains(&bots), "bots: {bots}");
    }

    #[test]
    fn gender_split_matches_paper() {
        let pop = PopulationProfile::paid().generate(Seed(5), 4000);
        let male =
            pop.iter().filter(|p| p.gender == Gender::Male).count() as f64 / pop.len() as f64;
        assert!((male - 0.72).abs() < 0.03, "male fraction {male}");
    }

    #[test]
    fn country_tops_match_paper() {
        let paid = PopulationProfile::paid().generate(Seed(6), 3000);
        // "other" aggregates the long tail of countries; the paper's
        // "most popular country" claim concerns named countries.
        let top = |pop: &[Participant]| -> String {
            let mut counts = std::collections::BTreeMap::new();
            for p in pop {
                if p.country != "other" {
                    *counts.entry(p.country.clone()).or_insert(0u32) += 1;
                }
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        assert_eq!(top(&paid), "VE", "Venezuela tops the paid pool");
        let trusted = PopulationProfile::trusted().generate(Seed(6), 3000);
        assert_eq!(top(&trusted), "US", "US tops the trusted pool");
    }

    #[test]
    fn traits_in_declared_ranges() {
        for p in PopulationProfile::paid().generate(Seed(7), 500) {
            assert!((1..=5).contains(&p.tech_savvy));
            assert!(p.bandwidth_bps >= 450_000 && p.bandwidth_bps <= 33_000_000);
            assert!(p.perception_noise > 0.0 && p.perception_noise < 0.7);
            assert!(p.overshoot >= 0.0 && p.overshoot < 0.7);
        }
    }

    #[test]
    fn readiness_criteria_all_present() {
        let pop = PopulationProfile::paid().generate(Seed(8), 1000);
        for c in [
            ReadinessCriterion::MainContent,
            ReadinessCriterion::AllContent,
            ReadinessCriterion::FirstImpression,
        ] {
            assert!(pop.iter().any(|p| p.readiness == c), "{c:?} missing");
        }
    }
}
