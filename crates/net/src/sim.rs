//! The network simulator: connections over a shared access link.
//!
//! [`NetSim`] is the substrate under every page load in this
//! reproduction. It owns one bidirectional access link (the client's
//! bottleneck), any number of TCP connections multiplexed over it, a
//! seeded loss process, and the global event queue. The HTTP engines in
//! `eyeorg-http` drive it through four calls — open a connection, send
//! request bytes up, send response bytes down, and pump events — and
//! observe byte-level progress through [`NetEvent`]s.
//!
//! ## Fidelity notes
//!
//! * Response (downlink) segments experience congestion control, loss and
//!   drop-tail queueing — this is where the HTTP/1.1-vs-HTTP/2 differences
//!   the paper measures come from.
//! * Request (uplink) bytes and ACKs are serialised through the uplink
//!   queue but are not subject to loss or congestion control: requests in
//!   the studied workloads are a few hundred bytes, far below any
//!   uplink's congestion point, and modelling their loss would add noise
//!   without changing any conclusion (documented substitution).
//! * Handshake packets (TCP + TLS legs) are likewise lossless; their
//!   contribution is the round trips, which are modelled through the real
//!   queues so queueing delay still applies.

use eyeorg_stats::rng::Rng;
use std::collections::VecDeque;

use eyeorg_obs::metrics as obs;
use eyeorg_stats::Seed;

use crate::event::EventQueue;
use crate::link::{LinkQueue, Transmit};
use crate::loss::LossProcess;
use crate::profile::{NetworkProfile, TlsMode};
use crate::qlog::{ConnEvent, ConnLog};
use crate::tcp::{SackBlocks, TcpReceiver, TcpSender, HEADER_BYTES, MSS};
use crate::time::{SimDuration, SimTime};

/// Wire size of a handshake packet (SYN/SYNACK/TLS flight, abstracted).
const HANDSHAKE_PACKET_BYTES: u64 = 66;

/// Wire size of a bare ACK.
const ACK_BYTES: u64 = HEADER_BYTES + 26;

/// Identifier of a connection within one [`NetSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub usize);

/// Application-visible events surfaced by [`NetSim::next_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// The connection finished its TCP (+TLS) handshake; the client may
    /// now send requests.
    Established {
        /// The connection that became usable.
        conn: ConnId,
    },
    /// Cumulative request bytes that have arrived at the server.
    RequestDelivered {
        /// Connection carrying the request.
        conn: ConnId,
        /// Total uplink application bytes delivered so far.
        total_bytes: u64,
    },
    /// Cumulative in-order response bytes available to the client
    /// application (the browser).
    Delivered {
        /// Connection carrying the response.
        conn: ConnId,
        /// Total downlink application bytes delivered in order so far.
        total_bytes: u64,
    },
}

/// Internal simulator events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Open { conn: usize },
    HandshakeLeg { conn: usize, remaining: u32 },
    ClientSend { conn: usize, bytes: u64 },
    ServerSend { conn: usize, bytes: u64 },
    UpDataArrive { conn: usize, end: u64 },
    SegArrive { conn: usize, start: u64, end: u64 },
    AckArrive { conn: usize, ack: u64, sack: SackBlocks },
    /// Coalesced replay point for a batched lossless burst: fires at the
    /// arrival time of the burst's *last* ACK and applies every deferred
    /// ACK in order (see `BurstPlan`). `generation` tombstones batches
    /// whose plan was flushed early.
    AckBatch { conn: usize, generation: u64 },
    RtoCheck { conn: usize, epoch: u64 },
}

/// Maximum number of segments coalesced into one batch. Keeps the span
/// guard tight and the deferred state small; bursts beyond this simply
/// run the per-segment path.
const MAX_BATCH_SEGMENTS: usize = 64;

/// A burst's deferred ACKs may span at most this long after the plan was
/// created. Far below TCP's minimum RTO (200 ms), so every RTO check
/// that could observe deferred state is provably stale (a newer rearm
/// always lands first).
const MAX_BATCH_SPAN: SimDuration = SimDuration::from_millis(100);

/// An active lossless-burst batch for one connection.
///
/// Created by `pump` when an application-limited sender put `k >= 2`
/// fresh consecutive segments on an idle path with zero loss draws and
/// nothing else in flight. Each arriving segment of the burst records
/// its ACK `(arrival_time, ack_number)` here instead of scheduling a
/// per-ACK event; when the last segment arrives, one `Ev::AckBatch` at
/// the final ACK's arrival time replays them all against the sender in
/// order, with their original timestamps — byte-identical sender state,
/// `k - 1` fewer event-queue round-trips, and `k - 1` fewer stale
/// `RtoCheck` events (their rearms are folded into epoch bumps).
///
/// Any event that could observe the deferred sender state
/// (`ServerSend`, a live `RtoCheck`, a stray `AckArrive`) *flushes* the
/// plan first: deferred ACKs at or before the current time are applied
/// immediately, later ones are re-materialised as ordinary `AckArrive`
/// events at their exact recorded times.
#[derive(Debug)]
struct BurstPlan {
    /// Byte ranges still expected to arrive, in order.
    pending_segments: VecDeque<(u64, u64)>,
    /// Recorded ACKs awaiting replay: `(uplink_arrival, ack_number)`.
    acks: VecDeque<(SimTime, u64)>,
    /// Tombstone counter matched against `Ev::AckBatch::generation`.
    generation: u64,
    /// When `pump` created the plan (for the span guard).
    created_at: SimTime,
}

/// Per-connection bookkeeping around the TCP state machines.
#[derive(Debug)]
struct Conn {
    sender: TcpSender,
    receiver: TcpReceiver,
    tls: TlsMode,
    established: bool,
    established_at: Option<SimTime>,
    opened_at: SimTime,
    up_sent: u64,
    up_delivered: u64,
    rto_epoch: u64,
    /// Active lossless-burst batch, if any.
    plan: Option<BurstPlan>,
    /// Monotone plan counter; stale `Ev::AckBatch` events carry an older
    /// generation and are ignored.
    plan_generation: u64,
    log: Option<ConnLog>,
}

/// Public per-connection statistics (for HARs and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnStats {
    /// When `open` was called.
    pub opened_at: SimTime,
    /// When the handshake completed (None if still connecting).
    pub established_at: Option<SimTime>,
    /// Segments the server sent, including retransmissions.
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// RTO events.
    pub timeouts: u64,
    /// In-order response bytes delivered to the client.
    pub bytes_delivered: u64,
}

/// A deterministic network simulation over one access link.
#[derive(Debug)]
pub struct NetSim {
    profile: NetworkProfile,
    downlink: LinkQueue,
    uplink: LinkQueue,
    loss: LossProcess,
    conns: Vec<Conn>,
    queue: EventQueue<Ev>,
    out: VecDeque<(SimTime, NetEvent)>,
    logging: bool,
    /// Coalesce lossless bursts into one ACK-replay event (default on).
    /// The `false` path is the per-segment reference implementation the
    /// equivalence tests compare against.
    batching: bool,
    /// Internal events processed since construction (for the hot-path
    /// bench's events/sec metric).
    events_processed: u64,
    #[allow(dead_code)] // reserved for future jitter modelling
    rng: Rng,
}

impl NetSim {
    /// Create a simulator for the given access-link profile. All
    /// randomness (currently the loss process) derives from `seed`.
    pub fn new(profile: NetworkProfile, seed: Seed) -> NetSim {
        let one_way = profile.one_way_delay();
        NetSim {
            downlink: LinkQueue::new(profile.down_bps, one_way, profile.queue_limit),
            // Uplink carries only small requests/ACKs; give it a deep
            // buffer so drop-tail never applies (see module docs).
            uplink: LinkQueue::new(profile.up_bps, one_way, usize::MAX / 2),
            loss: LossProcess::new(profile.loss, seed),
            conns: Vec::new(),
            queue: EventQueue::new(),
            out: VecDeque::new(),
            logging: false,
            batching: true,
            events_processed: 0,
            rng: Rng::seed_from_u64(seed.derive("netsim").value()),
            profile,
        }
    }

    /// The configured profile.
    pub fn profile(&self) -> &NetworkProfile {
        &self.profile
    }

    /// Enable or disable qlog-style event logging for connections opened
    /// *after* this call.
    pub fn set_logging(&mut self, on: bool) {
        self.logging = on;
    }

    /// Enable or disable lossless-burst batching (default: enabled).
    /// Disabling selects the per-segment reference path; both paths
    /// produce identical [`NetEvent`] traces, statistics and logs — the
    /// equivalence tests and the `perf_hotpath` bench verify this.
    pub fn set_burst_batching(&mut self, on: bool) {
        self.batching = on;
    }

    /// Internal simulator events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Take (consume) the event log of a connection; `None` when logging
    /// was off when it was opened.
    pub fn take_log(&mut self, conn: ConnId) -> Option<ConnLog> {
        self.conns[conn.0].log.take()
    }

    /// Current simulation time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Earliest pending internal event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Open a connection at time `at` (≥ the current watermark). The
    /// handshake (1 RTT for TCP plus [`TlsMode::extra_round_trips`]) runs
    /// through the link queues; an [`NetEvent::Established`] fires when
    /// the client may transmit.
    pub fn open(&mut self, at: SimTime, tls: TlsMode) -> ConnId {
        let idx = self.conns.len();
        self.conns.push(Conn {
            sender: TcpSender::new(),
            receiver: TcpReceiver::new(),
            tls,
            established: false,
            established_at: None,
            opened_at: at,
            up_sent: 0,
            up_delivered: 0,
            rto_epoch: 0,
            plan: None,
            plan_generation: 0,
            log: self.logging.then(ConnLog::default),
        });
        self.queue.schedule(at, Ev::Open { conn: idx });
        ConnId(idx)
    }

    /// Queue `bytes` of request data from client to server at time `at`.
    /// The connection must be established by then (the caller reacts to
    /// [`NetEvent::Established`], so this is natural); bytes sent on an
    /// unestablished connection are delivered only after establishment.
    pub fn client_send(&mut self, conn: ConnId, at: SimTime, bytes: u64) {
        assert!(bytes > 0, "client_send of zero bytes");
        self.queue.schedule(at, Ev::ClientSend { conn: conn.0, bytes });
    }

    /// Queue `bytes` of response data from server to client at time `at`.
    pub fn server_send(&mut self, conn: ConnId, at: SimTime, bytes: u64) {
        assert!(bytes > 0, "server_send of zero bytes");
        self.queue.schedule(at, Ev::ServerSend { conn: conn.0, bytes });
    }

    /// Statistics snapshot for a connection.
    pub fn conn_stats(&self, conn: ConnId) -> ConnStats {
        let c = &self.conns[conn.0];
        ConnStats {
            opened_at: c.opened_at,
            established_at: c.established_at,
            segments_sent: c.sender.segments_sent(),
            retransmissions: c.sender.retransmissions(),
            timeouts: c.sender.timeouts(),
            bytes_delivered: c.receiver.delivered(),
        }
    }

    /// Advance the simulation until the next application-visible event
    /// and return it, or `None` when the simulation has quiesced.
    pub fn next_event(&mut self) -> Option<(SimTime, NetEvent)> {
        self.next_event_until(SimTime::from_micros(u64::MAX))
    }

    /// Like [`NetSim::next_event`], but refuses to process internal events
    /// later than `limit`. Returns `None` once the next pending internal
    /// event (if any) lies beyond `limit`, leaving it queued.
    ///
    /// Layers above the simulator (the HTTP engines) keep their own timed
    /// actions (server think time, scheduler wake-ups); this bound lets
    /// them interleave those actions without the simulator racing past
    /// the time at which the layer above still intends to inject work.
    pub fn next_event_until(&mut self, limit: SimTime) -> Option<(SimTime, NetEvent)> {
        loop {
            if let Some(ev) = self.out.pop_front() {
                return Some(ev);
            }
            if self.queue.peek_time()? > limit {
                return None;
            }
            // lint:allow(D4): peek_time returned Some, so the queue is non-empty
            let (now, ev) = self.queue.pop().expect("peeked non-empty");
            self.process(now, ev);
        }
    }

    /// Run the simulation to quiescence, discarding events. Useful in
    /// tests that only inspect final statistics.
    pub fn run_to_quiescence(&mut self) {
        while self.next_event().is_some() {}
    }

    // ------------------------------------------------------------------
    // Internal event processing
    // ------------------------------------------------------------------

    fn process(&mut self, now: SimTime, ev: Ev) {
        self.events_processed += 1;
        obs::NET_EVENTS_PROCESSED.incr();
        // Events that touch the sender while a burst plan is deferring
        // its ACKs must see the exact reference state: flush first.
        // (`RtoCheck` defers the flush until after its staleness test —
        // any check that can pop mid-plan was armed before the burst's
        // own rearm and is therefore stale on both paths.)
        match ev {
            Ev::ServerSend { conn, .. } | Ev::AckArrive { conn, .. }
                if self.conns[conn].plan.is_some() =>
            {
                self.flush_plan(conn, now);
            }
            _ => {}
        }
        match ev {
            Ev::Open { conn } => {
                // First handshake leg: client → server.
                let total_legs = 2 * (1 + self.conns[conn].tls.extra_round_trips());
                let arrival = self.up_transmit(now, HANDSHAKE_PACKET_BYTES);
                self.queue.schedule(arrival, Ev::HandshakeLeg { conn, remaining: total_legs - 1 });
            }
            Ev::HandshakeLeg { conn, remaining } => {
                if remaining == 0 {
                    let c = &mut self.conns[conn];
                    c.established = true;
                    c.established_at = Some(now);
                    if let Some(log) = &mut c.log {
                        log.push(now, ConnEvent::Established);
                    }
                    // Flush any request bytes queued before establishment.
                    let pending = c.up_sent - c.up_delivered;
                    let delivered = c.up_delivered;
                    self.out.push_back((now, NetEvent::Established { conn: ConnId(conn) }));
                    if pending > 0 {
                        self.up_send_chunks(conn, now, delivered, pending);
                    }
                    return;
                }
                // Legs alternate: odd remaining counts left → next leg is
                // downlink if the leg count left is odd (server replies),
                // uplink otherwise.
                let is_down = remaining % 2 == 1;
                let arrival = if is_down {
                    self.down_transmit_lossless(now, HANDSHAKE_PACKET_BYTES)
                } else {
                    self.up_transmit(now, HANDSHAKE_PACKET_BYTES)
                };
                self.queue.schedule(arrival, Ev::HandshakeLeg { conn, remaining: remaining - 1 });
            }
            Ev::ClientSend { conn, bytes } => {
                let start = self.conns[conn].up_sent;
                self.conns[conn].up_sent += bytes;
                if self.conns[conn].established {
                    self.up_send_chunks(conn, now, start, bytes);
                }
                // Otherwise the handshake-completion path flushes it.
            }
            Ev::UpDataArrive { conn, end } => {
                let c = &mut self.conns[conn];
                if end > c.up_delivered {
                    c.up_delivered = end;
                    self.out.push_back((
                        now,
                        NetEvent::RequestDelivered { conn: ConnId(conn), total_bytes: end },
                    ));
                }
            }
            Ev::ServerSend { conn, bytes } => {
                self.conns[conn].sender.app_write(bytes);
                self.pump(conn, now);
                self.rearm_rto(conn, now);
            }
            Ev::SegArrive { conn, start, end } => {
                // A planned burst expects exactly its own segments, in
                // order; anything else observing the wire mid-plan (a
                // retransmission cannot — the plan precludes in-flight
                // strangers — but be defensive) flushes back to the
                // reference path.
                let planned = match &self.conns[conn].plan {
                    Some(p) if p.pending_segments.front() == Some(&(start, end)) => true,
                    Some(_) => {
                        self.flush_plan(conn, now);
                        false
                    }
                    None => false,
                };
                let outcome = self.conns[conn].receiver.on_segment(start, end);
                if outcome.newly_delivered > 0 {
                    self.out.push_back((
                        now,
                        NetEvent::Delivered {
                            conn: ConnId(conn),
                            total_bytes: self.conns[conn].receiver.delivered(),
                        },
                    ));
                }
                // ACK back to the server through the uplink.
                let arrival = self.up_transmit(now, ACK_BYTES);
                if planned {
                    // Record the ACK instead of scheduling it; the batch
                    // event (scheduled here for the last segment, at the
                    // same call position the reference would allocate its
                    // AckArrive) replays all of them in order.
                    // lint:allow(D4): planned is true only for connections that carry an ACK plan
                    let p = self.conns[conn].plan.as_mut().expect("plan routed");
                    p.pending_segments.pop_front();
                    p.acks.push_back((arrival, outcome.ack));
                    let span_ok = arrival.since(p.created_at) <= MAX_BATCH_SPAN;
                    let in_order = outcome.sack.as_slice().is_empty();
                    debug_assert!(in_order, "planned burst produced SACK");
                    if !span_ok || !in_order {
                        self.flush_plan(conn, now);
                    } else if self.conns[conn]
                        .plan
                        .as_ref()
                        .is_some_and(|p| p.pending_segments.is_empty())
                    {
                        // lint:allow(D4): the is_some_and guard on this branch established the plan exists
                        let generation = self.conns[conn].plan.as_ref().unwrap().generation;
                        self.queue.schedule(arrival, Ev::AckBatch { conn, generation });
                    }
                } else {
                    self.queue.schedule(
                        arrival,
                        Ev::AckArrive { conn, ack: outcome.ack, sack: outcome.sack },
                    );
                }
            }
            Ev::AckBatch { conn, generation } => {
                let live = self.conns[conn]
                    .plan
                    .as_ref()
                    .is_some_and(|p| p.generation == generation);
                if !live {
                    return; // plan was flushed; the ACKs already replayed
                }
                // lint:allow(D4): live was checked just above: a plan with this generation is present
                let plan = self.conns[conn].plan.take().expect("checked live");
                debug_assert!(plan.pending_segments.is_empty(), "batch before last segment");
                let n = plan.acks.len();
                for (k, (t, ack)) in plan.acks.into_iter().enumerate() {
                    if k + 1 == n {
                        // The last ACK fires at the batch's own time: run
                        // the full reference ACK path.
                        debug_assert_eq!(t, now, "batch scheduled at last ACK arrival");
                        self.apply_ack(conn, now, ack, SackBlocks::default());
                    } else {
                        self.apply_deferred_ack(conn, t, ack);
                    }
                }
            }
            Ev::AckArrive { conn, ack, sack } => {
                self.apply_ack(conn, now, ack, sack);
            }
            Ev::RtoCheck { conn, epoch } => {
                if self.conns[conn].rto_epoch != epoch {
                    return; // superseded by a later (re)arm
                }
                // A live check during an active plan would act on the
                // deferred sender state; restore exactness first. (Cannot
                // happen — see the dispatch comment — but stay safe.)
                if self.conns[conn].plan.is_some() {
                    self.flush_plan(conn, now);
                    if self.conns[conn].rto_epoch != epoch {
                        return;
                    }
                }
                if self.conns[conn].sender.on_rto() {
                    if let Some(log) = &mut self.conns[conn].log {
                        log.push(now, ConnEvent::Timeout);
                    }
                    self.pump(conn, now);
                    self.rearm_rto(conn, now);
                }
            }
        }
    }

    /// The full reference ACK path: SACK bookkeeping, cumulative ACK,
    /// logging, window pump, RTO rearm.
    fn apply_ack(&mut self, conn: usize, now: SimTime, ack: u64, sack: SackBlocks) {
        self.conns[conn].sender.update_sack(sack);
        self.conns[conn].sender.on_ack(ack, now);
        let c = &mut self.conns[conn];
        if let Some(log) = &mut c.log {
            log.push(
                now,
                ConnEvent::AckReceived {
                    ack,
                    cwnd: c.sender.cwnd_bytes(),
                    in_flight: c.sender.in_flight(),
                },
            );
        }
        self.pump(conn, now);
        self.rearm_rto(conn, now);
    }

    /// Replay one deferred ACK with its original timestamp `t` (in the
    /// past relative to the event being processed).
    ///
    /// Identical to [`NetSim::apply_ack`] under the burst preconditions:
    /// the pump is a provable no-op (the sender stays app-limited with no
    /// retransmission state until the batch's final ACK), and the rearm
    /// reduces to its epoch bump — the reference's RtoCheck at `t + rto`
    /// is guaranteed stale because the next ACK replays (and bumps the
    /// epoch again) within the batch span, far inside the minimum RTO.
    fn apply_deferred_ack(&mut self, conn: usize, t: SimTime, ack: u64) {
        let c = &mut self.conns[conn];
        c.sender.update_sack(SackBlocks::default());
        c.sender.on_ack(ack, t);
        if let Some(log) = &mut c.log {
            log.push(
                t,
                ConnEvent::AckReceived {
                    ack,
                    cwnd: c.sender.cwnd_bytes(),
                    in_flight: c.sender.in_flight(),
                },
            );
        }
        debug_assert!(
            c.sender.next_segment().is_none(),
            "deferred ACK must not open the send window"
        );
        c.rto_epoch += 1;
    }

    /// Deactivate a connection's burst plan, restoring the exact
    /// reference state at `now`: deferred ACKs that have already arrived
    /// (`t <= now`) are replayed immediately; later ones go back into
    /// the event queue as ordinary `AckArrive` events at their exact
    /// recorded times.
    fn flush_plan(&mut self, conn: usize, now: SimTime) {
        let Some(mut plan) = self.conns[conn].plan.take() else {
            return;
        };
        obs::NET_BURST_FLUSHES.incr();
        let mut last_applied = None;
        while let Some(&(t, ack)) = plan.acks.front() {
            if t > now {
                break;
            }
            plan.acks.pop_front();
            self.apply_deferred_ack(conn, t, ack);
            last_applied = Some(t);
        }
        if plan.acks.is_empty() && plan.pending_segments.is_empty() {
            // The whole burst was already acknowledged: the reference's
            // final ACK also re-armed the RTO at its own arrival time.
            if let Some(t) = last_applied {
                debug_assert!(self.conns[conn].sender.next_segment().is_none());
                self.rearm_rto(conn, t);
            }
        }
        for (t, ack) in plan.acks {
            // In-order burst ACKs carry no SACK blocks (validated when
            // they were recorded).
            self.queue.schedule(t, Ev::AckArrive { conn, ack, sack: SackBlocks::default() });
        }
    }

    /// Transmit all segments the sender's window currently allows.
    ///
    /// When burst batching is on and the transmitted burst satisfies the
    /// lossless-burst preconditions, a [`BurstPlan`] is installed so the
    /// burst's ACKs coalesce into a single event (see `BurstPlan` docs).
    fn pump(&mut self, conn: usize, now: SimTime) {
        // Candidate burst: fresh (non-retransmitted) segments actually
        // handed to the link this pump, none dropped anywhere.
        let mut burst: Vec<(u64, u64)> = Vec::new();
        let mut clean = self.batching && self.conns[conn].plan.is_none();
        while let Some(seg) = self.conns[conn].sender.next_segment() {
            self.conns[conn].sender.mark_sent(seg, now);
            obs::NET_SEGMENTS_SENT.incr();
            if seg.retransmission {
                obs::NET_RETRANSMISSIONS.incr();
            }
            let cwnd = self.conns[conn].sender.cwnd_bytes();
            if let Some(log) = &mut self.conns[conn].log {
                log.push(
                    now,
                    ConnEvent::SegmentSent {
                        start: seg.start,
                        len: seg.len(),
                        retransmission: seg.retransmission,
                        cwnd,
                    },
                );
            }
            if self.loss.drops_next() {
                obs::NET_DROPS_RANDOM_LOSS.incr();
                if let Some(log) = &mut self.conns[conn].log {
                    log.push(now, ConnEvent::SegmentDropped { start: seg.start });
                }
                clean = false;
                continue; // lost in the network
            }
            match self.downlink.offer(now, seg.wire_bytes()) {
                Transmit::Delivered(arrival) => {
                    self.queue
                        .schedule(arrival, Ev::SegArrive { conn, start: seg.start, end: seg.end });
                    if seg.retransmission {
                        clean = false;
                    } else {
                        burst.push((seg.start, seg.end));
                    }
                }
                Transmit::Dropped => {
                    // Drop-tail loss: sender finds out via dupacks/RTO.
                    obs::NET_DROPS_QUEUE.incr();
                    if let Some(log) = &mut self.conns[conn].log {
                        log.push(now, ConnEvent::SegmentDropped { start: seg.start });
                    }
                    clean = false;
                }
            }
        }
        if clean && burst.len() >= 2 && burst.len() <= MAX_BATCH_SEGMENTS {
            self.maybe_install_plan(conn, now, burst);
        }
    }

    /// Install a [`BurstPlan`] for `burst` if the connection is in the
    /// provably-deferrable state: the burst is contiguous, it is the
    /// *only* data in flight, the sender is application-limited with a
    /// clean window, and the receiver sits exactly at the burst's first
    /// byte with nothing buffered out-of-order. Under these conditions
    /// every deferred ACK's pump is a no-op and its rearm reduces to an
    /// epoch bump, so replaying the ACKs late is byte-identical.
    fn maybe_install_plan(&mut self, conn: usize, now: SimTime, burst: Vec<(u64, u64)>) {
        let c = &self.conns[conn];
        let contiguous = burst.windows(2).all(|w| w[0].1 == w[1].0);
        let (first_start, last_end) = (burst[0].0, burst[burst.len() - 1].1);
        let sole_in_flight = c.sender.in_flight() == last_end - first_start;
        let deferrable = contiguous
            && sole_in_flight
            && c.sender.app_limited()
            && c.sender.window_quiescent()
            && c.receiver.delivered() == first_start
            && c.receiver.buffered() == 0;
        if !deferrable {
            return;
        }
        obs::NET_BURSTS_BATCHED.incr();
        let c = &mut self.conns[conn];
        c.plan_generation += 1;
        c.plan = Some(BurstPlan {
            pending_segments: burst.into_iter().collect(),
            acks: VecDeque::new(),
            generation: c.plan_generation,
            created_at: now,
        });
    }

    /// Reset the retransmission timer after any sender activity.
    fn rearm_rto(&mut self, conn: usize, now: SimTime) {
        let c = &mut self.conns[conn];
        c.rto_epoch += 1;
        if c.sender.in_flight() > 0 {
            let deadline = now + c.sender.current_rto();
            self.queue.schedule(deadline, Ev::RtoCheck { conn, epoch: c.rto_epoch });
        }
    }

    /// Send `bytes` of request data (starting at stream offset `start`)
    /// up the link in MSS-sized chunks.
    fn up_send_chunks(&mut self, conn: usize, now: SimTime, start: u64, bytes: u64) {
        let mut off = 0;
        while off < bytes {
            let chunk = (bytes - off).min(MSS);
            let arrival = self.up_transmit(now, chunk + HEADER_BYTES);
            self.queue.schedule(arrival, Ev::UpDataArrive { conn, end: start + off + chunk });
            off += chunk;
        }
    }

    fn up_transmit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        match self.uplink.offer(now, bytes) {
            Transmit::Delivered(t) => t,
            Transmit::Dropped => unreachable!("uplink buffer is effectively unbounded"),
        }
    }

    fn down_transmit_lossless(&mut self, now: SimTime, bytes: u64) -> SimTime {
        match self.downlink.offer(now, bytes) {
            Transmit::Delivered(t) => t,
            // A handshake packet squeezed out by a full buffer: model as
            // delayed behind the burst rather than lost, keeping
            // handshakes deterministic.
            Transmit::Dropped => now + self.downlink.queueing_delay(now) + self.downlink.prop_delay(),
        }
    }
}

/// One-shot convenience: time to deliver `bytes` from server to client on
/// a fresh connection (handshake + request + response), mimicking a
/// single-object fetch. Returns `(request_sent_at, completion)` times.
pub fn single_transfer(
    profile: NetworkProfile,
    seed: Seed,
    tls: TlsMode,
    request_bytes: u64,
    response_bytes: u64,
) -> (SimTime, SimTime) {
    let mut sim = NetSim::new(profile, seed);
    let conn = sim.open(SimTime::ZERO, tls);
    let mut request_at = SimTime::ZERO;
    let mut done_at = SimTime::ZERO;
    while let Some((t, ev)) = sim.next_event() {
        match ev {
            NetEvent::Established { conn: c } if c == conn => {
                request_at = t;
                sim.client_send(conn, t, request_bytes);
            }
            NetEvent::RequestDelivered { conn: c, total_bytes }
                if c == conn && total_bytes == request_bytes =>
            {
                sim.server_send(conn, t, response_bytes);
            }
            NetEvent::Delivered { conn: c, total_bytes }
                if c == conn && total_bytes == response_bytes =>
            {
                done_at = t;
            }
            _ => {}
        }
    }
    (request_at, done_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossModel;

    fn lossless() -> NetworkProfile {
        NetworkProfile::lossless_test() // 10/10 Mbit/s, 40 ms RTT, no loss
    }

    #[test]
    fn handshake_takes_one_rtt_without_tls() {
        let mut sim = NetSim::new(lossless(), Seed(1));
        let conn = sim.open(SimTime::ZERO, TlsMode::None);
        let (t, ev) = sim.next_event().expect("established");
        assert_eq!(ev, NetEvent::Established { conn });
        // 1 RTT = 40 ms plus two 66-byte serialisations (52.8 µs each → 53).
        let us = t.as_micros();
        assert!((40_000..41_000).contains(&us), "handshake at {us}µs");
    }

    #[test]
    fn tls13_adds_one_rtt() {
        let t_plain = {
            let mut s = NetSim::new(lossless(), Seed(1));
            s.open(SimTime::ZERO, TlsMode::None);
            s.next_event().unwrap().0
        };
        let t_tls = {
            let mut s = NetSim::new(lossless(), Seed(1));
            s.open(SimTime::ZERO, TlsMode::Tls13);
            s.next_event().unwrap().0
        };
        let delta = t_tls.as_micros() - t_plain.as_micros();
        assert!((40_000..41_000).contains(&delta), "TLS1.3 extra {delta}µs");
    }

    #[test]
    fn small_fetch_arrives_after_two_rtt_ish() {
        let (req_at, done) =
            single_transfer(lossless(), Seed(2), TlsMode::None, 300, 10_000);
        // request leg (0.5 RTT) + response leg (0.5 RTT) + serialisation.
        let fetch = done.as_micros() - req_at.as_micros();
        assert!((40_000..52_000).contains(&fetch), "fetch took {fetch}µs");
    }

    #[test]
    fn bulk_transfer_throughput_close_to_link_rate() {
        let bytes = 2_000_000u64;
        let (_req, done) = single_transfer(lossless(), Seed(3), TlsMode::None, 300, bytes);
        let ideal = (bytes + 40 * bytes / MSS) as f64 * 8.0 / 10_000_000.0;
        let actual = done.as_secs_f64();
        // Slow start and the request RTT cost something, but under 35 %.
        assert!(actual > ideal, "cannot beat the link: {actual} vs {ideal}");
        assert!(actual < ideal * 1.35, "too slow: {actual} vs ideal {ideal}");
    }

    #[test]
    fn transfer_completes_under_loss_with_retransmissions() {
        let profile = NetworkProfile {
            loss: LossModel::Bernoulli { p: 0.03 },
            ..lossless()
        };
        let mut sim = NetSim::new(profile, Seed(4));
        let conn = sim.open(SimTime::ZERO, TlsMode::None);
        let total = 500_000u64;
        let mut done = None;
        while let Some((t, ev)) = sim.next_event() {
            match ev {
                NetEvent::Established { .. } => sim.client_send(conn, t, 300),
                NetEvent::RequestDelivered { total_bytes: 300, .. } => {
                    sim.server_send(conn, t, total)
                }
                NetEvent::Delivered { total_bytes, .. } if total_bytes == total => {
                    done = Some(t)
                }
                _ => {}
            }
        }
        let stats = sim.conn_stats(conn);
        assert!(done.is_some(), "transfer never completed");
        assert!(stats.retransmissions > 0, "3% loss must cause retransmissions");
        assert_eq!(stats.bytes_delivered, total);
    }

    #[test]
    fn lossy_transfer_slower_than_lossless() {
        let run = |loss| {
            let profile = NetworkProfile { loss, ..lossless() };
            single_transfer(profile, Seed(5), TlsMode::None, 300, 1_000_000).1
        };
        let clean = run(LossModel::None);
        let lossy = run(LossModel::Bernoulli { p: 0.05 });
        assert!(lossy > clean, "loss must slow the transfer: {lossy} vs {clean}");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let profile =
                NetworkProfile { loss: LossModel::Bernoulli { p: 0.02 }, ..lossless() };
            single_transfer(profile, seed, TlsMode::Tls13, 400, 300_000)
        };
        assert_eq!(run(Seed(42)), run(Seed(42)));
        assert_ne!(run(Seed(42)), run(Seed(43)));
    }

    #[test]
    fn six_connections_share_the_bottleneck() {
        // Six parallel 200 KB transfers must take ~6x the time one does
        // on the shared link (minus slow-start overlap benefits).
        let one = {
            let (_r, d) = single_transfer(lossless(), Seed(6), TlsMode::None, 300, 200_000);
            d.as_secs_f64()
        };
        let mut sim = NetSim::new(lossless(), Seed(6));
        let conns: Vec<ConnId> =
            (0..6).map(|_| sim.open(SimTime::ZERO, TlsMode::None)).collect();
        let mut done_count = 0;
        let mut last_done = SimTime::ZERO;
        while let Some((t, ev)) = sim.next_event() {
            match ev {
                NetEvent::Established { conn } => sim.client_send(conn, t, 300),
                NetEvent::RequestDelivered { conn, total_bytes: 300 } => {
                    sim.server_send(conn, t, 200_000)
                }
                NetEvent::Delivered { total_bytes: 200_000, .. } => {
                    done_count += 1;
                    last_done = t;
                }
                _ => {}
            }
        }
        assert_eq!(done_count, 6);
        assert_eq!(conns.len(), 6);
        let six = last_done.as_secs_f64();
        // The six flows share one 10 Mbit/s link: finishing all of them
        // can't beat aggregate serialisation time (6 × 200 KB ≈ 0.99 s
        // with header overhead), and overlapping slow starts mean it
        // shouldn't take much longer either.
        let ideal = 6.0 * (200_000.0 + 40.0 * 200_000.0 / MSS as f64) * 8.0 / 10_000_000.0;
        assert!(six > ideal, "cannot beat the shared link: {six}s vs {ideal}s");
        assert!(six < ideal * 1.4, "sharing too inefficient: {six}s vs {ideal}s");
        // And the shared link means each flow is far slower than solo.
        assert!(six > 2.0 * one, "six flows at {six}s vs one at {one}s");
    }

    #[test]
    fn request_before_establishment_is_flushed_after() {
        let mut sim = NetSim::new(lossless(), Seed(7));
        let conn = sim.open(SimTime::ZERO, TlsMode::None);
        // Queue the request immediately (before Established).
        sim.client_send(conn, SimTime::ZERO, 500);
        let mut got_request = false;
        while let Some((_t, ev)) = sim.next_event() {
            if let NetEvent::RequestDelivered { total_bytes, .. } = ev {
                assert_eq!(total_bytes, 500);
                got_request = true;
            }
        }
        assert!(got_request);
    }

    #[test]
    fn delivered_events_are_cumulative_and_monotone() {
        let mut sim = NetSim::new(lossless(), Seed(8));
        let conn = sim.open(SimTime::ZERO, TlsMode::None);
        sim.client_send(conn, SimTime::ZERO, 300);
        let mut sent_response = false;
        let mut last = 0;
        while let Some((t, ev)) = sim.next_event() {
            match ev {
                NetEvent::RequestDelivered { .. } if !sent_response => {
                    sent_response = true;
                    sim.server_send(conn, t, 100_000);
                }
                NetEvent::Delivered { total_bytes, .. } => {
                    assert!(total_bytes > last, "monotone progress");
                    last = total_bytes;
                }
                _ => {}
            }
        }
        assert_eq!(last, 100_000);
    }
}
