//! Visual progress: the completeness-over-time curve.
//!
//! SpeedIndex is defined over the "percentage of pixels that are visually
//! complete (i.e., match their final state) over time" (§5.2). The curve
//! here is computed exactly as a WebPageTest-style pipeline would: render
//! the video frame at each change point and compare it pixel-by-pixel
//! against the final state of the viewport.

use eyeorg_net::SimTime;
use eyeorg_video::Video;

/// The visual completeness curve of a capture: `(time, fraction)` points
/// at `t = 0` and after each viewport-visible change, where `fraction` is
/// the share of viewport cells already in their final state. The final
/// point has fraction 1.0 by construction.
///
/// The "final state" is the frame at the last viewport-visible paint
/// (matching WebPageTest, which ends its analysis at the last visual
/// change rather than at an arbitrary capture end).
pub fn visual_progress_curve(video: &Video) -> Vec<(SimTime, f64)> {
    let fold = video.trace().fold_y;
    let end = SimTime::from_micros(video.duration().as_micros());
    // Times at which the viewport visibly changes within the recording.
    let mut change_times: Vec<SimTime> = video
        .trace()
        .paints
        .iter()
        .filter(|p| p.time <= end)
        .filter(|p| p.rect.above_fold(fold).is_some())
        .map(|p| p.time)
        .collect();
    change_times.dedup();
    let Some(&last) = change_times.last() else {
        return vec![(SimTime::ZERO, 1.0)];
    };
    // One incremental pass over the paint stream instead of a full
    // render + full-grid diff per change point; the values are
    // bit-identical to the per-frame comparison (see
    // `Video::completeness_at_times`).
    let mut times = Vec::with_capacity(change_times.len() + 1);
    times.push(SimTime::ZERO);
    times.extend(change_times);
    let completeness = video.completeness_at_times(&times, last);
    times.into_iter().zip(completeness).collect()
}

/// First time the curve reaches `target` completeness (e.g. 0.85 for the
/// "visually ready" threshold some tools report). `None` if never.
pub fn time_to_completeness(curve: &[(SimTime, f64)], target: f64) -> Option<SimTime> {
    curve.iter().find(|(_, c)| *c >= target).map(|(t, _)| *t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_browser::{load_page, BrowserConfig};
    use eyeorg_net::SimDuration;
    use eyeorg_stats::Seed;
    use eyeorg_workload::{generate_site, SiteClass};

    fn video() -> Video {
        let site = generate_site(Seed(1), 0, SiteClass::Blog);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(1));
        Video::capture(trace, 10, SimDuration::from_secs(3))
    }

    #[test]
    fn curve_ends_at_one() {
        let curve = visual_progress_curve(&video());
        let last = curve.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn curve_times_nondecreasing_and_bounded() {
        let curve = visual_progress_curve(&video());
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        for (_, c) in &curve {
            assert!((0.0..=1.0).contains(c));
        }
    }

    #[test]
    fn starts_incomplete() {
        let curve = visual_progress_curve(&video());
        assert!(curve[0].1 < 0.5, "blank page far from final state: {}", curve[0].1);
    }

    #[test]
    fn incremental_curve_matches_per_frame_reference() {
        // The shipped curve uses `Video::completeness_at_times`; the
        // definitional implementation renders every change point and
        // diffs full grids. They must agree bit-for-bit.
        let v = video();
        let curve = visual_progress_curve(&v);
        let last = curve.last().unwrap().0;
        let final_frame = v.render_at(last);
        for &(t, c) in &curve {
            let reference = 1.0 - v.render_at(t).diff_fraction(&final_frame);
            assert_eq!(c, reference, "completeness at {t:?}");
        }
    }

    #[test]
    fn time_to_completeness_finds_threshold() {
        let curve = visual_progress_curve(&video());
        let t50 = time_to_completeness(&curve, 0.5).unwrap();
        let t99 = time_to_completeness(&curve, 0.99).unwrap();
        assert!(t50 <= t99);
        assert!(time_to_completeness(&curve, 1.5).is_none());
    }
}
