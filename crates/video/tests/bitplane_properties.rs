//! Property tests pinning the bitpacked plane primitives to scalar
//! per-cell references. Everything here is seeded and hermetic: grids
//! come from `eyeorg_stats::rng` draws or from captured page loads, so
//! a failure reproduces byte-for-byte.
//!
//! The claims under test (from `bitplane`'s module docs): every SWAR /
//! popcount count is an *exact integer* equal to the naive byte scan —
//! at any length (not just multiples of the 8-byte lane or 64-bit word),
//! on all-blank and all-painted edges, and when maintained incrementally
//! across a paint stream (`Video::completeness_at_times`).

use eyeorg_browser::{load_page, BrowserConfig};
use eyeorg_net::SimDuration;
use eyeorg_stats::rng::Rng;
use eyeorg_stats::Seed;
use eyeorg_video::bitplane::{count_diff_bytes, count_ne_bytes, packed_diff, packed_ne};
use eyeorg_video::frame::BLANK;
use eyeorg_video::Video;
use eyeorg_workload::{generate_site, SiteClass};

/// Naive per-cell differing count — the reference the word-parallel
/// loops must reproduce exactly.
fn scalar_diff(a: &[u8], b: &[u8]) -> u64 {
    a.iter().zip(b).filter(|(x, y)| x != y).count() as u64
}

fn scalar_ne(cells: &[u8], value: u8) -> u64 {
    cells.iter().filter(|&&x| x != value).count() as u64
}

/// `len` random cells over a small alphabet (collisions must be common,
/// or the diff predicates degenerate to "always true").
fn random_cells(rng: &mut Rng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.random_range(0..4u8) * 63).collect()
}

#[test]
fn packed_counts_match_scalar_on_random_grids_at_awkward_lengths() {
    // Lengths straddling every boundary that matters: the 8-byte SWAR
    // lane, the 64-cell word, and multiples of neither.
    let lengths =
        [0usize, 1, 7, 8, 9, 63, 64, 65, 100, 127, 128, 130, 192, 1000, 4095, 4096, 4097];
    for trial in 0..8u64 {
        let mut rng = Rng::seed_from_u64(Seed(4242).derive_index("trial", trial).value());
        for &len in &lengths {
            let a = random_cells(&mut rng, len);
            let b = random_cells(&mut rng, len);

            assert_eq!(count_diff_bytes(&a, &b), scalar_diff(&a, &b), "diff len={len}");
            let plane = packed_diff(&a, &b);
            assert_eq!(plane.len(), len);
            assert_eq!(plane.count_ones(), scalar_diff(&a, &b), "plane count len={len}");
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(plane.get(i), x != y, "diff bit {i} len={len}");
            }

            let value = rng.random_range(0..4u8) * 63;
            assert_eq!(count_ne_bytes(&a, value), scalar_ne(&a, value), "ne len={len}");
            let plane = packed_ne(&a, value);
            assert_eq!(plane.count_ones(), scalar_ne(&a, value), "ne count len={len}");
            for (i, &x) in a.iter().enumerate() {
                assert_eq!(plane.get(i), x != value, "ne bit {i} len={len}");
            }
        }
    }
}

#[test]
fn trailing_word_bits_stay_zero_at_non_multiple_of_64_widths() {
    // `count_ones` is a straight popcount over the words, so the packing
    // paths must never set bits past the cell count.
    let mut rng = Rng::seed_from_u64(Seed(77).derive("trailing").value());
    for &len in &[1usize, 63, 65, 100, 130, 4097] {
        let a = random_cells(&mut rng, len);
        let b = random_cells(&mut rng, len);
        for grid in [packed_diff(&a, &b), packed_ne(&a, 0)] {
            let tail = len % 64;
            if tail != 0 {
                let last = *grid.words().last().expect("non-empty grid");
                assert_eq!(last >> tail, 0, "trailing bits set at len={len}");
            }
        }
    }
}

#[test]
fn all_blank_and_all_painted_edges() {
    for &len in &[1usize, 64, 100, 4097] {
        let blank = vec![BLANK; len];
        let painted: Vec<u8> = (0..len).map(|i| (i % 7) as u8).collect(); // never BLANK

        // All-blank: zero painted cells, zero diff against itself.
        assert_eq!(count_ne_bytes(&blank, BLANK), 0);
        assert_eq!(packed_ne(&blank, BLANK).count_ones(), 0);
        assert_eq!(count_diff_bytes(&blank, &blank), 0);

        // All-painted: every cell differs from blank.
        assert_eq!(count_ne_bytes(&painted, BLANK), len as u64);
        assert_eq!(packed_ne(&painted, BLANK).count_ones(), len as u64);
        assert_eq!(count_diff_bytes(&painted, &blank), len as u64);
        assert_eq!(packed_diff(&painted, &blank).count_ones(), len as u64);
    }
    // The degenerate empty plane.
    assert_eq!(count_diff_bytes(&[], &[]), 0);
    assert!(packed_ne(&[], BLANK).is_empty());
}

fn video(seed: u64) -> Video {
    let site = generate_site(Seed(seed), 0, SiteClass::Blog);
    let trace = load_page(&site, &BrowserConfig::new(), Seed(seed));
    Video::capture(trace, 10, SimDuration::from_secs(3))
}

#[test]
fn frame_fractions_match_per_cell_scan_on_captured_frames() {
    let v = video(31);
    let last = v.final_frame();
    for i in 0..v.frame_count() {
        let f = v.frame(i);
        let cells = f.cells();
        let expected = scalar_diff(cells, last.cells()) as f64 / cells.len() as f64;
        assert_eq!(f.diff_fraction(&last), expected, "frame {i}");
        let expected = scalar_ne(cells, BLANK) as f64 / cells.len() as f64;
        assert_eq!(f.painted_fraction(), expected, "frame {i}");
    }
}

#[test]
fn incremental_completeness_matches_per_instant_renders() {
    // The bitplane maintained across the paint stream must agree with
    // rendering each instant from scratch and diffing full grids.
    let v = video(32);
    let final_t = v.frame_time(v.frame_count() - 1);
    let times: Vec<_> = (0..v.frame_count()).map(|i| v.frame_time(i)).collect();
    let got = v.completeness_at_times(&times, final_t);
    let final_frame = v.render_at(final_t);
    for (i, (&t, &g)) in times.iter().zip(&got).enumerate() {
        let expected = 1.0 - v.render_at(t).diff_fraction(&final_frame);
        assert_eq!(g, expected, "instant {i}");
    }
    // Completeness against the final frame ends at exactly 1.
    assert_eq!(*got.last().expect("non-empty curve"), 1.0);
}
