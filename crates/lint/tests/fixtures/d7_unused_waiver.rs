//! D7 unused waiver: the indexing was replaced by a checked access.

// lint:entrypoint(untrusted)
pub fn load(bytes: &[u8]) -> u32 {
    // lint:allow(D7): stale - the indexing below became a checked .get()
    bytes.first().copied().map(u32::from).unwrap_or(0)
}
