//! Delta video encoding and its size model.
//!
//! webpeg stores captures as webm "which offers small file sizes"
//! (§3.1); the byte size matters downstream because participants must
//! *download* the videos, and §4.2/Fig. 5 shows long video load times
//! driving participants out of focus. This encoder is an honest, if
//! simple, inter-frame codec: a run-length-encoded keyframe followed by
//! run-length-encoded cell deltas, with periodic keyframes for
//! seekability. It round-trips exactly (tests decode and compare), so
//! the size model is *measured*, not asserted.

use crate::capture::Video;
use crate::frame::Frame;

/// Keyframe interval (frames).
pub const KEYFRAME_INTERVAL: usize = 50;

/// An encoded video.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedVideo {
    /// Grid width.
    pub width: u32,
    /// Grid height.
    pub height: u32,
    /// Frames per second.
    pub fps: u32,
    /// Encoded packets, one per frame.
    pub packets: Vec<Packet>,
}

/// One encoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Full frame: RLE of all cells.
    Key(Vec<(u16, u8)>),
    /// Delta frame: runs over cells, `None` = unchanged, `Some(v)` = new
    /// value, encoded as (run length, marker) pairs.
    Delta(Vec<DeltaRun>),
}

/// A run within a delta packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaRun {
    /// `n` unchanged cells.
    Skip(u16),
    /// `n` cells set to `value`.
    Set(u16, u8),
}

impl EncodedVideo {
    /// Total encoded size in bytes: 3 bytes per RLE run (2-byte length +
    /// value/marker) plus a 16-byte per-frame header — the granularity a
    /// container format costs.
    pub fn byte_size(&self) -> u64 {
        let mut total = 0u64;
        for p in &self.packets {
            total += 16;
            total += 3 * match p {
                Packet::Key(runs) => runs.len() as u64,
                Packet::Delta(runs) => runs.len() as u64,
            };
        }
        total
    }

    /// Decode frame `i` (decodes forward from the nearest keyframe).
    pub fn decode_frame(&self, i: usize) -> Frame {
        assert!(i < self.packets.len(), "frame index out of range");
        // Find the latest keyframe at or before i.
        let key = (0..=i)
            .rev()
            .find(|&k| matches!(self.packets[k], Packet::Key(_)))
            // lint:allow(D4): the encoder always emits packet 0 as a keyframe
            .expect("stream starts with a keyframe");
        let mut cells = match &self.packets[key] {
            Packet::Key(runs) => {
                let mut v = Vec::with_capacity((self.width * self.height) as usize);
                for &(n, val) in runs {
                    v.extend(std::iter::repeat_n(val, n as usize));
                }
                v
            }
            Packet::Delta(_) => unreachable!("key index points at a keyframe"),
        };
        for p in &self.packets[key + 1..=i] {
            if let Packet::Delta(runs) = p {
                let mut pos = 0usize;
                for run in runs {
                    match *run {
                        DeltaRun::Skip(n) => pos += n as usize,
                        DeltaRun::Set(n, v) => {
                            for c in &mut cells[pos..pos + n as usize] {
                                *c = v;
                            }
                            pos += n as usize;
                        }
                    }
                }
            }
        }
        Frame::from_cells(self.width, self.height, cells)
    }
}

fn rle_key(frame: &Frame) -> Vec<(u16, u8)> {
    let mut runs = Vec::new();
    for &c in frame.cells() {
        match runs.last_mut() {
            Some((n, v)) if *v == c && *n < u16::MAX => *n += 1,
            _ => runs.push((1u16, c)),
        }
    }
    runs
}

fn rle_delta(prev: &Frame, cur: &Frame) -> Vec<DeltaRun> {
    let mut runs: Vec<DeltaRun> = Vec::new();
    for (&a, &b) in prev.cells().iter().zip(cur.cells()) {
        if a == b {
            match runs.last_mut() {
                Some(DeltaRun::Skip(n)) if *n < u16::MAX => *n += 1,
                _ => runs.push(DeltaRun::Skip(1)),
            }
        } else {
            match runs.last_mut() {
                Some(DeltaRun::Set(n, v)) if *v == b && *n < u16::MAX => *n += 1,
                _ => runs.push(DeltaRun::Set(1, b)),
            }
        }
    }
    runs
}

/// Encode a captured video.
pub fn encode(video: &Video) -> EncodedVideo {
    let n = video.frame_count();
    eyeorg_obs::metrics::VIDEO_FRAMES_ENCODED.add(n as u64);
    let mut packets = Vec::with_capacity(n);
    let mut prev: Option<Frame> = None;
    for i in 0..n {
        let f = video.frame(i);
        let packet = match (&prev, i % KEYFRAME_INTERVAL) {
            (Some(p), k) if k != 0 => Packet::Delta(rle_delta(p, &f)),
            _ => Packet::Key(rle_key(&f)),
        };
        packets.push(packet);
        prev = Some(f);
    }
    let first = video.frame(0);
    EncodedVideo { width: first.width(), height: first.height(), fps: video.fps(), packets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_browser::{load_page, BrowserConfig};
    use eyeorg_net::SimDuration;
    use eyeorg_stats::Seed;
    use eyeorg_workload::{generate_site, SiteClass};

    fn video() -> Video {
        let site = generate_site(Seed(2), 1, SiteClass::Blog);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(2));
        Video::capture(trace, 10, SimDuration::from_secs(2))
    }

    #[test]
    fn roundtrip_exact() {
        let v = video();
        let enc = encode(&v);
        for i in [0, 1, v.frame_count() / 2, v.frame_count() - 1] {
            assert_eq!(enc.decode_frame(i), v.frame(i), "frame {i} mismatch");
        }
    }

    #[test]
    fn keyframes_at_interval() {
        let v = video();
        let enc = encode(&v);
        for (i, p) in enc.packets.iter().enumerate() {
            if i % KEYFRAME_INTERVAL == 0 {
                assert!(matches!(p, Packet::Key(_)), "frame {i} should be a keyframe");
            }
        }
    }

    #[test]
    fn static_video_compresses_hard() {
        // A video of an already-finished page is almost all Skip runs.
        let v = video();
        let enc = encode(&v);
        let raw = (v.frame_count() as u64) * u64::from(enc.width) * u64::from(enc.height);
        assert!(
            enc.byte_size() < raw / 2,
            "encoded {} vs raw {raw}",
            enc.byte_size()
        );
    }

    #[test]
    fn size_scales_with_duration() {
        let site = generate_site(Seed(3), 2, SiteClass::Blog);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(3));
        let short = encode(&Video::capture(trace.clone(), 10, SimDuration::from_secs(1)));
        let long = encode(&Video::capture(trace, 10, SimDuration::from_secs(10)));
        assert!(long.byte_size() > short.byte_size());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_out_of_range_panics() {
        let v = video();
        let enc = encode(&v);
        enc.decode_frame(enc.packets.len());
    }
}
