//! Paint events: what changes on screen, when.
//!
//! The render side of the browser model emits a [`PaintEvent`] every time
//! a region of the page reaches its final appearance. Downstream, these
//! events are everything: webpeg's video frames are rendered from them,
//! SpeedIndex and First/LastVisualChange are computed from them, and the
//! crowd's perception model reads "what has appeared by time t" off them.

use eyeorg_net::SimTime;
use eyeorg_workload::{Rect, ResourceId};
use serde::{Deserialize, Serialize};

/// What kind of content a paint event draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PaintKind {
    /// Progressive document text/background (a horizontal band of the
    /// page becoming laid-out text).
    DocumentBand,
    /// A loaded image reaching the screen.
    Image,
    /// An advertisement rendering.
    Ad,
    /// A social widget rendering.
    Widget,
}

impl PaintKind {
    /// Whether this paint draws *primary* content (what §6's participants
    /// describe waiting for) as opposed to auxiliary content.
    pub fn is_primary(self) -> bool {
        matches!(self, PaintKind::DocumentBand | PaintKind::Image)
    }
}

/// One region of the page changing appearance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaintEvent {
    /// When the pixels changed.
    pub time: SimTime,
    /// The resource whose content painted (the document for text bands).
    pub resource: ResourceId,
    /// The painted region in page coordinates.
    pub rect: Rect,
    /// Content class.
    pub kind: PaintKind,
    /// Content generation: 0 for the initial paint; ads increment it on
    /// each creative rotation. Rotating ads are why "the last pixels stop
    /// changing" long after pages feel ready (the paper's
    /// LastVisualChange pathology).
    pub generation: u8,
}

/// Round `t` up to the next multiple of `vsync` (paints land on display
/// refreshes). `t` exactly on a boundary stays put.
pub fn align_to_vsync(t: SimTime, vsync: eyeorg_net::SimDuration) -> SimTime {
    let v = vsync.as_micros().max(1);
    let us = t.as_micros();
    SimTime::from_micros(us.div_ceil(v) * v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_net::SimDuration;

    #[test]
    fn vsync_alignment() {
        let v = SimDuration::from_micros(16_667);
        assert_eq!(align_to_vsync(SimTime::ZERO, v), SimTime::ZERO);
        assert_eq!(align_to_vsync(SimTime::from_micros(1), v).as_micros(), 16_667);
        assert_eq!(align_to_vsync(SimTime::from_micros(16_667), v).as_micros(), 16_667);
        assert_eq!(align_to_vsync(SimTime::from_micros(16_668), v).as_micros(), 33_334);
    }

    #[test]
    fn primary_classification() {
        assert!(PaintKind::DocumentBand.is_primary());
        assert!(PaintKind::Image.is_primary());
        assert!(!PaintKind::Ad.is_primary());
        assert!(!PaintKind::Widget.is_primary());
    }
}
