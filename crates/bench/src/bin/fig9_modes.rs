//! Regenerate Figure 9 (UPLT distribution shapes).
fn main() {
    let scale = eyeorg_bench::Scale::from_env();
    let fin = eyeorg_bench::campaigns::build_final_timeline(&scale);
    let report = eyeorg_bench::fig9_modes::run(&fin);
    println!("{report}");
    let path = eyeorg_bench::write_result("fig9.txt", &report);
    eprintln!("wrote {}", path.display());
}
