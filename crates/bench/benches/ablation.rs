//! Ablation benches for DESIGN.md's design decisions: what each modelling
//! choice costs in wall time. (The *quality* side of the same ablations —
//! what each choice does to the reproduced results — is the
//! `ablation_quality` binary.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

use eyeorg_browser::{load_page, BrowserConfig};
use eyeorg_http::{FetchEngine, HttpConfig, OriginId, Priority, Protocol, Request};
use eyeorg_net::{NetworkProfile, SimDuration, SimTime};
use eyeorg_stats::Seed;
use eyeorg_workload::{generate_site, SiteClass};

/// Design decision 1 (DESIGN.md): segment-level TCP vs a hypothetical
/// fluid model. We can't bench the fluid model we didn't build, but we
/// can quantify what the segment-level fidelity costs per load — the
/// number that justified keeping it.
fn bench_segment_fidelity(c: &mut Criterion) {
    let site = generate_site(Seed(1), 0, SiteClass::News);
    let mut g = c.benchmark_group("ablation/network_profile_cost");
    for profile in [NetworkProfile::fiber(), NetworkProfile::cable(), NetworkProfile::mobile_3g()]
    {
        g.bench_function(profile.name, |b| {
            let cfg = BrowserConfig::new().with_network(profile.clone());
            b.iter(|| load_page(&site, &cfg, Seed(2)))
        });
    }
    g.finish();
}

/// Design decision 4: the H1 pool size knob (Chrome's 6). Runtime cost of
/// simulating wider pools.
fn bench_pool_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/h1_pool_size");
    for pool in [2usize, 6, 12] {
        g.bench_function(format!("{pool}_conns"), |b| {
            b.iter(|| {
                let cfg = HttpConfig { h1_pool_size: pool, ..HttpConfig::new(Protocol::Http1) };
                let mut eng = FetchEngine::new(cfg, NetworkProfile::cable(), Seed(3));
                for _ in 0..30 {
                    eng.submit(
                        SimTime::ZERO,
                        Request {
                            origin: OriginId(0),
                            request_header_bytes: 400,
                            response_header_bytes: 300,
                            body_bytes: 15_000,
                            priority: Priority::Low,
                            server_think: SimDuration::from_millis(10),
                        },
                    );
                }
                while eng.next_event().is_some() {}
            })
        });
    }
    g.finish();
}

/// Design decision 2: lazy frame rendering. Cost of materialising frames
/// versus rendering a single probe frame.
fn bench_frame_strategies(c: &mut Criterion) {
    let site = generate_site(Seed(4), 0, SiteClass::Blog);
    let trace = load_page(&site, &BrowserConfig::new(), Seed(4));
    let video = eyeorg_video::Video::capture(trace, 10, SimDuration::from_secs(4));
    let mut g = c.benchmark_group("ablation/frames");
    g.bench_function("single_lazy_frame", |b| {
        b.iter(|| video.frame(video.frame_count() / 2))
    });
    g.bench_function("materialise_all", |b| b.iter(|| eyeorg_video::FrameTimeline::of(&video)));
    g.finish();
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_segment_fidelity, bench_pool_sizes, bench_frame_strategies
);
criterion_main!(benches);
