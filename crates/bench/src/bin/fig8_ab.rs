//! Regenerate Figure 8 (A/B results: protocols and ad blockers).
fn main() {
    let scale = eyeorg_bench::Scale::from_env();
    let h1h2 = eyeorg_bench::campaigns::build_final_h1h2(&scale);
    let ads = eyeorg_bench::campaigns::build_final_ads(&scale);
    let mut report = eyeorg_bench::fig8_ab::run_h1h2(&h1h2);
    report.push('\n');
    report.push_str(&eyeorg_bench::fig8_ab::run_ads(&ads));
    println!("{report}");
    eyeorg_bench::write_result("fig8.txt", &report);
    let path = eyeorg_bench::write_result("fig8.csv", &eyeorg_bench::fig8_ab::csv(&h1h2, &ads));
    eprintln!("wrote {}", path.display());
}
