//! Integration tests: run the rule engine over the fixture corpus.
//!
//! Every rule has three fixtures under `tests/fixtures/`: a known-bad
//! file that must trip, a waived file that must pass with the waiver
//! consumed, and a file whose waiver no longer suppresses anything and
//! must therefore fail. The fixtures are excluded from the workspace
//! scan (`SKIP_PREFIXES`) precisely because they violate on purpose.

use std::path::Path;

use eyeorg_lint::{
    lint_source, scan_workspace, scan_workspace_gated, FileMeta, Report,
};

/// Lint a fixture as though it lived in a fingerprinted library crate,
/// where every rule applies.
fn lint_fixture(name: &str) -> Report {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let meta = FileMeta::classify(&format!("crates/net/src/{name}"));
    lint_source(&meta, &source)
}

fn codes(report: &Report) -> Vec<&str> {
    report.diagnostics.iter().map(|d| d.code.as_str()).collect()
}

#[test]
fn bad_fixtures_trip_their_rule() {
    for rule in ["D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8"] {
        let report = lint_fixture(&format!("{}_bad.rs", rule.to_lowercase()));
        assert!(!report.is_clean(), "{rule} bad fixture must trip");
        assert!(
            codes(&report).iter().all(|c| *c == rule),
            "{rule} bad fixture tripped foreign codes: {:?}",
            report.diagnostics
        );
    }
}

#[test]
fn bad_fixture_diagnostics_carry_line_numbers() {
    let report = lint_fixture("d1_bad.rs");
    let lines: Vec<usize> = report.diagnostics.iter().map(|d| d.line).collect();
    // Line 6 declares and constructs a HashMap: two findings, counted
    // per occurrence so an `n=2` waiver can account for both.
    assert_eq!(lines, vec![3, 6, 6], "one finding per occurrence: {:?}", report.diagnostics);
    assert!(report.diagnostics[0].path.ends_with("d1_bad.rs"));
}

#[test]
fn waived_fixtures_pass_and_consume_the_waiver() {
    for rule in ["d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8"] {
        let report = lint_fixture(&format!("{rule}_waived.rs"));
        assert!(
            report.is_clean(),
            "{rule} waived fixture must be clean, got {:?}",
            report.diagnostics
        );
        assert_eq!(report.waivers_used, 1, "{rule} waiver must be consumed");
    }
}

#[test]
fn unused_waivers_are_findings() {
    for rule in ["d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8"] {
        let report = lint_fixture(&format!("{rule}_unused_waiver.rs"));
        assert_eq!(
            codes(&report),
            vec!["unused-waiver"],
            "{rule} stale waiver must be reported: {:?}",
            report.diagnostics
        );
        assert_eq!(report.waivers_used, 0);
    }
}

#[test]
fn malformed_waivers_are_findings() {
    let report = lint_fixture("bad_waiver.rs");
    assert_eq!(codes(&report), vec!["bad-waiver", "bad-waiver"], "{:?}", report.diagnostics);
    let lines: Vec<usize> = report.diagnostics.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![3, 8]);
}

/// Satellite regression: `lint:allow(rule, n=K)` suppresses K findings
/// on one line, and an over-declared count is itself a finding.
#[test]
fn counted_waivers_cover_multiple_findings_per_line() {
    let report = lint_fixture("waiver_count_waived.rs");
    assert!(report.is_clean(), "n=2 must cover both findings: {:?}", report.diagnostics);
    assert_eq!(report.waivers_used, 2);

    let report = lint_fixture("waiver_count_over.rs");
    assert_eq!(
        codes(&report),
        vec!["unused-waiver"],
        "an over-declared n must be flagged: {:?}",
        report.diagnostics
    );
}

/// The streaming accumulator modules (PR 5) feed digest fingerprints
/// directly, so D1 must apply to each of them — a hash collection
/// sneaking into an accumulator would make shard merges order-seeded.
#[test]
fn streaming_accumulator_modules_are_d1_covered() {
    let bad = "use std::collections::HashMap;\n\
               pub fn tally(xs: &[u32]) -> usize {\n\
                   let mut m: HashMap<u32, u32> = HashMap::new();\n\
                   for x in xs { *m.entry(*x).or_insert(0) += 1; }\n\
                   m.len()\n\
               }\n";
    for path in [
        "crates/stats/src/stream.rs",
        "crates/core/src/digest.rs",
        "crates/core/src/stream.rs",
        // The flat data plane fills the same digest accumulators from
        // its column passes, and the bitplane popcounts feed frame
        // comparisons that digests are built on — same exposure.
        "crates/core/src/flat.rs",
        // The adaptive driver merges shard folds at epoch barriers and
        // takes stopping decisions on the merged accumulators — a
        // nondeterministic container there skews the decision sequence.
        "crates/core/src/adaptive.rs",
        "crates/video/src/bitplane.rs",
        // The behavioural-model fast path (PR 10) derives every session,
        // response and control draw the engines fingerprint; an
        // order-seeded container there would poison all three engines
        // at once.
        "crates/crowd/src/fastpath.rs",
    ] {
        let meta = FileMeta::classify(path);
        let report = lint_source(&meta, bad);
        assert!(
            codes(&report).contains(&"D1"),
            "{path} must be under D1 coverage, got {:?}",
            report.diagnostics
        );
    }
}

/// The fast-path module hands out raw seeds and folds float draws, so
/// beyond D1 it must also sit under D6 (float ordering/accumulation)
/// and D8 (machine-dependent taint reaching a seed/fingerprint sink).
/// Snippets are shaped on `tests/fixtures/d6_bad.rs` / `d8_bad.rs`.
#[test]
fn fastpath_module_is_d6_and_d8_covered() {
    let meta = FileMeta::classify("crates/crowd/src/fastpath.rs");

    let d6_bad = "pub fn spread(xs: &[f64]) -> f64 {\n\
                      let mut v = xs.to_vec();\n\
                      v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n\
                      v.iter().sum::<f64>()\n\
                  }\n";
    let report = lint_source(&meta, d6_bad);
    assert!(
        codes(&report).contains(&"D6"),
        "fastpath.rs must be under D6 coverage, got {:?}",
        report.diagnostics
    );

    let d8_bad = "pub fn shard_seed() -> u64 {\n\
                      let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);\n\
                      fingerprint(n as u64)\n\
                  }\n\
                  fn fingerprint(x: u64) -> u64 {\n\
                      x.wrapping_mul(2654435761)\n\
                  }\n";
    let report = lint_source(&meta, d8_bad);
    assert!(
        codes(&report).contains(&"D8"),
        "fastpath.rs must be under D8 coverage, got {:?}",
        report.diagnostics
    );
}

/// The gate the CI pass enforces: the real tree is clean once the
/// checked-in baseline is applied. Keeping this as a test means
/// `cargo test` alone catches a regression even when the lint binary
/// is not run.
#[test]
fn workspace_is_clean_under_the_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace_gated(&root).expect("workspace readable");
    assert!(report.files > 50, "scan must cover the tree, saw {} files", report.files);
    let rendered: Vec<String> =
        report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(report.is_clean(), "workspace lint findings:\n{}", rendered.join("\n"));
    assert!(report.baseline_suppressed > 0, "the D6 baseline must be exercised");
}

/// The raw (un-baselined) scan may only differ from the gated one by
/// D6 findings: every D7 panic-surface and D8 taint finding must be
/// waived at source with its invariant, never baselined away.
#[test]
fn only_d6_findings_are_baselined() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace(&root).expect("workspace readable");
    for d in &report.diagnostics {
        assert_eq!(d.code, "D6", "only D6 may rest on the baseline: {d}");
    }
}

/// Tentpole self-test: the token-stream line views must agree with the
/// PR 4 line lexer (modulo trailing whitespace, which the old lexer's
/// escape handling could overshoot at end of line) on every fixture
/// and every real source file in the workspace.
#[test]
fn tokenizer_agrees_with_line_lexer() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for dir in [manifest.join("tests/fixtures"), manifest.join("../../crates")] {
        collect_rs(&dir, &mut files);
    }
    files.sort();
    assert!(files.len() > 40, "agreement corpus too small: {}", files.len());
    for path in files {
        let src = std::fs::read_to_string(&path).expect("source readable");
        let tokens = eyeorg_lint::token::tokenize(&src);
        let views = eyeorg_lint::token::line_views(&src, &tokens);
        let mut scrubber = eyeorg_lint::linelex::Scrubber::new();
        for (idx, line) in src.lines().enumerate() {
            let old = scrubber.scrub(line);
            let new = &views[idx];
            assert_eq!(
                old.code.trim_end(),
                new.code.trim_end(),
                "{}:{}: line-lexer/tokenizer code disagreement",
                path.display(),
                idx + 1
            );
            assert_eq!(
                old.comment.as_deref().map(str::trim_end),
                new.comment.as_deref().map(str::trim_end),
                "{}:{}: comment disagreement",
                path.display(),
                idx + 1
            );
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
