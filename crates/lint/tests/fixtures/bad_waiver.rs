//! Malformed waivers: unknown rule, and a waiver with no reason.

// lint:allow(D9): no such rule exists
pub fn nine() -> u32 {
    9
}

// lint:allow(D4):
pub fn empty_reason(line: &str) -> &str {
    line.split_whitespace().next().unwrap_or("")
}
