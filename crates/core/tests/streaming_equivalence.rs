//! Streaming-vs-materializing equivalence: the sharded engine must
//! reproduce the materializing engine's digest **byte for byte** — for
//! every crowd size, every shard size (including shards larger than the
//! crowd), and every thread count. Counter-fingerprint equivalence
//! lives in `streaming_counters.rs` (its own process, because the obs
//! registry is global).

use std::sync::OnceLock;

use eyeorg_browser::BrowserConfig;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::{set_chaos_seed, Seed};
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

fn capture() -> CaptureConfig {
    CaptureConfig { repeats: 2, ..CaptureConfig::default() }
}

fn tl_stimuli() -> &'static Vec<TimelineStimulus> {
    static STIMULI: OnceLock<Vec<TimelineStimulus>> = OnceLock::new();
    STIMULI.get_or_init(|| {
        let sites = alexa_like(Seed(951), 4);
        timeline_stimuli(&sites, &BrowserConfig::new(), &capture(), Seed(952))
    })
}

fn ab_stimuli() -> &'static Vec<AbStimulus> {
    static STIMULI: OnceLock<Vec<AbStimulus>> = OnceLock::new();
    STIMULI.get_or_init(|| {
        let sites = alexa_like(Seed(961), 4);
        protocol_ab_stimuli(&sites, &BrowserConfig::new(), &capture(), Seed(962))
    })
}

fn cfg(threads: usize) -> ExperimentConfig {
    ExperimentConfig { threads, ..ExperimentConfig::default() }
}

fn stream_cfg(shard_size: usize) -> StreamConfig {
    StreamConfig { shard_size, ..StreamConfig::default() }
}

#[test]
fn timeline_streaming_matches_materializing_across_n_and_shard_sizes() {
    let stimuli = tl_stimuli();
    for n in [1usize, 7, 100, 1000] {
        let campaign =
            run_timeline_campaign(stimuli.clone(), &CrowdFlower, n, &cfg(0), Seed(970));
        let report = filter_timeline(&campaign, &paper_pipeline());
        let reference =
            digest_timeline(&campaign, &report, n, &DigestParams::default()).fingerprint();
        for shard in [1usize, 16, 64, n + 1] {
            let digest = stream_timeline_campaign(
                stimuli,
                &CrowdFlower,
                n,
                &cfg(0),
                &paper_pipeline(),
                Seed(970),
                &stream_cfg(shard),
            );
            assert_eq!(digest.fingerprint(), reference, "n={n} shard={shard}");
            // The filter report's counts are part of the digest, but
            // pin the overlap explicitly too.
            assert_eq!(digest.filters, FilterTally::of_report(&report), "n={n} shard={shard}");
        }
    }
}

#[test]
fn ab_streaming_matches_materializing_across_n_and_shard_sizes() {
    let stimuli = ab_stimuli();
    for n in [1usize, 7, 100, 1000] {
        let campaign = run_ab_campaign(stimuli.clone(), &CrowdFlower, n, &cfg(0), Seed(980));
        let report = filter_ab(&campaign, &paper_pipeline());
        let reference = digest_ab(&campaign, &report, n).fingerprint();
        for shard in [1usize, 64, n + 1] {
            let digest = stream_ab_campaign(
                stimuli,
                &CrowdFlower,
                n,
                &cfg(0),
                &paper_pipeline(),
                Seed(980),
                &stream_cfg(shard),
            );
            assert_eq!(digest.fingerprint(), reference, "n={n} shard={shard}");
            assert_eq!(digest.filters, FilterTally::of_report(&report), "n={n} shard={shard}");
        }
    }
}

#[test]
fn streaming_digest_identical_across_thread_counts() {
    let stimuli = tl_stimuli();
    let reference = stream_timeline_campaign(
        stimuli,
        &CrowdFlower,
        300,
        &cfg(1),
        &paper_pipeline(),
        Seed(990),
        &stream_cfg(32),
    )
    .fingerprint();
    for threads in [2usize, 4, 0] {
        let digest = stream_timeline_campaign(
            stimuli,
            &CrowdFlower,
            300,
            &cfg(threads),
            &paper_pipeline(),
            Seed(990),
            &stream_cfg(32),
        );
        assert_eq!(digest.fingerprint(), reference, "threads={threads}");
    }
}

#[test]
fn flat_timeline_matches_streaming_across_n_shards_and_threads() {
    let stimuli = tl_stimuli();
    for n in [1usize, 7, 100, 1000] {
        let reference = stream_timeline_campaign(
            stimuli,
            &CrowdFlower,
            n,
            &cfg(0),
            &paper_pipeline(),
            Seed(970),
            &stream_cfg(64),
        )
        .fingerprint();
        for shard in [1usize, 16, 64, n + 1] {
            for threads in [1usize, 2, 0] {
                let digest = flat_timeline_campaign(
                    stimuli,
                    &CrowdFlower,
                    n,
                    &cfg(threads),
                    &paper_pipeline(),
                    Seed(970),
                    &stream_cfg(shard),
                );
                assert_eq!(
                    digest.fingerprint(),
                    reference,
                    "n={n} shard={shard} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn flat_ab_matches_streaming_across_n_shards_and_threads() {
    let stimuli = ab_stimuli();
    for n in [1usize, 7, 100, 1000] {
        let reference = stream_ab_campaign(
            stimuli,
            &CrowdFlower,
            n,
            &cfg(0),
            &paper_pipeline(),
            Seed(980),
            &stream_cfg(64),
        )
        .fingerprint();
        for shard in [1usize, 16, 64, n + 1] {
            for threads in [1usize, 2, 0] {
                let digest = flat_ab_campaign(
                    stimuli,
                    &CrowdFlower,
                    n,
                    &cfg(threads),
                    &paper_pipeline(),
                    Seed(980),
                    &stream_cfg(shard),
                );
                assert_eq!(
                    digest.fingerprint(),
                    reference,
                    "n={n} shard={shard} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn digests_identical_across_backends_shards_threads_and_chaos_seeds() {
    // The full PR-10 identity matrix: every engine × shard size ×
    // worker count × chaos schedule must land on the materializing
    // reference digest, for more than one campaign seed. Chaos seeds
    // permute which worker claims which shard and when (see
    // `eyeorg_stats::set_chaos_seed`), so a pass here means the
    // demand-driven fast path's outputs are pinned by index, not by
    // scheduling luck.
    let stimuli = tl_stimuli();
    let n = 300usize;
    for campaign_seed in [Seed(970), Seed(31_337)] {
        let campaign =
            run_timeline_campaign(stimuli.clone(), &CrowdFlower, n, &cfg(0), campaign_seed);
        let report = filter_timeline(&campaign, &paper_pipeline());
        let reference =
            digest_timeline(&campaign, &report, n, &DigestParams::default()).fingerprint();
        for shard in [1usize, 16, 64] {
            for threads in [1usize, 2, 0] {
                for chaos in [0u64, 7, 23] {
                    set_chaos_seed(chaos);
                    let streamed = stream_timeline_campaign(
                        stimuli,
                        &CrowdFlower,
                        n,
                        &cfg(threads),
                        &paper_pipeline(),
                        campaign_seed,
                        &stream_cfg(shard),
                    )
                    .fingerprint();
                    let flat = flat_timeline_campaign(
                        stimuli,
                        &CrowdFlower,
                        n,
                        &cfg(threads),
                        &paper_pipeline(),
                        campaign_seed,
                        &stream_cfg(shard),
                    )
                    .fingerprint();
                    set_chaos_seed(0);
                    assert_eq!(
                        streamed, reference,
                        "stream seed={campaign_seed:?} shard={shard} threads={threads} \
                         chaos={chaos}"
                    );
                    assert_eq!(
                        flat, reference,
                        "flat seed={campaign_seed:?} shard={shard} threads={threads} \
                         chaos={chaos}"
                    );
                }
            }
        }
    }
}

#[test]
fn streaming_digest_band_means_match_analysis_at_small_n() {
    // Below the sketch cap the digest's banded means must be *exactly*
    // the figure pipeline's numbers (`analysis::mean_uplt`) — the
    // "exact small-n fallback keeps figure outputs unchanged" claim.
    let stimuli = tl_stimuli();
    let n = 200;
    let campaign = run_timeline_campaign(stimuli.clone(), &CrowdFlower, n, &cfg(0), Seed(995));
    let report = filter_timeline(&campaign, &paper_pipeline());
    let digest = stream_timeline_campaign(
        stimuli,
        &CrowdFlower,
        n,
        &cfg(0),
        &paper_pipeline(),
        Seed(995),
        &StreamConfig::default(),
    );
    for band in [None, Some((25.0, 75.0)), Some((10.0, 90.0))] {
        let expected = eyeorg_core::analysis::mean_uplt(&campaign, &report, band);
        let got = digest.mean_uplt(band);
        assert_eq!(expected.len(), got.len());
        for (si, (e, g)) in expected.iter().zip(&got).enumerate() {
            match (e, g) {
                (None, None) => {}
                (Some(e), Some(g)) => {
                    assert!((e - g).abs() < 1e-9, "band {band:?} site {si}: {e} vs {g}")
                }
                _ => panic!("band {band:?} site {si}: {e:?} vs {g:?}"),
            }
        }
    }
}
