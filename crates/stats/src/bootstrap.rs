//! Seeded bootstrap resampling.
//!
//! The paper reports point estimates (correlations, medians, score
//! fractions) without uncertainty; with a simulated crowd we can afford
//! to attach confidence intervals, and the harness does so for the
//! headline Fig. 7 correlations. Deterministic: the same seed yields the
//! same resamples.

use crate::seed::Seed;

/// A two-sided percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Point estimate on the original sample.
    pub point: f64,
    /// Upper bound.
    pub hi: f64,
    /// Nominal coverage (e.g. 0.95).
    pub level: f64,
}

/// Internal: minimal xorshift so this module needs no `rand` dependency —
/// resampling indices only need uniformity, not quality.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform index in `[0, n)` via the Lehmer high-product mapping
    /// `(next · n) >> 64`: unlike `next % n`, whose low-value bias scales
    /// with `n`, the multiply spreads the full 64-bit draw evenly across
    /// the `n` buckets (residual bias ≤ n/2⁶⁴, unmeasurable here).
    fn below(&mut self, n: usize) -> usize {
        (((self.next() as u128) * (n as u128)) >> 64) as usize
    }
}

/// Percentile-bootstrap CI for an arbitrary statistic of one sample.
///
/// `statistic` receives each resample (same length as the input, drawn
/// with replacement) and returns the quantity of interest; resamples on
/// which it returns `None` (degenerate draws) are skipped. Returns `None`
/// when the input is empty, the statistic is undefined on the original
/// sample, or fewer than half the resamples produced a value.
pub fn bootstrap_ci(
    sample: &[f64],
    level: f64,
    resamples: usize,
    seed: Seed,
    statistic: impl Fn(&[f64]) -> Option<f64>,
) -> Option<ConfidenceInterval> {
    if sample.is_empty() || !(0.0..1.0).contains(&level) || resamples == 0 {
        return None;
    }
    let point = statistic(sample)?;
    let mut rng = XorShift(seed.derive("bootstrap").value() | 1);
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; sample.len()];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = sample[rng.below(sample.len())];
        }
        if let Some(v) = statistic(&buf) {
            stats.push(v);
        }
    }
    if stats.is_empty() || stats.len() < resamples / 2 {
        return None;
    }
    // Sort the resample statistics once; both CI bounds read the same
    // sorted vector (percentile() would re-sort it per bound).
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::quantile::percentile_sorted(&stats, alpha * 100.0);
    let hi = crate::quantile::percentile_sorted(&stats, (1.0 - alpha) * 100.0);
    Some(ConfidenceInterval { lo, point, hi, level })
}

/// Bootstrap CI for the Pearson correlation of paired data: resampling
/// happens over *pairs* (index bootstrap).
pub fn bootstrap_pearson_ci(
    x: &[f64],
    y: &[f64],
    level: f64,
    resamples: usize,
    seed: Seed,
) -> Option<ConfidenceInterval> {
    if x.len() != y.len() || x.len() < 3 {
        return None;
    }
    let point = crate::corr::pearson(x, y)?;
    let mut rng = XorShift(seed.derive("bootstrap-r").value() | 1);
    let n = x.len();
    let mut bx = vec![0.0; n];
    let mut by = vec![0.0; n];
    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for i in 0..n {
            let j = rng.below(n);
            bx[i] = x[j];
            by[i] = y[j];
        }
        if let Some(r) = crate::corr::pearson(&bx, &by) {
            stats.push(r);
        }
    }
    if stats.is_empty() || stats.len() < resamples / 2 {
        return None;
    }
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    Some(ConfidenceInterval {
        lo: crate::quantile::percentile_sorted(&stats, alpha * 100.0),
        point,
        hi: crate::quantile::percentile_sorted(&stats, (1.0 - alpha) * 100.0),
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::mean;

    #[test]
    fn mean_ci_brackets_the_mean_and_shrinks_with_n() {
        let small: Vec<f64> = (0..20).map(|i| (i % 7) as f64).collect();
        let big: Vec<f64> = (0..2000).map(|i| (i % 7) as f64).collect();
        let ci_small = bootstrap_ci(&small, 0.95, 500, Seed(1), mean).unwrap();
        let ci_big = bootstrap_ci(&big, 0.95, 500, Seed(1), mean).unwrap();
        assert!(ci_small.lo <= ci_small.point && ci_small.point <= ci_small.hi);
        assert!(
            (ci_big.hi - ci_big.lo) < (ci_small.hi - ci_small.lo),
            "more data, tighter interval"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data: Vec<f64> = (0..50).map(|i| (i * i % 13) as f64).collect();
        let a = bootstrap_ci(&data, 0.9, 200, Seed(5), mean).unwrap();
        let b = bootstrap_ci(&data, 0.9, 200, Seed(5), mean).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_ci(&data, 0.9, 200, Seed(6), mean).unwrap();
        assert!(a != c, "different seeds resample differently");
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(bootstrap_ci(&[], 0.95, 100, Seed(1), mean).is_none());
        assert!(bootstrap_ci(&[1.0], 1.5, 100, Seed(1), mean).is_none());
        assert!(bootstrap_ci(&[1.0], 0.95, 0, Seed(1), mean).is_none());
    }

    #[test]
    fn pearson_ci_contains_strong_correlation() {
        let x: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + ((v * 7.0) % 11.0)).collect();
        let ci = bootstrap_pearson_ci(&x, &y, 0.95, 400, Seed(2)).unwrap();
        assert!(ci.point > 0.9);
        assert!(ci.lo > 0.8, "strong correlation, tight lower bound: {ci:?}");
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
    }

    #[test]
    fn index_draws_stay_in_range_and_spread_evenly() {
        // The Lehmer high-product mapping must hit every bucket of a
        // small n roughly uniformly and never produce an out-of-range
        // index (the old `% n` draw was biased toward low indices for
        // n not dividing 2^64; at these n the bias is tiny but the
        // range contract is what the resampler relies on).
        let mut rng = XorShift(Seed(9).derive("bootstrap").value() | 1);
        let n = 10;
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let i = rng.below(n);
            assert!(i < n);
            counts[i] += 1;
        }
        for &c in &counts {
            assert!((700..=1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn pearson_ci_wide_for_weak_correlation() {
        // Small n, weak relation → the CI must be wide.
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| (v * 37.0) % 7.0).collect();
        let ci = bootstrap_pearson_ci(&x, &y, 0.95, 400, Seed(3)).unwrap();
        assert!(ci.hi - ci.lo > 0.5, "weak correlation, wide interval: {ci:?}");
    }
}
