//! Connection event logs (qlog-style).
//!
//! Debugging a transport simulation needs the same visibility debugging a
//! real transport does: what was sent when, what the congestion window
//! did, where the retransmissions and timeouts happened. [`ConnLog`]
//! records a per-connection event stream that [`crate::sim::NetSim`] fills
//! when logging is enabled, in the spirit of IETF qlog — serialisable,
//! per-event timestamps, transport-level vocabulary.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// One logged transport event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnEvent {
    /// The connection's handshake completed.
    Established,
    /// A data segment entered the network.
    SegmentSent {
        /// First byte offset.
        start: u64,
        /// Payload length.
        len: u64,
        /// Whether this was a retransmission.
        retransmission: bool,
        /// Congestion window at send time (bytes).
        cwnd: u64,
    },
    /// The segment was dropped before the queue (random loss) or by the
    /// drop-tail buffer.
    SegmentDropped {
        /// First byte offset.
        start: u64,
    },
    /// A cumulative ACK arrived at the sender.
    AckReceived {
        /// Acknowledged byte point.
        ack: u64,
        /// Congestion window after processing (bytes).
        cwnd: u64,
        /// Bytes in flight after processing.
        in_flight: u64,
    },
    /// The retransmission timer fired.
    Timeout,
}

/// A per-connection event log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnLog {
    /// Events in time order.
    pub events: Vec<(SimTime, ConnEvent)>,
}

impl ConnLog {
    /// Record an event (called by the simulator).
    pub(crate) fn push(&mut self, t: SimTime, ev: ConnEvent) {
        self.events.push((t, ev));
    }

    /// The congestion-window trace: `(time, cwnd)` samples from every
    /// send and ACK event.
    pub fn cwnd_trace(&self) -> Vec<(SimTime, u64)> {
        self.events
            .iter()
            .filter_map(|&(t, ev)| match ev {
                ConnEvent::SegmentSent { cwnd, .. } | ConnEvent::AckReceived { cwnd, .. } => {
                    Some((t, cwnd))
                }
                _ => None,
            })
            .collect()
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&ConnEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, ev)| pred(ev)).count()
    }

    /// Serialise as JSON lines (one event per line), the friendliest
    /// format for ad-hoc inspection.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (t, ev) in &self.events {
            out.push_str(
                &serde_json::to_string(&(t.as_micros(), ev)).expect("log serialisation"),
            );
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{NetworkProfile, TlsMode};
    use crate::sim::{NetEvent, NetSim};
    use eyeorg_stats::Seed;

    fn run_logged_transfer(bytes: u64) -> ConnLog {
        let mut sim = NetSim::new(NetworkProfile::cable(), Seed(9));
        sim.set_logging(true);
        let conn = sim.open(SimTime::ZERO, TlsMode::None);
        sim.client_send(conn, SimTime::ZERO, 300);
        let mut responded = false;
        while let Some((t, ev)) = sim.next_event() {
            if let NetEvent::RequestDelivered { .. } = ev {
                if !responded {
                    responded = true;
                    sim.server_send(conn, t, bytes);
                }
            }
        }
        sim.take_log(conn).expect("logging was enabled")
    }

    #[test]
    fn log_captures_full_lifecycle() {
        let log = run_logged_transfer(200_000);
        assert!(log.count(|e| matches!(e, ConnEvent::Established)) == 1);
        let sends = log.count(|e| matches!(e, ConnEvent::SegmentSent { .. }));
        assert!(sends >= (200_000 / 1460) as usize, "sends {sends}");
        assert!(log.count(|e| matches!(e, ConnEvent::AckReceived { .. })) > 0);
        // Time-ordered.
        for w in log.events.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn cwnd_trace_shows_slow_start_growth() {
        let log = run_logged_transfer(400_000);
        let trace = log.cwnd_trace();
        assert!(!trace.is_empty());
        let first = trace.first().expect("non-empty").1;
        let max = trace.iter().map(|&(_, c)| c).max().expect("non-empty");
        assert!(max > first, "cwnd must grow from IW: {first} -> {max}");
    }

    #[test]
    fn jsonl_roundtrips_per_line() {
        let log = run_logged_transfer(20_000);
        let jsonl = log.to_jsonl();
        for line in jsonl.lines() {
            let (_t, _ev): (u64, ConnEvent) = serde_json::from_str(line).expect("valid line");
        }
        assert_eq!(jsonl.lines().count(), log.events.len());
    }

    #[test]
    fn logging_disabled_returns_none() {
        let mut sim = NetSim::new(NetworkProfile::cable(), Seed(9));
        let conn = sim.open(SimTime::ZERO, TlsMode::None);
        sim.run_to_quiescence();
        assert!(sim.take_log(conn).is_none());
    }
}
