//! D6 waived: a display-only mean that never reaches a fingerprint.

pub fn mean(xs: &[f64]) -> f64 {
    // lint:allow(D6): display-only mean; the digest path uses stats::stream fixed-point
    let total = xs.iter().sum::<f64>();
    total / xs.len().max(1) as f64
}
