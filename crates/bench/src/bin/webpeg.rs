//! webpeg — the capture tool, as a CLI.
//!
//! Loads one synthetic site under a chosen configuration, prints the PLT
//! metrics and a frame-strip preview, and optionally dumps the HAR.
//!
//! ```sh
//! cargo run --release -p eyeorg-bench --bin webpeg -- \
//!     --class news --index 3 --network cable --protocol h1 \
//!     --adblocker ghostery --har
//! ```

use eyeorg_browser::{load_page, to_har_json, AdBlocker, BrowserConfig};
use eyeorg_http::Protocol;
use eyeorg_metrics::compute_metrics;
use eyeorg_net::{NetworkProfile, SimDuration};
use eyeorg_stats::Seed;
use eyeorg_video::Video;
use eyeorg_workload::{generate_site, SiteClass};

fn usage() -> ! {
    eprintln!(
        "usage: webpeg [--class news|ecommerce|blog|landing|media] [--index N] \
         [--seed N] [--network fiber|fttc|cable|dsl|lte|3g] [--protocol h1|h2] \
         [--adblocker adblock|ghostery|ublock] [--push] [--har]"
    );
    std::process::exit(2);
}

fn main() {
    let mut class = SiteClass::News;
    let mut index = 0u64;
    let mut seed = 1u64;
    let mut network = NetworkProfile::fttc();
    let mut protocol = Protocol::Http2;
    let mut adblocker = None;
    let mut push = false;
    let mut har = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut next = || {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--class" => {
                class = match next().as_str() {
                    "news" => SiteClass::News,
                    "ecommerce" => SiteClass::Ecommerce,
                    "blog" => SiteClass::Blog,
                    "landing" => SiteClass::Landing,
                    "media" => SiteClass::MediaHeavy,
                    _ => usage(),
                }
            }
            "--index" => index = next().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = next().parse().unwrap_or_else(|_| usage()),
            "--network" => {
                network = match next().as_str() {
                    "fiber" => NetworkProfile::fiber(),
                    "fttc" => NetworkProfile::fttc(),
                    "cable" => NetworkProfile::cable(),
                    "dsl" => NetworkProfile::dsl(),
                    "lte" => NetworkProfile::lte(),
                    "3g" => NetworkProfile::mobile_3g(),
                    _ => usage(),
                }
            }
            "--protocol" => {
                protocol = match next().as_str() {
                    "h1" => Protocol::Http1,
                    "h2" => Protocol::Http2,
                    _ => usage(),
                }
            }
            "--adblocker" => {
                adblocker = Some(match next().as_str() {
                    "adblock" => AdBlocker::AdBlock,
                    "ghostery" => AdBlocker::Ghostery,
                    "ublock" => AdBlocker::UBlock,
                    _ => usage(),
                })
            }
            "--push" => push = true,
            "--har" => har = true,
            _ => usage(),
        }
        i += 1;
    }

    let site = generate_site(Seed(seed), index, class);
    let mut cfg = BrowserConfig::new().with_network(network).with_protocol(protocol);
    if let Some(b) = adblocker {
        cfg = cfg.with_adblocker(b);
    }
    if push {
        cfg = cfg.with_server_push();
    }
    let trace = load_page(&site, &cfg, Seed(seed));
    let video = Video::capture(trace.clone(), 10, SimDuration::from_secs(5));
    let m = compute_metrics(&video);

    eprintln!(
        "site {} ({:?}, {} objects, {:.2} MB) over {} / {:?}{}{}",
        site.name,
        class,
        site.resources.len(),
        site.total_bytes() as f64 / 1e6,
        cfg.network.name,
        protocol,
        adblocker.map(|b| format!(" + {}", b.name())).unwrap_or_default(),
        if push { " + push" } else { "" },
    );
    eprintln!(
        "onload {:.2}s  speedindex {:.2}s  firstvisual {:.2}s  lastvisual {:.2}s",
        m.onload.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN),
        m.speed_index.map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
        m.first_visual_change.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN),
        m.last_visual_change.map(|t| t.as_secs_f64()).unwrap_or(f64::NAN),
    );
    let fetched = trace.resources.iter().filter(|r| r.fetched()).count();
    let skipped = trace.resources.iter().filter(|r| r.skipped.is_some()).count();
    eprintln!("resources: {fetched} fetched, {skipped} blocked/skipped");

    // Frame-strip preview: viewport completeness over time.
    let n = video.frame_count();
    let cols = 60usize;
    let mut strip = String::new();
    const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    for c in 0..cols {
        let i = c * (n - 1) / (cols - 1);
        let painted = video.frame(i).painted_fraction();
        strip.push(LEVELS[((painted * 8.0).round() as usize).min(8)]);
    }
    eprintln!("viewport fill |{strip}| 0..{:.1}s", video.duration().as_secs_f64());

    if har {
        println!("{}", to_har_json(&trace, &site));
    }
}
