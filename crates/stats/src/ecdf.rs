//! Empirical cumulative distribution functions.
//!
//! Nearly every figure in the Eyeorg paper is a CDF: time-on-site
//! (Fig. 4a), per-participant action counts (Fig. 4b), out-of-focus time
//! (Fig. 5), per-video `UserPerceivedPLT` (Fig. 6a), response standard
//! deviations (Fig. 6b), A/B agreement (Fig. 6c), metric error (Fig. 7c),
//! and per-site A/B scores (Fig. 8b, 8c). [`Ecdf`] is the shared
//! representation the bench harness serialises into those plots.

/// An empirical CDF over a finite sample.
///
/// Stored as the sorted sample; evaluation is a binary search. The CDF is
/// right-continuous: `F(x)` is the fraction of observations `<= x`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from a sample. Returns `None` if the sample is empty
    /// or contains non-finite values (which have no place on a CDF axis).
    pub fn new(sample: &[f64]) -> Option<Ecdf> {
        if sample.is_empty() || sample.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Ecdf { sorted })
    }

    /// Number of observations underlying the CDF.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// Evaluate `F(x)`: the fraction of observations `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x when we ask for
        // the first index where the element is > x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Generalised inverse `F⁻¹(q)` for `q ∈ (0, 1]`: the smallest sample
    /// value `x` with `F(x) >= q`. `q = 0` returns the minimum. Values of
    /// `q` outside `[0, 1]` return `None`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        if q == 0.0 {
            return Some(self.sorted[0]);
        }
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.sorted[idx])
    }

    /// The step points of the CDF as `(x, F(x))` pairs, one per distinct
    /// observation. This is the series a plotting tool draws.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match out.last_mut() {
                // Collapse duplicate x onto the highest cumulative fraction.
                Some(last) if last.0 == x => last.1 = y,
                _ => out.push((x, y)),
            }
        }
        out
    }

    /// Sample the CDF at `k` evenly spaced x positions spanning
    /// `[min, max]`, inclusive. Useful for overlaying CDFs with different
    /// supports on a common grid. Returns an empty vector when `k == 0`.
    pub fn sampled(&self, k: usize) -> Vec<(f64, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        // lint:allow(D4): Ecdf::new rejects empty samples, so `sorted` is never empty
        let hi = *self.sorted.last().expect("non-empty");
        if k == 1 || hi == lo {
            return vec![(hi, self.eval(hi))];
        }
        (0..k)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (k - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        // lint:allow(D7): Ecdf::new rejects empty samples, so sorted[0] exists
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        // lint:allow(D4): Ecdf::new rejects empty samples, so `sorted` is never empty lint:allow(D7): same non-empty invariant
        *self.sorted.last().expect("non-empty")
    }

    /// Access the sorted underlying sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Two-sample Kolmogorov–Smirnov statistic: the supremum of
    /// `|F_self(x) - F_other(x)|` over all x. Used by validation tests to
    /// quantify how close paid-participant distributions are to trusted
    /// ones (the paper argues they align after filtering).
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_or_nan_rejected() {
        assert!(Ecdf::new(&[]).is_none());
        assert!(Ecdf::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn eval_step_semantics() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25); // right-continuous: includes x
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn duplicates_collapse_in_points() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0]).unwrap();
        assert_eq!(e.points(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn quantile_inverse_roundtrip() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        assert_eq!(e.quantile(0.0).unwrap(), 10.0);
        assert_eq!(e.quantile(0.2).unwrap(), 10.0);
        assert_eq!(e.quantile(0.5).unwrap(), 30.0);
        assert_eq!(e.quantile(1.0).unwrap(), 50.0);
        assert!(e.quantile(1.5).is_none());
    }

    #[test]
    fn sampled_grid_is_monotone() {
        let e = Ecdf::new(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]).unwrap();
        let pts = e.sampled(16);
        assert_eq!(pts.len(), 16);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn ks_distance_identical_is_zero_and_disjoint_is_one() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.ks_distance(&a), 0.0);
        let b = Ecdf::new(&[10.0, 11.0]).unwrap();
        assert_eq!(a.ks_distance(&b), 1.0);
    }

    #[test]
    fn degenerate_single_value() {
        let e = Ecdf::new(&[7.0]).unwrap();
        assert_eq!(e.min(), 7.0);
        assert_eq!(e.max(), 7.0);
        assert_eq!(e.sampled(5), vec![(7.0, 1.0)]);
    }
}
