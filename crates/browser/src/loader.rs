//! The page loader: one simulated Chrome loading one site.
//!
//! This is the heart of the webpeg substitution. It co-simulates two
//! timelines:
//!
//! * the **network** — [`eyeorg_http::FetchEngine`] over the simulated
//!   access link, and
//! * the **main thread** — HTML parsing, script execution, filter-list
//!   matching and paint flushes, serialised through a busy-until cursor.
//!
//! The semantics reproduced (each is load-bearing for some paper result):
//!
//! * **Preload scanner** — resources referenced by received-but-unparsed
//!   HTML are discovered and fetched immediately; parsing only gates
//!   *execution* and *painting*.
//! * **Parser blocking** — a sync `<script>` halts parsing until it has
//!   loaded and executed.
//! * **Render blocking** — no pixels before every discovered stylesheet
//!   has applied; web fonts additionally gate document *text* (but not
//!   images or ads).
//! * **Progressive document paint** — parsed document content paints in
//!   horizontal bands on vsync-aligned flushes.
//! * **Script injection** — trackers execute on arrival and inject their
//!   ads/widgets after an auction delay; injections scheduled before
//!   `onload`'s conditions hold delay it, later ones land after it. This
//!   produces both OnLoad-overestimates and underestimates exactly as the
//!   paper's introduction describes.
//! * **Ad blocking** — filter matching costs main-thread time on every
//!   discovered request; blocked resources are never fetched, and the
//!   children of a blocked injector are never discovered.
//! * **onload** — fires when parsing is done and no started fetch is
//!   outstanding.

use std::collections::{BTreeMap, BTreeSet};

use eyeorg_http::{FetchEngine, FetchEvent, HttpConfig, OriginId, Priority, Protocol, Request, RequestId};
use eyeorg_net::event::EventQueue;
use eyeorg_obs::metrics as obs;
use eyeorg_net::{DnsConfig, Resolver, SimDuration, SimTime};
use eyeorg_stats::Seed;
use eyeorg_workload::{Discovery, Rect, ResourceId, ResourceKind, Website};

use crate::config::BrowserConfig;
use crate::paint::{align_to_vsync, PaintEvent, PaintKind};
use crate::trace::{LoadTrace, ResourceTrace, SkipReason};

/// Per-slot creative rotation count: some slots never rotate, some churn
/// repeatedly — per-site variance in late pixel churn is what decouples
/// LastVisualChange from perception (Fig. 7b's 0.47).
fn max_ad_rotations(rid: ResourceId) -> u8 {
    let h = (u64::from(rid.0) ^ 0x5bd1).wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33;
    (h % 6) as u8 // 0..=5
}

/// Deterministic rotation interval for an ad slot: 3–9 s, varying by slot
/// and generation so rotations do not synchronise.
fn ad_rotation_delay(rid: ResourceId, generation: u8) -> SimDuration {
    let mut h = (u64::from(rid.0) << 8 | u64::from(generation))
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 29;
    SimDuration::from_millis(2_000 + h % 4_500)
}

/// Browser-side timed events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The browser learns the resource exists.
    Discovered(ResourceId),
    /// Filter matching + DNS done; hand the request to the network.
    Submit(ResourceId),
    /// A parse task finished, having consumed document bytes up to `upto`.
    ParseDone { upto: u64 },
    /// A script finished executing.
    ScriptExecuted(ResourceId),
    /// Paint flush: pending paints reach the screen.
    PaintFlush,
    /// An advertisement rotates to a new creative.
    AdRotate(ResourceId, u8),
}

/// Load `site` under `cfg`; the seed controls network loss and DNS
/// timing. Returns the full trace.
pub fn load_page(site: &Website, cfg: &BrowserConfig, seed: Seed) -> LoadTrace {
    Loader::new(site, cfg, seed, true).run()
}

/// [`load_page`] with the network simulator's burst batching disabled —
/// the per-segment reference path. The trace is identical to
/// [`load_page`]'s (that equivalence is what the hot-path benchmark
/// gates on); this entry point only exists so the comparison can be
/// made end to end.
pub fn load_page_reference(site: &Website, cfg: &BrowserConfig, seed: Seed) -> LoadTrace {
    Loader::new(site, cfg, seed, false).run()
}

struct Loader<'a> {
    site: &'a Website,
    cfg: &'a BrowserConfig,
    engine: FetchEngine,
    resolver: Resolver,
    tasks: EventQueue<Ev>,
    /// Main thread is busy until this instant.
    mt_free: SimTime,
    /// Total main-thread CPU microseconds charged (adblock matching,
    /// HTML parsing, JS execution). Observability only — not part of
    /// [`LoadTrace`], so trace fingerprints are unchanged.
    cpu_busy_us: u64,
    res: Vec<ResourceTrace>,
    req_map: BTreeMap<RequestId, ResourceId>,
    registered_origins: BTreeSet<u16>,
    discovered: Vec<bool>,
    /// Resources that have started loading and not yet completed/skipped.
    outstanding: BTreeSet<ResourceId>,
    // --- parser state ---
    html_total: u64,
    html_received: u64,
    html_parsed: u64,
    parse_scheduled_to: u64,
    /// Sync scripts by document byte position, not yet executed.
    sync_scripts: Vec<(u64, ResourceId)>,
    /// The sync script the parser is stopped at, if any.
    parse_blocked_by: Option<ResourceId>,
    parse_task_running: bool,
    parse_complete: Option<SimTime>,
    // --- paint state ---
    paints: Vec<PaintEvent>,
    pending_paints: Vec<(ResourceId, Rect, PaintKind, u8)>,
    flush_scheduled: bool,
    painted_doc_height: u32,
    /// Visual resources loaded but not paintable yet (render blocked or
    /// parser not reached).
    awaiting_paint: BTreeSet<ResourceId>,
    // --- milestones ---
    onload: Option<SimTime>,
    last_event_time: SimTime,
}

impl<'a> Loader<'a> {
    fn new(site: &'a Website, cfg: &'a BrowserConfig, seed: Seed, batching: bool) -> Loader<'a> {
        let http_cfg = HttpConfig {
            protocol: cfg.protocol,
            tls: cfg.tls,
            ..HttpConfig::new(cfg.protocol)
        };
        let mut engine = FetchEngine::new(http_cfg, cfg.network.clone(), seed.derive("net"));
        engine.set_burst_batching(batching);
        let mut resolver = Resolver::new(DnsConfig::default(), seed.derive("dns"));
        if cfg.primer {
            // The webpeg primer load warms the resolver for every origin
            // the page touches; its cost is outside the measured load.
            for o in &site.origins {
                resolver.resolve(&o.host, SimTime::ZERO);
            }
        }
        let html_total = site.resources[0].body_bytes;
        let mut sync_scripts: Vec<(u64, ResourceId)> = site
            .resources
            .iter()
            .filter(|r| r.parser_blocking())
            .filter_map(|r| match r.discovery {
                Discovery::Html { at_fraction } => {
                    Some(((f64::from(at_fraction) * html_total as f64) as u64, r.id))
                }
                _ => None,
            })
            .collect();
        sync_scripts.sort_unstable();

        let mut tasks = EventQueue::new();
        tasks.schedule(SimTime::ZERO, Ev::Discovered(ResourceId(0)));

        Loader {
            site,
            cfg,
            engine,
            resolver,
            tasks,
            mt_free: SimTime::ZERO,
            cpu_busy_us: 0,
            res: site.resources.iter().map(|r| ResourceTrace::empty(r.id)).collect(),
            req_map: BTreeMap::new(),
            registered_origins: BTreeSet::new(),
            discovered: vec![false; site.resources.len()],
            outstanding: BTreeSet::new(),
            html_total,
            html_received: 0,
            html_parsed: 0,
            parse_scheduled_to: 0,
            sync_scripts,
            parse_blocked_by: None,
            parse_task_running: false,
            parse_complete: None,
            paints: Vec::new(),
            pending_paints: Vec::new(),
            flush_scheduled: false,
            painted_doc_height: 0,
            awaiting_paint: BTreeSet::new(),
            onload: None,
            last_event_time: SimTime::ZERO,
        }
    }

    fn run(mut self) -> LoadTrace {
        loop {
            let limit = self.tasks.peek_time().unwrap_or(SimTime::from_micros(u64::MAX));
            match self.engine.next_event_until(limit) {
                Some((t, fe)) => {
                    self.last_event_time = self.last_event_time.max(t);
                    self.handle_fetch(t, fe);
                    self.check_onload(t);
                }
                None => match self.tasks.pop() {
                    Some((t, ev)) => {
                        self.last_event_time = self.last_event_time.max(t);
                        self.handle_browser(t, ev);
                        self.check_onload(t);
                    }
                    None => break,
                },
            }
        }
        self.finalize()
    }

    // ------------------------------------------------------------------
    // Fetch-side events
    // ------------------------------------------------------------------

    fn handle_fetch(&mut self, t: SimTime, ev: FetchEvent) {
        let rid = match self.req_map.get(&ev.request_id()) {
            Some(&r) => r,
            None => return,
        };
        match ev {
            FetchEvent::HeadersReceived { .. } => {
                self.res[rid.0 as usize].headers = Some(t);
            }
            FetchEvent::Data { body_bytes, .. } => {
                if rid == ResourceId(0) {
                    self.html_received = body_bytes;
                    self.scan_for_discoveries(t);
                    self.schedule_parse(t);
                }
            }
            FetchEvent::Completed { .. } => {
                self.res[rid.0 as usize].completed = Some(t);
                self.outstanding.remove(&rid);
                self.on_resource_loaded(rid, t);
            }
        }
    }

    /// A resource's bytes are fully in; apply its effects.
    fn on_resource_loaded(&mut self, rid: ResourceId, t: SimTime) {
        let kind = self.site.resources[rid.0 as usize].kind;
        match kind {
            ResourceKind::Html => {
                self.scan_for_discoveries(t);
                self.schedule_parse(t);
            }
            ResourceKind::Css | ResourceKind::Font => {
                self.res[rid.0 as usize].applied = Some(t);
                self.discover_children(rid, t);
                // Styles arriving may unblock all waiting paints.
                self.release_paintables(t);
            }
            ResourceKind::Js | ResourceKind::Tracker => {
                let r = &self.site.resources[rid.0 as usize];
                if r.parser_blocking() {
                    // Executes when the parser reaches it; if the parser
                    // is already stopped at this script, run it now.
                    if self.parse_blocked_by == Some(rid) {
                        self.queue_script_execution(rid, t);
                    }
                } else {
                    // async/deferred semantics: execute on arrival.
                    self.queue_script_execution(rid, t);
                }
            }
            ResourceKind::Image | ResourceKind::Ad | ResourceKind::Widget => {
                self.awaiting_paint.insert(rid);
                self.release_paintables(t);
            }
        }
    }

    // ------------------------------------------------------------------
    // Browser-side events
    // ------------------------------------------------------------------

    fn handle_browser(&mut self, t: SimTime, ev: Ev) {
        match ev {
            Ev::Discovered(rid) => self.on_discovered(rid, t),
            Ev::Submit(rid) => self.on_submit(rid, t),
            Ev::ParseDone { upto } => self.on_parse_done(upto, t),
            Ev::ScriptExecuted(rid) => self.on_script_executed(rid, t),
            Ev::PaintFlush => self.on_paint_flush(t),
            Ev::AdRotate(rid, generation) => self.on_ad_rotate(rid, generation, t),
        }
    }

    fn on_discovered(&mut self, rid: ResourceId, t: SimTime) {
        // `discovered[rid]` is set at scheduling time to prevent duplicate
        // Discovered events; the per-resource trace field is the "has the
        // handler run" guard.
        if self.res[rid.0 as usize].discovered.is_some() {
            return;
        }
        self.discovered[rid.0 as usize] = true;
        self.res[rid.0 as usize].discovered = Some(t);
        let resource = &self.site.resources[rid.0 as usize];

        // Filter-list matching occupies the main thread per request.
        let mut ready_at = t;
        if let Some(blocker) = self.cfg.adblocker {
            let cost = SimDuration::from_micros(
                (blocker.profile().match_cost.as_micros() as f64 * self.cfg.device.cpu_factor)
                    as u64,
            );
            let start = self.mt_free.max(t);
            self.mt_free = start + cost;
            self.cpu_busy_us += cost.as_micros();
            ready_at = self.mt_free;
            if blocker.blocks(self.site, resource) {
                self.res[rid.0 as usize].skipped = Some(SkipReason::BlockedByExtension);
                return;
            }
        }
        // DNS, cached per host across the load.
        let host = &self.site.origins[resource.origin.0 as usize].host;
        let dns = self.resolver.resolve(host, ready_at);
        self.outstanding.insert(rid);
        self.tasks.schedule(ready_at + dns.latency, Ev::Submit(rid));
    }

    fn on_submit(&mut self, rid: ResourceId, t: SimTime) {
        let resource = &self.site.resources[rid.0 as usize];
        let origin_ref = resource.origin;
        let origin = OriginId(u32::from(origin_ref.0));
        if self.registered_origins.insert(origin_ref.0) {
            // H2 only where the origin supports it; webpeg can force H1
            // but cannot force H2 onto a server that lacks it.
            let proto = if self.cfg.protocol == Protocol::Http2
                && self.site.origins[origin_ref.0 as usize].supports_h2
            {
                Protocol::Http2
            } else {
                Protocol::Http1
            };
            self.engine.set_origin_protocol(origin, proto);
        }
        let priority = match resource.kind {
            ResourceKind::Html => Priority::Critical,
            ResourceKind::Css | ResourceKind::Font => Priority::High,
            ResourceKind::Js => Priority::Medium,
            ResourceKind::Image => Priority::Low,
            ResourceKind::Ad | ResourceKind::Tracker | ResourceKind::Widget => Priority::Lowest,
        };
        let req = Request {
            origin,
            request_header_bytes: resource.request_header_bytes,
            response_header_bytes: resource.response_header_bytes,
            body_bytes: resource.body_bytes,
            priority,
            server_think: SimDuration::from_micros(resource.server_think_us),
        };
        let req_id = self.engine.submit(t, req);
        self.req_map.insert(req_id, rid);
        self.res[rid.0 as usize].submitted = Some(t);

        // Server push: alongside the document, the origin pushes its
        // render-blocking stylesheets (the server knows its own manifest;
        // the browser needs neither discovery nor a request round trip).
        if rid == ResourceId(0)
            && self.cfg.h2_server_push
            && self.cfg.protocol == Protocol::Http2
            && self.site.origins[0].supports_h2
        {
            let pushable: Vec<ResourceId> = self
                .site
                .resources
                .iter()
                .filter(|r| {
                    r.kind == ResourceKind::Css
                        && r.render_blocking
                        && r.origin == self.site.resources[0].origin
                        && !self.discovered[r.id.0 as usize]
                })
                .map(|r| r.id)
                .collect();
            for prid in pushable {
                let pres = &self.site.resources[prid.0 as usize];
                let preq = Request {
                    origin,
                    request_header_bytes: 0, // pushes carry no request
                    response_header_bytes: pres.response_header_bytes,
                    body_bytes: pres.body_bytes,
                    priority: Priority::High,
                    server_think: SimDuration::from_micros(pres.server_think_us),
                };
                let pid = self.engine.submit_pushed(t, req_id, preq);
                self.req_map.insert(pid, prid);
                self.discovered[prid.0 as usize] = true;
                self.res[prid.0 as usize].discovered = Some(t);
                self.res[prid.0 as usize].submitted = Some(t);
                self.outstanding.insert(prid);
            }
        }
    }

    fn on_parse_done(&mut self, upto: u64, t: SimTime) {
        self.parse_task_running = false;
        self.html_parsed = self.html_parsed.max(upto);
        self.after_parse_progress(t);
    }

    /// The parser sits at `html_parsed`; decide what happens next:
    /// execute/wait on a sync script, declare parsing complete, or parse
    /// more bytes.
    fn after_parse_progress(&mut self, t: SimTime) {
        // New parse progress can unlock waiting images (their layout
        // slots now exist) as well as the next document band.
        self.release_paintables(t);
        // Skip over extension-blocked scripts; stop at the first real one.
        while let Some(&(pos, script)) = self.sync_scripts.first() {
            if self.html_parsed < pos {
                break;
            }
            if self.res[script.0 as usize].skipped.is_some() {
                self.sync_scripts.remove(0);
                continue;
            }
            // Parser stopped at `script` — either it has arrived (execute
            // now) or we wait for its bytes.
            if self.parse_blocked_by != Some(script) {
                self.parse_blocked_by = Some(script);
                if self.res[script.0 as usize].completed.is_some() {
                    self.queue_script_execution(script, t);
                }
            }
            return;
        }
        if self.html_parsed >= self.html_total && self.res[0].completed.is_some() {
            if self.parse_complete.is_none() {
                self.parse_complete = Some(t);
            }
            return;
        }
        self.schedule_parse(t);
    }

    fn on_script_executed(&mut self, rid: ResourceId, t: SimTime) {
        self.res[rid.0 as usize].applied = Some(t);
        self.discover_children(rid, t);
        let was_blocking = self.parse_blocked_by == Some(rid);
        self.sync_scripts.retain(|&(_, s)| s != rid);
        if was_blocking {
            self.parse_blocked_by = None;
            self.after_parse_progress(t);
        }
    }

    fn on_paint_flush(&mut self, t: SimTime) {
        self.flush_scheduled = false;
        self.mt_free = self.mt_free.max(t);
        for (rid, rect, kind, generation) in std::mem::take(&mut self.pending_paints) {
            self.paints.push(PaintEvent { time: t, resource: rid, rect, kind, generation });
            if kind != PaintKind::DocumentBand && generation == 0 {
                self.res[rid.0 as usize].applied = Some(t);
            }
            // Ads rotate creatives: schedule up to MAX_AD_ROTATIONS
            // further repaints of the same slot. Pure pixel churn — no
            // network, no onload impact — but it pushes LastVisualChange
            // well past the point the page feels ready.
            if kind == PaintKind::Ad && generation < max_ad_rotations(rid) {
                let delay = ad_rotation_delay(rid, generation);
                self.tasks.schedule(t + delay, Ev::AdRotate(rid, generation + 1));
            }
        }
    }

    fn on_ad_rotate(&mut self, rid: ResourceId, generation: u8, t: SimTime) {
        let Some(rect) = self.site.resources[rid.0 as usize].rect else { return };
        self.pending_paints.push((rid, rect, PaintKind::Ad, generation));
        self.schedule_flush(t);
    }

    // ------------------------------------------------------------------
    // Discovery / parsing / painting helpers
    // ------------------------------------------------------------------

    /// Preload scanner: discover every HTML-referenced resource whose
    /// reference lies within the received bytes.
    fn scan_for_discoveries(&mut self, t: SimTime) {
        for r in &self.site.resources {
            if self.discovered[r.id.0 as usize] {
                continue;
            }
            if let Discovery::Html { at_fraction } = r.discovery {
                let pos = (f64::from(at_fraction) * self.html_total as f64) as u64;
                if pos <= self.html_received {
                    self.discovered[r.id.0 as usize] = true;
                    self.tasks.schedule(t, Ev::Discovered(r.id));
                }
            }
        }
    }

    /// Children injected by `parent` (fonts from CSS, ads from trackers…)
    /// become discoverable once the parent applies.
    fn discover_children(&mut self, parent: ResourceId, t: SimTime) {
        for r in &self.site.resources {
            if self.discovered[r.id.0 as usize] {
                continue;
            }
            if r.discovery == (Discovery::Parent { parent }) {
                let delay = match r.kind {
                    ResourceKind::Ad => {
                        // Deterministic heavy-ish tail per slot: auctions,
                        // passbacks and timer-driven slots land anywhere in
                        // [delay, delay + spread].
                        let h = (u64::from(r.id.0) ^ 0xa5a5)
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            >> 17;
                        let spread_us = self.cfg.ad_injection_spread.as_micros();
                        let extra = if spread_us == 0 { 0 } else { h % spread_us };
                        self.cfg.ad_injection_delay + SimDuration::from_micros(extra)
                    }
                    ResourceKind::Widget => self.cfg.widget_injection_delay,
                    ResourceKind::Tracker => SimDuration::from_millis(80),
                    _ => SimDuration::ZERO,
                };
                self.discovered[r.id.0 as usize] = true;
                self.tasks.schedule(t + delay, Ev::Discovered(r.id));
            }
        }
    }

    /// Queue the next chunk of parsing if bytes are available and the
    /// parser is not blocked.
    fn schedule_parse(&mut self, t: SimTime) {
        if self.parse_task_running || self.parse_blocked_by.is_some() {
            return;
        }
        // Parse up to the next unexecuted sync script or the received end.
        let stop = match self.sync_scripts.first() {
            Some(&(pos, _)) if pos <= self.html_received => pos,
            _ => self.html_received,
        };
        let from = self.parse_scheduled_to;
        if stop <= from {
            return;
        }
        self.parse_scheduled_to = stop;
        let cost_us =
            ((stop - from) as f64 * self.cfg.cpu.parse_per_byte_us * self.cfg.device.cpu_factor)
                as u64;
        let start = self.mt_free.max(t);
        self.mt_free = start + SimDuration::from_micros(cost_us);
        self.cpu_busy_us += cost_us;
        self.tasks.schedule(self.mt_free, Ev::ParseDone { upto: stop });
        self.parse_task_running = true;
    }

    fn queue_script_execution(&mut self, rid: ResourceId, t: SimTime) {
        let bytes = self.site.resources[rid.0 as usize].body_bytes;
        let cost_us =
            (bytes as f64 * self.cfg.cpu.js_exec_per_byte_us * self.cfg.device.cpu_factor) as u64;
        let start = self.mt_free.max(t);
        self.mt_free = start + SimDuration::from_micros(cost_us);
        self.cpu_busy_us += cost_us;
        self.tasks.schedule(self.mt_free, Ev::ScriptExecuted(rid));
    }

    /// Every discovered render-blocking *stylesheet* has applied (or was
    /// skipped): non-text painting may proceed. (Chrome blocks first
    /// paint on head CSS; images do not wait for web fonts.)
    fn css_unblocked(&self) -> bool {
        self.blocking_applied(|kind| kind == ResourceKind::Css)
    }

    /// Stylesheets *and fonts* applied: document text may paint. Fonts
    /// gate only the text they style, the closest tractable equivalent
    /// of per-text-run font blocking.
    fn text_unblocked(&self) -> bool {
        self.blocking_applied(|kind| matches!(kind, ResourceKind::Css | ResourceKind::Font))
    }

    fn blocking_applied(&self, relevant: impl Fn(ResourceKind) -> bool) -> bool {
        self.site.resources.iter().all(|r| {
            if !r.render_blocking || !relevant(r.kind) || !self.discovered[r.id.0 as usize] {
                return true;
            }
            let tr = &self.res[r.id.0 as usize];
            tr.applied.is_some() || tr.skipped.is_some()
        })
    }

    /// Move loaded visual resources to the pending-paint list when
    /// rendering allows it.
    fn release_paintables(&mut self, t: SimTime) {
        if !self.css_unblocked() {
            return;
        }
        let ready: Vec<ResourceId> = self
            .awaiting_paint
            .iter()
            .copied()
            .filter(|rid| {
                // Parser must have passed an HTML-referenced element for
                // it to have a layout slot; injected content appears as
                // soon as it loads.
                match self.site.resources[rid.0 as usize].discovery {
                    Discovery::Html { at_fraction } => {
                        let pos = (f64::from(at_fraction) * self.html_total as f64) as u64;
                        self.html_parsed >= pos
                    }
                    _ => true,
                }
            })
            .collect();
        for rid in ready {
            self.awaiting_paint.remove(&rid);
            let r = &self.site.resources[rid.0 as usize];
            let Some(rect) = r.rect else { continue };
            let kind = match r.kind {
                ResourceKind::Ad => PaintKind::Ad,
                ResourceKind::Widget => PaintKind::Widget,
                _ => PaintKind::Image,
            };
            self.pending_paints.push((rid, rect, kind, 0));
        }
        self.queue_document_band(t);
        if !self.pending_paints.is_empty() {
            self.schedule_flush(t);
        }
    }

    /// Paint the newly parsed portion of the document as a band.
    fn queue_document_band(&mut self, t: SimTime) {
        if !self.text_unblocked() || self.html_total == 0 {
            return;
        }
        // No text before the parser clears the <head>: stylesheet
        // references live in the first ~15 % of the document, and a flush
        // before they have even been *seen* would paint unstyled text a
        // real browser never shows.
        if (self.html_parsed as f64) < 0.15 * self.html_total as f64 {
            return;
        }
        let frac = self.html_parsed as f64 / self.html_total as f64;
        let new_height = ((self.site.page_height as f64) * frac) as u32;
        if new_height > self.painted_doc_height {
            let band = Rect {
                x: 0,
                y: self.painted_doc_height,
                w: self.site.canvas_width,
                h: new_height - self.painted_doc_height,
            };
            self.painted_doc_height = new_height;
            self.pending_paints.push((ResourceId(0), band, PaintKind::DocumentBand, 0));
            self.schedule_flush(t);
        }
    }

    fn schedule_flush(&mut self, t: SimTime) {
        if self.flush_scheduled {
            return;
        }
        self.flush_scheduled = true;
        let at = align_to_vsync(self.mt_free.max(t) + self.cfg.cpu.style_flush, self.cfg.cpu.vsync);
        self.tasks.schedule(at, Ev::PaintFlush);
    }

    fn check_onload(&mut self, t: SimTime) {
        if let Some(parse_done) = self.parse_complete {
            if self.onload.is_none() && self.outstanding.is_empty() {
                self.onload = Some(t.max(parse_done));
            }
        }
    }

    fn finalize(mut self) -> LoadTrace {
        // Resources never discovered: their injection chain was cut.
        for r in &self.site.resources {
            let tr = &mut self.res[r.id.0 as usize];
            if tr.discovered.is_none() && tr.skipped.is_none() {
                tr.skipped = Some(SkipReason::ParentBlocked);
            }
        }
        let protocol = match self.cfg.protocol {
            Protocol::Http1 => "h1",
            Protocol::Http2 => "h2",
        };
        let trace = LoadTrace {
            site: self.site.name.clone(),
            protocol: protocol.into(),
            network: self.cfg.network.name.into(),
            adblocker: self.cfg.adblocker.map(|b| b.name().into()),
            resources: self.res,
            paints: self.paints,
            parse_complete: self.parse_complete,
            onload: self.onload,
            quiescent: Some(self.last_event_time),
            above_fold_area: self.site.above_fold_area(),
            fold_y: self.site.fold_y,
            canvas_width: self.site.canvas_width,
            page_height: self.site.page_height,
        };
        debug_assert_eq!(trace.check_invariants(), Ok(()));
        obs::BROWSER_PAGE_LOADS.incr();
        obs::BROWSER_RESOURCES_FETCHED
            .add(trace.resources.iter().filter(|r| r.fetched()).count() as u64);
        obs::BROWSER_PAINT_EVENTS.add(trace.paints.len() as u64);
        obs::BROWSER_MAIN_THREAD_CPU_US.add(self.cpu_busy_us);
        obs::BROWSER_LOAD_CPU_MS.record(self.cpu_busy_us / 1000);
        trace
    }
}
