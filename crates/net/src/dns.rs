//! DNS resolution model.
//!
//! webpeg performs a "primer" load before each measured load so that the
//! ISP resolver's cache is warm and a cold DNS miss cannot skew the
//! recorded page-load time (§3.1, following the methodology of the
//! authors' "Is the Web HTTP/2 Yet?" paper). Reproducing that requires a
//! resolver with a *cache*, not a constant: the first lookup of a name is
//! expensive and recursive, subsequent lookups are cheap until the TTL
//! expires.

use eyeorg_stats::rng::Rng;
use std::collections::BTreeMap;

use eyeorg_stats::Seed;

use crate::time::{SimDuration, SimTime};

/// Outcome of one name resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// How long the lookup took.
    pub latency: SimDuration,
    /// Whether the answer came from cache.
    pub cache_hit: bool,
}

/// Configuration of the resolver's latency behaviour.
#[derive(Debug, Clone, Copy)]
pub struct DnsConfig {
    /// Latency of a cache hit (stub ↔ recursive resolver on the ISP LAN).
    pub hit_latency: SimDuration,
    /// Minimum latency of a recursive (cold) lookup.
    pub miss_latency_min: SimDuration,
    /// Maximum additional latency of a cold lookup; actual cold latency is
    /// drawn uniformly from `[min, min + spread]` per name (then fixed for
    /// that name, as the authoritative path doesn't change per query).
    pub miss_latency_spread: SimDuration,
    /// TTL applied to cached answers.
    pub ttl: SimDuration,
}

impl Default for DnsConfig {
    fn default() -> Self {
        DnsConfig {
            hit_latency: SimDuration::from_millis(2),
            miss_latency_min: SimDuration::from_millis(20),
            miss_latency_spread: SimDuration::from_millis(100),
            ttl: SimDuration::from_secs(300),
        }
    }
}

/// A caching stub-resolver model.
#[derive(Debug)]
pub struct Resolver {
    cfg: DnsConfig,
    rng: Rng,
    /// name → (expiry, cold latency drawn for this name).
    cache: BTreeMap<String, (SimTime, SimDuration)>,
    hits: u64,
    misses: u64,
}

impl Resolver {
    /// A resolver with an empty cache.
    pub fn new(cfg: DnsConfig, seed: Seed) -> Resolver {
        Resolver {
            cfg,
            rng: Rng::seed_from_u64(seed.derive("dns").value()),
            cache: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Resolve `name` at time `now`.
    pub fn resolve(&mut self, name: &str, now: SimTime) -> Resolution {
        if let Some(&(expiry, _)) = self.cache.get(name) {
            if expiry > now {
                self.hits += 1;
                return Resolution { latency: self.cfg.hit_latency, cache_hit: true };
            }
        }
        self.misses += 1;
        let spread_us = self.cfg.miss_latency_spread.as_micros();
        let extra = if spread_us == 0 { 0 } else { self.rng.random_range(0..=spread_us) };
        let cold = self.cfg.miss_latency_min + SimDuration::from_micros(extra);
        self.cache.insert(name.to_owned(), (now + cold + self.cfg.ttl, cold));
        Resolution { latency: cold, cache_hit: false }
    }

    /// Drop every cached entry (a fresh browser profile does this between
    /// loads; the *resolver*'s cache — modelled here — survives, so call
    /// this only to model a genuinely cold resolver).
    pub fn flush(&mut self) {
        self.cache.clear();
    }

    /// Cache hits served.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Recursive lookups performed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_lookup_is_cold_then_cached() {
        let mut r = Resolver::new(DnsConfig::default(), Seed(1));
        let a = r.resolve("example.com", SimTime::ZERO);
        assert!(!a.cache_hit);
        assert!(a.latency >= SimDuration::from_millis(20));
        let b = r.resolve("example.com", SimTime::from_millis(100));
        assert!(b.cache_hit);
        assert_eq!(b.latency, SimDuration::from_millis(2));
        assert_eq!(r.hits(), 1);
        assert_eq!(r.misses(), 1);
    }

    #[test]
    fn ttl_expiry_forces_recursive_lookup() {
        let cfg = DnsConfig { ttl: SimDuration::from_secs(1), ..DnsConfig::default() };
        let mut r = Resolver::new(cfg, Seed(2));
        r.resolve("example.com", SimTime::ZERO);
        let late = r.resolve("example.com", SimTime::from_secs(10));
        assert!(!late.cache_hit);
        assert_eq!(r.misses(), 2);
    }

    #[test]
    fn distinct_names_distinct_entries() {
        let mut r = Resolver::new(DnsConfig::default(), Seed(3));
        r.resolve("a.com", SimTime::ZERO);
        let b = r.resolve("b.com", SimTime::ZERO);
        assert!(!b.cache_hit);
    }

    #[test]
    fn cold_latency_deterministic_per_seed() {
        let run = |seed| {
            let mut r = Resolver::new(DnsConfig::default(), seed);
            r.resolve("x.com", SimTime::ZERO).latency
        };
        assert_eq!(run(Seed(9)), run(Seed(9)));
    }

    #[test]
    fn flush_empties_cache() {
        let mut r = Resolver::new(DnsConfig::default(), Seed(4));
        r.resolve("a.com", SimTime::ZERO);
        r.flush();
        assert!(!r.resolve("a.com", SimTime::from_millis(1)).cache_hit);
    }

    #[test]
    fn primer_pattern_warms_cache() {
        // The webpeg primer: resolve every origin once, then the measured
        // load sees only hits.
        let mut r = Resolver::new(DnsConfig::default(), Seed(5));
        let origins = ["site.com", "cdn.site.com", "ads.net"];
        for o in &origins {
            r.resolve(o, SimTime::ZERO);
        }
        let t = SimTime::from_secs(5);
        assert!(origins.iter().all(|o| r.resolve(o, t).cache_hit));
    }
}
