//! The paper's third campaign in miniature: how do AdBlock, Ghostery and
//! uBlock affect perceived page load time?
//!
//! Each ad-displaying site is captured with ads (A) and once per blocker
//! (B); separate crowds judge each pairing. §5.4's finding — Ghostery the
//! clear favourite, with blocked-vs-ads comparisons more contested than
//! protocol comparisons — should reproduce at this scale.
//!
//! ```sh
//! cargo run --release --example adblocker_comparison
//! ```

use eyeorg_browser::{AdBlocker, BrowserConfig};
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_net::NetworkProfile;
use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;
use eyeorg_workload::ad_heavy;

fn main() {
    let seed = Seed(99);
    let sites = ad_heavy(seed, 9, 2);
    let browser = BrowserConfig::new().with_network(NetworkProfile::fttc());

    println!("blocker    mean-score  >=0.8  contested  blocked-requests");
    for blocker in AdBlocker::ALL {
        let stimuli = adblock_ab_stimuli(
            &sites,
            &browser,
            blocker,
            &CaptureConfig::default(),
            seed.derive(blocker.name()),
        );
        // Count what the extension actually removed, from the captures.
        let blocked: usize = stimuli
            .iter()
            .map(|s| {
                s.b.trace().resources.iter().filter(|r| r.skipped.is_some()).count()
            })
            .sum();
        let campaign = run_ab_campaign(
            stimuli,
            &CrowdFlower,
            60,
            &ExperimentConfig::default(),
            seed.derive(blocker.name()),
        );
        let report = filter_ab(&campaign, &paper_pipeline());
        let tallies = ab_tallies(&campaign, &report);
        let scores: Vec<f64> = tallies.iter().filter_map(AbTally::score).collect();
        let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
        let strong = scores.iter().filter(|&&s| s >= 0.8).count();
        let contested = scores.iter().filter(|&&s| (0.2..=0.8).contains(&s)).count();
        println!(
            "{:<10} {mean:>9.2} {:>6}/{} {:>8}/{} {:>12}",
            blocker.name(),
            strong,
            scores.len(),
            contested,
            scores.len(),
            blocked,
        );
    }
    println!("\n(1.0 = the ad-blocked version felt faster on every decided vote)");
}
