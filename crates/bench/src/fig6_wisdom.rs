//! Figure 6: wisdom of the crowd.
//!
//! (a) per-video `UserPerceivedPLT` CDFs showing crowd consensus (with
//! heads/tails from careless participants), (b) CDFs of per-video UPLT
//! standard deviation under progressively tighter percentile bands —
//! paid responses restricted to 25–75 land on the trusted curve — and
//! (c) CDFs of A/B agreement for paid vs trusted pools (high agreement,
//! never a full split).

use eyeorg_core::analysis::{ab_tallies, uplt_samples, uplt_stdev};
use eyeorg_core::viz::ascii_cdfs;
use eyeorg_stats::{Ecdf, Summary};

use crate::campaigns::ValidationSet;
use crate::series_csv;

/// Build the Fig. 6 report.
pub fn run(v: &ValidationSet) -> String {
    let mut out = String::new();

    // ---- (a): representative per-video CDFs ---------------------------
    out.push_str("=== Figure 6(a): sample per-video UPLT CDFs (paid) ===\n");
    let samples = uplt_samples(&v.tl_paid.campaign, &v.tl_paid.report, None);
    // Pick four videos spread across the mean-UPLT range.
    let mut order: Vec<usize> = (0..samples.len()).filter(|&i| samples[i].len() >= 5).collect();
    order.sort_by(|&a, &b| {
        let ma = Summary::of(&samples[a]).map(|s| s.mean).unwrap_or(0.0);
        let mb = Summary::of(&samples[b]).map(|s| s.mean).unwrap_or(0.0);
        ma.partial_cmp(&mb).expect("finite means")
    });
    let picks: Vec<usize> = [0.1, 0.4, 0.7, 0.95]
        .iter()
        .map(|f| order[(f * (order.len() - 1) as f64) as usize])
        .collect();
    for (k, &vi) in picks.iter().enumerate() {
        let s = Summary::of(&samples[vi]).expect("picked non-empty");
        out.push_str(&format!(
            "video-{} ({}): n={}, mean {:.1}s, stdev {:.1}s, range {:.1}-{:.1}s\n",
            k + 1,
            v.tl_paid.campaign.stimuli_names[vi],
            s.n,
            s.mean,
            s.stdev,
            s.min,
            s.max
        ));
    }

    // ---- (b): stdev CDFs under bands ----------------------------------
    out.push_str("\n=== Figure 6(b): per-video UPLT stdev CDFs ===\n");
    let series = stdev_series(v);
    for (label, stdevs) in &series {
        let s = Summary::of(stdevs).expect("non-empty");
        out.push_str(&format!("{label:<18} median stdev {:.2}s\n", s.median));
    }
    let ecdfs: Vec<(&str, Ecdf)> = series
        .iter()
        .map(|(l, s)| (*l, Ecdf::new(s).expect("non-empty")))
        .collect();
    let refs: Vec<(&str, &Ecdf)> = ecdfs.iter().map(|(l, e)| (*l, e)).collect();
    out.push_str(&ascii_cdfs(&refs, 10, 48));
    // The §4.2 alignment claim.
    let paid_band = &series.iter().find(|(l, _)| *l == "paid 25-75").expect("present").1;
    let trusted_all = &series.iter().find(|(l, _)| *l == "trusted all").expect("present").1;
    let mp = Summary::of(paid_band).expect("non-empty").median;
    let mt = Summary::of(trusted_all).expect("non-empty").median;
    out.push_str(&format!(
        "\npaid(25-75) median stdev {mp:.2}s vs trusted(all) {mt:.2}s — in line: {}\n",
        (mp - mt).abs() < mt.max(0.2)
    ));

    // ---- (c): A/B agreement -------------------------------------------
    out.push_str("\n=== Figure 6(c): A/B agreement CDFs ===\n");
    let ag = |f: &crate::campaigns::Filtered<eyeorg_core::campaign::AbCampaign>| -> Vec<f64> {
        ab_tallies(&f.campaign, &f.report)
            .iter()
            .filter_map(|t| t.agreement().map(|a| a * 100.0))
            .collect()
    };
    let ap = ag(&v.ab_paid);
    let at = ag(&v.ab_trusted);
    for (label, a) in [("paid", &ap), ("trusted", &at)] {
        let s = Summary::of(a).expect("non-empty");
        out.push_str(&format!(
            "{label:<8} min agreement {:.0}%, median {:.0}%, >=85% on {:.0}% of videos\n",
            s.min,
            s.median,
            100.0 * a.iter().filter(|&&x| x >= 85.0).count() as f64 / a.len() as f64
        ));
    }
    let min_agree = ap.iter().chain(&at).cloned().fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "never a full split: minimum agreement {min_agree:.0}% (paper: 45%, floor 33%)\n"
    ));
    out
}

/// The five stdev series of Fig. 6(b).
pub fn stdev_series(v: &ValidationSet) -> Vec<(&'static str, Vec<f64>)> {
    let collect = |f: &crate::campaigns::Filtered<eyeorg_core::campaign::TimelineCampaign>,
                   band: Option<(f64, f64)>|
     -> Vec<f64> {
        uplt_stdev(&f.campaign, &f.report, band).into_iter().flatten().collect()
    };
    vec![
        ("paid all", collect(&v.tl_paid, None)),
        ("paid 10-90", collect(&v.tl_paid, Some((10.0, 90.0)))),
        ("paid 25-75", collect(&v.tl_paid, Some((25.0, 75.0)))),
        ("trusted all", collect(&v.tl_trusted, None)),
        ("trusted 25-75", collect(&v.tl_trusted, Some((25.0, 75.0)))),
    ]
}

/// CSV artefacts: the five stdev CDFs and the two agreement CDFs.
pub fn csv(v: &ValidationSet) -> String {
    let mut out = String::new();
    for (label, stdevs) in stdev_series(v) {
        if let Some(e) = Ecdf::new(&stdevs) {
            out.push_str(&series_csv(
                &format!("stdev_{},cdf", label.replace([' ', '-'], "_")),
                &e.points(),
            ));
        }
    }
    for (label, f) in [("paid", &v.ab_paid), ("trusted", &v.ab_trusted)] {
        let agreements: Vec<f64> = ab_tallies(&f.campaign, &f.report)
            .iter()
            .filter_map(|t| t.agreement())
            .collect();
        if let Some(e) = Ecdf::new(&agreements) {
            out.push_str(&series_csv(&format!("agreement_{label},cdf"), &e.points()));
        }
    }
    out
}
