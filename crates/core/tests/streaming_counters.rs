//! Counter-fingerprint equivalence between the streaming and
//! materializing engines. Lives in its own integration-test binary (=
//! its own process) because the obs registry is process-global: any
//! concurrently running campaign would pollute the snapshots.

use eyeorg_browser::BrowserConfig;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::Seed;
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

fn cfg(threads: usize) -> ExperimentConfig {
    ExperimentConfig { threads, ..ExperimentConfig::default() }
}

/// One test fn on purpose: the harness runs `#[test]`s concurrently
/// within a binary, and these all mutate the global metric registry.
#[test]
fn counter_fingerprints_match_across_engines_shards_and_threads() {
    let capture = CaptureConfig { repeats: 2, ..CaptureConfig::default() };
    let sites = alexa_like(Seed(811), 4);
    let tl = timeline_stimuli(&sites, &BrowserConfig::new(), &capture, Seed(812));
    let ab = protocol_ab_stimuli(&sites, &BrowserConfig::new(), &capture, Seed(813));
    let n = 150;

    eyeorg_obs::enable();

    // Timeline: materializing reference (campaign + filter + digest — the
    // digest fold owns the per-site retained counters).
    eyeorg_obs::reset();
    let campaign = run_timeline_campaign(tl.clone(), &CrowdFlower, n, &cfg(0), Seed(820));
    let report = filter_timeline(&campaign, &paper_pipeline());
    let _ = digest_timeline(&campaign, &report, n, &DigestParams::default());
    let reference = eyeorg_obs::snapshot("tl", 0).counter_fingerprint();

    for shard in [1usize, 16, 64, n + 1] {
        for threads in [1usize, 2, 0] {
            eyeorg_obs::reset();
            let _ = stream_timeline_campaign(
                &tl,
                &CrowdFlower,
                n,
                &cfg(threads),
                &paper_pipeline(),
                Seed(820),
                &StreamConfig { shard_size: shard, ..StreamConfig::default() },
            );
            let got = eyeorg_obs::snapshot("tl", threads).counter_fingerprint();
            assert_eq!(got, reference, "timeline shard={shard} threads={threads}");

            eyeorg_obs::reset();
            let _ = flat_timeline_campaign(
                &tl,
                &CrowdFlower,
                n,
                &cfg(threads),
                &paper_pipeline(),
                Seed(820),
                &StreamConfig { shard_size: shard, ..StreamConfig::default() },
            );
            let got = eyeorg_obs::snapshot("tl-flat", threads).counter_fingerprint();
            assert_eq!(got, reference, "flat timeline shard={shard} threads={threads}");
        }
    }

    // Chaos schedules must not leak into the counters either: the
    // demand-driven fold bumps collected/skipped as pure per-shard
    // totals, so permuted worker interleavings land on the same
    // fingerprint.
    for chaos in [7u64, 23] {
        eyeorg_stats::set_chaos_seed(chaos);
        eyeorg_obs::reset();
        let _ = flat_timeline_campaign(
            &tl,
            &CrowdFlower,
            n,
            &cfg(0),
            &paper_pipeline(),
            Seed(820),
            &StreamConfig { shard_size: 16, ..StreamConfig::default() },
        );
        eyeorg_stats::set_chaos_seed(0);
        let got = eyeorg_obs::snapshot("tl-flat-chaos", 0).counter_fingerprint();
        assert_eq!(got, reference, "flat timeline chaos={chaos}");
    }

    // A/B: same drill.
    eyeorg_obs::reset();
    let campaign = run_ab_campaign(ab.clone(), &CrowdFlower, n, &cfg(0), Seed(830));
    let report = filter_ab(&campaign, &paper_pipeline());
    let _ = digest_ab(&campaign, &report, n);
    let reference = eyeorg_obs::snapshot("ab", 0).counter_fingerprint();

    for shard in [1usize, 64, n + 1] {
        for threads in [1usize, 2, 0] {
            eyeorg_obs::reset();
            let _ = stream_ab_campaign(
                &ab,
                &CrowdFlower,
                n,
                &cfg(threads),
                &paper_pipeline(),
                Seed(830),
                &StreamConfig { shard_size: shard, ..StreamConfig::default() },
            );
            let got = eyeorg_obs::snapshot("ab", threads).counter_fingerprint();
            assert_eq!(got, reference, "ab shard={shard} threads={threads}");

            eyeorg_obs::reset();
            let _ = flat_ab_campaign(
                &ab,
                &CrowdFlower,
                n,
                &cfg(threads),
                &paper_pipeline(),
                Seed(830),
                &StreamConfig { shard_size: shard, ..StreamConfig::default() },
            );
            let got = eyeorg_obs::snapshot("ab-flat", threads).counter_fingerprint();
            assert_eq!(got, reference, "flat ab shard={shard} threads={threads}");
        }
    }
}
