//! Extension experiment: how many responses per video does a stable
//! crowd UPLT need? The paper serves each video to ~30 (validation) or
//! ~60 (final) participants; this study subsamples k responses per video
//! and measures how far the k-response banded mean strays from the
//! full-crowd value — the number a practitioner needs for budgeting.

use eyeorg_core::prelude::*;
use eyeorg_stats::Summary;

fn main() {
    let scale = eyeorg_bench::Scale::from_env();
    let fin = eyeorg_bench::campaigns::build_final_timeline(&scale);
    let full_samples = uplt_samples(&fin.campaign, &fin.report, None);
    let full_mean: Vec<Option<f64>> = full_samples
        .iter()
        .map(|s| {
            let banded = wisdom_band(s, 25.0, 75.0);
            Summary::of(&banded).map(|x| x.mean)
        })
        .collect();

    let mut out = String::new();
    out.push_str("=== Extension: crowd-size convergence ===\n");
    out.push_str("k responses  median |error| vs full crowd  90th pct |error|\n");
    for k in [3usize, 5, 10, 15, 20, 30, 45] {
        let mut errors = Vec::new();
        for (vi, samples) in full_samples.iter().enumerate() {
            let Some(full) = full_mean[vi] else { continue };
            if samples.len() < k {
                continue;
            }
            // Deterministic subsample: stride through the responses (they
            // arrive in participant order, which is already arbitrary
            // with respect to response value).
            let stride = samples.len() / k;
            let sub: Vec<f64> =
                (0..k).map(|i| samples[(i * stride.max(1)) % samples.len()]).collect();
            let banded = wisdom_band(&sub, 25.0, 75.0);
            if let Some(s) = Summary::of(&banded) {
                errors.push((s.mean - full).abs());
            }
        }
        if errors.is_empty() {
            continue;
        }
        let med = eyeorg_stats::percentile(&errors, 50.0).expect("non-empty");
        let p90 = eyeorg_stats::percentile(&errors, 90.0).expect("non-empty");
        out.push_str(&format!(
            "{k:>11} {:>18.0} ms {:>22.0} ms   (n_videos={})\n",
            med * 1000.0,
            p90 * 1000.0,
            errors.len()
        ));
    }
    out.push_str(
        "\n(the paper's ~30 responses/video in validation keep the banded mean\n\
         within tens of milliseconds of the 60-response final campaigns)\n",
    );
    println!("{out}");
    let path = eyeorg_bench::write_result("ext_convergence.txt", &out);
    eprintln!("wrote {}", path.display());
}
