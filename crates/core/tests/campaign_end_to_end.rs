//! End-to-end platform tests: miniature versions of the paper's
//! validation campaigns, exercised through the full pipeline — corpus →
//! webpeg captures → recruitment → responses → filtering → analysis.

use eyeorg_browser::BrowserConfig;
use eyeorg_core::prelude::*;
use eyeorg_crowd::{CrowdFlower, TrustedChannel};
use eyeorg_stats::{Seed, Summary};
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

fn quick_capture() -> CaptureConfig {
    CaptureConfig { repeats: 3, ..CaptureConfig::default() }
}

fn mini_timeline(n_participants: usize, trusted: bool, seed: u64) -> TimelineCampaign {
    let sites = alexa_like(Seed(500), 6);
    let stimuli =
        timeline_stimuli(&sites, &BrowserConfig::new(), &quick_capture(), Seed(501));
    if trusted {
        run_timeline_campaign(
            stimuli,
            &TrustedChannel,
            n_participants,
            &ExperimentConfig::default(),
            Seed(seed),
        )
    } else {
        run_timeline_campaign(
            stimuli,
            &CrowdFlower,
            n_participants,
            &ExperimentConfig::default(),
            Seed(seed),
        )
    }
}

#[test]
fn timeline_campaign_structure() {
    let c = mini_timeline(40, false, 1);
    // The captcha gate may turn away a recruit or two (bots, misfires).
    let n = c.participants.len();
    assert!((35..=40).contains(&n), "admitted {n} of 40");
    assert_eq!(c.rows.len(), n * 6);
    assert_eq!(c.controls.len(), n);
    // Every stimulus collected responses.
    for si in 0..c.stimuli_names.len() {
        let n = c.rows.iter().filter(|r| r.stimulus == si && r.response.is_some()).count();
        assert!(n >= 20, "stimulus {si} has only {n} responses");
    }
    // Cost matches the CrowdFlower model.
    assert!((c.recruitment_cost_usd - 40.0 * 0.12).abs() < 1e-9);
}

#[test]
fn filtering_drops_plausible_fraction_of_paid() {
    let c = mini_timeline(120, false, 2);
    let n = c.participants.len();
    let report = filter_timeline(&c, &paper_pipeline());
    let dropped = report.dropped() as f64 / n as f64;
    // The paper flags ~20 % of paid participants as low performers.
    assert!(
        (0.05..0.45).contains(&dropped),
        "dropped fraction {dropped} out of plausible range"
    );
    assert!(report.kept.len() + report.dropped() == n);
    // Every §4.3 technique catches someone at this scale.
    assert!(report.engagement + report.soft + report.control > 0);
}

#[test]
fn trusted_pool_is_cleaner_than_paid() {
    let paid = mini_timeline(80, false, 3);
    let trusted = mini_timeline(80, true, 3);
    let rp = filter_timeline(&paid, &paper_pipeline());
    let rt = filter_timeline(&trusted, &paper_pipeline());
    assert!(
        rt.dropped() < rp.dropped(),
        "trusted {} vs paid {}",
        rt.dropped(),
        rp.dropped()
    );
}

#[test]
fn wisdom_band_tightens_agreement() {
    // Fig. 6b: filtering to the 25–75 band collapses the per-video
    // standard deviation.
    let c = mini_timeline(80, false, 4);
    let report = filter_timeline(&c, &paper_pipeline());
    let all = uplt_stdev(&c, &report, None);
    let banded = uplt_stdev(&c, &report, Some((25.0, 75.0)));
    let mean_all: f64 =
        all.iter().flatten().sum::<f64>() / all.iter().flatten().count() as f64;
    let mean_banded: f64 =
        banded.iter().flatten().sum::<f64>() / banded.iter().flatten().count() as f64;
    assert!(
        mean_banded < mean_all * 0.7,
        "band should tighten stdev: {mean_banded:.2} vs {mean_all:.2}"
    );
}

#[test]
fn filtered_paid_aligns_with_trusted() {
    // The §4.2 validation claim: after filtering + banding, paid and
    // trusted crowds agree on per-video UPLT.
    let paid = mini_timeline(100, false, 5);
    let trusted = mini_timeline(100, true, 5);
    let rp = filter_timeline(&paid, &paper_pipeline());
    let rt = filter_timeline(&trusted, &paper_pipeline());
    let up = mean_uplt(&paid, &rp, Some((25.0, 75.0)));
    let ut = mean_uplt(&trusted, &rt, Some((25.0, 75.0)));
    for (i, (p, t)) in up.iter().zip(&ut).enumerate() {
        let (p, t) = (p.unwrap(), t.unwrap());
        let rel = (p - t).abs() / t.max(0.5);
        assert!(rel < 0.35, "video {i}: paid {p:.2}s vs trusted {t:.2}s");
    }
}

#[test]
fn campaigns_are_deterministic() {
    let a = mini_timeline(20, false, 6);
    let b = mini_timeline(20, false, 6);
    let ra = filter_timeline(&a, &paper_pipeline());
    let rb = filter_timeline(&b, &paper_pipeline());
    assert_eq!(ra, rb);
    assert_eq!(
        mean_uplt(&a, &ra, Some((25.0, 75.0))),
        mean_uplt(&b, &rb, Some((25.0, 75.0)))
    );
}

#[test]
fn ab_campaign_h2_vs_h1_shape() {
    let sites = alexa_like(Seed(510), 6);
    let stimuli =
        protocol_ab_stimuli(&sites, &BrowserConfig::new(), &quick_capture(), Seed(511));
    let campaign = run_ab_campaign(
        stimuli,
        &CrowdFlower,
        120,
        &ExperimentConfig::default(),
        Seed(512),
    );
    let report = filter_ab(&campaign, &paper_pipeline());
    let tallies = ab_tallies(&campaign, &report);
    // Every pair got votes; scores lean toward H2 (the B side) overall.
    let scores: Vec<f64> = tallies.iter().filter_map(|t| t.score()).collect();
    assert_eq!(scores.len(), 6, "all pairs decided by someone");
    let mean_score = Summary::of(&scores).unwrap().mean;
    assert!(mean_score > 0.55, "H2 should be preferred on average: {mean_score:.2}");
    // Agreement is meaningful (not uniformly split).
    for t in &tallies {
        assert!(t.agreement().unwrap() > 0.34);
    }
}

#[test]
fn table1_and_export_render() {
    let c = mini_timeline(30, false, 7);
    let report = filter_timeline(&c, &paper_pipeline());
    let row = table1_row(
        "PLT timeline",
        "Paid",
        &c.participants,
        c.recruitment_cost_usd,
        c.recruitment_duration_secs,
        c.stimuli_names.len(),
        &report,
    );
    let rendered = render_table1(&[row]);
    assert!(rendered.contains("PLT timeline"));
    assert!(rendered.contains("Engagement"));

    let export = export_timeline("validation-timeline", &c, &report);
    let json = to_json(&export);
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    let n = c.participants.len() as u64;
    assert_eq!(v["meta"]["participants"], n);
    assert_eq!(v["rows"].as_array().unwrap().len() as u64, n * 6);
    // Kept flags must be consistent with the filter report.
    for row in v["rows"].as_array().unwrap() {
        let pi = row["participant"].as_u64().unwrap() as usize;
        assert_eq!(row["kept"].as_bool().unwrap(), report.kept.contains(&pi));
    }
}

#[test]
fn response_timeline_viz_smoke() {
    let c = mini_timeline(40, false, 8);
    let report = filter_timeline(&c, &paper_pipeline());
    let samples = uplt_samples(&c, &report, None);
    let onload = c.videos[0].trace().onload.unwrap().as_secs_f64();
    let max = c.videos[0].duration().as_secs_f64();
    let viz = eyeorg_core::viz::response_timeline(
        &samples[0],
        max,
        60,
        &[('O', onload, "onload")],
    );
    assert!(viz.contains("onload"));
    assert!(viz.lines().count() >= 3);
}
