//! D8 waived: the thread count sizes a buffer, never digest bytes.

pub fn pool_fingerprint(items: &[u64]) -> u64 {
    // lint:allow(D8): n sizes the scratch pool; digest bytes come from items alone
    let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let _scratch = Vec::<u64>::with_capacity(n);
    items.iter().fold(7u64, |acc, v| acc.rotate_left(9) ^ v)
}
