//! Regenerate Figure 4 (participant behaviour, paid vs trusted).
fn main() {
    let scale = eyeorg_bench::Scale::from_env();
    let v = eyeorg_bench::campaigns::build_validation(&scale);
    let report = eyeorg_bench::fig4_behavior::run(&v);
    println!("{report}");
    eyeorg_bench::write_result("fig4.txt", &report);
    let path = eyeorg_bench::write_result("fig4.csv", &eyeorg_bench::fig4_behavior::csv(&v));
    eprintln!("wrote {}", path.display());
}
