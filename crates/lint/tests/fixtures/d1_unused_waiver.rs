//! D1 unused waiver: the line below is already clean.

// lint:allow(D1): stale excuse left over from a refactor
use std::collections::BTreeMap;

pub fn count(words: &[&str]) -> usize {
    let mut seen: BTreeMap<&str, u32> = BTreeMap::new();
    for w in words {
        *seen.entry(w).or_insert(0) += 1;
    }
    seen.len()
}
