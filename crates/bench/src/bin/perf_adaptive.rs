//! Harness for the adaptive early-stopping campaign driver
//! (DESIGN.md §3h): measures how many participants confidence-bound
//! pruning saves on the headline campaign, and gates the determinism
//! contract that makes the pruning safe to ship.
//!
//! Two modes:
//!
//! * `--smoke` — small configuration used by `scripts/verify.sh` and
//!   CI. Gates, exiting non-zero on any failure:
//!   (a) an **inactive** adaptive config (`epsilon = 0`, `max_n = 0`)
//!   is byte-identical to the plain streaming engine — digest *and*
//!   observability-counter fingerprint — for both backends across
//!   shard sizes, thread knobs, and epoch sizes (this is the
//!   counter-fingerprint half of the ε=0 gate; it owns the process
//!   because the obs registry is global);
//!   (b) with an **active** rule, the decision sequence, digest, and
//!   counter fingerprints are invariant across backends, shard sizes,
//!   thread knobs, and chaos seeds. With `--fingerprint-out PATH` it
//!   writes the fingerprints so the caller can `cmp` runs at different
//!   `EYEORG_THREADS` values.
//! * full (default) — the headline measurement: the 1,000,000 × 20
//!   campaign of `perf_scale` run once in full through the flat engine
//!   and once adaptively with the calibrated stopping rule. Gates:
//!   (c) the adaptive run simulates at least [`REDUCTION_GATE`]x fewer
//!   participants than the offered budget, and (d) every UPLT
//!   percentile in [`PERCENTILES`] of every stimulus is within the
//!   declared tolerance [`ACCURACY_TOL`] of the full run's value.
//!   Writes `results/BENCH_adaptive.json`.

use std::time::Instant;

use eyeorg_bench::campaigns::capture_browser;
use eyeorg_core::prelude::*;
use eyeorg_crowd::CrowdFlower;
use eyeorg_stats::{set_chaos_seed, Seed};
use eyeorg_video::CaptureConfig;
use eyeorg_workload::alexa_like;

const FULL_PARTICIPANTS: usize = 1_000_000;
const FULL_SITES: usize = 20;
const FULL_SHARD: usize = 8192;

/// Calibrated stopping rule for the full-scale measurement. The sketch
/// widens its median interval by one bin width once spilled, so
/// `epsilon` must sit above that resolution floor (~0.01 s on this
/// workload); 0.05 s staggers convergence over the first few epoch
/// barriers at 2–15k kept responses per stimulus — an order of
/// magnitude under the full run's ~215k — while keeping every reported
/// percentile well inside [`ACCURACY_TOL`].
const FULL_EPOCH: usize = 8_192;
const FULL_EPSILON: f64 = 0.05;
const FULL_MIN_N: u64 = 2_000;

/// The ISSUE's headline gate: budget ÷ participants actually simulated.
const REDUCTION_GATE: f64 = 3.0;

/// UPLT percentiles checked against the full run.
const PERCENTILES: [f64; 5] = [10.0, 25.0, 50.0, 75.0, 90.0];
/// Declared per-percentile accuracy tolerance, seconds. The stopping
/// rule bounds the *median* half-width by `epsilon`; tail percentiles
/// see larger sampling + sketch-resolution error, so the band widens
/// towards the tails. Values are ~2x the worst deltas measured on the
/// calibrated configuration (recorded in `BENCH_adaptive.json`).
const ACCURACY_TOL: [f64; 5] = [0.2, 0.2, 0.1, 0.1, 0.2];

const SMOKE_SITES: usize = 4;
const SMOKE_PARTICIPANTS: usize = 400;

fn stimuli(sites: usize, repeats: usize, seed: Seed) -> Vec<TimelineStimulus> {
    let corpus = alexa_like(seed.derive("sites"), sites);
    let capture = CaptureConfig { repeats, ..CaptureConfig::default() };
    timeline_stimuli(&corpus, &capture_browser(), &capture, seed.derive("capture"))
}

fn stream_run(
    stimuli: &[TimelineStimulus],
    n: usize,
    seed: Seed,
    shard: usize,
    threads: usize,
) -> (TimelineDigest, f64) {
    eyeorg_obs::reset();
    let cfg = ExperimentConfig { threads, ..ExperimentConfig::default() };
    let t = Instant::now();
    let digest = stream_timeline_campaign(
        stimuli,
        &CrowdFlower,
        n,
        &cfg,
        &paper_pipeline(),
        seed,
        &StreamConfig { shard_size: shard, ..StreamConfig::default() },
    );
    (digest, t.elapsed().as_secs_f64())
}

fn flat_run(
    stimuli: &[TimelineStimulus],
    n: usize,
    seed: Seed,
    shard: usize,
    threads: usize,
) -> (TimelineDigest, f64) {
    eyeorg_obs::reset();
    let cfg = ExperimentConfig { threads, ..ExperimentConfig::default() };
    let t = Instant::now();
    let digest = flat_timeline_campaign(
        stimuli,
        &CrowdFlower,
        n,
        &cfg,
        &paper_pipeline(),
        seed,
        &StreamConfig { shard_size: shard, ..StreamConfig::default() },
    );
    (digest, t.elapsed().as_secs_f64())
}

#[allow(clippy::too_many_arguments)] // mirrors the engine entry point
fn adaptive_run(
    stimuli: &[TimelineStimulus],
    budget: usize,
    seed: Seed,
    shard: usize,
    threads: usize,
    ac: &AdaptiveConfig,
    backend: AdaptiveBackend,
) -> (AdaptiveOutcome, f64) {
    eyeorg_obs::reset();
    let cfg = ExperimentConfig { threads, ..ExperimentConfig::default() };
    let t = Instant::now();
    let out = adaptive_timeline_campaign(
        stimuli,
        &CrowdFlower,
        budget,
        &cfg,
        &paper_pipeline(),
        seed,
        &StreamConfig { shard_size: shard, ..StreamConfig::default() },
        ac,
        backend,
    );
    (out, t.elapsed().as_secs_f64())
}

fn smoke(fp_out: Option<String>) {
    let seed = Seed(2016).derive("perf-adaptive-smoke");
    let stimuli = stimuli(SMOKE_SITES, 2, seed);
    let n = SMOKE_PARTICIPANTS;
    let run_seed = seed.derive("run");
    let mut identical = true;

    // Reference: the plain streaming engine.
    let (reference, ref_secs) = stream_run(&stimuli, n, run_seed, 64, 0);
    let reference_fp = reference.fingerprint();
    let reference_counters = eyeorg_obs::snapshot("adaptive-smoke", 0).counter_fingerprint();
    println!("smoke streaming reference: {ref_secs:.3}s");

    // Gate (a): inactive config == streaming engine, digest and
    // counters, for both backends x shards x threads x epoch sizes.
    let inactive = AdaptiveConfig { epoch: 37, epsilon: 0.0, min_n: 256, max_n: 0 };
    for backend in [AdaptiveBackend::Streaming, AdaptiveBackend::Flat] {
        for shard in [64usize, n + 1] {
            for threads in [1usize, 2, 0] {
                for epoch in [37usize, 256] {
                    let ac = AdaptiveConfig { epoch, ..inactive };
                    let (out, secs) =
                        adaptive_run(&stimuli, n, run_seed, shard, threads, &ac, backend);
                    let counters =
                        eyeorg_obs::snapshot("adaptive-smoke", threads).counter_fingerprint();
                    if out.digest.fingerprint() != reference_fp {
                        identical = false;
                        eprintln!(
                            "DIVERGENCE: eps=0 {backend:?} shard={shard} threads={threads} \
                             epoch={epoch} digest differs from streaming engine"
                        );
                    }
                    if counters != reference_counters {
                        identical = false;
                        eprintln!(
                            "DIVERGENCE: eps=0 {backend:?} shard={shard} threads={threads} \
                             epoch={epoch} counters differ from streaming engine"
                        );
                    }
                    if !out.decisions.is_empty() || out.participants_saved() != 0 {
                        identical = false;
                        eprintln!("DIVERGENCE: inactive config took decisions");
                    }
                    println!(
                        "smoke eps=0 {backend:?} shard={shard:>4} threads={threads} \
                         epoch={epoch:>3}: {secs:.3}s"
                    );
                }
            }
        }
    }

    // Gate (b): active rule — decisions, digest, and counters invariant
    // across backends, shards, threads, and chaos seeds.
    let active = AdaptiveConfig { epoch: 50, epsilon: 0.5, min_n: 50, max_n: 0 };
    let (act_ref, _) =
        adaptive_run(&stimuli, n, run_seed, 64, 1, &active, AdaptiveBackend::Streaming);
    let act_counters = eyeorg_obs::snapshot("adaptive-smoke", 1).counter_fingerprint();
    let act_decisions = act_ref.decision_fingerprint();
    let act_fp = act_ref.digest.fingerprint();
    if act_ref.decisions.is_empty() {
        identical = false;
        eprintln!("DIVERGENCE: smoke epsilon never fired (calibration broken)");
    }
    println!(
        "smoke active: {} decisions, {} of {} participants saved",
        act_ref.decisions.len(),
        act_ref.participants_saved(),
        act_ref.budget
    );
    for backend in [AdaptiveBackend::Streaming, AdaptiveBackend::Flat] {
        for shard in [64usize, n + 1] {
            for threads in [1usize, 2, 0] {
                for chaos in [0u64, 5] {
                    set_chaos_seed(chaos);
                    let (out, secs) =
                        adaptive_run(&stimuli, n, run_seed, shard, threads, &active, backend);
                    set_chaos_seed(0);
                    let counters =
                        eyeorg_obs::snapshot("adaptive-smoke", threads).counter_fingerprint();
                    let ctx = format!(
                        "active {backend:?} shard={shard} threads={threads} chaos={chaos}"
                    );
                    if out.decision_fingerprint() != act_decisions {
                        identical = false;
                        eprintln!("DIVERGENCE: {ctx} decision sequence differs");
                    }
                    if out.digest.fingerprint() != act_fp {
                        identical = false;
                        eprintln!("DIVERGENCE: {ctx} digest differs");
                    }
                    if counters != act_counters {
                        identical = false;
                        eprintln!("DIVERGENCE: {ctx} counters differ");
                    }
                    println!("smoke {ctx}: {secs:.3}s");
                }
            }
        }
    }

    if let Some(path) = fp_out {
        // Everything a cross-process `cmp` needs: ε=0 digest/counters
        // (== the streaming engine's) and the active run's decision,
        // digest, and counter fingerprints.
        let contents = format!(
            "{reference_fp}\n{reference_counters}\n{act_decisions}\n{act_fp}\n{act_counters}\n"
        );
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create fingerprint dir");
        }
        std::fs::write(&path, contents).expect("write fingerprint file");
        println!("wrote {path}");
    }

    if !identical {
        eprintln!("FAIL: adaptive engine diverged");
        std::process::exit(1);
    }
    println!("smoke OK: adaptive == streaming at eps=0; decisions invariant when active");
}

fn full() {
    let seed = Seed(2016).derive("perf-adaptive");
    let stimuli = stimuli(FULL_SITES, 3, seed);
    let run_seed = seed.derive("run");

    // Full run: the whole budget through the flat engine.
    let (full_digest, full_secs) =
        flat_run(&stimuli, FULL_PARTICIPANTS, run_seed, FULL_SHARD, 0);
    println!(
        "full      n={FULL_PARTICIPANTS}: {full_secs:.2}s \
         ({:.0} participants/sec)",
        FULL_PARTICIPANTS as f64 / full_secs
    );

    // Adaptive run: same budget, calibrated stopping rule.
    let ac = AdaptiveConfig {
        epoch: FULL_EPOCH,
        epsilon: FULL_EPSILON,
        min_n: FULL_MIN_N,
        max_n: 0,
    };
    let (out, adaptive_secs) = adaptive_run(
        &stimuli,
        FULL_PARTICIPANTS,
        run_seed,
        FULL_SHARD,
        0,
        &ac,
        AdaptiveBackend::Flat,
    );
    let simulated = out.recruited - out.pruned;
    let reduction = out.budget as f64 / simulated.max(1) as f64;
    let speedup = full_secs / adaptive_secs.max(1e-9);
    println!(
        "adaptive  budget={FULL_PARTICIPANTS} eps={FULL_EPSILON} min_n={FULL_MIN_N} \
         epoch={FULL_EPOCH}: {adaptive_secs:.2}s, recruited {} (pruned {}), \
         simulated {simulated} => {reduction:.1}x fewer participants, \
         {speedup:.1}x wall-clock",
        out.recruited, out.pruned
    );
    for d in &out.decisions {
        println!(
            "  stop epoch {:>2} {:<22} n={:>6} hw={:.3}s ({:?})",
            d.epoch, d.name, d.retained, d.half_width, d.cause
        );
    }

    // Accuracy: every reported UPLT percentile of every stimulus within
    // the declared tolerance of the full run.
    let mut accuracy_ok = true;
    let mut max_delta = [0f64; PERCENTILES.len()];
    for si in 0..stimuli.len() {
        let full_sk = &full_digest.stimuli[si].sketch;
        let adap_sk = &out.digest.stimuli[si].sketch;
        for (pi, &p) in PERCENTILES.iter().enumerate() {
            let (Some(f), Some(a)) = (full_sk.quantile(p), adap_sk.quantile(p)) else {
                accuracy_ok = false;
                eprintln!("FAIL: stimulus {si} p{p} missing a quantile");
                continue;
            };
            let delta = (f - a).abs();
            if delta > max_delta[pi] {
                max_delta[pi] = delta;
            }
            if delta > ACCURACY_TOL[pi] {
                accuracy_ok = false;
                eprintln!(
                    "FAIL: stimulus {si} ({}) p{p}: |{f:.3} - {a:.3}| = {delta:.3}s \
                     exceeds tolerance {}s",
                    full_digest.stimuli[si].name, ACCURACY_TOL[pi]
                );
            }
        }
    }
    for (pi, &p) in PERCENTILES.iter().enumerate() {
        println!(
            "accuracy p{p:<4}: max |delta| {:.3}s (tolerance {}s)",
            max_delta[pi], ACCURACY_TOL[pi]
        );
    }

    let reduction_ok = reduction >= REDUCTION_GATE;
    if !reduction_ok {
        eprintln!(
            "FAIL: participant reduction {reduction:.2}x is below the {REDUCTION_GATE}x gate"
        );
    }
    let all_stopped = out.stopped_at.iter().all(Option::is_some);
    if !all_stopped {
        // Not a gate (budget exhaustion is legal), but worth seeing.
        println!("note: some stimuli ran to budget exhaustion");
    }

    let env = eyeorg_bench::env_metadata_json();
    let deltas: Vec<String> = PERCENTILES
        .iter()
        .zip(max_delta.iter())
        .zip(ACCURACY_TOL.iter())
        .map(|((p, d), t)| {
            format!("{{\"percentile\": {p}, \"max_delta_secs\": {d:.6}, \"tolerance_secs\": {t}}}")
        })
        .collect();
    let json = format!(
        "{{\n  \"participants_budget\": {FULL_PARTICIPANTS},\n  \
         \"stimuli\": {FULL_SITES},\n  \"shard_size\": {FULL_SHARD},\n  \
         \"adaptive\": {{\"epoch\": {FULL_EPOCH}, \"epsilon\": {FULL_EPSILON}, \
         \"min_n\": {FULL_MIN_N}, \"max_n\": 0, \"z\": {ADAPTIVE_Z}}},\n  \
         {env},\n  \
         \"full_secs\": {full_secs:.6},\n  \
         \"adaptive_secs\": {adaptive_secs:.6},\n  \
         \"recruited\": {},\n  \"pruned\": {},\n  \"simulated\": {simulated},\n  \
         \"participants_saved\": {},\n  \"epochs\": {},\n  \"decisions\": {},\n  \
         \"all_stimuli_stopped\": {all_stopped},\n  \
         \"participant_reduction\": {reduction:.3},\n  \
         \"reduction_gate\": {REDUCTION_GATE},\n  \
         \"wallclock_speedup\": {speedup:.3},\n  \
         \"accuracy\": [\n    {}\n  ],\n  \
         \"reduction_gate_met\": {reduction_ok},\n  \
         \"accuracy_within_tolerance\": {accuracy_ok}\n}}\n",
        out.recruited,
        out.pruned,
        out.participants_saved(),
        out.epochs,
        out.decisions.len(),
        deltas.join(",\n    ")
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_adaptive.json", &json).expect("write BENCH_adaptive.json");
    println!("wrote results/BENCH_adaptive.json");

    if !reduction_ok || !accuracy_ok {
        eprintln!("FAIL: adaptive gates not met");
        std::process::exit(1);
    }
}

fn main() {
    eyeorg_obs::enable();
    let mut smoke_mode = false;
    let mut fp_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--fingerprint-out" => {
                fp_out = Some(args.next().expect("--fingerprint-out needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if smoke_mode {
        smoke(fp_out);
    } else {
        full();
    }
}
