//! The streaming, sharded campaign engine.
//!
//! `campaign::run_timeline_campaign` materializes every showing before
//! the filter/analysis layers touch it, so memory grows with the crowd
//! and the row-scanning filters go quadratic. This module runs the same
//! seeded per-participant generation **shard by shard**: the participant
//! range is split into fixed-size shards, each shard worker regenerates
//! its participants from the campaign seed (`generate_one` is
//! index-addressed, so no participant list is ever materialized), runs
//! the gate → assignment → behaviour → perception → filter pipeline
//! inline, and folds the results into the mergeable accumulators of
//! [`crate::digest`]. Shards execute via `par_map_range` and merge in
//! shard-index order; since every accumulator's state is
//! multiset-determined, the digest — and the obs `counter_fingerprint` —
//! is byte-identical at any thread count and any shard size, and equal
//! to the materializing path's digest (pinned by the
//! `streaming_equivalence` tests).
//!
//! ## The admitted-index pre-pass
//!
//! Stimulus assignment is keyed by the participant's *admitted* index
//! (the count of gate-admitted participants before them), which depends
//! on every earlier gate decision. A shard can't know its base offset
//! locally, so the engine runs two passes: pass 1 counts gate
//! admissions per shard (pure — `validation::captcha_admits` draws only
//! from the participant's own seed stream and bumps nothing), a
//! sequential prefix sum turns the counts into per-shard bases, and
//! pass 2 generates, serves, filters, and folds with those bases. The
//! regeneration cost is two cheap participant draws per index — far
//! below one video session.

use eyeorg_crowd::fastpath::{
    self, timeline_control_seeded, timeline_response_shared_seeded, video_session_seeded,
};
use eyeorg_crowd::{AbAnswer, ModelSeeds, Persona, RecruitmentService, SessionProfile, TestKind};
use eyeorg_stats::{par_map_range, resolve_threads, Seed};
use eyeorg_video::FrameTimeline;

use crate::analysis::BehaviorPoint;
use crate::campaign::{AbVerdict, ControlRow};
use crate::digest::{
    AbDigest, AbStimulusDigest, BehaviorDigest, ControlTally, DigestParams, StimulusDigest,
    TimelineDigest,
};
use crate::experiment::{a_on_left, assign, AbStimulus, ExperimentConfig, TimelineStimulus};
use crate::filtering::{decide, FilterDecision, FilterTally, ParticipantFilter};

/// Sharding configuration for the streaming engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Participants per shard. Memory is proportional to this (plus
    /// the fixed accumulator footprint), never to the crowd size.
    pub shard_size: usize,
    /// Accumulator sizing (must match the digest it is compared with).
    pub params: DigestParams,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { shard_size: 4096, params: DigestParams::default() }
    }
}

/// One shard's fold of a timeline campaign. Shared with the flat
/// engine (`crate::flat`), which fills the same accumulators from its
/// column passes, with the adaptive driver (`crate::adaptive`), which
/// additionally accumulates epochs of folds into one, and with the
/// checkpoint layer (`crate::checkpoint`), which snapshots a clone of
/// the running accumulator at shard barriers.
#[derive(Debug, Clone)]
pub(crate) struct TlShard {
    pub(crate) stimuli: Vec<StimulusDigest>,
    pub(crate) behavior: BehaviorDigest,
    pub(crate) filters: FilterTally,
    pub(crate) controls: ControlTally,
    pub(crate) admitted: u64,
    pub(crate) rejected: u64,
    pub(crate) collected: u64,
    pub(crate) skipped: u64,
    /// Gate-admitted participants never served because every stimulus
    /// they were assigned had already stopped recruiting (adaptive runs
    /// only; always 0 under an all-live mask). They still consume an
    /// admitted index so later assignments match the full run.
    pub(crate) pruned: u64,
}

impl TlShard {
    /// An empty shard fold sized for `stimuli`.
    pub(crate) fn new(stimuli: &[TimelineStimulus], params: &DigestParams) -> TlShard {
        TlShard {
            stimuli: stimuli
                .iter()
                .map(|st| StimulusDigest::new(&st.name, st.video.duration().as_secs_f64(), params))
                .collect(),
            behavior: BehaviorDigest::default(),
            filters: FilterTally::default(),
            controls: ControlTally::default(),
            admitted: 0,
            rejected: 0,
            collected: 0,
            skipped: 0,
            pruned: 0,
        }
    }

    /// Fold another shard's state into this one (order-pinned by the
    /// caller; exact because every accumulator is multiset-determined).
    pub(crate) fn merge_from(&mut self, other: &TlShard) {
        for (acc, o) in self.stimuli.iter_mut().zip(&other.stimuli) {
            // lint:allow(D4): same-campaign shard folds share one construction site lint:allow(D7): checkpoint merge validates equal configs before folding
            acc.merge(o).expect("same-campaign shard folds agree by construction");
        }
        self.behavior.merge(&other.behavior);
        self.filters.merge(&other.filters);
        self.controls.merge(&other.controls);
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.collected += other.collected;
        self.skipped += other.skipped;
        self.pruned += other.pruned;
    }
}

/// Everything a timeline shard fold reads: the shared read-only
/// campaign state, bundled so the streaming engine and the adaptive
/// epoch driver run the *same* inner loop.
pub(crate) struct TlCtx<'a> {
    pub(crate) stimuli: &'a [TimelineStimulus],
    pub(crate) frames: &'a [FrameTimeline],
    pub(crate) pop: &'a eyeorg_crowd::PopulationProfile,
    pub(crate) cfg: &'a ExperimentConfig,
    pub(crate) filters: &'a [Box<dyn ParticipantFilter + Send + Sync>],
    pub(crate) recruit_seed: Seed,
    pub(crate) assign_seed: Seed,
    pub(crate) params: DigestParams,
    /// Per-stimulus `"tl-{si}"` labels, formatted once per campaign
    /// instead of once per (participant, stimulus) cell.
    pub(crate) labels: Vec<String>,
    /// Per-stimulus `"ctrl-tl-{si}"` control labels.
    pub(crate) ctrl_labels: Vec<String>,
    /// Per-stimulus behaviour-model constants.
    pub(crate) profiles: Vec<SessionProfile>,
}

impl<'a> TlCtx<'a> {
    /// Bundle the shared read-only campaign state, precomputing the
    /// per-stimulus label and session-profile caches the inner loops
    /// used to rebuild per cell.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        stimuli: &'a [TimelineStimulus],
        frames: &'a [FrameTimeline],
        pop: &'a eyeorg_crowd::PopulationProfile,
        cfg: &'a ExperimentConfig,
        filters: &'a [Box<dyn ParticipantFilter + Send + Sync>],
        recruit_seed: Seed,
        assign_seed: Seed,
        params: DigestParams,
    ) -> TlCtx<'a> {
        let labels = (0..stimuli.len()).map(|si| format!("tl-{si}")).collect();
        let ctrl_labels = (0..stimuli.len()).map(|si| format!("ctrl-tl-{si}")).collect();
        let profiles =
            stimuli.iter().map(|st| SessionProfile::of(&st.video, TestKind::Timeline)).collect();
        TlCtx {
            stimuli,
            frames,
            pop,
            cfg,
            filters,
            recruit_seed,
            assign_seed,
            params,
            labels,
            ctrl_labels,
            profiles,
        }
    }
}

/// The timeline engine's inner loop over participant indices
/// `[lo, hi)` with admitted-index base `base`, folding into one
/// [`TlShard`] under a per-stimulus `live` mask.
///
/// Mask semantics (the determinism backbone of `crate::adaptive`):
///
/// * **Serve all picks** — a served participant runs every assigned
///   session, control, filter, and behaviour draw exactly as the full
///   run would, even for stopped stimuli, so filter outcomes never
///   depend on *other* stimuli's masks.
/// * **Push only live** — kept responses are folded only into live
///   stimuli, so a live stimulus's digest is the full run's digest
///   truncated at its own stop point.
/// * **Prune whole participants** — when *no* assigned stimulus is
///   live, the participant is never trait-generated or served (that is
///   the saving), but still consumes their admitted index.
///
/// Under an all-live mask this is byte-identical (draws, pushes, and
/// counter totals) to the pre-adaptive streaming loop.
pub(crate) fn tl_fold_range(
    ctx: &TlCtx<'_>,
    lo: usize,
    hi: usize,
    base: u64,
    live: &[bool],
) -> TlShard {
    let all_live = live.iter().all(|&l| l);
    let mut fold = TlShard::new(ctx.stimuli, &ctx.params);
    let mut pi = base;
    for i in lo..hi {
        // Demand-driven generation: pause the trait stream at the class
        // draw, gate on the (independent) captcha stream, and pay for
        // the remaining trait draws only when the participant is
        // actually served. Gate-rejected and adaptive-pruned
        // participants skip the model work their outputs never reach.
        let cur = ctx.pop.start_traits(ctx.recruit_seed, i as u64);
        if !crate::validation::captcha_admits_gate(cur.seed(), cur.class()) {
            fold.rejected += 1;
            continue;
        }
        let my_pi = pi;
        pi += 1;
        let picks =
            assign(ctx.assign_seed, my_pi, ctx.stimuli.len(), ctx.cfg.videos_per_participant);
        if !all_live && !picks.iter().any(|&si| live[si]) {
            fold.pruned += 1;
            continue;
        }
        let p = cur.finish(ctx.pop);
        let mseeds = ModelSeeds::of(p.seed);
        fold.admitted += 1;
        let mut sessions = Vec::with_capacity(picks.len());
        let mut responses: Vec<(usize, f64)> = Vec::with_capacity(picks.len());
        for &si in &picks {
            let label = &ctx.labels[si];
            let session =
                video_session_seeded(&ctx.profiles[si], &p, TestKind::Timeline, &mseeds, label);
            if session.skipped {
                fold.skipped += 1;
            } else {
                let resp = timeline_response_shared_seeded(
                    &ctx.stimuli[si].video,
                    &ctx.frames[si],
                    &p,
                    &mseeds,
                    label,
                );
                fold.collected += 1;
                responses.push((si, resp.submitted.as_secs_f64()));
            }
            sessions.push(session);
        }
        let control = ctx.cfg.with_controls.then(|| {
            let passed = timeline_control_seeded(&p, &mseeds, &ctx.ctrl_labels[picks[0]]);
            ControlRow { participant: my_pi as usize, passed }
        });
        if let Some(c) = &control {
            fold.controls.record(c.passed);
        }
        let ctrl_refs: Vec<&ControlRow> = control.iter().collect();
        let d = decide(ctx.filters, &sessions, &ctrl_refs);
        fold.filters.record(d);
        if d == FilterDecision::Kept {
            for &(si, secs) in &responses {
                if live[si] {
                    fold.stimuli[si].push(secs);
                }
            }
        }
        fold.behavior.push(&behavior_point_persona(my_pi as usize, &sessions, &p, &mseeds));
    }
    fold
}

/// Precompute the shared read-only frame timelines for a stimulus set.
pub(crate) fn tl_frames(stimuli: &[TimelineStimulus], threads: usize) -> Vec<FrameTimeline> {
    par_map_range(stimuli.len(), threads, |si| {
        let mut tl = FrameTimeline::of(&stimuli[si].video);
        tl.precompute_rewinds();
        tl
    })
}

/// One adaptive epoch through the streaming engine: shard the index
/// range `[lo, hi)`, fold each shard under `live` (pass 1 computes the
/// range's admitted bases, continuing from `base_admitted`), and return
/// the folds in shard order plus the range's gate-admission count.
pub(crate) fn stream_tl_epoch(
    ctx: &TlCtx<'_>,
    lo: usize,
    hi: usize,
    threads: usize,
    shard: usize,
    base_admitted: u64,
    live: &[bool],
) -> (Vec<TlShard>, u64) {
    let shards = (hi - lo).div_ceil(shard);
    let (bases, range_admitted) =
        admitted_bases_range(lo, hi, shard, threads, ctx.pop, ctx.recruit_seed, base_admitted);
    let folds: Vec<TlShard> = par_map_range(shards, threads, |s| {
        let slo = lo + s * shard;
        let shi = (slo + shard).min(hi);
        let fold = tl_fold_range(ctx, slo, shi, bases[s], live);
        bump_shard_counters(&fold);
        fold
    });
    (folds, range_admitted)
}

/// Run a timeline campaign through the streaming engine: `n`
/// participants from `service`, gated, served, filtered by `filters`,
/// and folded into a [`TimelineDigest`] — without materializing rows.
///
/// Byte-identical to `run_timeline_campaign` + `filter_timeline` +
/// `digest_timeline` on the same inputs (digest *and* counter
/// fingerprint), at any thread count and shard size.
pub fn stream_timeline_campaign(
    stimuli: &[TimelineStimulus],
    service: &dyn RecruitmentService,
    n_participants: usize,
    cfg: &ExperimentConfig,
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
    seed: Seed,
    sc: &StreamConfig,
) -> TimelineDigest {
    assert!(!stimuli.is_empty(), "campaign needs stimuli");
    let _t = eyeorg_obs::phase_timer("core.stream_timeline");
    let threads = resolve_threads(cfg.threads);
    let shard = sc.shard_size.max(1);
    let shards = n_participants.div_ceil(shard);
    let pop = service.population();
    let recruit_seed = seed.derive("recruit");
    let assign_seed = seed.derive("timeline");

    // Pass 1: gate admissions per shard (pure; no counters).
    let bases = admitted_bases(shards, shard, n_participants, threads, &pop, recruit_seed);

    // Shared read-only frame timelines, as in the parallel engine.
    let frames = tl_frames(stimuli, threads);

    let live = vec![true; stimuli.len()];
    let ctx =
        TlCtx::new(stimuli, &frames, &pop, cfg, filters, recruit_seed, assign_seed, sc.params);

    // Pass 2: generate, serve, filter, fold.
    let folds: Vec<TlShard> = par_map_range(shards, threads, |s| {
        let lo = s * shard;
        let hi = (lo + shard).min(n_participants);
        let fold = tl_fold_range(&ctx, lo, hi, bases[s], &live);
        bump_shard_counters(&fold);
        fold
    });

    merge_tl_shards(stimuli, service, n_participants, &sc.params, &folds)
}

/// Order-pinned merge of timeline shard folds into the final digest
/// (the accumulators are multiset-determined, so the pinning is
/// belt-and-braces on top of exact associativity). Shared by the
/// streaming and flat engines.
pub(crate) fn merge_tl_shards(
    stimuli: &[TimelineStimulus],
    service: &dyn RecruitmentService,
    n_participants: usize,
    params: &DigestParams,
    folds: &[TlShard],
) -> TimelineDigest {
    let mut digest = TimelineDigest {
        stimuli: stimuli
            .iter()
            .map(|st| StimulusDigest::new(&st.name, st.video.duration().as_secs_f64(), params))
            .collect(),
        recruited: n_participants as u64,
        admitted: 0,
        rejected: 0,
        recruitment_cost_usd: service.cost_per_participant() * n_participants as f64,
        recruitment_duration_secs: if n_participants == 0 {
            0.0
        } else {
            service.arrival(n_participants - 1).as_secs_f64()
        },
        responses_collected: 0,
        responses_skipped: 0,
        behavior: BehaviorDigest::default(),
        filters: FilterTally::default(),
        controls: ControlTally::default(),
    };
    for fold in folds {
        for (acc, shard_acc) in digest.stimuli.iter_mut().zip(&fold.stimuli) {
            // lint:allow(D4): same-campaign shard folds share one construction site
            acc.merge(shard_acc).expect("same-campaign shard folds agree by construction");
        }
        digest.behavior.merge(&fold.behavior);
        digest.filters.merge(&fold.filters);
        digest.controls.merge(&fold.controls);
        digest.admitted += fold.admitted;
        digest.rejected += fold.rejected;
        digest.responses_collected += fold.collected;
        digest.responses_skipped += fold.skipped;
    }
    digest
}

pub(crate) fn bump_shard_counters(fold: &TlShard) {
    eyeorg_obs::metrics::CORE_GATE_ADMITTED.add(fold.admitted);
    eyeorg_obs::metrics::CORE_GATE_REJECTED.add(fold.rejected);
    eyeorg_obs::metrics::CORE_RESPONSES_COLLECTED.add(fold.collected);
    eyeorg_obs::metrics::CORE_RESPONSES_SKIPPED.add(fold.skipped);
    // Zero under an all-live mask, so non-adaptive runs (and ε = 0
    // adaptive runs) leave the counter untouched.
    eyeorg_obs::metrics::ADAPTIVE_PARTICIPANTS_SAVED.add(fold.pruned);
    if eyeorg_obs::enabled() {
        // Zero-adds materialise the per-site label, mirroring the
        // materializing path (`digest_timeline`).
        for s in &fold.stimuli {
            eyeorg_obs::metrics::CORE_RETAINED_PER_SITE.add(&s.name, s.retained());
        }
    }
}

/// One shard's fold of an A/B campaign. Shared with the flat engine
/// and the checkpoint layer.
#[derive(Debug, Clone)]
pub(crate) struct AbShard {
    pub(crate) stimuli: Vec<AbStimulusDigest>,
    pub(crate) behavior: BehaviorDigest,
    pub(crate) filters: FilterTally,
    pub(crate) controls: ControlTally,
    pub(crate) admitted: u64,
    pub(crate) rejected: u64,
    pub(crate) cast: u64,
    pub(crate) skipped: u64,
}

impl AbShard {
    /// An empty shard fold sized for `stimuli`.
    pub(crate) fn new(stimuli: &[AbStimulus]) -> AbShard {
        AbShard {
            stimuli: stimuli.iter().map(|st| AbStimulusDigest::new(&st.name)).collect(),
            behavior: BehaviorDigest::default(),
            filters: FilterTally::default(),
            controls: ControlTally::default(),
            admitted: 0,
            rejected: 0,
            cast: 0,
            skipped: 0,
        }
    }

    /// Bump the A/B engine's obs counters from this shard's totals.
    pub(crate) fn bump_counters(&self) {
        eyeorg_obs::metrics::CORE_GATE_ADMITTED.add(self.admitted);
        eyeorg_obs::metrics::CORE_GATE_REJECTED.add(self.rejected);
        eyeorg_obs::metrics::CORE_AB_VOTES.add(self.cast);
        eyeorg_obs::metrics::CORE_AB_SKIPS.add(self.skipped);
    }

    /// Fold another shard's state into this one (order-pinned by the
    /// caller; exact because every accumulator is multiset-determined).
    pub(crate) fn merge_from(&mut self, other: &AbShard) {
        for (acc, o) in self.stimuli.iter_mut().zip(&other.stimuli) {
            // lint:allow(D4): same-campaign shard folds share one construction site lint:allow(D7): checkpoint merge validates equal configs before folding
            acc.merge(o).expect("same-campaign shard folds agree by construction");
        }
        self.behavior.merge(&other.behavior);
        self.filters.merge(&other.filters);
        self.controls.merge(&other.controls);
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.cast += other.cast;
        self.skipped += other.skipped;
    }
}

/// Everything an A/B shard fold reads — the A/B counterpart of
/// [`TlCtx`], shared by the streaming engine and the checkpoint
/// workers so both run the *same* inner loop.
pub(crate) struct AbCtx<'a> {
    pub(crate) stimuli: &'a [AbStimulus],
    pub(crate) pop: &'a eyeorg_crowd::PopulationProfile,
    pub(crate) cfg: &'a ExperimentConfig,
    pub(crate) filters: &'a [Box<dyn ParticipantFilter + Send + Sync>],
    pub(crate) recruit_seed: Seed,
    pub(crate) assign_seed: Seed,
    pub(crate) side_seed: Seed,
    /// Per-stimulus `"ab-{si}"` labels, formatted once per campaign.
    pub(crate) labels: Vec<String>,
    /// Per-stimulus behaviour profile of the longer capture (what the
    /// participant must sit through).
    pub(crate) profiles: Vec<SessionProfile>,
}

impl<'a> AbCtx<'a> {
    /// Bundle the shared read-only campaign state, precomputing the
    /// per-stimulus label and session-profile caches.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        stimuli: &'a [AbStimulus],
        pop: &'a eyeorg_crowd::PopulationProfile,
        cfg: &'a ExperimentConfig,
        filters: &'a [Box<dyn ParticipantFilter + Send + Sync>],
        recruit_seed: Seed,
        assign_seed: Seed,
        side_seed: Seed,
    ) -> AbCtx<'a> {
        let labels = (0..stimuli.len()).map(|si| format!("ab-{si}")).collect();
        let profiles = stimuli
            .iter()
            .map(|st| {
                let longer = if st.a.duration() >= st.b.duration() { &st.a } else { &st.b };
                SessionProfile::of(longer, TestKind::Ab)
            })
            .collect();
        AbCtx { stimuli, pop, cfg, filters, recruit_seed, assign_seed, side_seed, labels, profiles }
    }
}

/// The A/B engine's inner loop over participant indices `[lo, hi)`
/// with admitted-index base `base`, folding into one [`AbShard`].
pub(crate) fn ab_fold_range(ctx: &AbCtx<'_>, lo: usize, hi: usize, base: u64) -> AbShard {
    let mut fold = AbShard::new(ctx.stimuli);
    let mut pi = base;
    for i in lo..hi {
        // Demand-driven generation, as in the timeline loop: gate on
        // the class-only trait prefix; rejected participants never pay
        // for the rest of their trait draws.
        let cur = ctx.pop.start_traits(ctx.recruit_seed, i as u64);
        if !crate::validation::captcha_admits_gate(cur.seed(), cur.class()) {
            fold.rejected += 1;
            continue;
        }
        let my_pi = pi;
        pi += 1;
        fold.admitted += 1;
        let p = cur.finish(ctx.pop);
        let mseeds = ModelSeeds::of(p.seed);
        let picks =
            assign(ctx.assign_seed, my_pi, ctx.stimuli.len(), ctx.cfg.videos_per_participant);
        let mut sessions = Vec::with_capacity(picks.len());
        let mut verdicts: Vec<(usize, AbVerdict)> = Vec::with_capacity(picks.len());
        for &si in &picks {
            let label = &ctx.labels[si];
            let a_left = a_on_left(ctx.side_seed, my_pi, si);
            let st = &ctx.stimuli[si];
            let session =
                video_session_seeded(&ctx.profiles[si], &p, TestKind::Ab, &mseeds, label);
            let acc = &mut fold.stimuli[si];
            acc.shows += 1;
            if a_left {
                acc.a_left_shows += 1;
            }
            if session.skipped {
                fold.skipped += 1;
            } else {
                let (left, right) = if a_left { (&st.a, &st.b) } else { (&st.b, &st.a) };
                let answer = fastpath::ab_response_seeded(left, right, &p, &mseeds, label);
                fold.cast += 1;
                verdicts.push((
                    si,
                    match (answer, a_left) {
                        (AbAnswer::NoDifference, _) => AbVerdict::NoDifference,
                        (AbAnswer::Left, true) | (AbAnswer::Right, false) => AbVerdict::AFaster,
                        (AbAnswer::Left, false) | (AbAnswer::Right, true) => AbVerdict::BFaster,
                    },
                ));
            }
            sessions.push(session);
        }
        let control = ctx.cfg.with_controls.then(|| {
            let ctrl = picks[0];
            let ready = eyeorg_crowd::true_ready_time(&ctx.stimuli[ctrl].a, p.readiness);
            let (_, passed) = fastpath::ab_control_seeded(ready, &p, &mseeds, &ctx.labels[ctrl]);
            ControlRow { participant: my_pi as usize, passed }
        });
        if let Some(c) = &control {
            fold.controls.record(c.passed);
        }
        let ctrl_refs: Vec<&ControlRow> = control.iter().collect();
        let d = decide(ctx.filters, &sessions, &ctrl_refs);
        fold.filters.record(d);
        if d == FilterDecision::Kept {
            for &(si, v) in &verdicts {
                fold.stimuli[si].tally.record(v);
            }
        }
        fold.behavior.push(&behavior_point_persona(my_pi as usize, &sessions, &p, &mseeds));
    }
    fold
}

/// One epoch through the A/B streaming engine: shard the index range
/// `[lo, hi)`, fold each shard (pass 1 computes the range's admitted
/// bases, continuing from `base_admitted`), and return the folds in
/// shard order plus the range's gate-admission count — the A/B
/// counterpart of [`stream_tl_epoch`].
pub(crate) fn stream_ab_epoch(
    ctx: &AbCtx<'_>,
    lo: usize,
    hi: usize,
    threads: usize,
    shard: usize,
    base_admitted: u64,
) -> (Vec<AbShard>, u64) {
    let shards = (hi - lo).div_ceil(shard);
    let (bases, range_admitted) =
        admitted_bases_range(lo, hi, shard, threads, ctx.pop, ctx.recruit_seed, base_admitted);
    let folds: Vec<AbShard> = par_map_range(shards, threads, |s| {
        let slo = lo + s * shard;
        let shi = (slo + shard).min(hi);
        let fold = ab_fold_range(ctx, slo, shi, bases[s]);
        fold.bump_counters();
        fold
    });
    (folds, range_admitted)
}

/// Run an A/B campaign through the streaming engine. Byte-identical to
/// `run_ab_campaign` + `filter_ab` + `digest_ab` on the same inputs.
pub fn stream_ab_campaign(
    stimuli: &[AbStimulus],
    service: &dyn RecruitmentService,
    n_participants: usize,
    cfg: &ExperimentConfig,
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
    seed: Seed,
    sc: &StreamConfig,
) -> AbDigest {
    assert!(!stimuli.is_empty(), "campaign needs stimuli");
    let _t = eyeorg_obs::phase_timer("core.stream_ab");
    let threads = resolve_threads(cfg.threads);
    let shard = sc.shard_size.max(1);
    let pop = service.population();
    let recruit_seed = seed.derive("recruit");
    let assign_seed = seed.derive("ab-assign");
    let side_seed = seed.derive("ab-side");

    let ctx = AbCtx::new(stimuli, &pop, cfg, filters, recruit_seed, assign_seed, side_seed);
    let (folds, _) = stream_ab_epoch(&ctx, 0, n_participants, threads, shard, 0);

    merge_ab_shards(stimuli, service, n_participants, &folds)
}

/// Order-pinned merge of A/B shard folds into the final digest. Shared
/// by the streaming and flat engines.
pub(crate) fn merge_ab_shards(
    stimuli: &[AbStimulus],
    service: &dyn RecruitmentService,
    n_participants: usize,
    folds: &[AbShard],
) -> AbDigest {
    let mut digest = AbDigest {
        stimuli: stimuli.iter().map(|st| AbStimulusDigest::new(&st.name)).collect(),
        recruited: n_participants as u64,
        admitted: 0,
        rejected: 0,
        recruitment_cost_usd: service.cost_per_participant() * n_participants as f64,
        recruitment_duration_secs: if n_participants == 0 {
            0.0
        } else {
            service.arrival(n_participants - 1).as_secs_f64()
        },
        votes_cast: 0,
        votes_skipped: 0,
        behavior: BehaviorDigest::default(),
        filters: FilterTally::default(),
        controls: ControlTally::default(),
    };
    for fold in folds {
        for (acc, shard_acc) in digest.stimuli.iter_mut().zip(&fold.stimuli) {
            // lint:allow(D4): same-campaign shard folds share one construction site
            acc.merge(shard_acc).expect("same-campaign shard folds agree by construction");
        }
        digest.behavior.merge(&fold.behavior);
        digest.filters.merge(&fold.filters);
        digest.controls.merge(&fold.controls);
        digest.admitted += fold.admitted;
        digest.rejected += fold.rejected;
        digest.votes_cast += fold.cast;
        digest.votes_skipped += fold.skipped;
    }
    digest
}

/// Pass 1 of both engines: gate admissions per shard, prefix-summed
/// into each shard's base admitted index.
pub(crate) fn admitted_bases(
    shards: usize,
    shard: usize,
    n_participants: usize,
    threads: usize,
    pop: &eyeorg_crowd::PopulationProfile,
    recruit_seed: Seed,
) -> Vec<u64> {
    let _ = shards;
    admitted_bases_range(0, n_participants, shard, threads, pop, recruit_seed, 0).0
}

/// [`admitted_bases`] over the index range `[lo, hi)`, continuing the
/// admitted-index sequence from `base` (the admissions in `[0, lo)`).
/// Returns the per-shard bases and the range's total admission count —
/// what the adaptive driver carries from epoch to epoch.
pub(crate) fn admitted_bases_range(
    lo: usize,
    hi: usize,
    shard: usize,
    threads: usize,
    pop: &eyeorg_crowd::PopulationProfile,
    recruit_seed: Seed,
    base: u64,
) -> (Vec<u64>, u64) {
    let shards = (hi - lo).div_ceil(shard);
    let per_shard: Vec<u64> = par_map_range(shards, threads, |s| {
        let slo = lo + s * shard;
        let shi = (slo + shard).min(hi);
        (slo..shi)
            .filter(|&i| {
                let (pseed, class) = pop.generate_gate(recruit_seed, i as u64);
                crate::validation::captcha_admits_gate(pseed, class)
            })
            .count() as u64
    });
    let mut bases = Vec::with_capacity(shards);
    let mut acc = base;
    for &a in &per_shard {
        bases.push(acc);
        acc += a;
    }
    (bases, acc - base)
}

/// The behaviour-scatter point for one served participant, with the
/// instruction-time draw taken from the hoisted `"behavior"` parent.
/// Shared by the streaming and flat engines.
pub(crate) fn behavior_point_persona(
    participant: usize,
    sessions: &[eyeorg_crowd::VideoSession],
    p: &Persona,
    seeds: &ModelSeeds,
) -> BehaviorPoint {
    let total = fastpath::total_time_on_site_seeded(sessions, p, seeds);
    BehaviorPoint {
        participant,
        minutes_on_site: total.as_secs_f64() / 60.0,
        actions: sessions.iter().map(|s| s.actions()).sum(),
        out_of_focus_secs: sessions.iter().map(|s| s.out_of_focus.as_secs_f64()).sum(),
        max_video_load_secs: sessions
            .iter()
            .map(|s| s.video_load.as_secs_f64())
            .fold(0.0, f64::max),
    }
}
