//! D8 trip: a machine-dependent source flows into a fingerprint sink.

pub fn shard_seed() -> u64 {
    let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    fingerprint(n as u64)
}

fn fingerprint(x: u64) -> u64 {
    x.wrapping_mul(2654435761)
}
