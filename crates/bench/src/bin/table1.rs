//! Regenerate Table 1 (summary of data collected).
fn main() {
    let scale = eyeorg_bench::Scale::from_env();
    let report = eyeorg_bench::table1::run_standalone(&scale);
    println!("{report}");
    let path = eyeorg_bench::write_result("table1.txt", &report);
    eprintln!("wrote {}", path.display());
}
