//! D3 trip: raw atomic orderings outside the observability layer.

use std::sync::atomic::{AtomicU64, Ordering};

pub static TICKS: AtomicU64 = AtomicU64::new(0);

pub fn tick() -> u64 {
    TICKS.fetch_add(1, Ordering::SeqCst)
}
