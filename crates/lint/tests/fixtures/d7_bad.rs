//! D7 trip: a panic site reachable from an untrusted entry point.

// lint:entrypoint(untrusted)
pub fn load(bytes: &[u8]) -> u32 {
    decode(bytes)
}

fn decode(bytes: &[u8]) -> u32 {
    u32::from(bytes[0])
}
