//! Client-side video delivery and playback.
//!
//! Participants download Eyeorg's videos over their own connections; the
//! paper's engagement analysis (Fig. 5) shows out-of-focus time growing
//! with video load time, and the timeline test *forces a full preload*
//! before the scrubber activates ("we force the browser to preload the
//! entire video before the test begins", §3.2) precisely because partial
//! buffering misled participants into overshooting.
//!
//! This module models both delivery modes:
//!
//! * [`preload_time`] — timeline tests: the whole file must arrive.
//! * [`PlaybackSim`] — A/B tests: progressive playback that may stall
//!   when the connection cannot sustain the bitrate.

use eyeorg_net::SimDuration;

/// Time to download `bytes` at `bandwidth_bps` (bits per second).
///
/// # Panics
/// Panics when the bandwidth is zero.
pub fn preload_time(bytes: u64, bandwidth_bps: u64) -> SimDuration {
    assert!(bandwidth_bps > 0, "bandwidth must be positive");
    SimDuration::from_micros((bytes * 8).saturating_mul(1_000_000) / bandwidth_bps)
}

/// Result of a progressive playback simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaybackResult {
    /// Wall time from pressing play to the final frame.
    pub wall_time: SimDuration,
    /// Total time spent stalled (buffer underruns).
    pub stall_time: SimDuration,
    /// Number of distinct stall events.
    pub stall_events: u32,
}

/// Progressive playback of a constant-bitrate stream with an initial
/// buffer, re-buffering in fixed chunks on underrun (the way `<video>`
/// elements behave for A/B participants).
#[derive(Debug, Clone, Copy)]
pub struct PlaybackSim {
    /// Encoded size of the video.
    pub bytes: u64,
    /// Playback duration of the video.
    pub duration: SimDuration,
    /// Participant downlink in bits per second.
    pub bandwidth_bps: u64,
    /// Seconds of media buffered before playback starts.
    pub startup_buffer: SimDuration,
}

impl PlaybackSim {
    /// Run the playback model.
    ///
    /// The stream is treated as constant-bitrate; playback begins once
    /// `startup_buffer` of media is buffered and stalls whenever the
    /// buffer empties, resuming after another `startup_buffer` of media
    /// accumulates.
    ///
    /// # Panics
    /// Panics when the bandwidth is zero or the duration is zero.
    pub fn run(&self) -> PlaybackResult {
        assert!(self.bandwidth_bps > 0, "bandwidth must be positive");
        assert!(self.duration > SimDuration::ZERO, "duration must be positive");
        let media_secs = self.duration.as_secs_f64();
        let download_secs = (self.bytes * 8) as f64 / self.bandwidth_bps as f64;
        // Media-seconds fetched per wall-second.
        let fill_rate = media_secs / download_secs;
        let startup = self.startup_buffer.as_secs_f64().min(media_secs);

        let mut wall = startup / fill_rate; // fill the startup buffer
        let mut buffered = startup; // media-seconds downloaded
        let mut played = 0.0;
        let mut stall_time = 0.0;
        let mut stalls = 0u32;

        while played < media_secs {
            if fill_rate >= 1.0 {
                // Download outruns playback: no further stalls.
                wall += media_secs - played;
                break;
            }
            // Play until the buffer drains: buffer shrinks at (1 - fill).
            let lead = buffered - played;
            let drain_time = lead / (1.0 - fill_rate);
            let playable = drain_time.min(media_secs - played);
            wall += playable;
            played += playable;
            buffered += playable * fill_rate;
            if played >= media_secs {
                break;
            }
            if buffered >= media_secs {
                // Everything downloaded; play out the rest.
                continue;
            }
            // Stall: rebuffer another startup worth (or to the end).
            let refill = startup.min(media_secs - buffered);
            let t = refill / fill_rate;
            wall += t;
            buffered += refill;
            stall_time += t;
            stalls += 1;
        }
        PlaybackResult {
            wall_time: SimDuration::from_secs_f64(wall),
            stall_time: SimDuration::from_secs_f64(stall_time),
            stall_events: stalls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preload_scales_with_size_and_bandwidth() {
        assert_eq!(preload_time(1_000_000, 8_000_000), SimDuration::from_secs(1));
        assert_eq!(preload_time(1_000_000, 4_000_000), SimDuration::from_secs(2));
        assert_eq!(preload_time(0, 1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn fast_connection_never_stalls() {
        let r = PlaybackSim {
            bytes: 1_000_000,                       // 8 Mbit
            duration: SimDuration::from_secs(10),   // 0.8 Mbit/s bitrate
            bandwidth_bps: 8_000_000,               // 10x the bitrate
            startup_buffer: SimDuration::from_secs(1),
        }
        .run();
        assert_eq!(r.stall_events, 0);
        assert_eq!(r.stall_time, SimDuration::ZERO);
        // Wall time = startup fill + media duration.
        let expected = 10.0 + 0.1; // 1s of media at 10x fill = 0.1s
        assert!((r.wall_time.as_secs_f64() - expected).abs() < 0.01, "{r:?}");
    }

    #[test]
    fn slow_connection_stalls() {
        let r = PlaybackSim {
            bytes: 2_000_000,                     // 16 Mbit
            duration: SimDuration::from_secs(10), // 1.6 Mbit/s bitrate
            bandwidth_bps: 800_000,               // half the bitrate
            startup_buffer: SimDuration::from_secs(2),
        }
        .run();
        assert!(r.stall_events > 0);
        assert!(r.stall_time > SimDuration::ZERO);
        // Total wall time is bounded below by the download time.
        assert!(r.wall_time.as_secs_f64() >= 19.9, "{r:?}");
    }

    #[test]
    fn wall_time_at_least_media_duration() {
        for bw in [500_000u64, 2_000_000, 50_000_000] {
            let r = PlaybackSim {
                bytes: 1_500_000,
                duration: SimDuration::from_secs(8),
                bandwidth_bps: bw,
                startup_buffer: SimDuration::from_secs(1),
            }
            .run();
            assert!(r.wall_time.as_secs_f64() >= 8.0 - 1e-9);
        }
    }

    #[test]
    fn stall_time_consistent_with_wall_time() {
        let sim = PlaybackSim {
            bytes: 4_000_000,
            duration: SimDuration::from_secs(12),
            bandwidth_bps: 1_000_000,
            startup_buffer: SimDuration::from_secs(2),
        };
        let r = sim.run();
        // wall = media + stalls + startup fill.
        let media = 12.0;
        let slack = r.wall_time.as_secs_f64() - media - r.stall_time.as_secs_f64();
        assert!(slack >= 0.0, "{r:?}");
        assert!(slack < 35.0, "{r:?}"); // startup fill bounded
    }
}
