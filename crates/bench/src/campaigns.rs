//! Shared campaign construction for the harness.
//!
//! Table 1 and Figs. 4–9 all draw on the same seven campaigns (four
//! validation, three final). Building them once and passing references
//! around keeps `run_all` from recapturing thousands of page loads per
//! figure.

use eyeorg_browser::{AdBlocker, BrowserConfig};
use eyeorg_net::NetworkProfile;
use eyeorg_core::prelude::*;
use eyeorg_crowd::{CrowdFlower, TrustedChannel};
use eyeorg_workload::{ad_heavy, alexa_like};

use crate::Scale;

/// Capture environment for the PLT-timeline and ad-blocker campaigns: a
/// fast consumer line, the regime where the top-of-Alexa sample loads in
/// a few seconds and human responses straddle onload (Fig. 7c).
pub fn capture_browser() -> BrowserConfig {
    BrowserConfig::new().with_network(NetworkProfile::fttc())
}

/// Capture environment for the protocol-comparison campaigns: the
/// standard WebPageTest "Cable" shaping, where HTTP/1.1's six-connection
/// behaviour (queue bursts, serialized exchanges) and HTTP/2's
/// multiplexing actually diverge — the emulation an experimenter studying
/// protocols selects (§3.1 gives webpeg per-capture network emulation).
pub fn protocol_capture_browser() -> BrowserConfig {
    BrowserConfig::new().with_network(NetworkProfile::cable())
}

/// A campaign together with its §4.3 filter report.
pub struct Filtered<C> {
    /// The raw campaign.
    pub campaign: C,
    /// The filtering outcome.
    pub report: FilterReport,
}

/// The four validation campaigns of §4.1 (20 sites; paid + trusted pools
/// for both experiment types).
pub struct ValidationSet {
    /// PLT timeline, paid pool.
    pub tl_paid: Filtered<TimelineCampaign>,
    /// PLT timeline, trusted pool.
    pub tl_trusted: Filtered<TimelineCampaign>,
    /// H1-vs-H2 A/B, paid pool.
    pub ab_paid: Filtered<AbCampaign>,
    /// H1-vs-H2 A/B, trusted pool.
    pub ab_trusted: Filtered<AbCampaign>,
}

/// Number of sites in the validation campaigns (paper: 20).
pub fn validation_sites(scale: &Scale) -> usize {
    scale.sites.min(20)
}

/// Build the §4.1 validation set.
pub fn build_validation(scale: &Scale) -> ValidationSet {
    let seed = scale.seed.derive("validation");
    let n_sites = validation_sites(scale);
    let sites = alexa_like(seed.derive("sites"), n_sites);
    let browser = capture_browser();
    let capture = scale.capture();
    let cfg = ExperimentConfig::default();
    let n = scale.validation_participants;

    let tl_stimuli = timeline_stimuli(&sites, &browser, &capture, seed.derive("tl"));
    let ab_stimuli =
        protocol_ab_stimuli(&sites, &protocol_capture_browser(), &capture, seed.derive("ab"));

    let tl_paid =
        run_timeline_campaign(tl_stimuli.clone(), &CrowdFlower, n, &cfg, seed.derive("tlp"));
    let tl_trusted =
        run_timeline_campaign(tl_stimuli, &TrustedChannel, n, &cfg, seed.derive("tlt"));
    let ab_paid =
        run_ab_campaign(ab_stimuli.clone(), &CrowdFlower, n, &cfg, seed.derive("abp"));
    let ab_trusted =
        run_ab_campaign(ab_stimuli, &TrustedChannel, n, &cfg, seed.derive("abt"));

    let pipeline = paper_pipeline();
    ValidationSet {
        tl_paid: Filtered { report: filter_timeline(&tl_paid, &pipeline), campaign: tl_paid },
        tl_trusted: Filtered {
            report: filter_timeline(&tl_trusted, &pipeline),
            campaign: tl_trusted,
        },
        ab_paid: Filtered { report: filter_ab(&ab_paid, &pipeline), campaign: ab_paid },
        ab_trusted: Filtered {
            report: filter_ab(&ab_trusted, &pipeline),
            campaign: ab_trusted,
        },
    }
}

/// Build the final PLT-timeline campaign (§5.1).
pub fn build_final_timeline(scale: &Scale) -> Filtered<TimelineCampaign> {
    let seed = scale.seed.derive("final-tl");
    let sites = alexa_like(seed.derive("sites"), scale.sites);
    let stimuli =
        timeline_stimuli(&sites, &capture_browser(), &scale.capture(), seed.derive("cap"));
    let campaign = run_timeline_campaign(
        stimuli,
        &CrowdFlower,
        scale.participants,
        &ExperimentConfig::default(),
        seed.derive("run"),
    );
    let report = filter_timeline(&campaign, &paper_pipeline());
    Filtered { campaign, report }
}

/// Build the final H1-vs-H2 A/B campaign (§5.3). Uses the same site
/// sample as the timeline campaign, as the paper does.
pub fn build_final_h1h2(scale: &Scale) -> Filtered<AbCampaign> {
    let seed = scale.seed.derive("final-h1h2");
    let sites = alexa_like(scale.seed.derive("final-tl").derive("sites"), scale.sites);
    let stimuli = protocol_ab_stimuli(
        &sites,
        &protocol_capture_browser(),
        &scale.capture(),
        seed.derive("cap"),
    );
    let campaign = run_ab_campaign(
        stimuli,
        &CrowdFlower,
        scale.participants,
        &ExperimentConfig::default(),
        seed.derive("run"),
    );
    let report = filter_ab(&campaign, &paper_pipeline());
    Filtered { campaign, report }
}

/// Build the final ad-blocker campaign (§5.4): one 1,000-participant
/// budget split across the three blockers. Every blocker is evaluated on
/// the *same* ad-displaying site sample (with a third of the
/// participants each), so Fig. 8c's per-blocker CDFs differ only because
/// the blockers differ, not because their site draws did.
pub fn build_final_ads(scale: &Scale) -> Vec<(AdBlocker, Filtered<AbCampaign>)> {
    let sites = ad_heavy(
        scale.seed.derive("final-ads").derive("sites"),
        (scale.sites / AdBlocker::ALL.len()).max(2),
        1,
    );
    // One capture seed for all three blockers: the with-ads baseline (A
    // side) is the *same* capture for every blocker, so the shared
    // capture cache serves it once and only the blocker-specific B sides
    // are captured per iteration.
    let cap_seed = scale.seed.derive("final-ads").derive("cap");
    AdBlocker::ALL
        .iter()
        .map(|&blocker| {
            let seed = scale.seed.derive("final-ads").derive(blocker.name());
            let stimuli = adblock_ab_stimuli(
                &sites,
                &capture_browser(),
                blocker,
                &scale.capture(),
                cap_seed,
            );
            let campaign = run_ab_campaign(
                stimuli,
                &CrowdFlower,
                scale.participants / AdBlocker::ALL.len(),
                &ExperimentConfig::default(),
                seed.derive("run"),
            );
            let report = filter_ab(&campaign, &paper_pipeline());
            (blocker, Filtered { campaign, report })
        })
        .collect()
}
