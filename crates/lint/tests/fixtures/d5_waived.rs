//! D5 waived: a scoped helper that merges in deterministic order.

pub fn both<A: Send, B: Send>(a: impl FnOnce() -> A + Send, b: impl FnOnce() -> B + Send) -> (A, B) {
    // lint:allow(D5): two fixed tasks joined in declaration order; no schedule-dependent merge
    std::thread::scope(|s| {
        let ha = s.spawn(a);
        let rb = b();
        (ha.join().unwrap_or_else(|e| std::panic::resume_unwind(e)), rb)
    })
}
