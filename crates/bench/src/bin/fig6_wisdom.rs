//! Regenerate Figure 6 (wisdom of the crowd).
fn main() {
    let scale = eyeorg_bench::Scale::from_env();
    let v = eyeorg_bench::campaigns::build_validation(&scale);
    let report = eyeorg_bench::fig6_wisdom::run(&v);
    println!("{report}");
    eyeorg_bench::write_result("fig6.txt", &report);
    let path = eyeorg_bench::write_result("fig6.csv", &eyeorg_bench::fig6_wisdom::csv(&v));
    eprintln!("wrote {}", path.display());
}
