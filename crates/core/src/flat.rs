//! The flat data-plane campaign engine: SoA batching + arena scratch.
//!
//! [`crate::stream`] already bounds memory by folding shard-by-shard,
//! but its inner loop is still *participant-at-a-time*: every row
//! re-derives per-stimulus constants (frame clock, ready moments,
//! session profile), formats the per-stimulus labels, and allocates
//! fresh `Vec`s for picks, sessions, and responses. This module runs
//! the identical seeded pipeline in **structure-of-arrays** form:
//!
//! 1. All per-stimulus constants are hoisted into *planes* (one
//!    [`TlPlane`]/[`AbPlane`] per stimulus) built once per campaign:
//!    precomputed labels, [`TimelineStimulusProfile`], [`SessionProfile`],
//!    and the full rewind table — the inner loop never touches a
//!    `Video` again.
//! 2. Each shard works out of a reusable **arena** ([`TlScratch`]/
//!    [`AbScratch`]) owned by its worker thread (via
//!    [`par_map_range_scratch`]): flat per-cell arrays for personas,
//!    picks, sessions, and the per-stimulus row index, plus the
//!    per-stimulus **seed plane** (`seed_buf`) and its bulk-expanded
//!    generator block (`rngs`). After the first shard warms the
//!    capacities up, the inner loop allocates nothing.
//! 3. Within a shard the work runs **stimulus-blocked**: pass A draws
//!    trait cursors and gates them (finishing traits only for served
//!    rows), pass B assigns stimuli and builds the per-stimulus cell
//!    index, pass C serves all showings of stimulus 0, then all of
//!    stimulus 1, … — deriving each stimulus's behaviour leaf seeds
//!    into a flat plane and expanding them into xoshiro256++ states in
//!    one block — and pass D/E answers controls and walks rows in
//!    ascending order folding filters, votes, and behaviour into the
//!    same shard accumulators the streaming engine uses. Slider
//!    responses and A/B judgments are **demand-driven**: they are drawn
//!    at push time, only for cells whose value actually reaches a live
//!    digest (kept row, non-skipped session, live stimulus).
//!
//! ## Why the digest stays byte-identical
//!
//! Every random draw in the pipeline comes from an RNG seeded by
//! `persona.seed ⊕ activity label ⊕ per-stimulus label` — never from a
//! shared stream — so *call order across (participant, stimulus) cells
//! is immaterial*: reordering pass C by stimulus instead of by
//! participant, bulk-seeding a whole stimulus block, or not drawing a
//! response whose value no accumulator consumes reads the exact same
//! bits everywhere else. What does carry order is the push sequence
//! into each accumulator, and pass E replays it exactly as the
//! streaming engine does: rows ascending, slots in presentation order.
//! Counters (gate, responses, filters, controls) are pure totals and
//! are bumped in pass C regardless of whether the value is later
//! consumed. The `streaming_equivalence` and `streaming_counters` tests
//! pin both engines to each other across shard sizes and thread counts.

use eyeorg_crowd::fastpath::{
    self, judge_pair_seeded, session_seed, timeline_control_seeded, timeline_response_seeded,
    video_session_from_rng,
};
use eyeorg_crowd::{
    ModelSeeds, Persona, RecruitmentService, SessionProfile, TestKind, TimelineStimulusProfile,
    VideoSession,
};
use eyeorg_stats::rng::Rng;
use eyeorg_stats::{par_map_range, par_map_range_scratch, resolve_threads, Seed};
use eyeorg_video::FrameTimeline;

use crate::campaign::{AbVerdict, ControlRow};
use crate::digest::DigestParams;
use crate::digest::{AbDigest, TimelineDigest};
use crate::experiment::{a_on_left, assign_into, AbStimulus, ExperimentConfig, TimelineStimulus};
use crate::filtering::{decide, FilterDecision, ParticipantFilter};
use crate::stream::{
    admitted_bases, admitted_bases_range, behavior_point_persona, merge_ab_shards,
    merge_tl_shards, AbShard, StreamConfig, TlShard,
};

/// Per-stimulus constants of a timeline campaign, hoisted out of the
/// inner loop: the response model's profile, the behaviour model's
/// profile, both labels, and the full rewind table.
struct TlPlane {
    label: String,
    ctrl_label: String,
    profile: TimelineStimulusProfile,
    session: SessionProfile,
    rewinds: Vec<usize>,
}

impl TlPlane {
    fn of(si: usize, st: &TimelineStimulus) -> TlPlane {
        let mut tl = FrameTimeline::of(&st.video);
        tl.precompute_rewinds();
        TlPlane {
            label: format!("tl-{si}"),
            ctrl_label: format!("ctrl-tl-{si}"),
            profile: TimelineStimulusProfile::of(&st.video),
            session: SessionProfile::of(&st.video, TestKind::Timeline),
            rewinds: tl.rewind_table(),
        }
    }
}

/// One worker's reusable arena: flat per-row / per-cell arrays (a
/// *cell* is `row * k + slot`). Cleared and refilled per shard; after
/// the first shard the capacities are warm and the shard loop
/// allocates nothing.
struct TlScratch {
    /// Served personas, one per row.
    personas: Vec<Persona>,
    /// Hoisted per-activity parent seeds, one per row — derived once
    /// instead of once per (cell, draw site).
    seeds: Vec<ModelSeeds>,
    /// Admitted index per row. Equal to `shard base + row` under an
    /// all-live mask; under an adaptive mask, pruned participants still
    /// consume admitted indices, so rows are a *subset* of the admitted
    /// sequence and carry their index explicitly.
    row_pi: Vec<u64>,
    /// Assigned stimulus per cell.
    picks: Vec<u32>,
    /// [`assign_into`] staging buffer.
    pick_buf: Vec<usize>,
    /// Session per cell (filled out of row order by pass C).
    sessions: Vec<Option<VideoSession>>,
    /// Whether the cell produced a response (not skipped).
    voted: Vec<bool>,
    /// Per-stimulus list of cells, the pass-C iteration order.
    stim_rows: Vec<Vec<u32>>,
    /// The per-stimulus seed plane: one behaviour leaf seed per showing
    /// of the current stimulus, derived in a flat pass.
    seed_buf: Vec<u64>,
    /// The seed plane bulk-expanded into generator states.
    rngs: Vec<Rng>,
    /// Contiguous per-row session slice handed to the filters.
    row_buf: Vec<VideoSession>,
}

impl TlScratch {
    fn new(n_stimuli: usize) -> TlScratch {
        TlScratch {
            personas: Vec::new(),
            seeds: Vec::new(),
            row_pi: Vec::new(),
            picks: Vec::new(),
            pick_buf: Vec::new(),
            sessions: Vec::new(),
            voted: Vec::new(),
            stim_rows: (0..n_stimuli).map(|_| Vec::new()).collect(),
            seed_buf: Vec::new(),
            rngs: Vec::new(),
            row_buf: Vec::new(),
        }
    }

    /// Reset row state for a new shard, keeping every capacity.
    fn reset(&mut self) {
        self.personas.clear();
        self.seeds.clear();
        self.row_pi.clear();
        self.picks.clear();
        self.sessions.clear();
        self.voted.clear();
        for rows in &mut self.stim_rows {
            rows.clear();
        }
    }

    /// Grow the per-cell arrays to `cells` entries.
    fn size_cells(&mut self, cells: usize) {
        self.picks.resize(cells, 0);
        self.sessions.resize(cells, None);
        self.voted.resize(cells, false);
    }
}

/// The flat timeline engine's shared read-only campaign state: planes,
/// population, seeds, and config, bundled so the one-shot campaign
/// entry point and the adaptive epoch driver run the same column
/// passes. Mask semantics match [`crate::stream::tl_fold_range`]:
/// serve-all-picks, push-only-live, prune-whole-participants.
pub(crate) struct FlatTlCtx<'a> {
    stimuli: &'a [TimelineStimulus],
    planes: Vec<TlPlane>,
    pop: eyeorg_crowd::PopulationProfile,
    cfg: &'a ExperimentConfig,
    filters: &'a [Box<dyn ParticipantFilter + Send + Sync>],
    recruit_seed: Seed,
    assign_seed: Seed,
    params: DigestParams,
    k: usize,
}

impl<'a> FlatTlCtx<'a> {
    /// Hoist all per-stimulus constants into planes, in parallel.
    pub(crate) fn new(
        stimuli: &'a [TimelineStimulus],
        service: &dyn RecruitmentService,
        cfg: &'a ExperimentConfig,
        filters: &'a [Box<dyn ParticipantFilter + Send + Sync>],
        seed: Seed,
        params: DigestParams,
        threads: usize,
    ) -> FlatTlCtx<'a> {
        FlatTlCtx {
            stimuli,
            planes: par_map_range(stimuli.len(), threads, |si| TlPlane::of(si, &stimuli[si])),
            pop: service.population(),
            cfg,
            filters,
            recruit_seed: seed.derive("recruit"),
            assign_seed: seed.derive("timeline"),
            params,
            k: cfg.videos_per_participant.min(stimuli.len()),
        }
    }

    fn new_scratch(&self) -> TlScratch {
        TlScratch::new(self.stimuli.len())
    }

    /// Fold participant indices `[lo, hi)` with admitted-index base
    /// `base` under the per-stimulus `live` mask — the stimulus-blocked
    /// column passes, replaying exactly the streaming engine's draw and
    /// push sequences.
    fn fold_range(
        &self,
        arena: &mut TlScratch,
        lo: usize,
        hi: usize,
        base: u64,
        live: &[bool],
    ) -> TlShard {
        let all_live = live.iter().all(|&l| l);
        let k = self.k;
        let mut fold = TlShard::new(self.stimuli, &self.params);
        arena.reset();

        // Pass A: humanness gate (and, under an adaptive mask, whole-
        // participant pruning); one persona per *served* row. The trait
        // stream is paused at the class draw, so gate-rejected and
        // pruned participants never pay for the rest of their trait
        // draws — they still consume their admitted index, keeping
        // every later participant's assignment equal to the full run's.
        let mut admitted_in_shard = 0u64;
        for i in lo..hi {
            let cur = self.pop.start_traits(self.recruit_seed, i as u64);
            if !crate::validation::captcha_admits_gate(cur.seed(), cur.class()) {
                fold.rejected += 1;
                continue;
            }
            let my_pi = base + admitted_in_shard;
            admitted_in_shard += 1;
            if !all_live {
                assign_into(
                    self.assign_seed,
                    my_pi,
                    self.stimuli.len(),
                    self.cfg.videos_per_participant,
                    &mut arena.pick_buf,
                );
                if !arena.pick_buf.iter().any(|&si| live[si]) {
                    fold.pruned += 1;
                    continue;
                }
            }
            arena.row_pi.push(my_pi);
            let p = cur.finish(&self.pop);
            arena.seeds.push(ModelSeeds::of(p.seed));
            arena.personas.push(p);
        }
        let rows = arena.personas.len();
        fold.admitted = rows as u64;
        arena.size_cells(rows * k);

        // Pass B: assignment + per-stimulus cell index. (Under a mask
        // this re-derives the picks pass A already peeked at — the
        // assignment stream is index-addressed, so the replay is free
        // of side effects and far cheaper than threading the picks
        // through.)
        for row in 0..rows {
            let my_pi = arena.row_pi[row];
            assign_into(self.assign_seed, my_pi, self.stimuli.len(),
                self.cfg.videos_per_participant, &mut arena.pick_buf);
            for (slot, &si) in arena.pick_buf.iter().enumerate() {
                let cell = row * k + slot;
                arena.picks[cell] = si as u32;
                arena.stim_rows[si].push(cell as u32);
            }
        }

        // Pass C: serve stimulus-blocked — one plane's constants
        // (profile, labels) stay hot across all of its showings in the
        // shard. The stimulus's behaviour leaf seeds are derived into a
        // flat plane and expanded into generator states in one block.
        // Stopped stimuli are still served (their sessions feed the
        // filters); only the digest push is masked, in pass E.
        for (si, plane) in self.planes.iter().enumerate() {
            arena.seed_buf.clear();
            arena.seed_buf.extend(
                arena.stim_rows[si]
                    .iter()
                    .map(|&cell| session_seed(&arena.seeds[cell as usize / k], &plane.label)),
            );
            Rng::seed_block(&arena.seed_buf, &mut arena.rngs);
            for (j, &cell) in arena.stim_rows[si].iter().enumerate() {
                let cell = cell as usize;
                let p = &arena.personas[cell / k];
                let session = video_session_from_rng(
                    &plane.session,
                    p,
                    TestKind::Timeline,
                    arena.rngs[j].clone(),
                );
                if session.skipped {
                    fold.skipped += 1;
                } else {
                    fold.collected += 1;
                    arena.voted[cell] = true;
                }
                arena.sessions[cell] = Some(session);
            }
        }

        // Passes D+E: controls, filters, and the order-pinned fold
        // — rows ascending, slots in presentation order, exactly
        // the streaming engine's push sequence. Slider responses are
        // drawn here, on demand: only cells whose value reaches a live
        // digest pay for the response model (the response stream is
        // per-cell independent, so eliding the rest perturbs nothing).
        for row in 0..rows {
            let my_pi = arena.row_pi[row];
            let cbase = row * k;
            arena.row_buf.clear();
            arena.row_buf.extend(
                // lint:allow(D4): pass C fills every cell — each (row, slot) belongs to exactly one stim_rows bucket
                arena.sessions[cbase..cbase + k].iter().map(|o| o.expect("cell served")),
            );
            let p = &arena.personas[row];
            let mseeds = &arena.seeds[row];
            let control = self.cfg.with_controls.then(|| {
                let ctrl = arena.picks[cbase] as usize;
                let passed = timeline_control_seeded(p, mseeds, &self.planes[ctrl].ctrl_label);
                ControlRow { participant: my_pi as usize, passed }
            });
            if let Some(c) = &control {
                fold.controls.record(c.passed);
            }
            let ctrl_arr;
            let ctrl_refs: &[&ControlRow] = if let Some(c) = &control {
                ctrl_arr = [c];
                &ctrl_arr
            } else {
                &[]
            };
            let d = decide(self.filters, &arena.row_buf, ctrl_refs);
            fold.filters.record(d);
            if d == FilterDecision::Kept {
                for slot in 0..k {
                    let si = arena.picks[cbase + slot] as usize;
                    if arena.voted[cbase + slot] && live[si] {
                        let plane = &self.planes[si];
                        let resp = timeline_response_seeded(
                            &plane.profile,
                            &plane.rewinds,
                            p,
                            mseeds,
                            &plane.label,
                        );
                        fold.stimuli[si].push(resp.submitted.as_secs_f64());
                    }
                }
            }
            fold.behavior.push(&behavior_point_persona(
                my_pi as usize,
                &arena.row_buf,
                p,
                mseeds,
            ));
        }
        fold
    }
}

/// One adaptive epoch through the flat engine: shard `[lo, hi)`, fold
/// each shard under `live` from per-worker arenas, and return the folds
/// in shard order plus the range's gate-admission count. The flat twin
/// of [`crate::stream::stream_tl_epoch`].
pub(crate) fn flat_tl_epoch(
    ctx: &FlatTlCtx<'_>,
    lo: usize,
    hi: usize,
    threads: usize,
    shard: usize,
    base_admitted: u64,
    live: &[bool],
) -> (Vec<TlShard>, u64) {
    let shards = (hi - lo).div_ceil(shard);
    let (bases, range_admitted) = admitted_bases_range(
        lo,
        hi,
        shard,
        threads,
        &ctx.pop,
        ctx.recruit_seed,
        base_admitted,
    );
    let folds: Vec<TlShard> = par_map_range_scratch(
        shards,
        threads,
        || ctx.new_scratch(),
        |arena, s| {
            let slo = lo + s * shard;
            let shi = (slo + shard).min(hi);
            let fold = ctx.fold_range(arena, slo, shi, bases[s], live);
            crate::stream::bump_shard_counters(&fold);
            fold
        },
    );
    (folds, range_admitted)
}

/// Run a timeline campaign through the flat data-plane engine.
///
/// Byte-identical to [`crate::stream::stream_timeline_campaign`] on the
/// same inputs — digest *and* obs counter fingerprint — at any shard
/// size and thread count (pinned by the `streaming_equivalence` tests).
pub fn flat_timeline_campaign(
    stimuli: &[TimelineStimulus],
    service: &dyn RecruitmentService,
    n_participants: usize,
    cfg: &ExperimentConfig,
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
    seed: Seed,
    sc: &StreamConfig,
) -> TimelineDigest {
    assert!(!stimuli.is_empty(), "campaign needs stimuli");
    let _t = eyeorg_obs::phase_timer("core.flat_timeline");
    let threads = resolve_threads(cfg.threads);
    let shard = sc.shard_size.max(1);
    let shards = n_participants.div_ceil(shard);

    let ctx = FlatTlCtx::new(stimuli, service, cfg, filters, seed, sc.params, threads);

    // Pass 1 (same as the streaming engine): admitted-index bases.
    let bases = admitted_bases(shards, shard, n_participants, threads, &ctx.pop,
        ctx.recruit_seed);

    let live = vec![true; stimuli.len()];

    // Pass 2: stimulus-blocked shard folds out of per-worker arenas.
    let folds: Vec<TlShard> = par_map_range_scratch(
        shards,
        threads,
        || ctx.new_scratch(),
        |arena, s| {
            let lo = s * shard;
            let hi = (lo + shard).min(n_participants);
            let fold = ctx.fold_range(arena, lo, hi, bases[s], &live);
            crate::stream::bump_shard_counters(&fold);
            fold
        },
    );

    merge_tl_shards(stimuli, service, n_participants, &sc.params, &folds)
}

/// Per-stimulus constants of an A/B campaign: the label, both sides'
/// ready moments under every readiness criterion, and the behaviour
/// profile of the longer capture (what the participant must sit
/// through).
struct AbPlane {
    label: String,
    ready_a: eyeorg_crowd::ReadyTimes,
    ready_b: eyeorg_crowd::ReadyTimes,
    session: SessionProfile,
}

impl AbPlane {
    fn of(si: usize, st: &AbStimulus) -> AbPlane {
        let longer = if st.a.duration() >= st.b.duration() { &st.a } else { &st.b };
        AbPlane {
            label: format!("ab-{si}"),
            ready_a: eyeorg_crowd::ReadyTimes::of(&st.a),
            ready_b: eyeorg_crowd::ReadyTimes::of(&st.b),
            session: SessionProfile::of(longer, TestKind::Ab),
        }
    }
}

/// [`TlScratch`]'s A/B twin. Verdicts are not stored: judgments are
/// demand-driven, drawn in the fold pass only for kept rows.
struct AbScratch {
    personas: Vec<Persona>,
    seeds: Vec<ModelSeeds>,
    picks: Vec<u32>,
    pick_buf: Vec<usize>,
    sessions: Vec<Option<VideoSession>>,
    voted: Vec<bool>,
    stim_rows: Vec<Vec<u32>>,
    seed_buf: Vec<u64>,
    rngs: Vec<Rng>,
    row_buf: Vec<VideoSession>,
}

impl AbScratch {
    fn new(n_stimuli: usize) -> AbScratch {
        AbScratch {
            personas: Vec::new(),
            seeds: Vec::new(),
            picks: Vec::new(),
            pick_buf: Vec::new(),
            sessions: Vec::new(),
            voted: Vec::new(),
            stim_rows: (0..n_stimuli).map(|_| Vec::new()).collect(),
            seed_buf: Vec::new(),
            rngs: Vec::new(),
            row_buf: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.personas.clear();
        self.seeds.clear();
        self.picks.clear();
        self.sessions.clear();
        self.voted.clear();
        for rows in &mut self.stim_rows {
            rows.clear();
        }
    }

    fn size_cells(&mut self, cells: usize) {
        self.picks.resize(cells, 0);
        self.sessions.resize(cells, None);
        self.voted.resize(cells, false);
    }
}

/// Run an A/B campaign through the flat data-plane engine.
/// Byte-identical to [`crate::stream::stream_ab_campaign`] on the same
/// inputs.
pub fn flat_ab_campaign(
    stimuli: &[AbStimulus],
    service: &dyn RecruitmentService,
    n_participants: usize,
    cfg: &ExperimentConfig,
    filters: &[Box<dyn ParticipantFilter + Send + Sync>],
    seed: Seed,
    sc: &StreamConfig,
) -> AbDigest {
    assert!(!stimuli.is_empty(), "campaign needs stimuli");
    let _t = eyeorg_obs::phase_timer("core.flat_ab");
    let threads = resolve_threads(cfg.threads);
    let shard = sc.shard_size.max(1);
    let shards = n_participants.div_ceil(shard);
    let pop = service.population();
    let recruit_seed = seed.derive("recruit");
    let assign_seed = seed.derive("ab-assign");
    let side_seed = seed.derive("ab-side");
    let k = cfg.videos_per_participant.min(stimuli.len());

    let bases = admitted_bases(shards, shard, n_participants, threads, &pop, recruit_seed);

    let planes: Vec<AbPlane> =
        par_map_range(stimuli.len(), threads, |si| AbPlane::of(si, &stimuli[si]));

    let folds: Vec<AbShard> = par_map_range_scratch(
        shards,
        threads,
        || AbScratch::new(stimuli.len()),
        |arena, s| {
            let lo = s * shard;
            let hi = (lo + shard).min(n_participants);
            let mut fold = AbShard::new(stimuli);
            arena.reset();

            // Pass A: gate on the class-only trait prefix; rejected
            // participants never pay for the rest of their trait draws.
            for i in lo..hi {
                let cur = pop.start_traits(recruit_seed, i as u64);
                if crate::validation::captcha_admits_gate(cur.seed(), cur.class()) {
                    let p = cur.finish(&pop);
                    arena.seeds.push(ModelSeeds::of(p.seed));
                    arena.personas.push(p);
                } else {
                    fold.rejected += 1;
                }
            }
            let rows = arena.personas.len();
            fold.admitted = rows as u64;
            arena.size_cells(rows * k);

            for row in 0..rows {
                let my_pi = bases[s] + row as u64;
                assign_into(assign_seed, my_pi, stimuli.len(), cfg.videos_per_participant,
                    &mut arena.pick_buf);
                for (slot, &si) in arena.pick_buf.iter().enumerate() {
                    let cell = row * k + slot;
                    arena.picks[cell] = si as u32;
                    arena.stim_rows[si].push(cell as u32);
                }
            }

            // Pass C: sessions only, bulk-seeded per stimulus. The
            // judgment draw is deferred to the fold pass — its value is
            // consumed only when the row survives the filters, but the
            // cast/skip counters and show tallies are totals over every
            // showing and are bumped here.
            for (si, plane) in planes.iter().enumerate() {
                arena.seed_buf.clear();
                arena.seed_buf.extend(
                    arena.stim_rows[si]
                        .iter()
                        .map(|&cell| session_seed(&arena.seeds[cell as usize / k], &plane.label)),
                );
                Rng::seed_block(&arena.seed_buf, &mut arena.rngs);
                let acc = &mut fold.stimuli[si];
                for (j, &cell) in arena.stim_rows[si].iter().enumerate() {
                    let cell = cell as usize;
                    let row = cell / k;
                    let my_pi = bases[s] + row as u64;
                    let p = &arena.personas[row];
                    let a_left = a_on_left(side_seed, my_pi, si);
                    let session = video_session_from_rng(
                        &plane.session,
                        p,
                        TestKind::Ab,
                        arena.rngs[j].clone(),
                    );
                    acc.shows += 1;
                    if a_left {
                        acc.a_left_shows += 1;
                    }
                    if session.skipped {
                        fold.skipped += 1;
                    } else {
                        fold.cast += 1;
                        arena.voted[cell] = true;
                    }
                    arena.sessions[cell] = Some(session);
                }
            }

            for row in 0..rows {
                let my_pi = bases[s] + row as u64;
                let cbase = row * k;
                arena.row_buf.clear();
                arena.row_buf.extend(
                    // lint:allow(D4): pass C fills every cell — each (row, slot) belongs to exactly one stim_rows bucket
                    arena.sessions[cbase..cbase + k].iter().map(|o| o.expect("cell served")),
                );
                let p = &arena.personas[row];
                let mseeds = &arena.seeds[row];
                let control = cfg.with_controls.then(|| {
                    let ctrl = arena.picks[cbase] as usize;
                    let (_, passed) = fastpath::ab_control_seeded(
                        planes[ctrl].ready_a.get(p.readiness),
                        p,
                        mseeds,
                        &planes[ctrl].label,
                    );
                    ControlRow { participant: my_pi as usize, passed }
                });
                if let Some(c) = &control {
                    fold.controls.record(c.passed);
                }
                let ctrl_arr;
                let ctrl_refs: &[&ControlRow] = if let Some(c) = &control {
                    ctrl_arr = [c];
                    &ctrl_arr
                } else {
                    &[]
                };
                let d = decide(filters, &arena.row_buf, ctrl_refs);
                fold.filters.record(d);
                if d == FilterDecision::Kept {
                    for slot in 0..k {
                        let cell = cbase + slot;
                        if arena.voted[cell] {
                            let si = arena.picks[cell] as usize;
                            let plane = &planes[si];
                            let a_left = a_on_left(side_seed, my_pi, si);
                            let (l, r) = if a_left {
                                (plane.ready_a.get(p.readiness), plane.ready_b.get(p.readiness))
                            } else {
                                (plane.ready_b.get(p.readiness), plane.ready_a.get(p.readiness))
                            };
                            let answer = judge_pair_seeded(l, r, p, mseeds, &plane.label);
                            fold.stimuli[si].tally.record(match (answer, a_left) {
                                (eyeorg_crowd::AbAnswer::NoDifference, _) => AbVerdict::NoDifference,
                                (eyeorg_crowd::AbAnswer::Left, true)
                                | (eyeorg_crowd::AbAnswer::Right, false) => AbVerdict::AFaster,
                                (eyeorg_crowd::AbAnswer::Left, false)
                                | (eyeorg_crowd::AbAnswer::Right, true) => AbVerdict::BFaster,
                            });
                        }
                    }
                }
                fold.behavior.push(&behavior_point_persona(
                    my_pi as usize,
                    &arena.row_buf,
                    p,
                    mseeds,
                ));
            }
            fold.bump_counters();
            fold
        },
    );

    merge_ab_shards(stimuli, service, n_participants, &folds)
}
