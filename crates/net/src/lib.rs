//! # eyeorg-net
//!
//! Deterministic, event-driven network simulator underpinning the Eyeorg
//! reproduction.
//!
//! The paper's capture tool (webpeg) records page loads over real network
//! paths with Chrome's network emulation; every timing the platform later
//! shows to participants is downstream of transport behaviour. This crate
//! replaces the physical network with a seeded simulation that keeps the
//! pieces that matter to the paper's experiments:
//!
//! * a shared **access link** per client with serialisation, propagation
//!   and drop-tail queueing ([`link`]),
//! * **Reno/NewReno TCP** per connection — slow start from a 10-segment
//!   window, AIMD, fast retransmit, RTO with backoff ([`tcp`]),
//! * seeded **loss processes** including bursty Gilbert–Elliott loss
//!   ([`loss`]),
//! * **TLS handshake** round-trip costs ([`profile::TlsMode`]),
//! * a caching **DNS resolver** supporting webpeg's primer-load
//!   methodology ([`dns`]),
//! * WebPageTest-style **network profiles** (Cable/DSL/3G/LTE/Fiber)
//!   ([`profile`]).
//!
//! Everything is driven by a deterministic event queue ([`event`]) with
//! FIFO tie-breaking; identical seeds replay identical packet timelines.
//!
//! The top-level entry point is [`sim::NetSim`]; the HTTP engines in
//! `eyeorg-http` sit directly on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dns;
pub mod event;
pub mod link;
pub mod loss;
pub mod profile;
pub mod qlog;
pub mod sim;
pub mod tcp;
pub mod time;

pub use dns::{DnsConfig, Resolver};
pub use loss::{LossModel, LossProcess};
pub use profile::{NetworkProfile, TlsMode};
pub use qlog::{ConnEvent, ConnLog};
pub use sim::{ConnId, ConnStats, NetEvent, NetSim};
pub use time::{SimDuration, SimTime};
