//! Streaming, mergeable accumulators for the sharded campaign engine.
//!
//! The materializing campaign pipeline retains every showing before
//! analysis, so memory grows with the crowd. The streaming engine
//! (`eyeorg-core`'s `stream` module) instead folds each participant
//! shard into the accumulators here and merges shards; for that to keep
//! the workspace's determinism contract — byte-identical results at any
//! thread count *and any shard size* — every accumulator's final state
//! must be a pure function of the multiset of observations, independent
//! of push order and merge-tree shape.
//!
//! * [`Moments`] carries **exact fixed-point integer sums** rather than
//!   floating Welford state: integer addition is associative, so Chan's
//!   pairwise combine is exact and the mean/variance read-outs (computed
//!   once, at query time, from the integer state) cannot depend on how
//!   the sample was sharded. Classic floating Welford/Chan merging would
//!   drift by rounding order and break the byte-identical contract.
//! * [`QuantileSketch`] is exact below a construction-time cap (small
//!   campaigns keep today's figure outputs unchanged) and degrades to
//!   fixed-bin counts over a known value range beyond it, with the error
//!   bounded by one bin width. Spilling depends only on the total count,
//!   so the final state is again multiset-determined.
//! * Mergeable fixed-bin histograms live in [`crate::hist`]
//!   ([`crate::Histogram::merge`]).

use crate::quantile::percentile_sorted;

/// Fixed-point scale for [`Moments`]: values are quantized to `2⁻³²`
/// before summation (sub-nanosecond resolution for second-valued
/// inputs), squares likewise.
const SCALE: f64 = 4_294_967_296.0; // 2^32

/// Largest representable magnitude for [`Moments::push`]: `2²⁰` (≈ 1.05
/// million — about 12 days in seconds, far beyond any campaign
/// quantity). The bound keeps the per-item quantized square below
/// `2⁷²`, so the `i128` running sum cannot overflow before `2⁵⁵` items.
pub const MOMENTS_MAX_ABS: f64 = 1_048_576.0; // 2^20

/// Streaming sample moments with an exact, associative merge.
///
/// Internally the accumulator holds `Σ round(v·2³²)` and
/// `Σ round(v²·2³²)` as `i128` plus exact `min`/`max`; mean, variance,
/// and standard deviation are derived at query time. Two `Moments` over
/// disjoint sub-samples merge into exactly the state a single pass over
/// the union would produce — the property the sharded campaign engine's
/// byte-identical contract is built on.
#[derive(Debug, Clone, PartialEq)]
pub struct Moments {
    n: u64,
    qsum: i128,
    qsumsq: i128,
    min: f64,
    max: f64,
    /// Non-finite or out-of-magnitude observations, counted but not
    /// folded (campaign quantities never hit this; it exists so a bug
    /// upstream surfaces as a visible count, not silent NaN poisoning).
    rejected: u64,
}

impl Default for Moments {
    fn default() -> Self {
        Moments::new()
    }
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Moments {
        Moments {
            n: 0,
            qsum: 0,
            qsumsq: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rejected: 0,
        }
    }

    /// Fold one observation.
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() || v.abs() > MOMENTS_MAX_ABS {
            self.rejected += 1;
            return;
        }
        self.n += 1;
        self.qsum += (v * SCALE).round() as i128;
        self.qsumsq += (v * v * SCALE).round() as i128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another accumulator's state into this one (Chan-style
    /// combine, exact because the carried sums are integers).
    pub fn merge(&mut self, other: &Moments) {
        self.n += other.n;
        self.qsum += other.qsum;
        self.qsumsq += other.qsumsq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.rejected += other.rejected;
    }

    /// Accepted observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Observations rejected as non-finite or out of magnitude.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Sample mean (`None` when empty). Accurate to the `2⁻³²`
    /// quantization — far below anything the reports print.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        Some(self.qsum as f64 / SCALE / self.n as f64)
    }

    /// Unbiased (n−1) sample variance; `None` with fewer than two
    /// observations.
    pub fn variance(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let sum = self.qsum as f64 / SCALE;
        let sumsq = self.qsumsq as f64 / SCALE;
        Some(((sumsq - sum * sum / n) / (n - 1.0)).max(0.0))
    }

    /// Sample standard deviation.
    pub fn stdev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest accepted observation.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest accepted observation.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Normal-approximation confidence interval for the mean at critical
    /// value `z` (e.g. 1.96 for ~95%): `mean ± |z|·s/√n`. The sign of
    /// `z` is ignored — [`QuantileSketch::quantile_ci`] normalizes the
    /// same way, so a negative critical value can never produce an
    /// inverted (`lo > hi`) interval from either accumulator. `None`
    /// with fewer than two observations (no variance estimate). Like
    /// every read-out here it is a pure function of the integer state,
    /// so the adaptive engine's stopping decisions inherit the multiset
    /// determinism of the accumulator itself.
    pub fn mean_ci(&self, z: f64) -> Option<(f64, f64)> {
        let mean = self.mean()?;
        let sd = self.stdev()?;
        let half = z.abs() * sd / (self.n as f64).sqrt();
        Some((mean - half, mean + half))
    }

    /// The raw accumulator state, bit-exact: the checkpoint layer's
    /// serialization substrate. `min`/`max` are carried as `to_bits()`
    /// so the empty accumulator's `±inf` sentinels (and every other
    /// float) round-trip without touching a decimal formatter.
    pub fn state(&self) -> MomentsState {
        MomentsState {
            n: self.n,
            qsum: self.qsum,
            qsumsq: self.qsumsq,
            min_bits: self.min.to_bits(),
            max_bits: self.max.to_bits(),
            rejected: self.rejected,
        }
    }

    /// Rebuild an accumulator from raw state. Total: every state is
    /// representable, and `from_state(state())` is bit-identical to the
    /// original (`Debug`-equal, hence fingerprint-equal). Cross-field
    /// consistency (e.g. a `min` with `n = 0`) is the serializer's
    /// responsibility; an inconsistent state can skew read-outs but can
    /// never panic.
    pub fn from_state(s: &MomentsState) -> Moments {
        Moments {
            n: s.n,
            qsum: s.qsum,
            qsumsq: s.qsumsq,
            min: f64::from_bits(s.min_bits),
            max: f64::from_bits(s.max_bits),
            rejected: s.rejected,
        }
    }
}

/// Raw [`Moments`] state — every private field, floats as `to_bits()`.
/// Produced by [`Moments::state`], consumed by [`Moments::from_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MomentsState {
    /// Accepted observations.
    pub n: u64,
    /// `Σ round(v·2³²)` over accepted observations.
    pub qsum: i128,
    /// `Σ round(v²·2³²)` over accepted observations.
    pub qsumsq: i128,
    /// `min.to_bits()` (`+inf` when empty).
    pub min_bits: u64,
    /// `max.to_bits()` (`-inf` when empty).
    pub max_bits: u64,
    /// Rejected (non-finite / out-of-magnitude) observations.
    pub rejected: u64,
}

/// Why a raw accumulator state was rejected by a `from_state`
/// constructor. Untrusted bytes (checkpoint files) must surface as
/// typed errors, never as panics, so the validations behind this type
/// are the accumulators' whole defensive surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateError(pub &'static str);

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid accumulator state: {}", self.0)
    }
}

impl std::error::Error for StateError {}

/// Raw [`QuantileSketch`] state — every private field, floats as
/// `to_bits()`. Produced by [`QuantileSketch::state`], consumed by
/// [`QuantileSketch::from_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketchState {
    /// `lo.to_bits()` (construction-time range start).
    pub lo_bits: u64,
    /// `hi.to_bits()` (construction-time range end).
    pub hi_bits: u64,
    /// Bin count once spilled.
    pub bins: usize,
    /// Exact-mode capacity.
    pub exact_cap: usize,
    /// Sorted exact sample as `to_bits()` values (exact mode only).
    pub exact_bits: Vec<u64>,
    /// Bin counts (spilled mode only; empty in exact mode).
    pub counts: Vec<u64>,
    /// Whether the sketch has spilled to bins.
    pub spilled: bool,
    /// `min.to_bits()` (`+inf` when empty).
    pub min_bits: u64,
    /// `max.to_bits()` (`-inf` when empty).
    pub max_bits: u64,
    /// Folded observations.
    pub n: u64,
    /// Rejected (non-finite) observations.
    pub rejected: u64,
}

/// A bounded, deterministic quantile sketch.
///
/// Below `exact_cap` total observations the sketch keeps the sorted
/// sample itself and [`QuantileSketch::quantile`] is **exact** — the
/// same linear-interpolation percentile the figure pipeline computes
/// today, so small-campaign outputs are unchanged. Past the cap it
/// spills to fixed-width bin counts over the construction-time value
/// range; quantile queries then interpolate within a bin and the error
/// is bounded by one bin width ([`QuantileSketch::max_error`]).
///
/// Both representations, and the spill decision itself, depend only on
/// the multiset of observations and the construction parameters — never
/// on push order or merge-tree shape — so shard-size and thread-count
/// sweeps produce byte-identical sketches.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    bins: usize,
    exact_cap: usize,
    /// Sorted sample while in exact mode; drained on spill.
    exact: Vec<f64>,
    /// Bin counts once spilled; empty in exact mode.
    counts: Vec<u64>,
    spilled: bool,
    min: f64,
    max: f64,
    n: u64,
    /// Non-finite observations, counted but not folded.
    rejected: u64,
}

impl QuantileSketch {
    /// A sketch over the value range `[lo, hi]` with `bins` equal-width
    /// bins once spilled, exact up to `exact_cap` observations. Returns
    /// `None` when `bins == 0` or the range is empty or non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize, exact_cap: usize) -> Option<QuantileSketch> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return None;
        }
        Some(QuantileSketch {
            lo,
            hi,
            bins,
            exact_cap,
            exact: Vec::new(),
            counts: Vec::new(),
            spilled: false,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            n: 0,
            rejected: 0,
        })
    }

    /// Fold one observation. Out-of-range values clamp to the nearest
    /// bin once spilled (their exact value still drives `min`/`max`).
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() {
            self.rejected += 1;
            return;
        }
        self.n += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if self.spilled {
            self.bin_record(v);
            return;
        }
        let at = self.exact.partition_point(|x| x.total_cmp(&v).is_lt());
        self.exact.insert(at, v);
        if self.exact.len() > self.exact_cap {
            self.spill();
        }
    }

    fn spill(&mut self) {
        self.counts = vec![0; self.bins];
        self.spilled = true;
        let exact = std::mem::take(&mut self.exact);
        for v in exact {
            self.bin_record(v);
        }
    }

    fn bin_record(&mut self, v: f64) {
        // lint:allow(D7): float division never panics (bins >= 1 by construction)
        let width = (self.hi - self.lo) / self.bins as f64;
        let clamped = v.clamp(self.lo, self.hi);
        // lint:allow(D7): float division never panics; width is finite for a valid config
        let idx = (((clamped - self.lo) / width) as usize).min(self.bins - 1);
        // lint:allow(D7): idx is clamped by .min(self.bins - 1)
        self.counts[idx] += 1;
    }

    /// Fold another sketch into this one. Returns `false` (leaving
    /// `self` untouched) when the construction parameters differ.
    #[must_use]
    pub fn merge(&mut self, other: &QuantileSketch) -> bool {
        if self.lo.to_bits() != other.lo.to_bits()
            || self.hi.to_bits() != other.hi.to_bits()
            || self.bins != other.bins
            || self.exact_cap != other.exact_cap
        {
            return false;
        }
        self.n += other.n;
        self.rejected += other.rejected;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if !self.spilled && !other.spilled && self.exact.len() + other.exact.len() <= self.exact_cap
        {
            self.exact.extend_from_slice(&other.exact);
            self.exact.sort_by(f64::total_cmp);
            return true;
        }
        if !self.spilled {
            self.spill();
        }
        if other.spilled {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
        } else {
            for &v in &other.exact {
                self.bin_record(v);
            }
        }
        true
    }

    /// Folded observations (rejected non-finite values excluded).
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Non-finite observations, counted but not folded.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Whether the sketch still holds the exact sample.
    pub fn is_exact(&self) -> bool {
        !self.spilled
    }

    /// The sorted sample, while in exact mode.
    pub fn exact_values(&self) -> Option<&[f64]> {
        (!self.spilled).then_some(self.exact.as_slice())
    }

    /// Worst-case absolute error of [`QuantileSketch::quantile`]: zero
    /// in exact mode, one bin width once spilled.
    pub fn max_error(&self) -> f64 {
        if self.spilled {
            (self.hi - self.lo) / self.bins as f64
        } else {
            0.0
        }
    }

    /// Smallest folded observation.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest folded observation.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// The `p`-th percentile (0–100, clamped). Exact below the cap
    /// (same interpolation as [`crate::quantile::percentile_sorted`]);
    /// within one bin width of the true value once spilled. `None` when
    /// empty.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        if !self.spilled {
            return Some(percentile_sorted(&self.exact, p));
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        // The extrema are tracked exactly even once binned.
        if p == 0.0 {
            return Some(self.min);
        }
        if p == 100.0 {
            return Some(self.max);
        }
        let rank = (self.n - 1) as f64 * p / 100.0;
        let width = (self.hi - self.lo) / self.bins as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank < (cum + c) as f64 {
                // Spread the bin's mass evenly across its width; the
                // half-count offset centres a lone observation.
                let frac = ((rank - cum as f64 + 0.5) / c as f64).clamp(0.0, 1.0);
                let v = self.lo + width * (i as f64 + frac);
                return Some(v.clamp(self.min, self.max));
            }
            cum += c;
        }
        Some(self.max)
    }

    /// Sketch-resolution-aware confidence interval for the `p`-th
    /// percentile at critical value `z`.
    ///
    /// The interval is the classic distribution-free order-statistic
    /// band: the rank of the `p`-th percentile is binomially distributed
    /// with standard deviation `√(n·q·(1−q))` (`q = p/100`), so the
    /// bounds are the quantiles at ranks `rank ± z·√(n·q·(1−q))`,
    /// clamped to the sample. Once the sketch has spilled, each bound is
    /// additionally widened by [`QuantileSketch::max_error`] (one bin
    /// width) so the interval stays conservative at sketch resolution;
    /// both bounds are clamped to the exactly-tracked `[min, max]`.
    /// `None` when empty. Deterministic: a pure function of the
    /// multiset-determined sketch state.
    pub fn quantile_ci(&self, p: f64, z: f64) -> Option<(f64, f64)> {
        if self.n == 0 {
            return None;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        let q = p / 100.0;
        let n = self.n as f64;
        let spread = z.abs() * (n * q * (1.0 - q)).sqrt();
        let rank = (n - 1.0) * q;
        let lo_rank = (rank - spread).max(0.0);
        let hi_rank = (rank + spread).min(n - 1.0);
        let (lo_p, hi_p) = if self.n > 1 {
            (100.0 * lo_rank / (n - 1.0), 100.0 * hi_rank / (n - 1.0))
        } else {
            (0.0, 100.0)
        };
        let err = self.max_error();
        let lo = self.quantile(lo_p)? - err;
        let hi = self.quantile(hi_p)? + err;
        Some((lo.max(self.min), hi.min(self.max)))
    }

    /// Construction-time value range `(lo, hi)`.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Construction-time bin count.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Construction-time exact-mode capacity.
    pub fn exact_cap(&self) -> usize {
        self.exact_cap
    }

    /// The raw sketch state, bit-exact (see [`Moments::state`]).
    pub fn state(&self) -> QuantileSketchState {
        QuantileSketchState {
            lo_bits: self.lo.to_bits(),
            hi_bits: self.hi.to_bits(),
            bins: self.bins,
            exact_cap: self.exact_cap,
            exact_bits: self.exact.iter().map(|v| v.to_bits()).collect(),
            counts: self.counts.clone(),
            spilled: self.spilled,
            min_bits: self.min.to_bits(),
            max_bits: self.max.to_bits(),
            n: self.n,
            rejected: self.rejected,
        }
    }

    /// Rebuild a sketch from raw state, validating every invariant a
    /// `push`/`merge` history would have maintained; `from_state(state())`
    /// of any live sketch is bit-identical to the original. Untrusted
    /// (checkpoint-file) states that violate an invariant come back as
    /// a typed [`StateError`], never a panic — the spilled/exact regime
    /// split, bin-count arity, sample ordering, and the `n` bookkeeping
    /// are all checked because later `push`/`merge`/`quantile` calls
    /// index into the state they establish.
    pub fn from_state(s: &QuantileSketchState) -> Result<QuantileSketch, StateError> {
        let lo = f64::from_bits(s.lo_bits);
        let hi = f64::from_bits(s.hi_bits);
        if s.bins == 0 || !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(StateError("sketch construction range/bins invalid"));
        }
        let exact: Vec<f64> = s.exact_bits.iter().map(|&b| f64::from_bits(b)).collect();
        if exact.iter().any(|v| !v.is_finite()) {
            return Err(StateError("non-finite value in exact sample"));
        }
        // lint:allow(D7, n=2): windows(2) yields exactly 2-element slices
        if exact.windows(2).any(|w| w[0].total_cmp(&w[1]).is_gt()) {
            return Err(StateError("exact sample not sorted"));
        }
        if s.spilled {
            if !exact.is_empty() {
                return Err(StateError("spilled sketch carries an exact sample"));
            }
            if s.counts.len() != s.bins {
                return Err(StateError("spilled bin-count arity mismatch"));
            }
            let binned: u64 = s.counts.iter().fold(0u64, |a, &c| a.saturating_add(c));
            if binned != s.n {
                return Err(StateError("spilled bin counts disagree with n"));
            }
        } else {
            if !s.counts.is_empty() {
                return Err(StateError("exact-mode sketch carries bin counts"));
            }
            if exact.len() > s.exact_cap {
                return Err(StateError("exact sample exceeds its cap"));
            }
            if exact.len() as u64 != s.n {
                return Err(StateError("exact sample length disagrees with n"));
            }
        }
        Ok(QuantileSketch {
            lo,
            hi,
            bins: s.bins,
            exact_cap: s.exact_cap,
            exact,
            counts: s.counts.clone(),
            spilled: s.spilled,
            min: f64::from_bits(s.min_bits),
            max: f64::from_bits(s.max_bits),
            n: s.n,
            rejected: s.rejected,
        })
    }

    /// Bytes retained by this sketch (the peak-RSS proxy the scale
    /// bench reports): heap buffers plus the struct itself.
    pub fn retained_bytes(&self) -> usize {
        std::mem::size_of::<QuantileSketch>()
            + self.exact.capacity() * std::mem::size_of::<f64>()
            + self.counts.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;

    fn sample(n: usize) -> Vec<f64> {
        // Deterministic, irregular, includes ties and near-boundary
        // values.
        (0..n).map(|i| ((i * 7919) % 1000) as f64 / 100.0).collect()
    }

    #[test]
    fn moments_match_summary() {
        let data = sample(500);
        let mut m = Moments::new();
        for &v in &data {
            m.push(v);
        }
        let s = Summary::of(&data).unwrap();
        assert_eq!(m.count(), 500);
        assert!((m.mean().unwrap() - s.mean).abs() < 1e-6);
        assert!((m.stdev().unwrap() - s.stdev).abs() < 1e-6);
        assert_eq!(m.min().unwrap(), s.min);
        assert_eq!(m.max().unwrap(), s.max);
    }

    #[test]
    fn moments_merge_is_exact_for_any_split() {
        let data = sample(1000);
        let mut whole = Moments::new();
        for &v in &data {
            whole.push(v);
        }
        for split in [1, 7, 250, 999] {
            let (a, b) = data.split_at(split);
            let mut left = Moments::new();
            let mut right = Moments::new();
            for &v in a {
                left.push(v);
            }
            for &v in b {
                right.push(v);
            }
            left.merge(&right);
            // Bit-exact state equality, not approximate agreement: the
            // digest fingerprint depends on it.
            assert_eq!(format!("{left:?}"), format!("{whole:?}"), "split {split}");
        }
    }

    #[test]
    fn moments_reject_pathological_values() {
        let mut m = Moments::new();
        m.push(f64::NAN);
        m.push(f64::INFINITY);
        m.push(MOMENTS_MAX_ABS * 2.0);
        m.push(1.0);
        assert_eq!(m.count(), 1);
        assert_eq!(m.rejected(), 3);
        assert_eq!(m.mean(), Some(1.0));
    }

    #[test]
    fn moments_degenerate_cases() {
        let m = Moments::new();
        assert_eq!(m.mean(), None);
        assert_eq!(m.variance(), None);
        assert_eq!(m.min(), None);
        let mut one = Moments::new();
        one.push(3.0);
        assert_eq!(one.mean(), Some(3.0));
        assert_eq!(one.variance(), None);
    }

    #[test]
    fn moments_mean_ci_matches_summary_formula() {
        let data = sample(400);
        let mut m = Moments::new();
        for &v in &data {
            m.push(v);
        }
        let s = Summary::of(&data).unwrap();
        let (lo, hi) = m.mean_ci(1.96).unwrap();
        let half = 1.96 * s.stdev / (data.len() as f64).sqrt();
        assert!((lo - (s.mean - half)).abs() < 1e-6);
        assert!((hi - (s.mean + half)).abs() < 1e-6);
        // Quadrupling n halves the half-width (same population).
        let mut m4 = Moments::new();
        for _ in 0..4 {
            for &v in &data {
                m4.push(v);
            }
        }
        let (lo4, hi4) = m4.mean_ci(1.96).unwrap();
        assert!((hi4 - lo4) < 0.6 * (hi - lo));
        // Under two observations there is no variance estimate.
        let mut one = Moments::new();
        one.push(3.0);
        assert_eq!(one.mean_ci(1.96), None);
    }

    #[test]
    fn mean_ci_and_quantile_ci_agree_on_negative_z() {
        // Regression: mean_ci used the signed z, so a negative critical
        // value produced an inverted (lo > hi) interval while
        // quantile_ci — which normalizes with z.abs() — did not. Both
        // must treat ±z identically.
        let data = sample(400);
        let mut m = Moments::new();
        let mut sk = QuantileSketch::new(0.0, 10.0, 64, 512).unwrap();
        for &v in &data {
            m.push(v);
            sk.push(v);
        }
        for z in [1.96, 1.0, 2.58] {
            let pos = m.mean_ci(z).unwrap();
            let neg = m.mean_ci(-z).unwrap();
            assert_eq!(pos, neg, "mean_ci must ignore the sign of z={z}");
            assert!(pos.0 <= pos.1, "z={z}");
            let qpos = sk.quantile_ci(50.0, z).unwrap();
            let qneg = sk.quantile_ci(50.0, -z).unwrap();
            assert_eq!(qpos, qneg, "quantile_ci must ignore the sign of z={z}");
            assert!(qneg.0 <= qneg.1, "z={z}");
        }
        // z = 0 degenerates both to a point interval around the estimate.
        let (lo, hi) = m.mean_ci(0.0).unwrap();
        assert_eq!(lo, hi);
    }

    #[test]
    fn moments_state_round_trip_is_bit_exact() {
        // Live accumulator with rejected counts.
        let mut m = Moments::new();
        for &v in &sample(333) {
            m.push(v);
        }
        m.push(f64::NAN);
        m.push(-MOMENTS_MAX_ABS * 4.0);
        let back = Moments::from_state(&m.state());
        assert_eq!(format!("{back:?}"), format!("{m:?}"));
        // Empty accumulator: the ±inf min/max sentinels must survive.
        let empty = Moments::new();
        let s = empty.state();
        assert_eq!(f64::from_bits(s.min_bits), f64::INFINITY);
        assert_eq!(f64::from_bits(s.max_bits), f64::NEG_INFINITY);
        let back = Moments::from_state(&s);
        assert_eq!(format!("{back:?}"), format!("{empty:?}"));
        // Negative sums round-trip through the signed i128 carriers.
        let mut neg = Moments::new();
        neg.push(-3.25);
        neg.push(-0.5);
        let back = Moments::from_state(&neg.state());
        assert_eq!(format!("{back:?}"), format!("{neg:?}"));
    }

    #[test]
    fn sketch_state_round_trip_both_regimes() {
        for (n, cap) in [(0usize, 512usize), (300, 512), (5000, 256)] {
            let mut sk = QuantileSketch::new(0.0, 10.0, 64, cap).unwrap();
            for &v in &sample(n) {
                sk.push(v);
            }
            sk.push(f64::INFINITY); // rejected, counted
            let back = QuantileSketch::from_state(&sk.state()).unwrap();
            assert_eq!(format!("{back:?}"), format!("{sk:?}"), "n={n} cap={cap}");
        }
    }

    #[test]
    fn sketch_from_state_rejects_corrupt_states() {
        let mut sk = QuantileSketch::new(0.0, 10.0, 8, 4).unwrap();
        for v in [3.0, 1.0, 2.0] {
            sk.push(v);
        }
        let good = sk.state();
        assert!(QuantileSketch::from_state(&good).is_ok());
        let corrupt = |f: &dyn Fn(&mut QuantileSketchState)| {
            let mut s = good.clone();
            f(&mut s);
            QuantileSketch::from_state(&s)
        };
        assert!(corrupt(&|s| s.bins = 0).is_err());
        assert!(corrupt(&|s| s.hi_bits = s.lo_bits).is_err());
        assert!(corrupt(&|s| s.hi_bits = f64::NAN.to_bits()).is_err());
        assert!(corrupt(&|s| s.exact_bits[0] = f64::NAN.to_bits()).is_err());
        assert!(corrupt(&|s| s.exact_bits.swap(0, 2)).is_err()); // unsorted
        assert!(corrupt(&|s| s.counts = vec![1, 2]).is_err()); // counts in exact mode
        assert!(corrupt(&|s| s.n = 99).is_err()); // n disagrees with sample
        assert!(corrupt(&|s| s.exact_bits.push(20.0f64.to_bits())).is_err()); // beyond cap (4)
        // Spilled-regime corruption.
        let mut big = QuantileSketch::new(0.0, 10.0, 8, 4).unwrap();
        for &v in &sample(50) {
            big.push(v);
        }
        assert!(!big.is_exact());
        let good = big.state();
        assert!(QuantileSketch::from_state(&good).is_ok());
        let corrupt = |f: &dyn Fn(&mut QuantileSketchState)| {
            let mut s = good.clone();
            f(&mut s);
            QuantileSketch::from_state(&s)
        };
        assert!(corrupt(&|s| s.counts.pop().map(|_| ()).unwrap_or(())).is_err()); // arity
        assert!(corrupt(&|s| s.n += 1).is_err()); // bin sum disagrees
        assert!(corrupt(&|s| s.exact_bits = vec![1.0f64.to_bits()]).is_err()); // sample while spilled
    }

    #[test]
    fn sketch_quantile_ci_exact_small_n_agreement() {
        // In exact mode the CI endpoints must be the order-statistic
        // band computed directly on the sorted sample: quantiles at
        // ranks rank ± z·√(n·q·(1−q)), with zero sketch widening.
        let data = sample(300);
        let mut sk = QuantileSketch::new(0.0, 10.0, 64, 512).unwrap();
        for &v in &data {
            sk.push(v);
        }
        assert!(sk.is_exact());
        for (p, z) in [(50.0, 1.96), (25.0, 1.96), (75.0, 1.0), (90.0, 2.58)] {
            let (lo, hi) = sk.quantile_ci(p, z).unwrap();
            let n = data.len() as f64;
            let q = p / 100.0;
            let spread = z * (n * q * (1.0 - q)).sqrt();
            let rank = (n - 1.0) * q;
            let lo_p = 100.0 * (rank - spread).max(0.0) / (n - 1.0);
            let hi_p = 100.0 * (rank + spread).min(n - 1.0) / (n - 1.0);
            assert_eq!(lo, crate::quantile::percentile(&data, lo_p).unwrap(), "p={p} z={z}");
            assert_eq!(hi, crate::quantile::percentile(&data, hi_p).unwrap(), "p={p} z={z}");
            // The point estimate sits inside its own interval.
            let mid = sk.quantile(p).unwrap();
            assert!(lo <= mid && mid <= hi, "p={p} z={z}");
        }
        // n = 1: the only honest interval is the whole (degenerate)
        // sample; width zero, so an epsilon rule must be guarded by
        // min_n, not by the interval alone.
        let mut one = QuantileSketch::new(0.0, 10.0, 64, 512).unwrap();
        one.push(4.0);
        assert_eq!(one.quantile_ci(50.0, 1.96), Some((4.0, 4.0)));
        let empty = QuantileSketch::new(0.0, 10.0, 64, 512).unwrap();
        assert_eq!(empty.quantile_ci(50.0, 1.96), None);
    }

    #[test]
    fn sketch_quantile_ci_shrinks_with_n_and_widens_when_spilled() {
        let grow = |n: usize, cap: usize| {
            let mut sk = QuantileSketch::new(0.0, 10.0, 128, cap).unwrap();
            for &v in &sample(n) {
                sk.push(v);
            }
            let (lo, hi) = sk.quantile_ci(50.0, 1.96).unwrap();
            (sk, hi - lo)
        };
        let (_, w200) = grow(200, 100_000);
        let (_, w5000) = grow(5000, 100_000);
        assert!(w5000 < w200, "median CI must tighten with n: {w5000} vs {w200}");
        // Spilling the same sample can only widen the interval, and
        // boundedly so: each endpoint moves by at most one bin width of
        // interpolation error plus the explicit max_error widening.
        let (exact_sk, w_exact) = grow(5000, 100_000);
        let (spilled_sk, w_spilled) = grow(5000, 256);
        assert!(exact_sk.is_exact() && !spilled_sk.is_exact());
        assert!(w_spilled + 1e-12 >= w_exact);
        assert!(w_spilled <= w_exact + 4.0 * spilled_sk.max_error() + 1e-12);
    }

    #[test]
    fn sketch_quantile_ci_is_merge_invariant() {
        // Sharding must not move the interval by a single bit: the CI is
        // a pure read-out of the multiset-determined state.
        for (n, cap) in [(300usize, 512usize), (5000, 256)] {
            let data = sample(n);
            let mut whole = QuantileSketch::new(0.0, 10.0, 64, cap).unwrap();
            for &v in &data {
                whole.push(v);
            }
            let want = whole.quantile_ci(50.0, 1.96).unwrap();
            for chunk in [1usize, 16, 64, n + 1] {
                let mut merged = QuantileSketch::new(0.0, 10.0, 64, cap).unwrap();
                for part in data.chunks(chunk) {
                    let mut shard = QuantileSketch::new(0.0, 10.0, 64, cap).unwrap();
                    for &v in part {
                        shard.push(v);
                    }
                    assert!(merged.merge(&shard));
                }
                let got = merged.quantile_ci(50.0, 1.96).unwrap();
                assert_eq!(want.0.to_bits(), got.0.to_bits(), "n={n} chunk={chunk}");
                assert_eq!(want.1.to_bits(), got.1.to_bits(), "n={n} chunk={chunk}");
            }
        }
    }

    #[test]
    fn sketch_exact_mode_matches_percentile() {
        let data = sample(100);
        let mut sk = QuantileSketch::new(0.0, 10.0, 64, 512).unwrap();
        for &v in &data {
            sk.push(v);
        }
        assert!(sk.is_exact());
        assert_eq!(sk.max_error(), 0.0);
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            assert_eq!(sk.quantile(p), crate::quantile::percentile(&data, p), "p={p}");
        }
    }

    #[test]
    fn sketch_spills_past_cap_with_bounded_error() {
        let data = sample(5000);
        let mut sk = QuantileSketch::new(0.0, 10.0, 128, 256).unwrap();
        for &v in &data {
            sk.push(v);
        }
        assert!(!sk.is_exact());
        let err = sk.max_error();
        assert!(err > 0.0);
        for p in [1.0, 25.0, 50.0, 75.0, 99.0] {
            let exact = crate::quantile::percentile(&data, p).unwrap();
            let approx = sk.quantile(p).unwrap();
            assert!((approx - exact).abs() <= err, "p={p}: {approx} vs {exact} (±{err})");
        }
        // Extrema are tracked exactly even once binned.
        assert_eq!(sk.quantile(0.0), Some(0.0));
        assert_eq!(sk.min(), crate::quantile::percentile(&data, 0.0));
        assert_eq!(sk.max(), crate::quantile::percentile(&data, 100.0));
    }

    #[test]
    fn sketch_state_is_multiset_determined() {
        // Same observations through different shardings and merge
        // orders → byte-identical sketch state, in both regimes.
        for (n, cap) in [(200usize, 512usize), (5000, 256)] {
            let data = sample(n);
            let mut whole = QuantileSketch::new(0.0, 10.0, 64, cap).unwrap();
            for &v in &data {
                whole.push(v);
            }
            for chunk in [1usize, 16, 64, n + 1] {
                let mut merged = QuantileSketch::new(0.0, 10.0, 64, cap).unwrap();
                for part in data.chunks(chunk) {
                    let mut shard = QuantileSketch::new(0.0, 10.0, 64, cap).unwrap();
                    for &v in part {
                        shard.push(v);
                    }
                    assert!(merged.merge(&shard));
                }
                assert_eq!(
                    format!("{merged:?}"),
                    format!("{whole:?}"),
                    "n={n} cap={cap} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn sketch_merge_rejects_mismatched_configs() {
        let mut a = QuantileSketch::new(0.0, 10.0, 64, 256).unwrap();
        let b = QuantileSketch::new(0.0, 10.0, 32, 256).unwrap();
        let c = QuantileSketch::new(0.0, 9.0, 64, 256).unwrap();
        let d = QuantileSketch::new(0.0, 10.0, 64, 128).unwrap();
        assert!(!a.merge(&b));
        assert!(!a.merge(&c));
        assert!(!a.merge(&d));
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn sketch_rejects_bad_configs_and_nan() {
        assert!(QuantileSketch::new(0.0, 10.0, 0, 16).is_none());
        assert!(QuantileSketch::new(1.0, 1.0, 4, 16).is_none());
        assert!(QuantileSketch::new(0.0, f64::NAN, 4, 16).is_none());
        let mut sk = QuantileSketch::new(0.0, 1.0, 4, 16).unwrap();
        sk.push(f64::NAN);
        assert_eq!(sk.count(), 0);
        assert_eq!(sk.rejected(), 1);
        assert_eq!(sk.quantile(50.0), None);
    }

    #[test]
    fn sketch_retained_bytes_bounded_by_cap_and_bins() {
        let mut sk = QuantileSketch::new(0.0, 10.0, 128, 256).unwrap();
        for &v in &sample(100_000) {
            sk.push(v);
        }
        // Once spilled the footprint is bins-bound, not n-bound.
        let bound = std::mem::size_of::<QuantileSketch>()
            + (256 + 1) * std::mem::size_of::<f64>()
            + 2 * 128 * std::mem::size_of::<u64>();
        assert!(sk.retained_bytes() <= bound, "{}", sk.retained_bytes());
    }
}
