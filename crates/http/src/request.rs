//! Request/response model shared by both protocol engines.
//!
//! A [`Request`] describes one resource fetch the browser wants: where it
//! goes (origin), how big its headers and body are, its scheduling
//! priority, and how long the server thinks before the first response
//! byte. The engines turn submissions into [`FetchEvent`]s — the
//! progressive byte-level feedback the browser's parser and renderer
//! consume.

use eyeorg_net::{SimDuration, SimTime};

/// Identifier of a submitted request, unique within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// Identifier of an origin (scheme+host+port equivalence class). The
/// workload generator assigns these; the engine maps each to its own
/// connection pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OriginId(pub u32);

/// Browser-assigned request priority, ordered from most to least urgent.
///
/// Chrome's scheduler (the browser webpeg records) prioritises the main
/// document, then render-blocking CSS/fonts, then scripts, then images,
/// with ads/trackers effectively last. HTTP/2 carries these as stream
/// priorities; HTTP/1.1 browsers approximate them by choosing which
/// queued request gets the next free connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// The main HTML document.
    Critical,
    /// Render-blocking subresources (CSS, fonts).
    High,
    /// Scripts.
    Medium,
    /// Images and media.
    Low,
    /// Ads, trackers, beacons.
    Lowest,
}

impl Priority {
    /// HTTP/2 weight used by the weighted-round-robin response scheduler.
    ///
    /// The steep ratios approximate Chrome/H2-server practice, where the
    /// critical path (document, stylesheets, fonts) is served near-
    /// exclusively ahead of image traffic rather than proportionally.
    pub fn h2_weight(self) -> u32 {
        match self {
            Priority::Critical => 256,
            Priority::High => 96,
            Priority::Medium => 24,
            Priority::Low => 6,
            Priority::Lowest => 1,
        }
    }

    /// All priorities, most urgent first (used by queue scans).
    pub const ALL: [Priority; 5] =
        [Priority::Critical, Priority::High, Priority::Medium, Priority::Low, Priority::Lowest];
}

/// One resource fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Connection-pool key.
    pub origin: OriginId,
    /// Uncompressed request header bytes (method, path, cookies, UA…).
    pub request_header_bytes: u64,
    /// Uncompressed response header bytes.
    pub response_header_bytes: u64,
    /// Response body bytes.
    pub body_bytes: u64,
    /// Scheduling priority.
    pub priority: Priority,
    /// Server processing time between receiving the request and the first
    /// response byte becoming available.
    pub server_think: SimDuration,
}

/// Progressive fetch feedback delivered by the engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchEvent {
    /// All response header bytes have arrived; the browser may begin
    /// acting on the resource's metadata.
    HeadersReceived {
        /// The request this event belongs to.
        id: RequestId,
    },
    /// More body bytes arrived, in order.
    Data {
        /// The request this event belongs to.
        id: RequestId,
        /// Cumulative body bytes received so far.
        body_bytes: u64,
    },
    /// The full response (headers + body) has arrived.
    Completed {
        /// The request this event belongs to.
        id: RequestId,
    },
}

impl FetchEvent {
    /// The request the event refers to.
    pub fn request_id(&self) -> RequestId {
        match *self {
            FetchEvent::HeadersReceived { id }
            | FetchEvent::Data { id, .. }
            | FetchEvent::Completed { id } => id,
        }
    }
}

/// Timing record kept per request, the raw material of the HAR log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestTiming {
    /// When the browser submitted the request to the engine.
    pub submitted: Option<SimTime>,
    /// When the request bytes left the client (assigned to a connection).
    pub sent: Option<SimTime>,
    /// When the full request arrived at the server.
    pub request_at_server: Option<SimTime>,
    /// When the response headers completed at the client (time to first
    /// usable byte).
    pub headers_received: Option<SimTime>,
    /// When the full response completed at the client.
    pub completed: Option<SimTime>,
}

impl RequestTiming {
    /// Total fetch latency (submit → complete), if finished.
    pub fn total(&self) -> Option<SimDuration> {
        Some(self.completed?.since(self.submitted?))
    }

    /// Time to first byte (submit → headers), if headers arrived.
    pub fn ttfb(&self) -> Option<SimDuration> {
        Some(self.headers_received?.since(self.submitted?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_weights_monotone() {
        let w: Vec<u32> = Priority::ALL.iter().map(|p| p.h2_weight()).collect();
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1], "weights must strictly decrease");
        }
    }

    #[test]
    fn fetch_event_request_id() {
        let id = RequestId(7);
        assert_eq!(FetchEvent::HeadersReceived { id }.request_id(), id);
        assert_eq!(FetchEvent::Data { id, body_bytes: 1 }.request_id(), id);
        assert_eq!(FetchEvent::Completed { id }.request_id(), id);
    }

    #[test]
    fn timing_arithmetic() {
        let t = RequestTiming {
            submitted: Some(SimTime::from_millis(100)),
            sent: Some(SimTime::from_millis(101)),
            request_at_server: Some(SimTime::from_millis(120)),
            headers_received: Some(SimTime::from_millis(160)),
            completed: Some(SimTime::from_millis(200)),
        };
        assert_eq!(t.ttfb().unwrap(), SimDuration::from_millis(60));
        assert_eq!(t.total().unwrap(), SimDuration::from_millis(100));
        assert!(RequestTiming::default().total().is_none());
    }
}
