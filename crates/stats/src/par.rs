//! Deterministic parallel execution on `std::thread::scope`.
//!
//! The campaign pipeline (capture fan-out, per-participant response
//! generation, figure regeneration) is embarrassingly parallel *and*
//! must stay byte-reproducible: the regression suite asserts that the
//! same root [`Seed`](crate::Seed) yields identical campaign reports.
//! Both properties hold because work items never share an RNG stream —
//! each item draws only from its own `Seed::derive_index` child — so the
//! only thing parallelism could perturb is *result order*, and the
//! functions here pin that by index:
//!
//! * work items are claimed from a shared atomic counter by a fixed pool
//!   of scoped threads;
//! * each result lands in the pre-sized output slot of its item index;
//! * `threads <= 1` short-circuits to a plain sequential iterator — the
//!   exact code path the single-threaded implementation used.
//!
//! The merged output is therefore identical for every thread count, and
//! a 1-thread run *is* the old sequential run.
//!
//! No external dependencies: plain `std::thread::scope`, `AtomicUsize`,
//! and `Mutex`ed output slots (uncontended — each slot is locked exactly
//! once).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of worker threads to use when a caller asks for "automatic":
/// the `EYEORG_THREADS` environment variable when set to a positive
/// integer, otherwise [`std::thread::available_parallelism`].
///
/// Cached after the first call (consistent within a process run).
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("EYEORG_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    })
}

/// Resolve a thread-count knob: `0` means "automatic" (see
/// [`default_threads`]), anything else is taken literally.
pub fn resolve_threads(knob: usize) -> usize {
    if knob == 0 {
        default_threads()
    } else {
        knob
    }
}

/// Map `f` over `0..n` on `threads` workers, returning results in index
/// order. `f(i)` must depend only on `i` (and captured immutable state)
/// — the usual shape is "derive the item's own seed from its index".
///
/// With `threads <= 1` this is exactly `(0..n).map(f).collect()`.
pub fn par_map_range<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed index")
        })
        .collect()
}

/// Map `f` over owned `items` on `threads` workers; `f` receives
/// `(index, item)` and results come back in item order, byte-identical
/// to the sequential run.
///
/// With `threads <= 1` this is exactly
/// `items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect()`.
pub fn par_map_indexed<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let f = &f;
    let cells_ref = &cells;
    par_map_range(cells.len(), threads, move |i| {
        let item = cells_ref[i]
            .lock()
            .expect("item cell poisoned")
            .take()
            .expect("each index claimed once");
        f(i, item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Seed;

    #[test]
    fn parallel_matches_sequential() {
        let work = |i: usize| {
            // A per-index derived stream, like real call sites.
            let mut rng = crate::rng::Rng::seed_from_u64(Seed(9).derive_index("w", i as u64).value());
            (0..100).map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add)
        };
        let seq = par_map_range(64, 1, work);
        for threads in [2, 3, 4, 8] {
            assert_eq!(par_map_range(64, threads, work), seq, "threads={threads}");
        }
    }

    #[test]
    fn indexed_map_preserves_order_and_items() {
        let items: Vec<String> = (0..40).map(|i| format!("item-{i}")).collect();
        let expected: Vec<String> = items.iter().enumerate().map(|(i, s)| format!("{i}:{s}")).collect();
        let got = par_map_indexed(items, 4, |i, s| format!("{i}:{s}"));
        assert_eq!(got, expected);
    }

    #[test]
    fn zero_and_one_items_work_at_any_thread_count() {
        assert_eq!(par_map_range(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_range(1, 8, |i| i * 2), vec![0]);
        assert_eq!(par_map_indexed(Vec::<u8>::new(), 8, |_, x| x), Vec::<u8>::new());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(par_map_range(3, 64, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
