//! Experiment definitions: what participants are shown and asked.
//!
//! Eyeorg's two initial experiment types (§3.2):
//!
//! * **Timeline** — one page-load video with a scrubber; "drag the slider
//!   to the point where you consider the site 'ready to use'".
//! * **A/B** — two captures spliced side by side; "which loaded faster,
//!   Left, Right, or No Difference?", with the pair order randomised per
//!   showing.
//!
//! Videos are assigned so that every video collects roughly the same
//! number of responses (600 showings over 20 validation videos ≈ 30 each;
//! 6,000 over 100 final videos ≈ 60 each), and each participant receives
//! one control question (§3.3).

use std::sync::Arc;

use eyeorg_video::Video;
use eyeorg_stats::rng::Rng;

use eyeorg_stats::Seed;

/// One timeline stimulus.
///
/// Captures are held by [`Arc`]: the capture cache, the stimulus list,
/// and the finished campaign all share one allocation per distinct
/// capture instead of cloning whole paint traces around.
#[derive(Debug, Clone)]
pub struct TimelineStimulus {
    /// Site name (for reports and per-site analysis).
    pub name: String,
    /// The capture shown.
    pub video: Arc<Video>,
}

/// One A/B stimulus: the two captures of the same site under the two
/// configurations being compared ("A" = baseline, "B" = treatment).
#[derive(Debug, Clone)]
pub struct AbStimulus {
    /// Site name.
    pub name: String,
    /// Baseline capture (e.g. HTTP/1.1, or with-ads).
    pub a: Arc<Video>,
    /// Treatment capture (e.g. HTTP/2, or ad-blocked).
    pub b: Arc<Video>,
}

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Videos shown per participant (the paper uses 6).
    pub videos_per_participant: usize,
    /// Whether each participant additionally receives one control
    /// question.
    pub with_controls: bool,
    /// Worker threads for campaign execution: `0` = automatic
    /// (`EYEORG_THREADS`, else the machine's available parallelism),
    /// `1` = the sequential path, `n` = exactly `n` workers. Campaign
    /// output is byte-identical for every value — responses draw only
    /// from per-participant seed streams and merge in participant order.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig { videos_per_participant: 6, with_controls: true, threads: 0 }
    }
}

/// Knobs for the adaptive early-stopping campaign driver
/// (`crate::adaptive`, DESIGN.md §3h): recruitment proceeds in
/// fixed-size epochs, and at each epoch barrier a stimulus whose UPLT
/// confidence half-width has dropped below `epsilon` stops recruiting.
///
/// Every decision is taken on order-pinned merged state at a barrier, so
/// the decision sequence — and everything downstream of it — is
/// byte-identical across shard sizes, thread counts, and chaos seeds.
/// With `epsilon = 0` and `max_n = 0` no rule can ever fire and the
/// adaptive engine is byte-identical to the plain streaming engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Participants recruited between stopping evaluations. Values `< 1`
    /// are treated as 1. Smaller epochs stop closer to the ideal
    /// sequential boundary but evaluate (cheap) barriers more often.
    pub epoch: usize,
    /// Target confidence half-width, in seconds, on each stimulus's
    /// user-perceived load time; `<= 0` disables convergence stopping.
    pub epsilon: f64,
    /// Kept responses a stimulus must have before convergence stopping
    /// may fire (guards the early-n regime where intervals are
    /// untrustworthy — a 1-sample interval has width zero).
    pub min_n: u64,
    /// Hard cap on kept responses per stimulus; `0` = unbounded. A
    /// stimulus stops at the first barrier where it has at least this
    /// many kept responses even if `epsilon` is unmet.
    pub max_n: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig { epoch: 8192, epsilon: 0.0, min_n: 256, max_n: 0 }
    }
}

impl AdaptiveConfig {
    /// Whether any stopping rule is in force. When `false` the adaptive
    /// driver degenerates to the streaming engine (and records none of
    /// the `adaptive.*` counters, keeping fingerprints identical).
    pub fn is_active(&self) -> bool {
        self.epsilon > 0.0 || self.max_n > 0
    }
}

/// Assign stimuli to a participant: a seeded draw of
/// `videos_per_participant` distinct indices, load-balanced so every
/// stimulus collects a near-equal number of showings across the campaign.
///
/// The balancing works by rotating a base window through the stimulus
/// list per participant and then shuffling the window order (what a
/// participant sees is random *order*, while coverage stays uniform).
pub fn assign(
    seed: Seed,
    participant_idx: u64,
    n_stimuli: usize,
    per_participant: usize,
) -> Vec<usize> {
    let mut picks = Vec::new();
    assign_into(seed, participant_idx, n_stimuli, per_participant, &mut picks);
    picks
}

/// [`assign`] into a caller-owned buffer (cleared first) — the flat
/// engine reuses one buffer per shard worker, so assignment allocates
/// nothing after warm-up. Contents are identical to [`assign`].
///
/// # Panics
/// Panics when `n_stimuli` is zero.
pub fn assign_into(
    seed: Seed,
    participant_idx: u64,
    n_stimuli: usize,
    per_participant: usize,
    picks: &mut Vec<usize>,
) {
    assert!(n_stimuli > 0, "no stimuli to assign");
    let k = per_participant.min(n_stimuli);
    let start = (participant_idx as usize * k) % n_stimuli;
    picks.clear();
    picks.extend((0..k).map(|j| (start + j) % n_stimuli));
    // Shuffle the presentation order deterministically.
    let mut rng =
        Rng::seed_from_u64(seed.derive_index("assign", participant_idx).value());
    for i in (1..picks.len()).rev() {
        let j = rng.random_range(0..=i);
        picks.swap(i, j);
    }
}

/// For A/B tests: whether stimulus `pair_idx` is shown to this
/// participant with A on the left (§3.2: "'A' is not always on the
/// left").
pub fn a_on_left(seed: Seed, participant_idx: u64, pair_idx: usize) -> bool {
    let mut rng = Rng::seed_from_u64(
        seed.derive_index("ab-order", participant_idx)
            .derive_index("pair", pair_idx as u64)
            .value(),
    );
    rng.random_bool(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_covers_stimuli_evenly() {
        let n_stimuli = 20;
        let per = 6;
        let mut counts = vec![0u32; n_stimuli];
        for p in 0..100 {
            for idx in assign(Seed(1), p, n_stimuli, per) {
                counts[idx] += 1;
            }
        }
        // 600 showings over 20 videos = 30 each.
        assert!(counts.iter().all(|&c| c == 30), "{counts:?}");
    }

    #[test]
    fn assignment_has_no_duplicates() {
        for p in 0..50 {
            let a = assign(Seed(2), p, 100, 6);
            let mut b = a.clone();
            b.sort_unstable();
            b.dedup();
            assert_eq!(a.len(), 6);
            assert_eq!(b.len(), 6, "participant {p} got duplicates");
        }
    }

    #[test]
    fn assignment_order_varies_but_set_is_balanced() {
        // Two participants with the same window should usually see
        // different orders.
        let n = 6; // window == whole set
        let a = assign(Seed(3), 0, n, 6);
        let b = assign(Seed(3), 1, n, 6);
        let mut sa = a.clone();
        let mut sb = b.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb, "same set");
        assert_ne!(a, b, "different order");
    }

    #[test]
    fn fewer_stimuli_than_requested_caps_assignment() {
        let a = assign(Seed(4), 0, 3, 6);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn ab_order_is_balanced() {
        let lefts = (0..1000)
            .filter(|&p| a_on_left(Seed(5), p, 0))
            .count();
        assert!((400..600).contains(&lefts), "{lefts}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(assign(Seed(6), 7, 50, 6), assign(Seed(6), 7, 50, 6));
        assert_eq!(a_on_left(Seed(6), 7, 3), a_on_left(Seed(6), 7, 3));
    }
}
