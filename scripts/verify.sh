#!/usr/bin/env bash
# Tier-1 verification: build, test, lint, and the determinism-checking
# perf harness. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
# Times the pipeline at 1/2/N threads and exits non-zero when any
# thread count produces a campaign that differs from the 1-thread run.
cargo run -q --release -p eyeorg-bench --bin perf_pipeline
# Times the single-thread hot paths (batched TCP simulation, COW frame
# timelines, incremental curves) against their in-process reference
# implementations and exits non-zero on any output divergence.
cargo run -q --release -p eyeorg-bench --bin perf_hotpath -- --smoke
echo "verify: OK"
