//! D6 unused waiver: the accumulation below is integer math.

// lint:allow(D6): stale excuse left over from the fixed-point refactor
pub fn mean_milli(xs: &[i64]) -> i64 {
    let total: i64 = xs.iter().sum();
    total / xs.len().max(1) as i64
}
