//! # eyeorg-stats
//!
//! Statistics toolkit for the Eyeorg reproduction.
//!
//! The Eyeorg paper (CoNExT 2016) evaluates crowdsourced web-QoE responses
//! almost entirely through a handful of statistical primitives: empirical
//! CDFs (nearly every figure), percentile-band filtering (the
//! wisdom-of-the-crowd filter keeps the 25th–75th percentile band of each
//! video's responses), standard deviations as an agreement measure
//! (Fig. 6b), Pearson correlation between `UserPerceivedPLT` and the
//! automatic PLT metrics (Fig. 7b), and histogram/mode analysis of response
//! distributions (Fig. 9). This crate implements those primitives once, with
//! deterministic behaviour, so every other crate in the workspace shares a
//! single audited implementation.
//!
//! ## Modules
//!
//! * [`summary`] — moments and order statistics of a sample.
//! * [`quantile`] — percentiles with linear interpolation and percentile-band
//!   selection (the paper's 10–90 and 25–75 filters).
//! * [`ecdf`] — empirical cumulative distribution functions.
//! * [`corr`] — Pearson and Spearman correlation.
//! * [`hist`] — histograms with fixed-width and Freedman–Diaconis binning.
//! * [`modes`] — peak detection and distribution-shape classification
//!   (tight-unimodal / spread-unimodal / multimodal, as in Fig. 9).
//! * [`stream`] — streaming, mergeable accumulators (exact fixed-point
//!   moments, bounded deterministic quantile sketch) for the sharded
//!   campaign engine.
//! * [`bootstrap`] — seeded bootstrap confidence intervals.
//! * [`seed`] — deterministic seed derivation used across the workspace.
//! * [`rng`] — the workspace's internal seeded generator (xoshiro256++).
//! * [`par`] — deterministic parallel map (index-sharded seed streams,
//!   order-pinned merge) used by the campaign pipeline.
//!
//! All functions operate on `&[f64]` (or typed wrappers thereof) and either
//! return `Option`/`Result` on degenerate input or document their behaviour
//! explicitly; nothing panics on empty input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod corr;
pub mod ecdf;
pub mod hist;
pub mod modes;
pub mod par;
pub mod quantile;
pub mod rng;
pub mod seed;
pub mod stream;
pub mod summary;

pub use bootstrap::{bootstrap_ci, bootstrap_pearson_ci, ConfidenceInterval};
pub use corr::{pearson, spearman};
pub use ecdf::Ecdf;
pub use hist::{Histogram, HistogramState};
pub use modes::{classify_shape, find_peaks, DistributionShape, ShapeParams};
pub use par::{
    default_threads, effective_pool, par_map_indexed, par_map_range, par_map_range_scratch,
    parse_thread_override, resolve_threads, set_chaos_seed, MAX_THREAD_OVERRIDE,
};
pub use quantile::{percentile, percentile_band};
pub use rng::Rng;
pub use seed::Seed;
pub use stream::{Moments, MomentsState, QuantileSketch, QuantileSketchState, StateError};
pub use summary::Summary;
