//! Offline stand-in for `serde`.
//!
//! The build environment has no access to a cargo registry, so the
//! workspace vendors the *narrow* serialization surface it actually uses:
//! a [`Serialize`]/[`Deserialize`] trait pair over an owned JSON
//! [`Value`] tree, plus derive macros (see `serde_derive`) supporting
//! named/tuple structs, enums with unit/struct/tuple variants, and
//! field-level `#[serde(rename = "...")]`.
//!
//! This is intentionally *not* API-compatible with the real serde beyond
//! what the workspace needs; it exists so `cargo build`/`cargo test`
//! resolve hermetically. Swapping the real serde back in requires only
//! deleting `vendor/` and restoring the registry dependency lines.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::Value;

/// Serialization into the owned [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a JSON value.
    fn to_value(&self) -> Value;
}

/// Deserialization from a borrowed [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a JSON value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// A deserialization error: a human-readable path + expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A fresh "expected X, got Y" error.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, got {}", got.kind_name()))
    }

    /// Annotate the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> DeError {
        DeError(format!("{field}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------
// Serialize impls for the primitives and containers the workspace uses.
// ---------------------------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::expected("string", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v.as_object().ok_or_else(|| DeError::expected("object", v))?;
        pairs
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x).map_err(|e| e.in_field(k))?)))
            .collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("2-element array", v))?;
        if items.len() != 2 {
            return Err(DeError(format!("expected 2 elements, got {}", items.len())));
        }
        // lint:allow(D7, n=2): items.len() == 2 checked above
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("3-element array", v))?;
        if items.len() != 3 {
            return Err(DeError(format!("expected 3 elements, got {}", items.len())));
        }
        // lint:allow(D7, n=3): items.len() == 3 checked above
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?, C::from_value(&items[2])?))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
