//! Draw-exact fast path for the behavioural model.
//!
//! DESIGN.md §3g measured that ~70 % of single-thread campaign time is
//! the seeded behavioural model itself — the Amdahl wall of the flat
//! data plane. This module breaks it *without* changing a single drawn
//! value, exploiting the invariant the determinism contract already
//! rests on: every draw derives from `persona.seed ⊕ activity label ⊕
//! per-stimulus label`, with no RNG stream shared between activities.
//! Two consequences:
//!
//! 1. **Hoisting.** The leaf RNG for a `(participant, stimulus)` cell is
//!    `seed → "behavior"/"perception"/"abjudge" → label`. The first
//!    derivation depends only on the participant, so [`ModelSeeds`]
//!    computes it once per participant and every per-cell derivation
//!    becomes a single label hash. Identical bits, fewer hashes.
//! 2. **Elision.** A draw whose value is never consumed can be skipped
//!    (whole streams) or advanced value-free (draws feeding later ones
//!    on the same stream) without perturbing any consumed draw — see
//!    [`crate::participant::TraitCursor`] and `Rng::skip_u64`.
//!
//! Every `*_seeded` function here is bit-identical to its label-deriving
//! original for matching inputs; the tests below assert that across
//! pools, classes, and seeds, and the campaign engines gate it end to
//! end (digest + counter fingerprints across engines × shards × threads
//! × chaos seeds).

use eyeorg_net::{SimDuration, SimTime};
use eyeorg_stats::rng::Rng;
use eyeorg_stats::Seed;
use eyeorg_video::{FrameTimeline, Video};

use crate::abjudge::{judge_pair_with_rng, AbAnswer};
use crate::behavior::{
    instruction_time_with_rng, video_session_with_rng, SessionProfile, TestKind, VideoSession,
};
use crate::participant::Persona;
use crate::perception::{
    timeline_control_with_rng, timeline_response_flat_with_rng, timeline_response_shared_with_rng,
    true_ready_time, TimelineResponse, TimelineStimulusProfile,
};

/// A participant's per-activity parent seeds, derived once instead of
/// once per `(cell, draw site)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSeeds {
    /// Parent of every `"behavior"` leaf stream (sessions, instructions).
    pub behavior: Seed,
    /// Parent of every `"perception"` leaf stream (responses, controls).
    pub perception: Seed,
    /// Parent of every `"abjudge"` leaf stream (A/B votes, A/B controls).
    pub abjudge: Seed,
}

impl ModelSeeds {
    /// Derive all three activity parents from a participant seed.
    #[inline]
    pub fn of(seed: Seed) -> ModelSeeds {
        ModelSeeds {
            behavior: seed.derive("behavior"),
            perception: seed.derive("perception"),
            abjudge: seed.derive("abjudge"),
        }
    }
}

/// The leaf RNG under an activity parent for one stimulus label.
#[inline]
fn leaf(parent: Seed, label: &str) -> Rng {
    Rng::seed_from_u64(parent.derive(label).value())
}

/// The raw leaf seed for a behaviour-stream cell — what the flat
/// engine's per-stimulus seed plane stores before bulk-expanding the
/// generator states with `Rng::seed_block`.
#[inline]
pub fn session_seed(seeds: &ModelSeeds, label: &str) -> u64 {
    seeds.behavior.derive(label).value()
}

/// [`crate::behavior::video_session_profiled`] with the participant's
/// behaviour parent hoisted. Bit-identical for matching inputs.
#[inline]
pub fn video_session_seeded(
    profile: &SessionProfile,
    participant: &Persona,
    kind: TestKind,
    seeds: &ModelSeeds,
    label: &str,
) -> VideoSession {
    video_session_with_rng(profile, participant, kind, leaf(seeds.behavior, label))
}

/// [`crate::behavior::video_session_profiled`] from an already-seeded
/// generator (bulk-expanded from a [`session_seed`] plane).
#[inline]
pub fn video_session_from_rng(
    profile: &SessionProfile,
    participant: &Persona,
    kind: TestKind,
    rng: Rng,
) -> VideoSession {
    video_session_with_rng(profile, participant, kind, rng)
}

/// [`crate::perception::timeline_response_flat`] with the perception
/// parent hoisted. Bit-identical for matching inputs.
#[inline]
pub fn timeline_response_seeded(
    profile: &TimelineStimulusProfile,
    rewinds: &[usize],
    participant: &Persona,
    seeds: &ModelSeeds,
    label: &str,
) -> TimelineResponse {
    timeline_response_flat_with_rng(profile, rewinds, participant, leaf(seeds.perception, label))
}

/// [`crate::perception::timeline_response_shared`] with the perception
/// parent hoisted — the streaming engine's entry (lazy ready-moment
/// extraction preserved). Bit-identical for matching inputs.
#[inline]
pub fn timeline_response_shared_seeded(
    video: &Video,
    frames: &FrameTimeline,
    participant: &Persona,
    seeds: &ModelSeeds,
    label: &str,
) -> TimelineResponse {
    timeline_response_shared_with_rng(
        video,
        &mut |i| frames.rewind_at(i),
        participant,
        leaf(seeds.perception, label),
    )
}

/// [`crate::perception::timeline_control_passes_flat`] with the
/// perception parent hoisted. Takes the prebuilt `"ctrl-"`-prefixed
/// label. Bit-identical for matching inputs.
#[inline]
pub fn timeline_control_seeded(
    participant: &Persona,
    seeds: &ModelSeeds,
    ctrl_label: &str,
) -> bool {
    timeline_control_with_rng(participant, leaf(seeds.perception, ctrl_label))
}

/// [`crate::behavior::instruction_time_persona`] with the behaviour
/// parent hoisted. Bit-identical for matching inputs.
#[inline]
pub fn instruction_time_seeded(participant: &Persona, seeds: &ModelSeeds) -> SimDuration {
    instruction_time_with_rng(participant, leaf(seeds.behavior, "instructions"))
}

/// [`crate::behavior::total_time_on_site_persona`] with the behaviour
/// parent hoisted: same instruction draw, same left-to-right summation.
#[inline]
pub fn total_time_on_site_seeded(
    sessions: &[VideoSession],
    participant: &Persona,
    seeds: &ModelSeeds,
) -> SimDuration {
    let mut total = instruction_time_seeded(participant, seeds);
    for s in sessions {
        total = total + s.time_spent;
    }
    total
}

/// [`crate::abjudge::judge_pair_flat`] with the judgment parent hoisted.
/// Bit-identical for matching inputs.
#[inline]
pub fn judge_pair_seeded(
    left_ready: SimTime,
    right_ready: SimTime,
    participant: &Persona,
    seeds: &ModelSeeds,
    label: &str,
) -> AbAnswer {
    judge_pair_with_rng(left_ready, right_ready, participant, leaf(seeds.abjudge, label))
}

/// [`crate::abjudge::ab_response`] with the judgment parent hoisted
/// (ready moments still extracted per side, as the streaming engine
/// does). Bit-identical for matching inputs.
#[inline]
pub fn ab_response_seeded(
    left: &Video,
    right: &Video,
    participant: &Persona,
    seeds: &ModelSeeds,
    label: &str,
) -> AbAnswer {
    let l = true_ready_time(left, participant.readiness);
    let r = true_ready_time(right, participant.readiness);
    judge_pair_seeded(l, r, participant, seeds, label)
}

/// [`crate::abjudge::ab_control_flat`] with the judgment parent hoisted.
/// Bit-identical for matching inputs.
#[inline]
pub fn ab_control_seeded(
    ready: SimTime,
    participant: &Persona,
    seeds: &ModelSeeds,
    label: &str,
) -> (AbAnswer, bool) {
    let delayed = ready + SimDuration::from_secs(3);
    let answer = judge_pair_seeded(ready, delayed, participant, seeds, label);
    (answer, answer == AbAnswer::Left)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abjudge::{ab_control_flat, judge_pair_flat};
    use crate::behavior::{total_time_on_site_persona, video_session_profiled};
    use crate::participant::PopulationProfile;
    use crate::perception::{
        timeline_control_passes_flat, timeline_response_flat, timeline_response_shared,
    };
    use eyeorg_browser::{load_page, BrowserConfig};
    use eyeorg_workload::{generate_site, SiteClass};

    fn video() -> Video {
        let site = generate_site(Seed(90), 0, SiteClass::News);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(90));
        Video::capture(trace, 10, eyeorg_net::SimDuration::from_secs(4))
    }

    /// Every seeded entry point must be bit-identical to the
    /// label-deriving original, for every class the pools produce.
    #[test]
    fn seeded_entry_points_match_originals() {
        let v = video();
        let mut tl = FrameTimeline::of(&v);
        tl.precompute_rewinds();
        let rewinds = tl.rewind_table().to_vec();
        let t_profile = TimelineStimulusProfile::of(&v);
        let s_profile = SessionProfile::of(&v, TestKind::Timeline);
        let ab_profile = SessionProfile::of(&v, TestKind::Ab);
        let ready = true_ready_time(&v, crate::participant::ReadinessCriterion::MainContent);

        for pool in [PopulationProfile::paid(), PopulationProfile::trusted()] {
            for i in 0..150 {
                let p = pool.generate_persona(Seed(91), i);
                let seeds = ModelSeeds::of(p.seed);
                for label in ["tl-0", "tl-5"] {
                    assert_eq!(
                        video_session_seeded(&s_profile, &p, TestKind::Timeline, &seeds, label),
                        video_session_profiled(&s_profile, &p, TestKind::Timeline, label),
                        "session {label} index {i}"
                    );
                    assert_eq!(
                        video_session_seeded(&ab_profile, &p, TestKind::Ab, &seeds, label),
                        video_session_profiled(&ab_profile, &p, TestKind::Ab, label),
                        "ab session {label} index {i}"
                    );
                    let mut block = Vec::new();
                    Rng::seed_block(&[session_seed(&seeds, label)], &mut block);
                    assert_eq!(
                        video_session_from_rng(
                            &s_profile,
                            &p,
                            TestKind::Timeline,
                            block[0].clone()
                        ),
                        video_session_profiled(&s_profile, &p, TestKind::Timeline, label),
                        "bulk-seeded session {label} index {i}"
                    );
                    assert_eq!(
                        timeline_response_seeded(&t_profile, &rewinds, &p, &seeds, label),
                        timeline_response_flat(&t_profile, &rewinds, &p, label),
                        "response {label} index {i}"
                    );
                    assert_eq!(
                        judge_pair_seeded(
                            ready,
                            ready + SimDuration::from_millis(700),
                            &p,
                            &seeds,
                            label
                        ),
                        judge_pair_flat(ready, ready + SimDuration::from_millis(700), &p, label),
                        "judge {label} index {i}"
                    );
                    assert_eq!(
                        ab_control_seeded(ready, &p, &seeds, label),
                        ab_control_flat(ready, &p, label),
                        "ab control {label} index {i}"
                    );
                }
                assert_eq!(
                    timeline_control_seeded(&p, &seeds, "ctrl-tl-0"),
                    timeline_control_passes_flat(&p, "ctrl-tl-0"),
                    "control index {i}"
                );
                assert_eq!(
                    instruction_time_seeded(&p, &seeds),
                    crate::behavior::instruction_time_persona(&p),
                    "instructions index {i}"
                );
                let sessions: Vec<VideoSession> = (0..4)
                    .map(|s| {
                        video_session_profiled(
                            &s_profile,
                            &p,
                            TestKind::Timeline,
                            &format!("tl-{s}"),
                        )
                    })
                    .collect();
                assert_eq!(
                    total_time_on_site_seeded(&sessions, &p, &seeds),
                    total_time_on_site_persona(&sessions, &p),
                    "total time index {i}"
                );
            }
        }
    }

    /// The shared-timeline seeded path against the original (lazy ready
    /// lookup included).
    #[test]
    fn shared_response_seeded_matches_original() {
        let v = video();
        let mut tl = FrameTimeline::of(&v);
        tl.precompute_rewinds();
        let pop = PopulationProfile::paid().generate(Seed(92), 120);
        for p in &pop {
            let seeds = ModelSeeds::of(p.seed);
            assert_eq!(
                timeline_response_shared_seeded(&v, &tl, &p.persona(), &seeds, "tl-2"),
                timeline_response_shared(&v, &tl, p, "tl-2"),
                "class {:?}",
                p.class
            );
            assert_eq!(
                ab_response_seeded(&v, &v, &p.persona(), &seeds, "ab-1"),
                crate::abjudge::ab_response(&v, &v, p, "ab-1"),
                "ab class {:?}",
                p.class
            );
        }
    }
}
