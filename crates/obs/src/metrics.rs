//! The static metric registry.
//!
//! Every counter, labeled counter, and histogram in the system is
//! declared here — instrumented crates import these statics rather than
//! registering their own, so a [`crate::snapshot`] can never miss a
//! metric and the report's key set is identical across runs.
//!
//! Naming: `<layer>.<what>`, layers matching the crate names.
//!
//! Determinism contract: each metric is bumped only at points whose
//! invocation count is a pure function of the workload and its seeds.
//! Nothing here may be recorded from thread-count-dependent machinery
//! (lazy memoisation that a parallel engine precomputes, racy cache
//! fills, work-stealing internals) — that would break the byte-identical
//! fingerprint `scripts/verify.sh` checks across `EYEORG_THREADS`.

use crate::{Counter, Histogram, LabeledCounter};

// --- net: the TCP/link simulator ---

/// Events popped off the simulator's calendar queue.
pub static NET_EVENTS_PROCESSED: Counter = Counter::new("net.events_processed");
/// Data segments handed to the link (including retransmissions).
pub static NET_SEGMENTS_SENT: Counter = Counter::new("net.segments_sent");
/// Segments that were retransmissions.
pub static NET_RETRANSMISSIONS: Counter = Counter::new("net.retransmissions");
/// Segments dropped by the random-loss model before queueing.
pub static NET_DROPS_RANDOM_LOSS: Counter = Counter::new("net.drops_random_loss");
/// Segments dropped by the drop-tail link buffer.
pub static NET_DROPS_QUEUE: Counter = Counter::new("net.drops_queue");
/// Bursts whose ACKs were coalesced into a batched plan.
pub static NET_BURSTS_BATCHED: Counter = Counter::new("net.bursts_batched");
/// Batched plans flushed back to per-ACK replay (interleaving traffic).
pub static NET_BURST_FLUSHES: Counter = Counter::new("net.burst_flushes");

// --- http: the H1/H2 protocol engines ---

/// Requests assigned to an HTTP/1.1 connection.
pub static HTTP_H1_REQUESTS_ASSIGNED: Counter = Counter::new("http.h1_requests_assigned");
/// H1 assignments that reused a connection which had already served a
/// response (persistent-connection reuse).
pub static HTTP_H1_CONNS_REUSED: Counter = Counter::new("http.h1_conns_reused");
/// Transport connections opened (H1 pool fills + H2 per-origin opens).
pub static HTTP_CONNS_OPENED: Counter = Counter::new("http.conns_opened");
/// HTTP/2 response streams scheduled (client-requested).
pub static HTTP_H2_STREAMS: Counter = Counter::new("http.h2_streams");
/// HTTP/2 server-pushed streams scheduled.
pub static HTTP_H2_PUSHED_STREAMS: Counter = Counter::new("http.h2_pushed_streams");

// --- browser: the page-load engine ---

/// Completed page loads.
pub static BROWSER_PAGE_LOADS: Counter = Counter::new("browser.page_loads");
/// Resources whose responses completed during a load.
pub static BROWSER_RESOURCES_FETCHED: Counter = Counter::new("browser.resources_fetched");
/// Paint events recorded across loads.
pub static BROWSER_PAINT_EVENTS: Counter = Counter::new("browser.paint_events");
/// Simulated main-thread busy time across loads, microseconds.
pub static BROWSER_MAIN_THREAD_CPU_US: Counter = Counter::new("browser.main_thread_cpu_us");
/// Per-load distribution of simulated main-thread busy time (ms).
pub static BROWSER_LOAD_CPU_MS: Histogram = Histogram::new("browser.load_cpu_ms");

// --- video: capture, encoding, and the shared capture cache ---

/// Videos captured from load traces.
pub static VIDEO_CAPTURES: Counter = Counter::new("video.captures");
/// Frames encoded by the webpeg encoder.
pub static VIDEO_FRAMES_ENCODED: Counter = Counter::new("video.frames_encoded");
/// Per-capture frame-count distribution.
pub static VIDEO_FRAMES_PER_CAPTURE: Histogram = Histogram::new("video.frames_per_capture");
/// Lookups against the shared capture cache.
pub static VIDEO_CACHE_REQUESTS: Counter = Counter::new("video.capture_cache_requests");
/// Lookups answered by an existing entry.
pub static VIDEO_CACHE_HITS: Counter = Counter::new("video.capture_cache_hits");
/// Lookups that created the entry (exactly one per distinct key).
pub static VIDEO_CACHE_MISSES: Counter = Counter::new("video.capture_cache_misses");

// --- core: gates, filters, campaigns, analysis ---

/// Participants admitted by the captcha gate.
pub static CORE_GATE_ADMITTED: Counter = Counter::new("core.gate_admitted");
/// Participants rejected by the captcha gate.
pub static CORE_GATE_REJECTED: Counter = Counter::new("core.gate_rejected");
/// Timeline responses collected (video shown, not skipped).
pub static CORE_RESPONSES_COLLECTED: Counter = Counter::new("core.responses_collected");
/// Timeline showings the participant skipped.
pub static CORE_RESPONSES_SKIPPED: Counter = Counter::new("core.responses_skipped");
/// A/B verdicts collected.
pub static CORE_AB_VOTES: Counter = Counter::new("core.ab_votes");
/// A/B showings the participant skipped.
pub static CORE_AB_SKIPS: Counter = Counter::new("core.ab_skips");
/// Participants surviving the §4.3 filter pipeline.
pub static CORE_PARTICIPANTS_KEPT: Counter = Counter::new("core.participants_kept");
/// Participants dropped, by the filter bucket that caught them
/// (`engagement` / `soft` / `control`).
pub static CORE_FILTER_DROPS: LabeledCounter = LabeledCounter::new("core.filter_drops");
/// Responses retained per stimulus after wisdom-of-the-crowd banding
/// (sites that lost every response appear with 0).
pub static CORE_RETAINED_PER_SITE: LabeledCounter =
    LabeledCounter::new("core.retained_per_site");

// --- adaptive: the early-stopping campaign driver ---
//
// Determinism note: these are bumped only from the adaptive driver's
// single-threaded epoch-barrier loop and from order-pinned shard folds,
// and only when an adaptive rule (`epsilon > 0` or `max_n > 0`) is
// actually in force — an `epsilon = 0` adaptive run leaves all three at
// zero, which keeps its counter fingerprint byte-identical to the
// plain streaming engine's (zero-valued counters are still reported).

/// Epoch barriers evaluated by the adaptive driver.
pub static ADAPTIVE_EPOCHS: Counter = Counter::new("adaptive.epochs");
/// Stimuli whose recruitment the stopping rule closed.
pub static ADAPTIVE_STIMULI_STOPPED: Counter = Counter::new("adaptive.stimuli_stopped");
/// Participants never simulated thanks to early stopping: whole-crowd
/// budget never recruited plus admitted participants pruned because all
/// their assigned stimuli had already stopped.
pub static ADAPTIVE_PARTICIPANTS_SAVED: Counter = Counter::new("adaptive.participants_saved");

static COUNTERS: [&Counter; 31] = [
    &NET_EVENTS_PROCESSED,
        &NET_SEGMENTS_SENT,
        &NET_RETRANSMISSIONS,
        &NET_DROPS_RANDOM_LOSS,
        &NET_DROPS_QUEUE,
        &NET_BURSTS_BATCHED,
        &NET_BURST_FLUSHES,
        &HTTP_H1_REQUESTS_ASSIGNED,
        &HTTP_H1_CONNS_REUSED,
        &HTTP_CONNS_OPENED,
        &HTTP_H2_STREAMS,
        &HTTP_H2_PUSHED_STREAMS,
        &BROWSER_PAGE_LOADS,
        &BROWSER_RESOURCES_FETCHED,
        &BROWSER_PAINT_EVENTS,
        &BROWSER_MAIN_THREAD_CPU_US,
        &VIDEO_CAPTURES,
        &VIDEO_FRAMES_ENCODED,
        &VIDEO_CACHE_REQUESTS,
        &VIDEO_CACHE_HITS,
        &VIDEO_CACHE_MISSES,
        &CORE_GATE_ADMITTED,
        &CORE_GATE_REJECTED,
        &CORE_RESPONSES_COLLECTED,
        &CORE_RESPONSES_SKIPPED,
        &CORE_AB_VOTES,
        &CORE_AB_SKIPS,
    &CORE_PARTICIPANTS_KEPT,
        &ADAPTIVE_EPOCHS,
        &ADAPTIVE_STIMULI_STOPPED,
        &ADAPTIVE_PARTICIPANTS_SAVED,
];

static LABELED: [&LabeledCounter; 2] = [&CORE_FILTER_DROPS, &CORE_RETAINED_PER_SITE];

static HISTOGRAMS: [&Histogram; 2] = [&BROWSER_LOAD_CPU_MS, &VIDEO_FRAMES_PER_CAPTURE];

/// Every registered plain counter.
pub fn counters() -> &'static [&'static Counter] {
    &COUNTERS
}

/// Every registered labeled counter.
pub fn labeled() -> &'static [&'static LabeledCounter] {
    &LABELED
}

/// Every registered histogram.
pub fn histograms() -> &'static [&'static Histogram] {
    &HISTOGRAMS
}
