//! Connection event logs (qlog-style).
//!
//! Debugging a transport simulation needs the same visibility debugging a
//! real transport does: what was sent when, what the congestion window
//! did, where the retransmissions and timeouts happened. [`ConnLog`]
//! records a per-connection event stream that [`crate::sim::NetSim`] fills
//! when logging is enabled, in the spirit of IETF qlog — serialisable,
//! per-event timestamps, transport-level vocabulary.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// One logged transport event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnEvent {
    /// The connection's handshake completed.
    Established,
    /// A data segment entered the network.
    SegmentSent {
        /// First byte offset.
        start: u64,
        /// Payload length.
        len: u64,
        /// Whether this was a retransmission.
        retransmission: bool,
        /// Congestion window at send time (bytes).
        cwnd: u64,
    },
    /// The segment was dropped before the queue (random loss) or by the
    /// drop-tail buffer.
    SegmentDropped {
        /// First byte offset.
        start: u64,
    },
    /// A cumulative ACK arrived at the sender.
    AckReceived {
        /// Acknowledged byte point.
        ack: u64,
        /// Congestion window after processing (bytes).
        cwnd: u64,
        /// Bytes in flight after processing.
        in_flight: u64,
    },
    /// The retransmission timer fired.
    Timeout,
}

/// A per-connection event log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnLog {
    /// Events in time order.
    pub events: Vec<(SimTime, ConnEvent)>,
}

impl ConnLog {
    /// Record an event (called by the simulator).
    pub(crate) fn push(&mut self, t: SimTime, ev: ConnEvent) {
        self.events.push((t, ev));
    }

    /// The congestion-window trace: `(time, cwnd)` samples from every
    /// send and ACK event.
    pub fn cwnd_trace(&self) -> Vec<(SimTime, u64)> {
        self.events
            .iter()
            .filter_map(|&(t, ev)| match ev {
                ConnEvent::SegmentSent { cwnd, .. } | ConnEvent::AckReceived { cwnd, .. } => {
                    Some((t, cwnd))
                }
                _ => None,
            })
            .collect()
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&ConnEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, ev)| pred(ev)).count()
    }

    /// Serialise as JSON lines (one event per line), the friendliest
    /// format for ad-hoc inspection.
    ///
    /// **Infallible**: an enabled log must never abort a campaign, so
    /// instead of routing through a serialiser whose error path would
    /// have to `expect` (the pre-fix code panicked there by contract),
    /// each line is written directly. Every field is an integer, bool,
    /// or unit variant, so the output is total — and it matches serde's
    /// externally-tagged JSON for `(u64, ConnEvent)` byte for byte (the
    /// compat test below pins that), keeping existing line parsers
    /// working.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (t, ev) in &self.events {
            // Writing into a String cannot fail; discard the fmt::Result
            // rather than re-introducing a panic path.
            let _ = write!(out, "[{},", t.as_micros());
            match ev {
                ConnEvent::Established => out.push_str("\"Established\""),
                ConnEvent::SegmentSent { start, len, retransmission, cwnd } => {
                    let _ = write!(
                        out,
                        "{{\"SegmentSent\":{{\"start\":{start},\"len\":{len},\
                         \"retransmission\":{retransmission},\"cwnd\":{cwnd}}}}}"
                    );
                }
                ConnEvent::SegmentDropped { start } => {
                    let _ = write!(out, "{{\"SegmentDropped\":{{\"start\":{start}}}}}");
                }
                ConnEvent::AckReceived { ack, cwnd, in_flight } => {
                    let _ = write!(
                        out,
                        "{{\"AckReceived\":{{\"ack\":{ack},\"cwnd\":{cwnd},\
                         \"in_flight\":{in_flight}}}}}"
                    );
                }
                ConnEvent::Timeout => out.push_str("\"Timeout\""),
            }
            out.push_str("]\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{NetworkProfile, TlsMode};
    use crate::sim::{NetEvent, NetSim};
    use eyeorg_stats::Seed;

    fn run_logged_transfer(bytes: u64) -> ConnLog {
        let mut sim = NetSim::new(NetworkProfile::cable(), Seed(9));
        sim.set_logging(true);
        let conn = sim.open(SimTime::ZERO, TlsMode::None);
        sim.client_send(conn, SimTime::ZERO, 300);
        let mut responded = false;
        while let Some((t, ev)) = sim.next_event() {
            if let NetEvent::RequestDelivered { .. } = ev {
                if !responded {
                    responded = true;
                    sim.server_send(conn, t, bytes);
                }
            }
        }
        sim.take_log(conn).expect("logging was enabled")
    }

    #[test]
    fn log_captures_full_lifecycle() {
        let log = run_logged_transfer(200_000);
        assert!(log.count(|e| matches!(e, ConnEvent::Established)) == 1);
        let sends = log.count(|e| matches!(e, ConnEvent::SegmentSent { .. }));
        assert!(sends >= (200_000 / 1460) as usize, "sends {sends}");
        assert!(log.count(|e| matches!(e, ConnEvent::AckReceived { .. })) > 0);
        // Time-ordered.
        for w in log.events.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn cwnd_trace_shows_slow_start_growth() {
        let log = run_logged_transfer(400_000);
        let trace = log.cwnd_trace();
        assert!(!trace.is_empty());
        let first = trace.first().expect("non-empty").1;
        let max = trace.iter().map(|&(_, c)| c).max().expect("non-empty");
        assert!(max > first, "cwnd must grow from IW: {first} -> {max}");
    }

    /// A synthetic log covering every [`ConnEvent`] variant, including
    /// extreme field values.
    fn all_variants_log() -> ConnLog {
        let mut log = ConnLog::default();
        log.push(SimTime::ZERO, ConnEvent::Established);
        log.push(
            SimTime::from_micros(1),
            ConnEvent::SegmentSent { start: 0, len: 1460, retransmission: false, cwnd: 14600 },
        );
        log.push(
            SimTime::from_micros(250),
            ConnEvent::SegmentSent {
                start: u64::MAX - 1460,
                len: 1460,
                retransmission: true,
                cwnd: u64::MAX,
            },
        );
        log.push(SimTime::from_micros(300), ConnEvent::SegmentDropped { start: 2920 });
        log.push(
            SimTime::from_micros(5000),
            ConnEvent::AckReceived { ack: 4380, cwnd: 17520, in_flight: 0 },
        );
        log.push(SimTime::from_micros(u64::MAX), ConnEvent::Timeout);
        log
    }

    #[test]
    fn jsonl_matches_serde_encoding_for_every_variant() {
        // The hand-rolled infallible writer must stay byte-compatible
        // with the `(u64, ConnEvent)` serde encoding existing consumers
        // parse.
        let log = all_variants_log();
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), log.events.len());
        for ((t, ev), line) in log.events.iter().zip(&lines) {
            let reference =
                serde_json::to_string(&(t.as_micros(), ev)).expect("reference encoder");
            assert_eq!(*line, reference);
        }
    }

    #[test]
    fn jsonl_roundtrips_every_variant() {
        let log = all_variants_log();
        for (line, expected) in log.to_jsonl().lines().zip(&log.events) {
            let (t, ev): (u64, ConnEvent) = serde_json::from_str(line).expect("valid line");
            assert_eq!((t, ev), (expected.0.as_micros(), expected.1));
        }
    }

    #[test]
    fn jsonl_roundtrips_per_line() {
        let log = run_logged_transfer(20_000);
        let jsonl = log.to_jsonl();
        for line in jsonl.lines() {
            let (_t, _ev): (u64, ConnEvent) = serde_json::from_str(line).expect("valid line");
        }
        assert_eq!(jsonl.lines().count(), log.events.len());
    }

    #[test]
    fn logging_disabled_returns_none() {
        let mut sim = NetSim::new(NetworkProfile::cable(), Seed(9));
        let conn = sim.open(SimTime::ZERO, TlsMode::None);
        sim.run_to_quiescence();
        assert!(sim.take_log(conn).is_none());
    }
}
