//! HAR-style export of a load trace.
//!
//! webpeg collects an HTTP Archive per capture through Chrome's remote
//! debugging protocol — "including when each object loaded, which
//! protocol was used, and when the onload event fired" (§3.1). This
//! module serialises the equivalent view of a [`LoadTrace`]: a `log` with
//! one entry per fetched resource plus the page-level timings. The format
//! follows HAR 1.2's structure closely enough for familiarity, with
//! simulation-specific fields under `_eyeorg` keys (the HAR spec's
//! extension convention).

use serde::Serialize;

use eyeorg_workload::Website;

use crate::trace::LoadTrace;

/// Top-level HAR document.
#[derive(Debug, Serialize)]
pub struct Har {
    /// The single log object, as in HAR 1.2.
    pub log: HarLog,
}

/// HAR `log` object.
#[derive(Debug, Serialize)]
pub struct HarLog {
    /// Format version.
    pub version: &'static str,
    /// Creator tool metadata.
    pub creator: HarCreator,
    /// One page per capture.
    pub pages: Vec<HarPage>,
    /// One entry per fetched resource.
    pub entries: Vec<HarEntry>,
}

/// HAR creator block.
#[derive(Debug, Serialize)]
pub struct HarCreator {
    /// Tool name.
    pub name: &'static str,
    /// Tool version.
    pub version: &'static str,
}

/// HAR page with its timing milestones (milliseconds from navigation).
#[derive(Debug, Serialize)]
pub struct HarPage {
    /// Page id referenced by entries.
    pub id: String,
    /// Site title (the workload name).
    pub title: String,
    /// Page-level timings.
    #[serde(rename = "pageTimings")]
    pub page_timings: HarPageTimings,
}

/// HAR pageTimings block.
#[derive(Debug, Serialize)]
pub struct HarPageTimings {
    /// `onContentLoad` analogue: HTML parse completion, ms.
    #[serde(rename = "onContentLoad")]
    pub on_content_load: Option<f64>,
    /// onload, ms.
    #[serde(rename = "onLoad")]
    pub on_load: Option<f64>,
    /// Simulation extras: last network/CPU activity, ms.
    #[serde(rename = "_eyeorg_quiescent")]
    pub quiescent: Option<f64>,
}

/// One request/response exchange.
#[derive(Debug, Serialize)]
pub struct HarEntry {
    /// Page this entry belongs to.
    pub pageref: String,
    /// Start of the exchange (submission), ms from navigation.
    #[serde(rename = "startedDateTime")]
    pub started_ms: f64,
    /// Total wall time of the exchange, ms.
    pub time: f64,
    /// Request summary.
    pub request: HarRequest,
    /// Response summary.
    pub response: HarResponse,
    /// Phase timing breakdown.
    pub timings: HarTimings,
    /// Resource kind (extension field).
    #[serde(rename = "_eyeorg_kind")]
    pub kind: String,
}

/// HAR request summary.
#[derive(Debug, Serialize)]
pub struct HarRequest {
    /// Method (always GET in the studied workloads).
    pub method: &'static str,
    /// Synthetic URL.
    pub url: String,
    /// Header bytes on the wire.
    #[serde(rename = "headersSize")]
    pub headers_size: i64,
}

/// HAR response summary.
#[derive(Debug, Serialize)]
pub struct HarResponse {
    /// Status (200 for everything the simulation serves).
    pub status: u16,
    /// Header bytes.
    #[serde(rename = "headersSize")]
    pub headers_size: i64,
    /// Body bytes.
    #[serde(rename = "bodySize")]
    pub body_size: i64,
}

/// HAR timings block (ms; -1 = not applicable, per spec).
#[derive(Debug, Serialize)]
pub struct HarTimings {
    /// Queueing between discovery and submission (includes filter match
    /// and DNS in this model).
    pub blocked: f64,
    /// Submission → headers complete.
    pub wait: f64,
    /// Headers → body complete.
    pub receive: f64,
}

/// Build the HAR view of a trace. The `site` supplies URLs, sizes and
/// kinds (the trace stores only timing).
pub fn to_har(trace: &LoadTrace, site: &Website) -> Har {
    let page_id = format!("page_{}", trace.site);
    let ms = |t: eyeorg_net::SimTime| t.as_millis_f64();
    let entries = trace
        .resources
        .iter()
        .filter(|r| r.submitted.is_some())
        .map(|r| {
            let res = &site.resources[r.id.0 as usize];
            let origin = &site.origins[res.origin.0 as usize];
            // lint:allow(D4): the iterator filtered on submitted.is_some() just above
            let submitted = r.submitted.expect("filtered on submitted");
            let headers = r.headers;
            let completed = r.completed;
            HarEntry {
                pageref: page_id.clone(),
                started_ms: ms(submitted),
                time: completed.map(|c| ms(c) - ms(submitted)).unwrap_or(-1.0),
                request: HarRequest {
                    method: "GET",
                    url: format!("https://{}/r/{}", origin.host, r.id.0),
                    headers_size: res.request_header_bytes as i64,
                },
                response: HarResponse {
                    status: 200,
                    headers_size: res.response_header_bytes as i64,
                    body_size: res.body_bytes as i64,
                },
                timings: HarTimings {
                    blocked: r
                        .discovered
                        .map(|d| ms(submitted) - ms(d))
                        .unwrap_or(-1.0),
                    wait: headers.map(|h| ms(h) - ms(submitted)).unwrap_or(-1.0),
                    receive: match (headers, completed) {
                        (Some(h), Some(c)) => ms(c) - ms(h),
                        _ => -1.0,
                    },
                },
                kind: format!("{:?}", res.kind),
            }
        })
        .collect();
    Har {
        log: HarLog {
            version: "1.2",
            creator: HarCreator { name: "webpeg-sim", version: env!("CARGO_PKG_VERSION") },
            pages: vec![HarPage {
                id: page_id,
                title: trace.site.clone(),
                page_timings: HarPageTimings {
                    on_content_load: trace.parse_complete.map(ms),
                    on_load: trace.onload.map(ms),
                    quiescent: trace.quiescent.map(ms),
                },
            }],
            entries,
        },
    }
}

/// Serialise the HAR as pretty JSON.
pub fn to_har_json(trace: &LoadTrace, site: &Website) -> String {
    // lint:allow(D4): the HAR tree is plain structs, strings, and integers; serialisation cannot fail
    serde_json::to_string_pretty(&to_har(trace, site)).expect("HAR serialisation cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BrowserConfig;
    use crate::loader::load_page;
    use eyeorg_stats::Seed;
    use eyeorg_workload::{generate_site, SiteClass};

    #[test]
    fn har_has_entry_per_fetched_resource() {
        let site = generate_site(Seed(1), 0, SiteClass::Blog);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(1));
        let har = to_har(&trace, &site);
        let fetched = trace.resources.iter().filter(|r| r.submitted.is_some()).count();
        assert_eq!(har.log.entries.len(), fetched);
        assert_eq!(har.log.pages.len(), 1);
        assert!(har.log.pages[0].page_timings.on_load.is_some());
    }

    #[test]
    fn har_json_parses_back() {
        let site = generate_site(Seed(2), 1, SiteClass::Landing);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(2));
        let json = to_har_json(&trace, &site);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["log"]["version"], "1.2");
        assert!(v["log"]["entries"].as_array().unwrap().len() > 3);
    }

    #[test]
    fn har_timings_non_negative_for_completed_entries() {
        let site = generate_site(Seed(3), 2, SiteClass::News);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(3));
        let har = to_har(&trace, &site);
        for e in &har.log.entries {
            if e.time >= 0.0 {
                assert!(e.timings.blocked >= 0.0);
                assert!(e.timings.wait >= 0.0);
                assert!(e.timings.receive >= 0.0);
            }
        }
    }
}
