//! Regenerate every table and figure in one pass, sharing campaigns.
fn main() {
    let scale = eyeorg_bench::Scale::from_env();
    eprintln!(
        "scale: {} sites, {} participants/campaign, {} repeats",
        scale.sites, scale.participants, scale.repeats
    );

    eprintln!("building validation campaigns...");
    let validation = eyeorg_bench::campaigns::build_validation(&scale);
    eprintln!("building final timeline campaign...");
    let final_tl = eyeorg_bench::campaigns::build_final_timeline(&scale);
    eprintln!("building final H1-vs-H2 campaign...");
    let final_h1h2 = eyeorg_bench::campaigns::build_final_h1h2(&scale);
    eprintln!("building final ad-blocker campaigns...");
    let final_ads = eyeorg_bench::campaigns::build_final_ads(&scale);

    let sections: Vec<(&str, String)> = vec![
        ("table1.txt", eyeorg_bench::table1::run(&scale, &validation, &final_tl, &final_h1h2, &final_ads)),
        ("fig1.txt", eyeorg_bench::fig1_viz::run(&final_tl)),
        ("fig4.txt", eyeorg_bench::fig4_behavior::run(&validation)),
        ("fig5.txt", eyeorg_bench::fig5_focus::run(&validation)),
        ("fig6.txt", eyeorg_bench::fig6_wisdom::run(&validation)),
        ("fig7.txt", eyeorg_bench::fig7_timeline::run(&final_tl)),
        ("fig8.txt", {
            let mut r = eyeorg_bench::fig8_ab::run_h1h2(&final_h1h2);
            r.push('\n');
            r.push_str(&eyeorg_bench::fig8_ab::run_ads(&final_ads));
            r
        }),
        ("fig9.txt", eyeorg_bench::fig9_modes::run(&final_tl)),
        ("demographics.txt", {
            use eyeorg_core::prelude::*;
            let mut r = String::from("=== Demographic sensitivity (H1-vs-H2 campaign) ===\n");
            r.push_str("slice      participants  votes  decided  majority-agreement\n");
            for s in ab_demographics(&final_h1h2.campaign, &final_h1h2.report) {
                r.push_str(&format!(
                    "{:<10} {:>12} {:>6} {:>7.0}% {:>18.0}%\n",
                    s.label,
                    s.participants,
                    s.votes,
                    s.decided_rate * 100.0,
                    s.majority_agreement * 100.0,
                ));
            }
            r
        }),
    ];
    for (name, report) in &sections {
        println!("{report}\n");
        eyeorg_bench::write_result(name, report);
    }
    eyeorg_bench::write_result("fig4.csv", &eyeorg_bench::fig4_behavior::csv(&validation));
    eyeorg_bench::write_result("fig5.csv", &eyeorg_bench::fig5_focus::csv(&validation));
    eyeorg_bench::write_result("fig6.csv", &eyeorg_bench::fig6_wisdom::csv(&validation));
    eyeorg_bench::write_result("fig7.csv", &eyeorg_bench::fig7_timeline::csv(&final_tl));
    eyeorg_bench::write_result("fig8.csv", &eyeorg_bench::fig8_ab::csv(&final_h1h2, &final_ads));
    eprintln!("all results under results/");
}
