//! Percentiles and percentile-band selection.
//!
//! Eyeorg's final filtering strategy (§4.3 of the paper) keeps, for each
//! video, only the timeline responses lying between the 25th and 75th
//! percentile of that video's `UserPerceivedPLT` distribution; the
//! validation analysis (Fig. 6b) also examines the looser 10th–90th band.
//! [`percentile_band`] implements exactly that selection.
//!
//! Percentiles use the "linear interpolation between closest ranks"
//! definition (type 7 in the Hyndman–Fan taxonomy, the default of R and
//! NumPy): for a sorted sample `x[0..n]`, the `p`-th percentile is
//! `x[h.floor()] + (h - h.floor()) * (x[h.ceil()] - x[h.floor()])` with
//! `h = (n - 1) * p / 100`.

/// The `p`-th percentile (0 ≤ `p` ≤ 100) of a sample, by linear
/// interpolation. Returns `None` on an empty sample or a `p` outside
/// `[0, 100]`. The input need not be sorted.
pub fn percentile(sample: &[f64], p: f64) -> Option<f64> {
    if sample.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted: Vec<f64> = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(percentile_sorted(&sorted, p))
}

/// The `p`-th percentile of an already-sorted sample.
///
/// Callers that evaluate many percentiles of the same sample should sort
/// once and use this to avoid repeated `O(n log n)` work.
///
/// `p` is clamped into `[0, 100]` (including NaN, which clamps to 0): a
/// percentile below the minimum rank is the minimum, above the maximum
/// rank the maximum. Callers that need out-of-range `p` *rejected*
/// rather than saturated should use [`percentile`], which returns
/// `None` there. (Before the clamp, `p > 100` computed a rank past the
/// end of the slice and panicked on the index — while `p < 0` silently
/// saturated to the minimum via the float→usize cast, an asymmetry this
/// contract replaces.)
///
/// # Panics
///
/// Panics if the sample is empty; sortedness is the caller's contract and
/// is not re-verified.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
    let h = (n - 1) as f64 * p / 100.0;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Select the subset of a sample lying within the `[lo_pct, hi_pct]`
/// percentile band (inclusive on both ends).
///
/// This is the paper's wisdom-of-the-crowd outlier filter: responses far
/// from the crowd consensus (participants who "simply scroll to the
/// beginning or end of the video") fall outside the band and are dropped.
/// Values *equal* to a band edge are kept, matching the inclusive wording
/// "responses between the 25th and 75th percentiles".
///
/// Returns the retained values in their original order. Empty input yields
/// an empty output; an inverted band (`lo_pct > hi_pct`) yields an empty
/// output as no value can satisfy it.
pub fn percentile_band(sample: &[f64], lo_pct: f64, hi_pct: f64) -> Vec<f64> {
    if sample.is_empty() || lo_pct > hi_pct {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    let lo = percentile_sorted(&sorted, lo_pct.clamp(0.0, 100.0));
    let hi = percentile_sorted(&sorted, hi_pct.clamp(0.0, 100.0));
    sample.iter().copied().filter(|&v| v >= lo && v <= hi).collect()
}

/// Interquartile range (75th minus 25th percentile); `None` when empty.
pub fn iqr(sample: &[f64]) -> Option<f64> {
    if sample.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(percentile_sorted(&sorted, 75.0) - percentile_sorted(&sorted, 25.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_out_of_range() {
        assert!(percentile(&[], 50.0).is_none());
        assert!(percentile(&[1.0], -1.0).is_none());
        assert!(percentile(&[1.0], 100.1).is_none());
    }

    #[test]
    fn endpoints_are_min_and_max() {
        let data = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&data, 100.0).unwrap(), 5.0);
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 50.0).unwrap(), 2.5);
    }

    #[test]
    fn matches_numpy_type7() {
        // numpy.percentile([15, 20, 35, 40, 50], 40) == 29.0
        let data = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert!((percentile(&data, 40.0).unwrap() - 29.0).abs() < 1e-12);
    }

    #[test]
    fn band_keeps_inclusive_edges() {
        let data: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        // 25th pct = 2.75, 75th = 6.25 → keep 3,4,5,6
        let kept = percentile_band(&data, 25.0, 75.0);
        assert_eq!(kept, vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn band_preserves_original_order() {
        let data = [9.0, 1.0, 5.0, 7.0, 3.0];
        let kept = percentile_band(&data, 10.0, 90.0);
        // Order of retention must match input order, not sorted order.
        let positions: Vec<usize> =
            kept.iter().map(|v| data.iter().position(|d| d == v).unwrap()).collect();
        let mut sorted_positions = positions.clone();
        sorted_positions.sort_unstable();
        assert_eq!(positions, sorted_positions);
    }

    #[test]
    fn inverted_band_is_empty() {
        assert!(percentile_band(&[1.0, 2.0], 75.0, 25.0).is_empty());
    }

    #[test]
    fn full_band_keeps_everything() {
        let data = [4.0, 2.0, 2.0, 8.0];
        assert_eq!(percentile_band(&data, 0.0, 100.0), data.to_vec());
    }

    #[test]
    fn sorted_boundaries_clamp_instead_of_panicking() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&data, 0.0), 1.0);
        assert_eq!(percentile_sorted(&data, 100.0), 4.0);
        // p just above 100 used to compute hi = ceil(3 * 100.0001/100)
        // = 4 and index out of bounds; it must clamp to the maximum.
        assert_eq!(percentile_sorted(&data, 100.0 + f64::EPSILON * 200.0), 4.0);
        assert_eq!(percentile_sorted(&data, 150.0), 4.0);
        assert_eq!(percentile_sorted(&data, f64::INFINITY), 4.0);
        // Negative p clamps to the minimum (pre-clamp this held only by
        // accident of the saturating float→usize cast).
        assert_eq!(percentile_sorted(&data, -0.5), 1.0);
        assert_eq!(percentile_sorted(&data, f64::NEG_INFINITY), 1.0);
        assert_eq!(percentile_sorted(&data, f64::NAN), 1.0);
    }

    #[test]
    fn sorted_two_element_sample() {
        let data = [10.0, 20.0];
        assert_eq!(percentile_sorted(&data, 0.0), 10.0);
        assert_eq!(percentile_sorted(&data, 50.0), 15.0);
        assert_eq!(percentile_sorted(&data, 100.0), 20.0);
        assert_eq!(percentile_sorted(&data, 101.0), 20.0);
        assert_eq!(percentile_sorted(&data, -1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty sample")]
    fn sorted_empty_still_panics() {
        percentile_sorted(&[], 50.0);
    }

    #[test]
    fn band_survives_out_of_range_edges() {
        // percentile() keeps rejecting out-of-range p...
        assert!(percentile(&[1.0, 2.0], 100.5).is_none());
        // ...while band selection saturates: a >100 upper edge keeps the
        // maximum, a negative lower edge keeps the minimum.
        let data = [3.0, 1.0, 2.0];
        assert_eq!(percentile_band(&data, -10.0, 200.0), data.to_vec());
    }

    #[test]
    fn iqr_known_value() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((iqr(&data).unwrap() - 2.0).abs() < 1e-12);
        assert!(iqr(&[]).is_none());
    }
}
