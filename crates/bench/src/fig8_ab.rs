//! Figure 8: A/B results.
//!
//! (a) median agreement as a function of each metric's Δ between the two
//! sides; (b) per-site H2-vs-H1 score CDF, overall and for Δ≤100 ms /
//! Δ≥800 ms subsets (paper: 70 % of sites score ≥0.8 for H2, 12 % ≤0.2);
//! (c) per-site ad-blocked-vs-ads score CDF per blocker (paper: Ghostery
//! ≥0.8 on ~50 % of sites vs ~25 % for AdBlock/uBlock).

use eyeorg_browser::AdBlocker;
use eyeorg_core::analysis::{ab_tallies, agreement_by_delta, AbTally};
use eyeorg_core::campaign::AbCampaign;
use eyeorg_metrics::{compute_metrics, METRIC_NAMES};
use eyeorg_stats::Ecdf;

use crate::campaigns::Filtered;
use crate::series_csv;

/// Per-stimulus |Δ| (seconds) of a metric between the A and B captures.
pub fn metric_deltas(campaign: &AbCampaign, name: &str) -> Vec<f64> {
    campaign
        .a_videos
        .iter()
        .zip(&campaign.b_videos)
        .map(|(a, b)| {
            let ma = compute_metrics(a).by_name(name).unwrap_or(f64::NAN);
            let mb = compute_metrics(b).by_name(name).unwrap_or(f64::NAN);
            (ma - mb).abs()
        })
        .collect()
}

/// The Δ bucket edges of Fig. 8(a), in seconds (the paper's axis runs
/// 100–1700 ms).
pub const DELTA_EDGES: [f64; 6] = [0.0, 0.2, 0.5, 0.9, 1.3, 1.7];

/// Fraction of scores at or above `hi` and at or below `lo`.
fn score_extremes(scores: &[f64], lo: f64, hi: f64) -> (f64, f64) {
    if scores.is_empty() {
        return (0.0, 0.0);
    }
    let n = scores.len() as f64;
    (
        scores.iter().filter(|&&s| s <= lo).count() as f64 / n,
        scores.iter().filter(|&&s| s >= hi).count() as f64 / n,
    )
}

/// Build the Fig. 8(a)+(b) report from the H1-vs-H2 campaign.
pub fn run_h1h2(fin: &Filtered<AbCampaign>) -> String {
    let tallies = ab_tallies(&fin.campaign, &fin.report);
    let mut out = String::new();

    // ---- (a) agreement vs Δ -------------------------------------------
    out.push_str("=== Figure 8(a): median agreement vs per-metric Δ ===\n");
    out.push_str("bucket(s)        ");
    for k in 0..DELTA_EDGES.len() - 1 {
        out.push_str(&format!("{:.1}-{:.1}  ", DELTA_EDGES[k], DELTA_EDGES[k + 1]));
    }
    out.push('\n');
    for name in METRIC_NAMES {
        let deltas = metric_deltas(&fin.campaign, name);
        let med = agreement_by_delta(&tallies, &deltas, &DELTA_EDGES);
        out.push_str(&format!("{name:<17}"));
        for m in med {
            match m {
                Some(v) => out.push_str(&format!("{:>7.0}%  ", v * 100.0)),
                None => out.push_str("      -  "),
            }
        }
        out.push('\n');
    }

    // ---- (b) score CDF ---------------------------------------------------
    out.push_str("\n=== Figure 8(b): per-site H2-vs-H1 score (1 = H2 faster) ===\n");
    let si_deltas = metric_deltas(&fin.campaign, "speedindex");
    let all: Vec<f64> = tallies.iter().filter_map(AbTally::score).collect();
    let small: Vec<f64> = tallies
        .iter()
        .zip(&si_deltas)
        .filter(|(_, &d)| d <= 0.1)
        .filter_map(|(t, _)| t.score())
        .collect();
    let large: Vec<f64> = tallies
        .iter()
        .zip(&si_deltas)
        .filter(|(_, &d)| d >= 0.8)
        .filter_map(|(t, _)| t.score())
        .collect();
    for (label, scores, paper) in [
        ("all sites", &all, "70% >=0.8, 12% <=0.2"),
        ("delta<=100ms", &small, "more indecision"),
        ("delta>=800ms", &large, "strong agreement"),
    ] {
        let (lo, hi) = score_extremes(scores, 0.2, 0.8);
        out.push_str(&format!(
            "{label:<13} n={:<3} score>=0.8: {:>4.0}%  score<=0.2: {:>4.0}%  middle: {:>4.0}%   (paper: {paper})\n",
            scores.len(),
            hi * 100.0,
            lo * 100.0,
            (1.0 - hi - lo) * 100.0
        ));
    }
    // No-Difference coupling: middling sites draw more ND votes.
    let mut nd_mid = Vec::new();
    let mut nd_edge = Vec::new();
    for t in &tallies {
        if let (Some(s), Some(nd)) = (t.score(), t.nd_rate()) {
            if (0.2..=0.8).contains(&s) {
                nd_mid.push(nd);
            } else {
                nd_edge.push(nd);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    out.push_str(&format!(
        "ND rate on contested sites {:.0}% vs decided sites {:.0}% (paper: ~2x)\n",
        mean(&nd_mid) * 100.0,
        mean(&nd_edge) * 100.0
    ));
    out
}

/// Build the Fig. 8(c) report from the per-blocker campaigns.
pub fn run_ads(campaigns: &[(AdBlocker, Filtered<AbCampaign>)]) -> String {
    let mut out = String::new();
    out.push_str("=== Figure 8(c): ad-blocked vs with-ads score (1 = blocked faster) ===\n");
    for (blocker, fin) in campaigns {
        let tallies = ab_tallies(&fin.campaign, &fin.report);
        let scores: Vec<f64> = tallies.iter().filter_map(AbTally::score).collect();
        let (lo, hi) = score_extremes(&scores, 0.2, 0.8);
        out.push_str(&format!(
            "{:<9} n={:<3} score>=0.8: {:>4.0}%  score<=0.2: {:>4.0}%  middle: {:>4.0}%\n",
            blocker.name(),
            scores.len(),
            hi * 100.0,
            lo * 100.0,
            (1.0 - hi - lo) * 100.0
        ));
    }
    out.push_str("(paper: Ghostery >=0.8 on ~50% of sites vs ~25% for adblock/ublock;\n");
    out.push_str(" 30-40% of sites contested — ~15 points more than H1-vs-H2)\n");
    out
}

/// CSV artefacts: the three score CDFs of (b) and one per blocker of (c).
pub fn csv(
    h1h2: &Filtered<AbCampaign>,
    ads: &[(AdBlocker, Filtered<AbCampaign>)],
) -> String {
    let mut out = String::new();
    let tallies = ab_tallies(&h1h2.campaign, &h1h2.report);
    let scores: Vec<f64> = tallies.iter().filter_map(AbTally::score).collect();
    if let Some(e) = Ecdf::new(&scores) {
        out.push_str(&series_csv("score_h2_all,cdf", &e.points()));
    }
    for (blocker, fin) in ads {
        let t = ab_tallies(&fin.campaign, &fin.report);
        let scores: Vec<f64> = t.iter().filter_map(AbTally::score).collect();
        if let Some(e) = Ecdf::new(&scores) {
            out.push_str(&series_csv(&format!("score_{},cdf", blocker.name()), &e.points()));
        }
    }
    out
}
