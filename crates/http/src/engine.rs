//! The fetch engine: protocol scheduling over the network simulator.
//!
//! [`FetchEngine`] is what the browser talks to. It accepts [`Request`]
//! submissions, runs them over HTTP/1.1 connection pools or HTTP/2
//! multiplexed connections (per [`HttpConfig::protocol`]), and surfaces
//! progressive [`FetchEvent`]s. One engine models one browser session's
//! network stack: all origins, all connections, one shared access link.
//!
//! ## Co-simulation contract
//!
//! The engine is designed to interleave with a caller that has its own
//! timed work (the browser's main thread). The caller alternates between
//! [`FetchEngine::next_event_until`] (bounded by its own next action
//! time) and [`FetchEngine::submit`]. Submission times must be
//! non-decreasing and must not precede any `limit` already passed to
//! `next_event_until` — in a co-simulation loop this holds by
//! construction, and violations panic rather than corrupt causality.

use std::collections::{BTreeMap, VecDeque};

use eyeorg_net::event::EventQueue;
use eyeorg_obs::metrics as obs;
use eyeorg_net::{ConnId, NetEvent, NetSim, NetworkProfile, SimTime, TlsMode};
use eyeorg_stats::Seed;

use crate::h1::{H1Conn, H1Origin, QueuedRequest};
use crate::h2::{ChunkKind, ChunkMap, H2Scheduler, H2SendStream, FRAME_OVERHEAD};
use crate::hpack::HpackContext;
use crate::request::{FetchEvent, OriginId, Request, RequestId, RequestTiming};

/// Application protocol spoken to every origin in a session.
///
/// webpeg selects the protocol per capture via Chrome's command-line
/// switches (§3.1 of the paper); likewise the protocol here is a session
/// constant, not per-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// HTTP/1.1: up to [`HttpConfig::h1_pool_size`] connections per
    /// origin, one exchange at a time on each.
    Http1,
    /// HTTP/2: one connection per origin, prioritised multiplexing.
    Http2,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Protocol for all origins.
    pub protocol: Protocol,
    /// TLS mode for new connections.
    pub tls: TlsMode,
    /// HTTP/1.1 connections per origin (Chrome uses 6).
    pub h1_pool_size: usize,
    /// HTTP/2 write window: maximum bytes in the transport but not yet
    /// delivered, which bounds how far ahead the server commits to a
    /// write order (models the bounded socket buffer of a real server).
    pub h2_write_window: u64,
}

impl HttpConfig {
    /// Defaults for the given protocol: 6-connection H1 pools, 64 KiB H2
    /// write window, TLS 1.3.
    pub fn new(protocol: Protocol) -> HttpConfig {
        HttpConfig {
            protocol,
            tls: TlsMode::Tls13,
            h1_pool_size: 6,
            // Must comfortably exceed the bandwidth-delay product of fast
            // consumer paths (~150 KB at 20 Mbit/s × 60 ms), as real H2
            // servers' socket buffers do; an undersized window throttles
            // the single multiplexed connection below what HTTP/1.1's six
            // sockets achieve.
            h2_write_window: 262_144,
        }
    }
}

/// Per-request record.
#[derive(Debug)]
struct Rec {
    req: Request,
    timing: RequestTiming,
    /// `Some(parent)` when the server pushes this resource alongside the
    /// parent's response instead of waiting for a client request.
    pushed_by: Option<RequestId>,
    /// Index of the serving connection within the origin's H1 pool.
    h1_conn: Option<usize>,
    /// On-wire (HPACK-compressed) response header size, fixed when the
    /// response is scheduled (H2 only; H1 uses the raw size).
    resp_header_wire: u64,
    header_received: u64,
    body_received: u64,
    headers_done: bool,
    completed: bool,
}

/// HTTP/2 per-origin connection state.
#[derive(Debug)]
struct H2Origin {
    conn: ConnId,
    established: bool,
    hpack_up: HpackContext,
    hpack_down: HpackContext,
    /// Requests submitted but not yet sent (connection still connecting
    /// or submit time in the future).
    pending: Vec<(RequestId, SimTime)>,
    /// Sent requests awaiting arrival at the server: (id, cumulative
    /// uplink byte mark).
    up_queue: VecDeque<(RequestId, u64)>,
    up_sent: u64,
    sched: H2Scheduler,
    chunks: ChunkMap,
    written: u64,
    delivered: u64,
}

#[derive(Debug)]
enum OriginState {
    H1(H1Origin),
    H2(H2Origin),
}

#[derive(Debug, Clone, Copy)]
enum TimerEv {
    /// A response becomes ready at the server (think time elapsed).
    ResponseReady(RequestId),
    /// Attempt assignments/sends for an origin (submission time reached).
    TryAssign(OriginId),
}

/// The per-session fetch engine. See module docs.
#[derive(Debug)]
pub struct FetchEngine {
    net: NetSim,
    cfg: HttpConfig,
    recs: Vec<Rec>,
    origins: BTreeMap<OriginId, OriginState>,
    origin_protocols: BTreeMap<OriginId, Protocol>,
    conn_map: BTreeMap<ConnId, OriginId>,
    timers: EventQueue<TimerEv>,
    out: VecDeque<(SimTime, FetchEvent)>,
    uplink_wire_bytes: u64,
}

impl FetchEngine {
    /// Create an engine over a fresh simulated network.
    pub fn new(cfg: HttpConfig, profile: NetworkProfile, seed: Seed) -> FetchEngine {
        FetchEngine {
            net: NetSim::new(profile, seed),
            cfg,
            recs: Vec::new(),
            origins: BTreeMap::new(),
            origin_protocols: BTreeMap::new(),
            conn_map: BTreeMap::new(),
            timers: EventQueue::new(),
            out: VecDeque::new(),
            uplink_wire_bytes: 0,
        }
    }

    /// Toggle the network simulator's lossless burst batching (on by
    /// default; the traces are identical either way). The off position
    /// is the per-segment reference path benchmarks compare against.
    pub fn set_burst_batching(&mut self, on: bool) {
        self.net.set_burst_batching(on);
    }

    /// Override the protocol for one origin (e.g. a third-party ad server
    /// that has not deployed HTTP/2, forcing Chrome to fall back). Must
    /// be called before the first request to that origin; later calls are
    /// ignored once the origin's connection state exists.
    pub fn set_origin_protocol(&mut self, origin: OriginId, protocol: Protocol) {
        if !self.origins.contains_key(&origin) {
            self.origin_protocols.insert(origin, protocol);
        }
    }

    /// The protocol in effect for an origin.
    pub fn origin_protocol(&self, origin: OriginId) -> Protocol {
        *self.origin_protocols.get(&origin).unwrap_or(&self.cfg.protocol)
    }

    /// Submit a request at time `at` (see module docs for ordering
    /// requirements). Returns the request's id.
    pub fn submit(&mut self, at: SimTime, req: Request) -> RequestId {
        let id = RequestId(self.recs.len() as u64);
        let origin = req.origin;
        self.recs.push(Rec {
            req,
            timing: RequestTiming { submitted: Some(at), ..RequestTiming::default() },
            pushed_by: None,
            h1_conn: None,
            resp_header_wire: 0,
            header_received: 0,
            body_received: 0,
            headers_done: false,
            completed: false,
        });
        match self.origin_protocol(origin) {
            Protocol::Http1 => {
                let state = self
                    .origins
                    .entry(origin)
                    .or_insert_with(|| OriginState::H1(H1Origin::new()));
                let OriginState::H1(o) = state else { unreachable!("protocol fixed per engine") };
                let priority = self.recs[id.0 as usize].req.priority;
                o.queue.push(QueuedRequest { id, submitted: at, priority });
            }
            Protocol::Http2 => {
                if !self.origins.contains_key(&origin) {
                    let conn = self.net.open(at, self.cfg.tls);
                    obs::HTTP_CONNS_OPENED.incr();
                    self.conn_map.insert(conn, origin);
                    self.origins.insert(
                        origin,
                        OriginState::H2(H2Origin {
                            conn,
                            established: false,
                            hpack_up: HpackContext::new(),
                            hpack_down: HpackContext::new(),
                            pending: Vec::new(),
                            up_queue: VecDeque::new(),
                            up_sent: 0,
                            sched: H2Scheduler::new(),
                            chunks: ChunkMap::new(),
                            written: 0,
                            delivered: 0,
                        }),
                    );
                }
                // lint:allow(D4): the entry was inserted just above when absent
                let OriginState::H2(o) = self.origins.get_mut(&origin).expect("just inserted")
                else {
                    unreachable!("protocol fixed per engine")
                };
                o.pending.push((id, at));
            }
        }
        self.timers.schedule(at, TimerEv::TryAssign(origin));
        id
    }

    /// Register a **server push**: `req` will be delivered on the same
    /// HTTP/2 connection as `parent`, becoming ready at the server the
    /// moment the parent's response does — no client request, no request
    /// round trip, no uplink bytes (RFC 7540 §8.2; the paper's §6 names
    /// push strategies as exactly the kind of optimisation Eyeorg exists
    /// to evaluate).
    ///
    /// # Panics
    /// Panics if `parent`'s origin is not HTTP/2 (push does not exist in
    /// HTTP/1.1) or if `req` targets a different origin (a server can
    /// only push for itself).
    pub fn submit_pushed(&mut self, at: SimTime, parent: RequestId, req: Request) -> RequestId {
        let parent_origin = self.recs[parent.0 as usize].req.origin;
        assert_eq!(req.origin, parent_origin, "push must stay on the parent's origin");
        assert_eq!(
            self.origin_protocol(parent_origin),
            Protocol::Http2,
            "server push requires HTTP/2"
        );
        let id = RequestId(self.recs.len() as u64);
        self.recs.push(Rec {
            req,
            timing: RequestTiming { submitted: Some(at), ..RequestTiming::default() },
            pushed_by: Some(parent),
            h1_conn: None,
            resp_header_wire: 0,
            header_received: 0,
            body_received: 0,
            headers_done: false,
            completed: false,
        });
        id
    }

    /// The next fetch event at or before `limit`, advancing the
    /// simulation as needed. `None` means no event exists at or before
    /// `limit` (there may be later ones).
    pub fn next_event_until(&mut self, limit: SimTime) -> Option<(SimTime, FetchEvent)> {
        loop {
            if let Some(&(t, ev)) = self.out.front() {
                if t <= limit {
                    self.out.pop_front();
                    return Some((t, ev));
                }
                return None;
            }
            let net_t = self.net.peek_time();
            let tim_t = self.timers.peek_time();
            let timer_first = match (net_t, tim_t) {
                (None, None) => return None,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(n), Some(t)) => t <= n,
            };
            if timer_first {
                // lint:allow(D4): timer_first is only true when tim_t is Some
                let t = tim_t.expect("timer_first implies a timer");
                if t > limit {
                    return None;
                }
                // lint:allow(D4): a timer was peeked above, so the timer queue is non-empty
                let (t, ev) = self.timers.pop().expect("peeked non-empty");
                self.handle_timer(t, ev);
            } else {
                // Let the network run, but never past a pending timer or
                // the caller's limit.
                let bound = tim_t.map_or(limit, |t| t.min(limit));
                match self.net.next_event_until(bound) {
                    Some((t, ev)) => self.handle_net(t, ev),
                    None => {
                        // No network event at or before `bound`. If a
                        // timer set the bound, the next iteration fires
                        // it; if the caller's limit did, we are done.
                        if tim_t.is_none_or(|t| t > limit) {
                            return None;
                        }
                    }
                }
            }
        }
    }

    /// The next fetch event with no time bound; `None` when the session
    /// has fully quiesced.
    pub fn next_event(&mut self) -> Option<(SimTime, FetchEvent)> {
        self.next_event_until(SimTime::from_micros(u64::MAX))
    }

    /// Earliest time at which anything might happen (lower bound for the
    /// next event). `None` when fully quiesced.
    pub fn peek_time(&self) -> Option<SimTime> {
        let cands = [
            self.out.front().map(|e| e.0),
            self.timers.peek_time(),
            self.net.peek_time(),
        ];
        cands.into_iter().flatten().min()
    }

    /// Timing record for a request.
    pub fn timing(&self, id: RequestId) -> RequestTiming {
        self.recs[id.0 as usize].timing
    }

    /// The request as submitted.
    pub fn request(&self, id: RequestId) -> &Request {
        &self.recs[id.0 as usize].req
    }

    /// Whether the response has fully arrived.
    pub fn is_completed(&self, id: RequestId) -> bool {
        self.recs[id.0 as usize].completed
    }

    /// Total wire bytes sent uplink for requests (headers after any
    /// compression, plus framing). Lets tests observe HPACK savings.
    pub fn uplink_wire_bytes(&self) -> u64 {
        self.uplink_wire_bytes
    }

    /// Access the underlying network simulator (read-only), e.g. for
    /// per-connection statistics in HAR export.
    pub fn net(&self) -> &NetSim {
        &self.net
    }

    /// Number of transport connections opened to `origin` so far.
    pub fn connections_to(&self, origin: OriginId) -> usize {
        match self.origins.get(&origin) {
            None => 0,
            Some(OriginState::H1(o)) => o.conns.len(),
            Some(OriginState::H2(_)) => 1,
        }
    }

    // ------------------------------------------------------------------

    fn handle_timer(&mut self, now: SimTime, ev: TimerEv) {
        match ev {
            TimerEv::TryAssign(origin) => self.try_assign(origin, now),
            TimerEv::ResponseReady(id) => self.response_ready(id, now),
        }
    }

    fn handle_net(&mut self, now: SimTime, ev: NetEvent) {
        match ev {
            NetEvent::Established { conn } => {
                // lint:allow(D4): conn_map gains an entry at connect time, before any event for the connection
                let origin = *self.conn_map.get(&conn).expect("unknown connection");
                // lint:allow(D4): origins gains an entry before any connection to it is opened
                match self.origins.get_mut(&origin).expect("origin exists") {
                    OriginState::H1(o) => {
                        let c = o
                            .conns
                            .iter_mut()
                            .find(|c| c.conn == conn)
                            // lint:allow(D4): the connection was added to the pool when it was opened
                            .expect("conn in pool");
                        c.established = true;
                    }
                    OriginState::H2(o) => {
                        o.established = true;
                    }
                }
                self.try_assign(origin, now);
            }
            NetEvent::RequestDelivered { conn, total_bytes } => {
                // lint:allow(D4): conn_map gains an entry at connect time, before any event for the connection
                let origin = *self.conn_map.get(&conn).expect("unknown connection");
                let mut ready: Vec<RequestId> = Vec::new();
                // lint:allow(D4): origins gains an entry before any connection to it is opened
                match self.origins.get_mut(&origin).expect("origin exists") {
                    OriginState::H1(o) => {
                        let c = o
                            .conns
                            .iter_mut()
                            .find(|c| c.conn == conn)
                            // lint:allow(D4): the connection was added to the pool when it was opened
                            .expect("conn in pool");
                        if let Some(id) = c.request_arrived(total_bytes) {
                            if self.recs[id.0 as usize].timing.request_at_server.is_none() {
                                ready.push(id);
                            }
                        }
                    }
                    OriginState::H2(o) => {
                        while let Some(&(id, mark)) = o.up_queue.front() {
                            if mark <= total_bytes {
                                o.up_queue.pop_front();
                                ready.push(id);
                            } else {
                                break;
                            }
                        }
                    }
                }
                for id in ready {
                    let rec = &mut self.recs[id.0 as usize];
                    rec.timing.request_at_server = Some(now);
                    let think = rec.req.server_think;
                    self.timers.schedule(now + think, TimerEv::ResponseReady(id));
                }
            }
            NetEvent::Delivered { conn, total_bytes } => {
                // lint:allow(D4): conn_map gains an entry at connect time, before any event for the connection
                let origin = *self.conn_map.get(&conn).expect("unknown connection");
                self.on_down_delivered(origin, conn, total_bytes, now);
            }
        }
    }

    fn try_assign(&mut self, origin: OriginId, now: SimTime) {
        match self.origins.get(&origin) {
            Some(OriginState::H1(_)) => self.try_assign_h1(origin, now),
            Some(OriginState::H2(_)) => self.try_assign_h2(origin, now),
            None => {}
        }
    }

    fn try_assign_h1(&mut self, origin: OriginId, now: SimTime) {
        // Assign queued requests to idle established connections.
        loop {
            let Some(OriginState::H1(o)) = self.origins.get_mut(&origin) else { return };
            let Some(idx) = o.idle_established() else { break };
            let Some(q) = o.pop_assignable(now) else { break };
            let raw_header = self.recs[q.id.0 as usize].req.request_header_bytes;
            let c = &mut o.conns[idx];
            obs::HTTP_H1_REQUESTS_ASSIGNED.incr();
            if c.down_scheduled > 0 {
                // The connection has already served response bytes:
                // this assignment is persistent-connection reuse.
                obs::HTTP_H1_CONNS_REUSED.incr();
            }
            c.assign(q.id, raw_header);
            let conn = c.conn;
            self.net.client_send(conn, now, raw_header);
            self.uplink_wire_bytes += raw_header;
            let rec = &mut self.recs[q.id.0 as usize];
            rec.h1_conn = Some(idx);
            rec.timing.sent = Some(now);
        }
        // Open additional connections for whatever is still waiting.
        let Some(OriginState::H1(o)) = self.origins.get_mut(&origin) else { return };
        let assignable_now =
            o.queue.iter().filter(|q| q.submitted <= now).count();
        let connecting_idle =
            o.conns.iter().filter(|c| !c.established && c.idle()).count();
        let mut to_open = assignable_now
            .saturating_sub(connecting_idle)
            .min(self.cfg.h1_pool_size.saturating_sub(o.conns.len()));
        let mut new_conns = Vec::new();
        while to_open > 0 {
            let conn = self.net.open(now, self.cfg.tls);
            obs::HTTP_CONNS_OPENED.incr();
            new_conns.push(conn);
            to_open -= 1;
        }
        let Some(OriginState::H1(o)) = self.origins.get_mut(&origin) else { return };
        for conn in new_conns {
            o.conns.push(H1Conn::new(conn));
            self.conn_map.insert(conn, origin);
        }
    }

    fn try_assign_h2(&mut self, origin: OriginId, now: SimTime) {
        let Some(OriginState::H2(o)) = self.origins.get_mut(&origin) else { return };
        if !o.established {
            return;
        }
        // Send every pending request whose submit time has arrived, in
        // submission order.
        let mut sendable: Vec<RequestId> = Vec::new();
        o.pending.retain(|&(id, at)| {
            if at <= now {
                sendable.push(id);
                false
            } else {
                true
            }
        });
        let conn = o.conn;
        for id in sendable {
            let raw = self.recs[id.0 as usize].req.request_header_bytes;
            let Some(OriginState::H2(o)) = self.origins.get_mut(&origin) else { return };
            let wire = o.hpack_up.encode(raw) + FRAME_OVERHEAD;
            o.up_sent += wire;
            o.up_queue.push_back((id, o.up_sent));
            self.net.client_send(conn, now, wire);
            self.uplink_wire_bytes += wire;
            self.recs[id.0 as usize].timing.sent = Some(now);
        }
    }

    fn response_ready(&mut self, id: RequestId, now: SimTime) {
        let origin = self.recs[id.0 as usize].req.origin;
        // lint:allow(D4): every request's origin was registered when the request was submitted
        match self.origins.get_mut(&origin).expect("origin exists") {
            OriginState::H1(o) => {
                // lint:allow(D4): an H1 response only becomes ready after the request was assigned a connection
                let idx = self.recs[id.0 as usize].h1_conn.expect("assigned connection");
                let rec = &mut self.recs[id.0 as usize];
                let header = rec.req.response_header_bytes;
                let body = rec.req.body_bytes;
                rec.resp_header_wire = header;
                let c = &mut o.conns[idx];
                let confirmed = c.response_scheduled(header, body);
                debug_assert_eq!(confirmed, id);
                let total = header + body;
                if total > 0 {
                    self.net.server_send(c.conn, now, total);
                } else {
                    // Degenerate empty response: complete instantly.
                    self.emit_headers(id, now);
                    self.emit_complete(id, now);
                }
            }
            OriginState::H2(o) => {
                let rec = &mut self.recs[id.0 as usize];
                let wire_header = o.hpack_down.encode(rec.req.response_header_bytes);
                rec.resp_header_wire = wire_header;
                let weight = rec.req.priority.h2_weight();
                obs::HTTP_H2_STREAMS.incr();
                o.sched.add_stream(H2SendStream::new(id, wire_header, rec.req.body_bytes, weight));
                // Pushed streams ride along: they become ready with the
                // parent (the server already knows it will send them).
                let push_ids: Vec<u64> = self
                    .recs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.pushed_by == Some(id))
                    .map(|(i, _)| i as u64)
                    .collect();
                for pid in push_ids {
                    let prec = &mut self.recs[pid as usize];
                    prec.timing.sent = Some(now);
                    prec.timing.request_at_server = Some(now);
                    let Some(OriginState::H2(o)) = self.origins.get_mut(&origin) else {
                        unreachable!("origin variant fixed")
                    };
                    // PUSH_PROMISE costs a small frame on the wire before
                    // the pushed HEADERS (we fold it into the header
                    // block's size).
                    let wire_header =
                        o.hpack_down.encode(prec.req.response_header_bytes) + 16;
                    prec.resp_header_wire = wire_header;
                    let weight = prec.req.priority.h2_weight();
                    obs::HTTP_H2_STREAMS.incr();
                    obs::HTTP_H2_PUSHED_STREAMS.incr();
                    o.sched.add_stream(H2SendStream::new(
                        RequestId(pid),
                        wire_header,
                        prec.req.body_bytes,
                        weight,
                    ));
                }
                self.pump_h2(origin, now);
            }
        }
    }

    fn pump_h2(&mut self, origin: OriginId, now: SimTime) {
        let Some(OriginState::H2(o)) = self.origins.get_mut(&origin) else { return };
        loop {
            let in_transport = o.written - o.delivered;
            let space = self.cfg.h2_write_window.saturating_sub(in_transport);
            if space == 0 {
                break;
            }
            let Some(chunk) = o.sched.next_chunk(space) else { break };
            let size = o.chunks.push(chunk);
            o.written += size;
            self.net.server_send(o.conn, now, size);
        }
    }

    fn on_down_delivered(&mut self, origin: OriginId, conn: ConnId, total: u64, now: SimTime) {
        // lint:allow(D4): origins gains an entry before any connection to it is opened
        match self.origins.get_mut(&origin).expect("origin exists") {
            OriginState::H1(o) => {
                // lint:allow(D4): the connection was added to the pool when it was opened
                let c = o.conns.iter_mut().find(|c| c.conn == conn).expect("conn in pool");
                let events = c.on_delivered(total);
                let mut freed = false;
                for ev in events {
                    match ev {
                        crate::h1::H1Delivery::Headers(id) => self.emit_headers(id, now),
                        crate::h1::H1Delivery::Body(id, b) => {
                            self.recs[id.0 as usize].body_received = b;
                            self.out.push_back((now, FetchEvent::Data { id, body_bytes: b }));
                        }
                        crate::h1::H1Delivery::Done(id) => {
                            self.emit_complete(id, now);
                            freed = true;
                        }
                    }
                }
                if freed {
                    self.try_assign(origin, now);
                }
            }
            OriginState::H2(o) => {
                o.delivered = total;
                let deliveries = o.chunks.advance(total);
                for d in deliveries {
                    let rec = &mut self.recs[d.id.0 as usize];
                    match d.kind {
                        ChunkKind::Header => {
                            rec.header_received += d.payload_delta;
                            if !rec.headers_done && rec.header_received >= rec.resp_header_wire {
                                self.emit_headers(d.id, now);
                            }
                        }
                        ChunkKind::Body => {
                            rec.body_received += d.payload_delta;
                            let b = rec.body_received;
                            let done = b >= rec.req.body_bytes;
                            self.out.push_back((now, FetchEvent::Data { id: d.id, body_bytes: b }));
                            if done {
                                self.emit_complete(d.id, now);
                            }
                        }
                    }
                    // Header-only responses complete once headers land.
                    let rec = &self.recs[d.id.0 as usize];
                    if rec.headers_done && rec.req.body_bytes == 0 && !rec.completed {
                        self.emit_complete(d.id, now);
                    }
                }
                self.pump_h2(origin, now);
            }
        }
    }

    fn emit_headers(&mut self, id: RequestId, now: SimTime) {
        let rec = &mut self.recs[id.0 as usize];
        if rec.headers_done {
            return;
        }
        rec.headers_done = true;
        rec.timing.headers_received = Some(now);
        self.out.push_back((now, FetchEvent::HeadersReceived { id }));
    }

    fn emit_complete(&mut self, id: RequestId, now: SimTime) {
        let rec = &mut self.recs[id.0 as usize];
        if rec.completed {
            return;
        }
        rec.completed = true;
        rec.timing.completed = Some(now);
        self.out.push_back((now, FetchEvent::Completed { id }));
    }
}
