//! D5 trip: ad-hoc thread spawning outside the parallel map.

pub fn background(work: impl FnOnce() + Send + 'static) {
    std::thread::spawn(work);
}
