//! Integration tests: run the rule engine over the fixture corpus.
//!
//! Every rule has three fixtures under `tests/fixtures/`: a known-bad
//! file that must trip, a waived file that must pass with the waiver
//! consumed, and a file whose waiver no longer suppresses anything and
//! must therefore fail. The fixtures are excluded from the workspace
//! scan (`SKIP_PREFIXES`) precisely because they violate on purpose.

use std::path::Path;

use eyeorg_lint::{lint_source, scan_workspace, FileMeta, Report};

/// Lint a fixture as though it lived in a fingerprinted library crate,
/// where every rule applies.
fn lint_fixture(name: &str) -> Report {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let meta = FileMeta::classify(&format!("crates/net/src/{name}"));
    lint_source(&meta, &source)
}

fn codes(report: &Report) -> Vec<&str> {
    report.diagnostics.iter().map(|d| d.code.as_str()).collect()
}

#[test]
fn bad_fixtures_trip_their_rule() {
    for rule in ["D1", "D2", "D3", "D4", "D5"] {
        let report = lint_fixture(&format!("{}_bad.rs", rule.to_lowercase()));
        assert!(!report.is_clean(), "{rule} bad fixture must trip");
        assert!(
            codes(&report).iter().all(|c| *c == rule),
            "{rule} bad fixture tripped foreign codes: {:?}",
            report.diagnostics
        );
    }
}

#[test]
fn bad_fixture_diagnostics_carry_line_numbers() {
    let report = lint_fixture("d1_bad.rs");
    let lines: Vec<usize> = report.diagnostics.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![3, 6], "one finding per violating line: {:?}", report.diagnostics);
    assert!(report.diagnostics[0].path.ends_with("d1_bad.rs"));
}

#[test]
fn waived_fixtures_pass_and_consume_the_waiver() {
    for rule in ["d1", "d2", "d3", "d4", "d5"] {
        let report = lint_fixture(&format!("{rule}_waived.rs"));
        assert!(
            report.is_clean(),
            "{rule} waived fixture must be clean, got {:?}",
            report.diagnostics
        );
        assert_eq!(report.waivers_used, 1, "{rule} waiver must be consumed");
    }
}

#[test]
fn unused_waivers_are_findings() {
    for rule in ["d1", "d2", "d3", "d4", "d5"] {
        let report = lint_fixture(&format!("{rule}_unused_waiver.rs"));
        assert_eq!(
            codes(&report),
            vec!["unused-waiver"],
            "{rule} stale waiver must be reported: {:?}",
            report.diagnostics
        );
        assert_eq!(report.waivers_used, 0);
    }
}

#[test]
fn malformed_waivers_are_findings() {
    let report = lint_fixture("bad_waiver.rs");
    assert_eq!(codes(&report), vec!["bad-waiver", "bad-waiver"], "{:?}", report.diagnostics);
    let lines: Vec<usize> = report.diagnostics.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![3, 8]);
}

/// The streaming accumulator modules (PR 5) feed digest fingerprints
/// directly, so D1 must apply to each of them — a hash collection
/// sneaking into an accumulator would make shard merges order-seeded.
#[test]
fn streaming_accumulator_modules_are_d1_covered() {
    let bad = "use std::collections::HashMap;\n\
               pub fn tally(xs: &[u32]) -> usize {\n\
                   let mut m: HashMap<u32, u32> = HashMap::new();\n\
                   for x in xs { *m.entry(*x).or_insert(0) += 1; }\n\
                   m.len()\n\
               }\n";
    for path in [
        "crates/stats/src/stream.rs",
        "crates/core/src/digest.rs",
        "crates/core/src/stream.rs",
        // The flat data plane fills the same digest accumulators from
        // its column passes, and the bitplane popcounts feed frame
        // comparisons that digests are built on — same exposure.
        "crates/core/src/flat.rs",
        // The adaptive driver merges shard folds at epoch barriers and
        // takes stopping decisions on the merged accumulators — a
        // nondeterministic container there skews the decision sequence.
        "crates/core/src/adaptive.rs",
        "crates/video/src/bitplane.rs",
    ] {
        let meta = FileMeta::classify(path);
        let report = lint_source(&meta, bad);
        assert!(
            codes(&report).contains(&"D1"),
            "{path} must be under D1 coverage, got {:?}",
            report.diagnostics
        );
    }
}

/// The gate the CI pass enforces: the real tree is clean. Keeping this
/// as a test means `cargo test` alone catches a regression even when
/// the lint binary is not run.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace(&root).expect("workspace readable");
    assert!(report.files > 50, "scan must cover the tree, saw {} files", report.files);
    let rendered: Vec<String> =
        report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(report.is_clean(), "workspace lint findings:\n{}", rendered.join("\n"));
}
