//! Stimulus builders: from a site corpus to campaign-ready videos.
//!
//! These wire the full webpeg pipeline (§3.1–3.2) for the paper's three
//! campaign types:
//!
//! * [`timeline_stimuli`] — capture each site once (5 loads, keep the
//!   median-onload video) under a single configuration;
//! * [`protocol_ab_stimuli`] — capture each site under HTTP/1.1 (A) and
//!   HTTP/2 (B);
//! * [`adblock_ab_stimuli`] — capture each site with ads (A) and with a
//!   given ad blocker installed (B); the protocol is *not* forced
//!   ("Chrome will default to HTTP/2 if the target website supports it").

use eyeorg_browser::{AdBlocker, BrowserConfig};
use eyeorg_http::Protocol;
use eyeorg_stats::{par_map_range, resolve_threads, Seed};
use eyeorg_video::{shared_capture_cache, CaptureConfig};
use eyeorg_workload::Website;

use crate::experiment::{AbStimulus, TimelineStimulus};

// Builders fan captures out over the automatic thread count (override
// with `EYEORG_THREADS`): each site's captures draw only from their own
// `derive_index` seed streams and land in the site's output slot, so
// the stimulus list is byte-identical at every thread count. Finished
// captures go through the process-wide [`CaptureCache`] — repeated
// builder calls for the same configuration (the ad-blocker study's
// with-ads baseline, re-run experiments) reuse the stored video.

/// Capture every site once under `browser` (median of the configured
/// repeats), producing timeline stimuli.
pub fn timeline_stimuli(
    sites: &[Website],
    browser: &BrowserConfig,
    capture: &CaptureConfig,
    seed: Seed,
) -> Vec<TimelineStimulus> {
    timeline_stimuli_threads(sites, browser, capture, seed, 0)
}

/// [`timeline_stimuli`] with an explicit worker-thread count (`0` =
/// automatic, `1` = sequential); output is identical for every value.
pub fn timeline_stimuli_threads(
    sites: &[Website],
    browser: &BrowserConfig,
    capture: &CaptureConfig,
    seed: Seed,
    threads: usize,
) -> Vec<TimelineStimulus> {
    let cache = shared_capture_cache();
    par_map_range(sites.len(), resolve_threads(threads), |i| {
        let site = &sites[i];
        TimelineStimulus {
            name: site.name.clone(),
            video: cache.capture_median(
                site,
                browser,
                seed.derive_index("tl-cap", i as u64),
                capture,
            ),
        }
    })
}

/// Capture every site under HTTP/1.1 (A) and HTTP/2 (B) for the
/// protocol-comparison campaign. Both sides share the same per-site seed
/// stream family, but every load draws independently — exactly like
/// capturing twice on a live network.
pub fn protocol_ab_stimuli(
    sites: &[Website],
    base: &BrowserConfig,
    capture: &CaptureConfig,
    seed: Seed,
) -> Vec<AbStimulus> {
    let cache = shared_capture_cache();
    par_map_range(sites.len(), resolve_threads(0), |i| {
        let site = &sites[i];
        let h1 = base.clone().with_protocol(Protocol::Http1);
        let h2 = base.clone().with_protocol(Protocol::Http2);
        AbStimulus {
            name: site.name.clone(),
            a: cache.capture_median(site, &h1, seed.derive_index("h1-cap", i as u64), capture),
            b: cache.capture_median(site, &h2, seed.derive_index("h2-cap", i as u64), capture),
        }
    })
}

/// Capture every site with ads (A) and under `blocker` (B) for the
/// ad-blocker campaign.
pub fn adblock_ab_stimuli(
    sites: &[Website],
    base: &BrowserConfig,
    blocker: AdBlocker,
    capture: &CaptureConfig,
    seed: Seed,
) -> Vec<AbStimulus> {
    let cache = shared_capture_cache();
    par_map_range(sites.len(), resolve_threads(0), |i| {
        let site = &sites[i];
        let with_blocker = base.clone().with_adblocker(blocker);
        AbStimulus {
            name: site.name.clone(),
            a: cache.capture_median(site, base, seed.derive_index("ads-cap", i as u64), capture),
            b: cache.capture_median(
                site,
                &with_blocker,
                seed.derive_index("blk-cap", i as u64),
                capture,
            ),
        }
    })
}

/// Capture every site under plain HTTP/2 (A) and HTTP/2 with server push
/// of render-blocking stylesheets (B): the §6 "push/priority strategies"
/// experiment the paper names as future work.
pub fn push_ab_stimuli(
    sites: &[Website],
    base: &BrowserConfig,
    capture: &CaptureConfig,
    seed: Seed,
) -> Vec<AbStimulus> {
    let cache = shared_capture_cache();
    par_map_range(sites.len(), resolve_threads(0), |i| {
        let site = &sites[i];
        let pushed = base.clone().with_server_push();
        AbStimulus {
            name: site.name.clone(),
            a: cache.capture_median(site, base, seed.derive_index("plain-cap", i as u64), capture),
            b: cache.capture_median(site, &pushed, seed.derive_index("push-cap", i as u64), capture),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eyeorg_workload::{ad_heavy, alexa_like};

    fn quick_capture() -> CaptureConfig {
        CaptureConfig { repeats: 2, ..CaptureConfig::default() }
    }

    #[test]
    fn timeline_builder_produces_one_stimulus_per_site() {
        let sites = alexa_like(Seed(1), 3);
        let st = timeline_stimuli(&sites, &BrowserConfig::new(), &quick_capture(), Seed(2));
        assert_eq!(st.len(), 3);
        for (s, site) in st.iter().zip(&sites) {
            assert_eq!(s.name, site.name);
            assert!(s.video.trace().onload.is_some());
        }
    }

    #[test]
    fn protocol_builder_sides_use_their_protocols() {
        let sites = alexa_like(Seed(3), 2);
        let st = protocol_ab_stimuli(&sites, &BrowserConfig::new(), &quick_capture(), Seed(4));
        for s in &st {
            assert_eq!(s.a.trace().protocol, "h1");
            assert_eq!(s.b.trace().protocol, "h2");
        }
    }

    #[test]
    fn adblock_builder_marks_blocker_side() {
        let sites = ad_heavy(Seed(5), 2, 1);
        let st = adblock_ab_stimuli(
            &sites,
            &BrowserConfig::new(),
            AdBlocker::Ghostery,
            &quick_capture(),
            Seed(6),
        );
        for s in &st {
            assert_eq!(s.a.trace().adblocker, None);
            assert_eq!(s.b.trace().adblocker.as_deref(), Some("ghostery"));
        }
    }
}
