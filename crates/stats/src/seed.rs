//! Deterministic seed derivation.
//!
//! Every stochastic component in the workspace (network loss, website
//! corpus generation, participant populations, behaviour noise, …) draws
//! from a seeded RNG. [`Seed`] provides *labelled derivation*: a campaign
//! seed is split into independent child seeds by hashing a string label,
//! so adding a new consumer of randomness never perturbs the streams of
//! existing consumers — a property the regression tests rely on.
//!
//! The derivation is FNV-1a over the label folded into a SplitMix64
//! finaliser. This is not cryptographic and does not need to be; it only
//! needs to be stable across platforms and well-dispersed.

/// A 64-bit deterministic seed.
///
/// `Seed` is deliberately *not* `Default`: every seed in the system must
/// be traceable to an explicit experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Seed(pub u64);

impl Seed {
    /// Derive an independent child seed for the component named `label`.
    ///
    /// Derivation is pure: the same `(seed, label)` pair always yields the
    /// same child, and distinct labels yield (with overwhelming
    /// probability) unrelated streams.
    #[inline]
    pub fn derive(self, label: &str) -> Seed {
        // FNV-1a over the label, offset by the parent seed.
        let mut h = 0xcbf2_9ce4_8422_2325_u64 ^ self.0;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Seed(splitmix64(h))
    }

    /// Derive a child seed for the `index`-th element of a family (e.g.
    /// per-site or per-participant streams).
    #[inline]
    pub fn derive_index(self, label: &str, index: u64) -> Seed {
        Seed(splitmix64(self.derive(label).0 ^ splitmix64(index.wrapping_add(0x9e37_79b9))))
    }

    /// The raw value, for constructing an RNG
    /// (`StdRng::seed_from_u64(seed.value())`).
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

/// SplitMix64 finaliser: a fast, well-dispersed 64-bit mixing function.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let s = Seed(42);
        assert_eq!(s.derive("net"), s.derive("net"));
        assert_eq!(s.derive_index("site", 7), s.derive_index("site", 7));
    }

    #[test]
    fn distinct_labels_diverge() {
        let s = Seed(42);
        assert_ne!(s.derive("net"), s.derive("crowd"));
        assert_ne!(s.derive("a"), Seed(43).derive("a"));
    }

    #[test]
    fn distinct_indices_diverge() {
        let s = Seed(7);
        let seeds: Vec<u64> = (0..100).map(|i| s.derive_index("p", i).value()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn label_prefixes_do_not_collide() {
        // "ab" + index vs "a" + different index should not alias.
        let s = Seed(1);
        assert_ne!(s.derive("ab"), s.derive("a").derive("b"));
    }

    #[test]
    fn bits_are_dispersed() {
        // Successive indices must not produce near-identical seeds.
        let s = Seed(0);
        let a = s.derive_index("x", 0).value();
        let b = s.derive_index("x", 1).value();
        assert!((a ^ b).count_ones() > 8);
    }
}
