//! Deterministic parallel execution on `std::thread::scope`.
//!
//! The campaign pipeline (capture fan-out, per-participant response
//! generation, figure regeneration) is embarrassingly parallel *and*
//! must stay byte-reproducible: the regression suite asserts that the
//! same root [`Seed`](crate::Seed) yields identical campaign reports.
//! Both properties hold because work items never share an RNG stream —
//! each item draws only from its own `Seed::derive_index` child — so the
//! only thing parallelism could perturb is *result order*, and the
//! functions here pin that by index:
//!
//! * work items are claimed in contiguous *chunks* from a shared atomic
//!   counter by a fixed pool of scoped threads — one `fetch_add` per
//!   chunk instead of per item keeps synchronisation off the per-item
//!   path;
//! * each worker buffers `(index, result)` pairs locally; the buffers
//!   are merged into index order after the scope joins, so no per-slot
//!   locks are taken at all;
//! * the requested thread count is clamped to the machine's effective
//!   parallelism (unless the caller pinned it via `EYEORG_THREADS`),
//!   and a pool of 1 short-circuits to a plain sequential iterator —
//!   the exact code path the single-threaded implementation used.
//!
//! The merged output is therefore identical for every thread count, and
//! an effective pool of 1 *is* the old sequential run. On a box where
//! `available_parallelism` is 1 a request for "4 threads" no longer
//! pays thread spawn + contention for zero speedup (the PR 1 bench
//! showed 0.3–0.4× "speedups" exactly because of that).
//!
//! No external dependencies: plain `std::thread::scope` and
//! `AtomicUsize`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

// --- seeded interleaving chaos (race-exerciser support) ---------------
//
// The `stress` binary in `crates/lint` re-runs the campaign engine under
// permuted thread schedules: with a non-zero chaos seed every worker
// sprinkles seed-derived `yield_now` calls through its claim/execute
// loop, perturbing which worker claims which chunk and when. The merged
// output must not change — results are pinned by index — so any
// divergence under chaos is a real interleaving bug, caught on stable
// without a race detector.

/// Process-wide chaos seed; `0` disables injection (the default, and
/// the only value production paths ever see).
static CHAOS_SEED: AtomicU64 = AtomicU64::new(0);

/// Install a chaos seed for seeded-interleaving stress runs (`0` turns
/// injection back off). Schedules are a pure function of
/// `(seed, worker, step)`, so a given seed perturbs thread timing
/// reproducibly enough to name in a bug report.
pub fn set_chaos_seed(seed: u64) {
    // lint:allow(D3): store/load only gate test-time yield injection; no data flows through this atomic into any fingerprinted output
    CHAOS_SEED.store(seed, Ordering::Relaxed);
}

/// Yield 0–3 times based on the chaos seed, this worker, and its local
/// step counter. A single relaxed load when chaos is off.
#[inline]
fn chaos_yield(worker: usize, step: &mut u64) {
    // lint:allow(D3): store/load only gate test-time yield injection; no data flows through this atomic into any fingerprinted output
    let seed = CHAOS_SEED.load(Ordering::Relaxed);
    if seed == 0 {
        return;
    }
    *step += 1;
    // splitmix64-style mix of (seed, worker, step).
    let mut z = seed
        ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ step.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    for _ in 0..(z & 3) {
        std::thread::yield_now();
    }
}

/// Number of worker threads to use when a caller asks for "automatic":
/// the `EYEORG_THREADS` environment variable when set to a positive
/// integer, otherwise [`std::thread::available_parallelism`].
///
/// Cached after the first call (consistent within a process run).
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Some(n) = env_thread_override() {
            return n;
        }
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    })
}

/// Upper bound honoured for `EYEORG_THREADS`: far beyond any machine
/// this workload targets, but low enough that a stray `999999999` in the
/// environment cannot ask `std::thread::scope` for a billion workers.
pub const MAX_THREAD_OVERRIDE: usize = 512;

/// Parse an `EYEORG_THREADS`-style value. `None` for anything that is
/// not a positive integer (empty, garbage, `0`); values above
/// [`MAX_THREAD_OVERRIDE`] clamp to it. Whitespace is trimmed.
pub fn parse_thread_override(raw: &str) -> Option<usize> {
    let n = raw.trim().parse::<usize>().ok()?;
    if n == 0 {
        return None;
    }
    Some(n.min(MAX_THREAD_OVERRIDE))
}

/// The `EYEORG_THREADS` override, if set to a positive integer.
fn env_thread_override() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        std::env::var("EYEORG_THREADS").ok().as_deref().and_then(parse_thread_override)
    })
}

/// Resolve a thread-count knob: `0` means "automatic" (see
/// [`default_threads`]), anything else is taken literally.
pub fn resolve_threads(knob: usize) -> usize {
    if knob == 0 {
        default_threads()
    } else {
        knob
    }
}

/// The pool size actually worth spawning for an explicit `threads`
/// request: clamped to `available_parallelism` so that oversubscribing
/// a small machine degrades to the sequential path instead of paying
/// spawn + contention overhead for nothing. An explicit
/// `EYEORG_THREADS` pin wins over the clamp (it is how the regression
/// tests force multi-threaded execution on 1-core CI boxes).
pub fn effective_pool(threads: usize) -> usize {
    if env_thread_override().is_some() {
        return threads;
    }
    let hw = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    threads.min(hw)
}

/// Chunk size for the shared work counter: large enough to amortise the
/// `fetch_add`, small enough to keep the tail balanced when per-item
/// cost is skewed (page loads vary ~5× across sites).
fn chunk_size(n: usize, pool: usize) -> usize {
    // Aim for ~4 chunks per worker, at least 1 item per chunk.
    (n / (pool * 4)).max(1)
}

/// Map `f` over `0..n` on `threads` workers, returning results in index
/// order. `f(i)` must depend only on `i` (and captured immutable state)
/// — the usual shape is "derive the item's own seed from its index".
///
/// With an effective pool of 1 (requested, or clamped by the hardware)
/// this is exactly `(0..n).map(f).collect()`.
pub fn par_map_range<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let pool = effective_pool(threads).min(n);
    if pool <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = chunk_size(n, pool);
    let next = AtomicUsize::new(0);
    let f = &f;
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pool)
            .map(|worker| {
                let next = &next;
                scope.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut chaos_step = 0u64;
                    loop {
                        chaos_yield(worker, &mut chaos_step);
                        // lint:allow(D3): relaxed chunk claiming only permutes which worker computes which index; results are merged back in index order below, so no claim order reaches any output
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            chaos_yield(worker, &mut chaos_step);
                            out.push((i, f(i)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            // lint:allow(D4): a panicking work item must propagate, not be swallowed into a partial result
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    // Merge by index. Each index appears exactly once across the
    // buffers; within a buffer indices are increasing, so a bucket
    // scatter restores the full order without sorting.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for buf in per_worker.drain(..) {
        for (i, r) in buf {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
    }
    // lint:allow(D4): the chunked claim loop visits every index in 0..n exactly once, so every slot is filled
    slots.into_iter().map(|s| s.expect("every index claimed")).collect()
}

/// [`par_map_range`] with per-worker scratch: each worker calls `make`
/// once and threads the resulting state through every item it claims.
/// The flat campaign engine uses this as its shard *arena* — reusable
/// `Vec` capacity that makes the per-shard inner loop allocation-free.
///
/// Determinism contract: `f(scratch, i)`'s *result* must depend only on
/// `i` (and captured immutable state) — the scratch is for allocation
/// reuse, never for carrying data between items. Which items share a
/// scratch varies with scheduling, so any result-visible leakage would
/// be nondeterministic; callers must clear per-item state at the top of
/// `f`, exactly as if the scratch were freshly `make()`d.
///
/// With an effective pool of 1 this is one `make()` followed by
/// `(0..n).map(|i| f(&mut scratch, i)).collect()` — the maximal-reuse
/// sequential path.
pub fn par_map_range_scratch<S, R, M, F>(n: usize, threads: usize, make: M, f: F) -> Vec<R>
where
    R: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let pool = effective_pool(threads).min(n);
    if pool <= 1 || n <= 1 {
        let mut scratch = make();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }
    let chunk = chunk_size(n, pool);
    let next = AtomicUsize::new(0);
    let make = &make;
    let f = &f;
    let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pool)
            .map(|worker| {
                let next = &next;
                scope.spawn(move || {
                    let mut scratch = make();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut chaos_step = 0u64;
                    loop {
                        chaos_yield(worker, &mut chaos_step);
                        // lint:allow(D3): relaxed chunk claiming only permutes which worker computes which index; results are merged back in index order below, so no claim order reaches any output
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            chaos_yield(worker, &mut chaos_step);
                            out.push((i, f(&mut scratch, i)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            // lint:allow(D4): a panicking work item must propagate, not be swallowed into a partial result
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for buf in per_worker.drain(..) {
        for (i, r) in buf {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
    }
    // lint:allow(D4): the chunked claim loop visits every index in 0..n exactly once, so every slot is filled
    slots.into_iter().map(|s| s.expect("every index claimed")).collect()
}

/// Map `f` over owned `items` on `threads` workers; `f` receives
/// `(index, item)` and results come back in item order, byte-identical
/// to the sequential run.
///
/// With an effective pool of 1 this is exactly
/// `items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect()`.
pub fn par_map_indexed<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let pool = effective_pool(threads).min(items.len());
    if pool <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    // Hand each item to exactly one worker by index. The items vector
    // itself is never shared mutably: each cell is taken once by the
    // worker that claimed its index.
    let cells: Vec<std::sync::Mutex<Option<T>>> =
        items.into_iter().map(|x| std::sync::Mutex::new(Some(x))).collect();
    let cells_ref = &cells;
    let f = &f;
    par_map_range(cells_ref.len(), threads, move |i| {
        let item = cells_ref[i]
            .lock()
            // A poisoned cell still holds a valid Option; panics in `f`
            // propagate through the worker join, not through the lock.
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            // lint:allow(D4): par_map_range hands each index to exactly one worker, so the cell is taken exactly once
            .expect("each index claimed once");
        f(i, item)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Seed;

    #[test]
    fn parallel_matches_sequential() {
        let work = |i: usize| {
            // A per-index derived stream, like real call sites.
            let mut rng = crate::rng::Rng::seed_from_u64(Seed(9).derive_index("w", i as u64).value());
            (0..100).map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add)
        };
        let seq = par_map_range(64, 1, work);
        for threads in [2, 3, 4, 8] {
            assert_eq!(par_map_range(64, threads, work), seq, "threads={threads}");
        }
    }

    #[test]
    fn scratch_map_matches_plain_map_at_any_thread_count() {
        let work = |scratch: &mut Vec<u64>, i: usize| {
            // Per-item state is cleared at the top, as the contract
            // requires; the scratch only donates its capacity.
            scratch.clear();
            let mut rng = crate::rng::Rng::seed_from_u64(Seed(11).derive_index("s", i as u64).value());
            for _ in 0..50 {
                scratch.push(rng.next_u64());
            }
            scratch.iter().fold(0u64, |a, &x| a.wrapping_add(x))
        };
        let plain = par_map_range(97, 1, |i| work(&mut Vec::new(), i));
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                par_map_range_scratch(97, threads, Vec::new, work),
                plain,
                "threads={threads}"
            );
        }
        // Degenerate sizes.
        assert_eq!(par_map_range_scratch(0, 4, Vec::<u8>::new, |_, i| i), Vec::<usize>::new());
        assert_eq!(par_map_range_scratch(1, 4, Vec::<u8>::new, |_, i| i * 3), vec![0]);
    }

    #[test]
    fn indexed_map_preserves_order_and_items() {
        let items: Vec<String> = (0..40).map(|i| format!("item-{i}")).collect();
        let expected: Vec<String> = items.iter().enumerate().map(|(i, s)| format!("{i}:{s}")).collect();
        let got = par_map_indexed(items, 4, |i, s| format!("{i}:{s}"));
        assert_eq!(got, expected);
    }

    #[test]
    fn zero_and_one_items_work_at_any_thread_count() {
        assert_eq!(par_map_range(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_range(1, 8, |i| i * 2), vec![0]);
        assert_eq!(par_map_indexed(Vec::<u8>::new(), 8, |_, x| x), Vec::<u8>::new());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(par_map_range(3, 64, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn chunked_claiming_covers_every_index() {
        // n not divisible by chunk or pool; every index must appear once.
        for n in [2, 7, 63, 64, 65, 257] {
            let got = par_map_range(n, 4, |i| i);
            assert_eq!(got, (0..n).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn thread_override_parsing_rejects_and_clamps() {
        // Plain positive integers pass through.
        assert_eq!(parse_thread_override("1"), Some(1));
        assert_eq!(parse_thread_override("8"), Some(8));
        assert_eq!(parse_thread_override("  4\n"), Some(4));
        // Zero means "no override", like an unset variable.
        assert_eq!(parse_thread_override("0"), None);
        // Garbage falls back instead of propagating a parse panic.
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("two"), None);
        assert_eq!(parse_thread_override("-3"), None);
        assert_eq!(parse_thread_override("4.5"), None);
        assert_eq!(parse_thread_override("8 workers"), None);
        // Huge values clamp instead of requesting absurd pools; numbers
        // beyond usize parse as errors and also fall back.
        assert_eq!(parse_thread_override("999999999"), Some(MAX_THREAD_OVERRIDE));
        assert_eq!(parse_thread_override(&"9".repeat(40)), None);
        assert_eq!(parse_thread_override("512"), Some(512));
        assert_eq!(parse_thread_override("513"), Some(512));
    }

    #[test]
    fn chunk_size_is_sane() {
        assert_eq!(chunk_size(1, 4), 1);
        assert_eq!(chunk_size(64, 4), 4);
        assert!(chunk_size(1000, 2) >= 1);
    }
}
