//! Simulation time.
//!
//! All simulator components share a single virtual clock expressed in
//! microseconds. Microsecond resolution is fine enough that segment
//! serialisation times on fast links (a 1500-byte frame at 100 Mbit/s is
//! 120 µs) never collapse to zero, and coarse enough that a `u64` covers
//! ~584 000 years of simulated time — overflow is not a practical concern
//! and arithmetic is checked in debug builds regardless.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since the start of
/// the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulation time never
    /// runs backwards, so that indicates a logic error.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                // lint:allow(D4): documented panic: simulation time never runs backwards
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond; negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating multiplication by an integer factor (used for RTO
    /// exponential backoff).
    pub fn saturating_mul(self, k: u32) -> SimDuration {
        SimDuration(self.0.saturating_mul(u64::from(k)))
    }

    /// Transmission time of `bytes` at `bits_per_sec`, rounded up to a
    /// whole microsecond so that serialisation on absurdly fast links
    /// still advances the clock.
    ///
    /// # Panics
    /// Panics if `bits_per_sec` is zero.
    pub fn serialization(bytes: u64, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "link rate must be positive");
        let bits = bytes * 8;
        SimDuration((bits * 1_000_000).div_ceil(bits_per_sec))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        // lint:allow(D4): documented panic: a SimTime past the u64 horizon is a logic error
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        // lint:allow(D4): documented panic: duration overflow is a logic error, not recoverable state
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        // lint:allow(D4): documented panic: duration underflow is a logic error, not recoverable state
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}µs", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_millis(1500).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimDuration::from_secs_f64(0.001).as_micros(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(-5.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t.since(SimTime::from_millis(10)), SimDuration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_backwards() {
        let _ = SimTime::from_millis(1).since(SimTime::from_millis(2));
    }

    #[test]
    fn serialization_times() {
        // 1460 bytes at 10 Mbit/s = 1.168 ms.
        let d = SimDuration::serialization(1460, 10_000_000);
        assert_eq!(d.as_micros(), 1168);
        // Rounds up: 1 byte at 1 Gbit/s is 8 ns → 1 µs.
        assert_eq!(SimDuration::serialization(1, 1_000_000_000).as_micros(), 1);
        // Zero bytes serialise instantly.
        assert_eq!(SimDuration::serialization(0, 1_000_000).as_micros(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12µs");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }
}
