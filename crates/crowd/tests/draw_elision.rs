//! Draw-elision soundness properties for the behavioural-model fast
//! path.
//!
//! The fast path's licence to skip work rests on one invariant: every
//! draw the model takes derives from `persona.seed ⊕ activity ⊕
//! per-stimulus label` with **no shared RNG stream**, so a draw whose
//! value is never consumed can be elided without perturbing any drawn
//! value. These properties pin that invariant directly, independent of
//! the campaign engines' end-to-end digest gates:
//!
//! * a value computed *in isolation* (everything else elided) is
//!   bit-identical to the same value inside a full serve-all pipeline;
//! * trait cursors that are dropped unfinished (gate-rejected or
//!   pruned participants) never perturb the participants that *are*
//!   materialised;
//! * bulk `Rng::seed_block` expansion of a whole seed plane matches
//!   scalar per-cell seeding for every cell.
//!
//! If any of these fail, the demand-driven engines would still be
//! internally consistent — but no longer byte-identical to the
//! serve-everything reference, which is the regression these tests
//! exist to catch early (at the crowd layer, with field-level
//! assertions instead of an opaque digest mismatch).

use eyeorg_crowd::fastpath::{
    ab_control_seeded, instruction_time_seeded, judge_pair_seeded, session_seed,
    timeline_control_seeded, timeline_response_seeded, total_time_on_site_seeded,
    video_session_from_rng, video_session_seeded,
};
use eyeorg_crowd::{
    true_ready_time, ModelSeeds, Persona, PopulationProfile, ReadinessCriterion, SessionProfile,
    TestKind, TimelineStimulusProfile, VideoSession,
};
use eyeorg_browser::{load_page, BrowserConfig};
use eyeorg_net::SimDuration;
use eyeorg_stats::rng::Rng;
use eyeorg_stats::Seed;
use eyeorg_video::{FrameTimeline, Video};
use eyeorg_workload::{generate_site, SiteClass};

fn video(seed: u64) -> Video {
    let site = generate_site(Seed(seed), 0, SiteClass::News);
    let trace = load_page(&site, &BrowserConfig::new(), Seed(seed));
    Video::capture(trace, 10, SimDuration::from_secs(4))
}

/// A full serve-all pass over `labels` for one participant: sessions,
/// responses, control, judgment, instruction and total time, in the
/// order the engines take them. Returns everything it drew.
#[allow(clippy::type_complexity)]
fn serve_all(
    p: &Persona,
    seeds: &ModelSeeds,
    sprof: &SessionProfile,
    tprof: &TimelineStimulusProfile,
    rewinds: &[usize],
    labels: &[String],
) -> (Vec<VideoSession>, Vec<f64>, bool, SimDuration) {
    let sessions: Vec<VideoSession> = labels
        .iter()
        .map(|l| video_session_seeded(sprof, p, TestKind::Timeline, seeds, l))
        .collect();
    let responses: Vec<f64> = labels
        .iter()
        .map(|l| timeline_response_seeded(tprof, rewinds, p, seeds, l).submitted.as_secs_f64())
        .collect();
    let control = timeline_control_seeded(p, seeds, "ctrl-tl-0");
    let total = total_time_on_site_seeded(&sessions, p, seeds);
    (sessions, responses, control, total)
}

/// Any single value computed with every sibling draw elided must equal
/// the same value inside the full serve-all pipeline. This is the
/// demand-driven engines' licence to skip: were any two activity
/// streams secretly shared (one global RNG, draw-order coupling),
/// eliding sessions would shift responses and this would fail with a
/// field-level diff.
#[test]
fn isolated_values_match_full_serve() {
    let v = video(90);
    let mut tl = FrameTimeline::of(&v);
    tl.precompute_rewinds();
    let rewinds = tl.rewind_table();
    let sprof = SessionProfile::of(&v, TestKind::Timeline);
    let tprof = TimelineStimulusProfile::of(&v);
    let labels: Vec<String> = (0..4).map(|si| format!("tl-{si}")).collect();
    let ready = true_ready_time(&v, ReadinessCriterion::MainContent);

    for pool in [PopulationProfile::paid(), PopulationProfile::trusted()] {
        for i in 0..120 {
            let p = pool.generate_persona(Seed(421), i);
            let seeds = ModelSeeds::of(p.seed);
            let (sessions, responses, control, total) =
                serve_all(&p, &seeds, &sprof, &tprof, &rewinds, &labels);

            // Each response with all sessions, the control, the other
            // responses and the time accounting elided.
            for (j, label) in labels.iter().enumerate() {
                let lone =
                    timeline_response_seeded(&tprof, &rewinds, &p, &seeds, label);
                assert_eq!(
                    lone.submitted.as_secs_f64(),
                    responses[j],
                    "response {label} participant {i}"
                );
            }
            // Each session with everything else elided.
            for (j, label) in labels.iter().enumerate() {
                let lone = video_session_seeded(&sprof, &p, TestKind::Timeline, &seeds, label);
                assert_eq!(lone, sessions[j], "session {label} participant {i}");
            }
            // Control and behaviour independent of response elision.
            assert_eq!(
                timeline_control_seeded(&p, &seeds, "ctrl-tl-0"),
                control,
                "control participant {i}"
            );
            assert_eq!(
                total_time_on_site_seeded(&sessions, &p, &seeds),
                total,
                "total time participant {i}"
            );
            let instruction = instruction_time_seeded(&p, &seeds);
            // A/B streams stay untouched by everything above.
            let judged = judge_pair_seeded(
                ready,
                ready + SimDuration::from_millis(600),
                &p,
                &seeds,
                "ab-1",
            );
            let ab_ctrl = ab_control_seeded(ready, &p, &seeds, "ab-0");
            let (sessions2, ..) = serve_all(&p, &seeds, &sprof, &tprof, &rewinds, &labels);
            assert_eq!(sessions2, sessions, "timeline replay after judging, participant {i}");
            assert_eq!(
                judge_pair_seeded(
                    ready,
                    ready + SimDuration::from_millis(600),
                    &p,
                    &seeds,
                    "ab-1"
                ),
                judged,
                "judgment replay participant {i}"
            );
            // Replay after the intervening timeline serve: the A/B
            // control and instruction streams must be untouched by it.
            assert_eq!(
                ab_control_seeded(ready, &p, &seeds, "ab-0"),
                ab_ctrl,
                "ab control replay participant {i}"
            );
            assert_eq!(
                instruction_time_seeded(&p, &seeds),
                instruction,
                "instruction replay participant {i}"
            );
        }
    }
}

/// Gate-rejected and pruned participants drop their trait cursors
/// unfinished. The participants that *are* materialised — whether via
/// the cursor path or full generation, in any order, with any subset
/// of their neighbours elided — must come out bit-identical.
#[test]
fn unfinished_cursors_never_perturb_materialised_participants() {
    for pool in [PopulationProfile::paid(), PopulationProfile::trusted()] {
        let root = Seed(1187);
        let reference: Vec<Persona> =
            (0..600).map(|i| pool.generate_persona(root, i)).collect();

        // Finish only every third cursor (a stand-in for the gate
        // admitting ~1/3 of recruits); drop the rest unfinished.
        for (i, expected) in reference.iter().enumerate() {
            let cur = pool.start_traits(root, i as u64);
            if i % 3 == 0 {
                assert_eq!(&cur.finish(&pool), expected, "sparse finish index {i}");
            }
            // Non-multiples: cursor dropped here, nothing drawn beyond
            // the class pick.
        }
        // Reverse order, finishing a different subset: still identical.
        for i in (0..600u64).rev() {
            let cur = pool.start_traits(root, i);
            if i % 3 == 1 {
                assert_eq!(
                    cur.finish(&pool),
                    reference[i as usize],
                    "reverse sparse finish index {i}"
                );
            }
        }
    }
}

/// A whole per-stimulus seed plane expanded with `Rng::seed_block`
/// must reproduce scalar per-cell seeding for every cell — the bulk
/// path the flat engine's pass C takes.
#[test]
fn bulk_seed_plane_matches_scalar_cells() {
    let v = video(77);
    let sprof = SessionProfile::of(&v, TestKind::Timeline);
    let pool = PopulationProfile::paid();
    let personas: Vec<Persona> = (0..200).map(|i| pool.generate_persona(Seed(55), i)).collect();
    let seeds: Vec<ModelSeeds> = personas.iter().map(|p| ModelSeeds::of(p.seed)).collect();

    let mut rngs = Vec::new();
    for si in 0..6 {
        let label = format!("tl-{si}");
        let plane: Vec<u64> = seeds.iter().map(|s| session_seed(s, &label)).collect();
        Rng::seed_block(&plane, &mut rngs);
        assert_eq!(rngs.len(), personas.len(), "label {label}");
        for (j, (p, ms)) in personas.iter().zip(&seeds).enumerate() {
            assert_eq!(
                video_session_from_rng(&sprof, p, TestKind::Timeline, rngs[j].clone()),
                video_session_seeded(&sprof, p, TestKind::Timeline, ms, &label),
                "label {label} cell {j}"
            );
        }
    }
}
