//! Materialised frame timelines with memoised rewind lookups.
//!
//! A campaign serves each video to dozens of participants, and every
//! timeline response consults the rewind helper, which compares frames
//! pairwise. Rendering each frame from the paint stream on every lookup
//! would make campaigns quadratic in practice; [`FrameTimeline`]
//! materialises the frame sequence once per video (incrementally — total
//! work proportional to painted area, not frames × paints) and memoises
//! rewind queries, so a whole campaign touches each distinct scan at most
//! once.

use std::collections::BTreeMap;

use eyeorg_net::SimTime;

use crate::capture::{paint_salt, Video};
use crate::compare::SIMILARITY_THRESHOLD;
use crate::frame::{appearance, Frame};

/// All frames of a capture, materialised, plus memoised helper queries.
///
/// Frames are copy-on-write ([`Frame`] shares cell buffers via `Arc`),
/// so intervals without paints cost a pointer clone, and the recorded
/// per-interval *deltas* — each cell write as `(index, old, new)` — let
/// rewind scans maintain a running differing-cell count instead of
/// re-diffing full grids (see [`FrameTimeline::of`]).
#[derive(Debug, Clone)]
pub struct FrameTimeline {
    frames: Vec<Frame>,
    /// `deltas[i]` is the sequence of cell writes transforming frame
    /// `i - 1` into frame `i` (`deltas[0]`: blank into frame 0). Writes
    /// chain per cell, so summing `(new != t) - (old != t)` over an
    /// interval telescopes to the exact change in "cells differing from
    /// `t`" across that interval.
    deltas: Vec<Vec<(u32, u8, u8)>>,
    rewind_memo: BTreeMap<usize, usize>,
}

impl FrameTimeline {
    /// Materialise every frame of `video` by applying paints
    /// incrementally between frame instants. Total work is proportional
    /// to painted area (cells actually written), not frames × grid.
    pub fn of(video: &Video) -> FrameTimeline {
        let n = video.frame_count();
        let trace = video.trace();
        let probe = video.render_at(SimTime::ZERO);
        let (w, h) = (probe.width(), probe.height());
        let sx = f64::from(w) / f64::from(trace.canvas_width.max(1));
        let sy = f64::from(h) / f64::from(trace.fold_y.max(1));

        let mut frames = Vec::with_capacity(n);
        let mut deltas = Vec::with_capacity(n);
        let mut cur = Frame::blank(w, h);
        let mut paint_idx = 0;
        for i in 0..n {
            let t = video.frame_time(i);
            let mut interval: Vec<(u32, u8, u8)> = Vec::new();
            while paint_idx < trace.paints.len() && trace.paints[paint_idx].time <= t {
                let p = &trace.paints[paint_idx];
                paint_idx += 1;
                let Some(visible) = p.rect.above_fold(trace.fold_y) else { continue };
                cur.fill_rect_scaled_traced(
                    &visible,
                    sx,
                    sy,
                    appearance(p.resource.0, paint_salt(p)),
                    &mut |idx, old, new| interval.push((idx, old, new)),
                );
            }
            frames.push(cur.clone());
            deltas.push(interval);
        }
        FrameTimeline { frames, deltas, rewind_memo: BTreeMap::new() }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the timeline is empty (never true for a real capture).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame `i`.
    ///
    /// # Panics
    /// Panics out of range.
    pub fn frame(&self, i: usize) -> &Frame {
        &self.frames[i]
    }

    /// Earliest frame within [`SIMILARITY_THRESHOLD`] of frame `chosen`
    /// (the rewind helper), memoised per chosen index.
    pub fn rewind(&mut self, chosen: usize) -> usize {
        let chosen = chosen.min(self.frames.len().saturating_sub(1));
        if let Some(&r) = self.rewind_memo.get(&chosen) {
            return r;
        }
        let result = self.compute_rewind(chosen);
        self.rewind_memo.insert(chosen, result);
        result
    }

    /// [`rewind`](Self::rewind) through a shared reference: answers from
    /// the memo when present, otherwise recomputes without storing (the
    /// scan is pure, so the answer is identical either way). Combine with
    /// [`precompute_rewinds`](Self::precompute_rewinds) to serve many
    /// concurrent readers with memo-hit cost.
    pub fn rewind_at(&self, chosen: usize) -> usize {
        let chosen = chosen.min(self.frames.len().saturating_sub(1));
        if let Some(&r) = self.rewind_memo.get(&chosen) {
            return r;
        }
        self.compute_rewind(chosen)
    }

    /// Fill the rewind memo for every frame, so subsequent
    /// [`rewind_at`](Self::rewind_at) calls are pure lookups. The scans
    /// for distinct chosen indices are independent, so this is where a
    /// campaign pays the whole per-video rewind cost up front — once —
    /// before fanning participants out across threads.
    pub fn precompute_rewinds(&mut self) {
        for chosen in 0..self.frames.len() {
            if !self.rewind_memo.contains_key(&chosen) {
                let r = self.compute_rewind(chosen);
                self.rewind_memo.insert(chosen, r);
            }
        }
    }

    /// The whole rewind memo as a flat `table[chosen] -> rewind` vector
    /// (answers from the memo when present, recomputed otherwise). The
    /// batch campaign engine carries this table instead of the timeline:
    /// a rewind lookup becomes one bounds-checked index, with no
    /// `BTreeMap` walk on the per-response path.
    pub fn rewind_table(&self) -> Vec<usize> {
        (0..self.frames.len()).map(|chosen| self.rewind_at(chosen)).collect()
    }

    /// [`precompute_rewinds`](Self::precompute_rewinds) with the scans
    /// spread over `threads` workers (`0` = automatic). Entries already
    /// memoised are kept; the table is identical to the sequential fill
    /// for every thread count.
    pub fn precompute_rewinds_parallel(&mut self, threads: usize) {
        let threads = eyeorg_stats::resolve_threads(threads);
        let computed = eyeorg_stats::par_map_range(self.frames.len(), threads, |chosen| {
            self.rewind_at(chosen)
        });
        for (chosen, r) in computed.into_iter().enumerate() {
            self.rewind_memo.entry(chosen).or_insert(r);
        }
    }

    /// The rewind scan, incrementally: the reference semantics are "the
    /// first `i` in `0..=chosen` with `diff_fraction(frame i, frame
    /// chosen) <= threshold`". Rather than diffing each pair (O(chosen ×
    /// grid)), walk *backwards* from `chosen` maintaining the exact count
    /// of cells differing from the target — undoing one interval's
    /// recorded writes adjusts the count by `(old != t) - (new != t)` per
    /// write — and keep the earliest qualifying index. The counts are
    /// integers, so `count / len` is bit-identical to what
    /// `diff_fraction` computes on the full grids.
    fn compute_rewind(&self, chosen: usize) -> usize {
        self.compute_rewind_threshold(chosen, SIMILARITY_THRESHOLD)
    }

    /// [`compute_rewind`](Self::compute_rewind) at an arbitrary
    /// similarity threshold (`compare::EarliestSimilarTable` builds its
    /// per-video tables through this).
    pub(crate) fn compute_rewind_threshold(&self, chosen: usize, threshold: f64) -> usize {
        let target = self.frames[chosen].cells();
        let len = target.len() as f64;
        let mut differing: i64 = 0; // frame `chosen` vs itself
        let mut result = chosen;
        for i in (0..=chosen).rev() {
            // `differing` is now the count for frame `i` vs the target.
            debug_assert!(differing >= 0);
            if differing as f64 / len <= threshold {
                result = i; // keep walking: earlier qualifying i wins
            }
            if i > 0 {
                for &(idx, old, new) in &self.deltas[i] {
                    let t = target[idx as usize];
                    differing += i64::from(old != t) - i64::from(new != t);
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::rewind_suggestion;
    use eyeorg_browser::{load_page, BrowserConfig};
    use eyeorg_net::SimDuration;
    use eyeorg_stats::Seed;
    use eyeorg_workload::{generate_site, SiteClass};

    fn video() -> Video {
        let site = generate_site(Seed(60), 2, SiteClass::Blog);
        let trace = load_page(&site, &BrowserConfig::new(), Seed(61));
        Video::capture(trace, 10, SimDuration::from_secs(3))
    }

    #[test]
    fn materialised_frames_match_lazy_rendering() {
        let v = video();
        let tl = FrameTimeline::of(&v);
        assert_eq!(tl.len(), v.frame_count());
        for i in [0, 1, v.frame_count() / 3, v.frame_count() - 1] {
            assert_eq!(*tl.frame(i), v.frame(i), "frame {i}");
        }
    }

    #[test]
    fn rewind_matches_reference_implementation() {
        let v = video();
        let mut tl = FrameTimeline::of(&v);
        for chosen in [0, 3, v.frame_count() / 2, v.frame_count() - 1] {
            assert_eq!(tl.rewind(chosen), rewind_suggestion(&v, chosen), "chosen {chosen}");
        }
    }

    #[test]
    fn shared_lookup_matches_memoising_path() {
        let v = video();
        let mut memoising = FrameTimeline::of(&v);
        let shared = FrameTimeline::of(&v);
        let mut precomputed = FrameTimeline::of(&v);
        precomputed.precompute_rewinds();
        let mut par = FrameTimeline::of(&v);
        par.precompute_rewinds_parallel(4);
        for chosen in 0..v.frame_count() {
            let reference = memoising.rewind(chosen);
            assert_eq!(shared.rewind_at(chosen), reference, "cold &self lookup, frame {chosen}");
            assert_eq!(precomputed.rewind_at(chosen), reference, "precomputed, frame {chosen}");
            assert_eq!(par.rewind_at(chosen), reference, "parallel precompute, frame {chosen}");
        }
    }

    #[test]
    fn rewind_table_matches_per_frame_lookups() {
        let v = video();
        let mut tl = FrameTimeline::of(&v);
        tl.precompute_rewinds();
        let table = tl.rewind_table();
        assert_eq!(table.len(), tl.len());
        for (chosen, &entry) in table.iter().enumerate() {
            assert_eq!(entry, tl.rewind_at(chosen), "frame {chosen}");
        }
        // Cold (un-memoised) tables answer identically.
        assert_eq!(FrameTimeline::of(&v).rewind_table(), table);
    }

    #[test]
    fn rewind_memoised_and_clamped() {
        let v = video();
        let mut tl = FrameTimeline::of(&v);
        let last = tl.len() - 1;
        let a = tl.rewind(last);
        let b = tl.rewind(last); // memo hit
        assert_eq!(a, b);
        // Out-of-range chosen clamps to the final frame.
        assert_eq!(tl.rewind(usize::MAX), a);
    }
}
